//! Offline stand-in for `criterion`.
//!
//! The registry is unreachable in this build environment, so the real
//! criterion cannot be fetched. This crate is a minimal wall-clock
//! benchmark harness with the same call surface the workspace's bench
//! targets use: `Criterion::benchmark_group`, `sample_size`,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, `Bencher::iter`,
//! `black_box`, and the `criterion_group!` / `criterion_main!` macros.
//!
//! Methodology (simplified from upstream): each measurement first
//! calibrates a batch size so one timed batch runs ≈2 ms, then takes
//! `sample_size` batches and reports the minimum, median, and maximum
//! per-iteration time. No plotting, no statistics files, no outlier
//! analysis — numbers go to stdout.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Label for a parameterised benchmark: `function_name/parameter`.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A benchmark id rendered as `name/parameter`.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }
}

/// Hands the routine to the timing loop.
pub struct Bencher<'a> {
    samples: &'a mut Vec<f64>,
    sample_size: usize,
}

impl Bencher<'_> {
    /// Time `routine`, collecting per-iteration nanoseconds into the
    /// parent benchmark's sample buffer.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: grow the batch until one batch takes ≈2 ms, so the
        // Instant overhead is amortised away.
        let mut iters: u64 = 1;
        let target = Duration::from_millis(2);
        loop {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = t.elapsed();
            if elapsed >= target || iters >= 1 << 20 {
                break;
            }
            // Aim straight for the target with headroom.
            let grown = if elapsed.as_nanos() == 0 {
                iters * 16
            } else {
                (iters as u128 * target.as_nanos() * 2 / elapsed.as_nanos()) as u64
            };
            iters = grown.clamp(iters + 1, iters * 16);
        }
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples
                .push(t.elapsed().as_nanos() as f64 / iters as f64);
        }
    }
}

/// A named set of related benchmarks sharing a sample-size setting.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of timed batches per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    fn run_one(&mut self, label: &str, f: impl FnOnce(&mut Bencher<'_>)) {
        let mut samples = Vec::new();
        let mut b = Bencher {
            samples: &mut samples,
            sample_size: self.sample_size,
        };
        f(&mut b);
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        if samples.is_empty() {
            println!("{}/{label}: no samples", self.name);
            return;
        }
        let med = samples[samples.len() / 2];
        println!(
            "{}/{label}  time: [{} {} {}]",
            self.name,
            fmt_ns(samples[0]),
            fmt_ns(med),
            fmt_ns(*samples.last().unwrap()),
        );
    }

    /// Benchmark a closure under a plain string label.
    pub fn bench_function<F>(&mut self, label: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        self.run_one(label, |b| f(b));
        self
    }

    /// Benchmark a closure that receives a borrowed input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        self.run_one(&id.label, |b| f(b, input));
        self
    }

    /// End the group (upstream flushes reports here; we print eagerly).
    pub fn finish(&mut self) {}
}

/// Entry point handed to each `criterion_group!` function.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 20,
            _criterion: self,
        }
    }

    /// Benchmark a closure outside any group.
    pub fn bench_function<F>(&mut self, label: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let mut g = self.benchmark_group("bench");
        g.bench_function(label, &mut f);
        self
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.4} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.4} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.4} µs", ns / 1e3)
    } else {
        format!("{ns:.2} ns")
    }
}

/// Declare a benchmark group function running each listed benchmark.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declare the bench binary's `main`, running each listed group.
///
/// `cargo test` runs `harness = false` bench targets with `--test`; real
/// timing runs would drown the test suite, so that flag short-circuits to
/// a no-op (matching upstream, which also skips measurement under
/// `--test`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            if std::env::args().any(|a| a == "--test") {
                return;
            }
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("sum_to", 50u64), &50u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs() {
        benches();
    }

    #[test]
    fn id_renders() {
        assert_eq!(BenchmarkId::new("f", 3).label, "f/3");
    }
}
