//! Offline stand-in for `serde_derive`.
//!
//! The registry is unreachable in this build environment, so the real derive
//! macros cannot be fetched. The workspace only ever *derives*
//! `Serialize`/`Deserialize` (it never calls a serializer — the JSONL trace
//! exporter hand-rolls its JSON), so expanding to nothing keeps every
//! annotated type compiling with zero behavioural difference.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`: expands to nothing.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`: expands to nothing.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
