//! Offline stand-in for `rand_chacha`.
//!
//! Provides a type named [`ChaCha8Rng`] with the constructor surface the
//! workspace uses (`SeedableRng::seed_from_u64` + [`ChaCha8Rng::set_stream`]).
//! The generator is **not** the ChaCha stream cipher — there is no registry
//! access in this build environment — but a splitmix64-keyed xoshiro256++
//! generator with the same contract the workspace relies on:
//!
//! * fully deterministic in `(seed, stream)`;
//! * distinct seeds and distinct streams give statistically independent
//!   sequences;
//! * `set_stream` rewinds to the start of the selected stream, matching how
//!   every call site uses it (construct → `set_stream` → draw).

use rand::{RngCore, SeedableRng};

/// splitmix64 finalizer: the standard way to expand a 64-bit key into
/// independent generator states.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic per-`(seed, stream)` pseudo-random generator (xoshiro256++
/// core). Named after the upstream type it replaces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaCha8Rng {
    seed: u64,
    stream: u64,
    s: [u64; 4],
}

impl ChaCha8Rng {
    fn reset_state(&mut self) {
        // Key the state from both seed and stream so streams are independent.
        let mut key = self.seed ^ self.stream.wrapping_mul(0xA24B_AED4_963E_E407);
        let mut s = [0u64; 4];
        for w in &mut s {
            *w = splitmix64(&mut key);
        }
        // xoshiro must not start from the all-zero state.
        if s == [0, 0, 0, 0] {
            s[0] = 0x1234_5678_9ABC_DEF1;
        }
        self.s = s;
    }

    /// Select an independent stream for the same seed, rewinding to the
    /// stream's start. Mirrors `rand_chacha`'s multi-stream API as used by
    /// `proc_rng`-style helpers: one stream per simulated processor.
    pub fn set_stream(&mut self, stream: u64) {
        self.stream = stream;
        self.reset_state();
    }

    /// The stream currently selected.
    pub fn get_stream(&self) -> u64 {
        self.stream
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(state: u64) -> Self {
        let mut rng = ChaCha8Rng {
            seed: state,
            stream: 0,
            s: [0; 4],
        };
        rng.reset_state();
        rng
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        // xoshiro256++ step.
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Alias kept for API parity with upstream `rand_chacha`.
pub type ChaCha12Rng = ChaCha8Rng;
/// Alias kept for API parity with upstream `rand_chacha`.
pub type ChaCha20Rng = ChaCha8Rng;

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_decorrelate() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn streams_decorrelate_and_rewind() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        a.set_stream(3);
        let first: Vec<u64> = (0..4).map(|_| a.next_u64()).collect();
        a.set_stream(4);
        let other: Vec<u64> = (0..4).map(|_| a.next_u64()).collect();
        assert_ne!(first, other);
        a.set_stream(3);
        let replay: Vec<u64> = (0..4).map(|_| a.next_u64()).collect();
        assert_eq!(first, replay);
    }

    #[test]
    fn output_is_roughly_uniform() {
        let mut rng = ChaCha8Rng::seed_from_u64(1234);
        let n = 20_000;
        let mut buckets = [0u32; 8];
        for _ in 0..n {
            buckets[rng.gen_range(0..8usize)] += 1;
        }
        for (i, &b) in buckets.iter().enumerate() {
            assert!(
                (n / 8) as f64 * 0.9 < b as f64 && (b as f64) < (n / 8) as f64 * 1.1,
                "bucket {i} = {b}"
            );
        }
    }
}
