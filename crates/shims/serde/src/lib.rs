//! Offline stand-in for `serde`.
//!
//! Re-exports no-op `Serialize`/`Deserialize` derive macros (from the sibling
//! `serde_derive` shim) and provides same-named marker traits so both
//! `use serde::{Serialize, Deserialize}` and trait-bound positions resolve.
//! Nothing in this workspace invokes an actual serializer — the trace
//! exporter writes its JSON by hand — so markers are the whole contract.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}
