//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this repository has no network access and no
//! cargo registry cache, so the real `rand` cannot be fetched. This crate
//! implements the *subset* of the `rand` 0.8 API that the workspace actually
//! uses — `RngCore`, `Rng::{gen, gen_range, gen_bool}`, `SeedableRng`, and
//! `distributions::Uniform` — with the same semantics (half-open integer and
//! float ranges, inclusive ranges, Bernoulli draws).
//!
//! Generators here are *not* the upstream algorithms: callers that construct
//! `rand_chacha::ChaCha8Rng` get a deterministic splitmix64-based stream (see
//! the `rand_chacha` shim). Everything in this workspace treats RNGs as
//! opaque deterministic streams keyed by `(seed, stream)`, so statistical
//! quality and reproducibility — not bit-compatibility with upstream — are
//! the contract.

use std::ops::{Range, RangeInclusive};

/// Core trait: a source of uniformly random 64-bit words.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that `Rng::gen` can produce (the upstream `Standard` distribution).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that `Rng::gen_range` accepts.
pub trait SampleRange<T> {
    /// Draw a value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform draw from `[0, n)` without modulo bias (Lemire-style rejection;
/// the bias of one widening multiply is < 2^-64 per draw, but rejection keeps
/// it exact).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    if n.is_power_of_two() {
        return rng.next_u64() & (n - 1);
    }
    // Rejection zone to make the multiply-shift exactly uniform.
    let zone = u64::MAX - (u64::MAX - n + 1) % n;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return ((v as u128 * n as u128) >> 64) as u64;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_below(rng, span + 1) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample_standard(rng);
        self.start + u * (self.end - self.start)
    }
}

/// The user-facing RNG trait: convenience draws on top of [`RngCore`].
pub trait Rng: RngCore {
    /// Draw a value of any [`Standard`]-samplable type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draw uniformly from a range (`a..b` or `a..=b`, integer or float).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} not a probability");
        f64::sample_standard(self) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Seedable deterministic generators.
pub trait SeedableRng: Sized {
    /// Construct from a 64-bit seed (the only constructor this workspace
    /// uses).
    fn seed_from_u64(state: u64) -> Self;
}

/// The subset of `rand::distributions` in use: [`Uniform`] over `f64`.
pub mod distributions {
    use super::{Rng, RngCore};

    /// A pre-built distribution that can be sampled repeatedly.
    pub trait Distribution<T> {
        /// Draw one value.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// Uniform distribution over a half-open range.
    #[derive(Debug, Clone, Copy, PartialEq)]
    pub struct Uniform<T> {
        low: T,
        high: T,
    }

    impl Uniform<f64> {
        /// Uniform over `[low, high)`.
        pub fn new(low: f64, high: f64) -> Self {
            assert!(low < high, "empty uniform range");
            Uniform { low, high }
        }
    }

    impl Distribution<f64> for Uniform<f64> {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            rng.gen_range(self.low..self.high)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::distributions::Distribution;
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u64(&mut self) -> u64 {
            // splitmix64 so the stream looks uniform.
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Counter(1);
        for _ in 0..2000 {
            let a = rng.gen_range(0..7usize);
            assert!(a < 7);
            let b = rng.gen_range(-50i64..50);
            assert!((-50..50).contains(&b));
            let c = rng.gen_range(3..=3u64);
            assert_eq!(c, 3);
            let d = rng.gen_range(0.0f64..1.0);
            assert!((0.0..1.0).contains(&d));
        }
    }

    #[test]
    fn all_residues_reachable() {
        let mut rng = Counter(9);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[rng.gen_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Counter(3);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn gen_bool_rate_is_sane() {
        let mut rng = Counter(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits={hits}");
    }

    #[test]
    fn uniform_distribution_samples_range() {
        let mut rng = Counter(5);
        let u = distributions::Uniform::new(0.0f64, 1.0);
        let mean = (0..10_000).map(|_| u.sample(&mut rng)).sum::<f64>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean={mean}");
    }

    #[test]
    fn standard_f64_in_unit_interval() {
        let mut rng = Counter(8);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
