//! Offline stand-in for `proptest`.
//!
//! The registry is unreachable in this build environment, so the real
//! proptest cannot be fetched. This crate is a deterministic mini
//! property-test engine covering the surface the workspace's test suites
//! use: the [`proptest!`] macro (with `#![proptest_config(..)]`),
//! [`prelude::Strategy`] with `prop_map`, range / tuple / `any` /
//! `collection::vec` strategies, and `prop_assert!` / `prop_assert_eq!`.
//!
//! Differences from upstream, deliberately accepted:
//! * no shrinking — a failing case panics with the `prop_assert!` message
//!   and the case inputs are reproducible because the RNG is seeded from
//!   the test's own name;
//! * no persistence files or fork handling;
//! * `cases` is the sole knob on [`prelude::ProptestConfig`].

use std::ops::{Range, RangeInclusive};

use rand::{Rng, SeedableRng};

/// The RNG driving every strategy. Concrete so `Strategy` stays
/// object-simple.
pub type TestRng = rand_chacha::ChaCha8Rng;

/// Deterministic per-test RNG: seeded from an FNV-1a hash of the test
/// name, so each test gets an independent, stable stream.
pub fn test_rng(test_name: &str) -> TestRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    TestRng::seed_from_u64(h)
}

/// Everything a `use proptest::prelude::*;` site expects.
pub mod prelude {
    pub use crate::{any, prop_assert, prop_assert_eq, proptest};
    pub use crate::{Any, Just, Map, ProptestConfig, Strategy, TestRng};
}

/// Per-`proptest!`-block configuration.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` random cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The type this strategy produces.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform every generated value with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// Strategy adaptor produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

impl<T> Strategy for Range<T>
where
    Range<T>: rand::SampleRange<T> + Clone,
{
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T> Strategy for RangeInclusive<T>
where
    RangeInclusive<T>: rand::SampleRange<T> + Clone,
{
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
}

/// Always produces a clone of one value (upstream `Just`).
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types `any::<T>()` can produce.
pub trait Arbitrary {
    /// Draw a value from the type's full range.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen_range(<$t>::MIN..=<$t>::MAX)
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen_range(0u32..2) == 1
    }
}

/// Strategy over a type's whole value range (upstream `any`).
pub struct Any<T>(std::marker::PhantomData<T>);

/// `any::<T>()`: draw from the type's full range.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Collection strategies: the `vec(element, size)` constructor.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Strategy for `Vec<S::Value>` with a random length drawn from a
    /// size range.
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    /// A vector whose length is drawn from `size` (a `usize` range) and
    /// whose elements come from `element`.
    pub fn vec<S, R>(element: S, size: R) -> VecStrategy<S, R>
    where
        S: Strategy,
        R: rand::SampleRange<usize> + Clone,
    {
        VecStrategy { element, size }
    }

    impl<S, R> Strategy for VecStrategy<S, R>
    where
        S: Strategy,
        R: rand::SampleRange<usize> + Clone,
    {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// `prop_assert!`: plain `assert!` — a failure panics the whole test
/// rather than triggering shrinking, which this shim does not do.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// `prop_assert_eq!`: plain `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// The test-block macro. Each contained `fn name(arg in strategy, ..)`
/// becomes a `#[test]` (the attribute is written at the call site and
/// re-emitted here) that draws `config.cases` random cases and runs the
/// body on each.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                // Case index in the panic payload stands in for shrinking:
                // rerunning the test reproduces the same case sequence.
                let _ = __case;
                $body
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn strategies_are_deterministic_per_name() {
        let mut a = crate::test_rng("x");
        let mut b = crate::test_rng("x");
        let s = crate::collection::vec(0usize..10, 3..=5);
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }

    #[test]
    fn prop_map_applies() {
        let mut rng = crate::test_rng("prop_map");
        let s = (1u64..=4).prop_map(|x| x * 10);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!(v >= 10 && v <= 40 && v % 10 == 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro wires strategies, config, and asserts together.
        #[test]
        fn macro_end_to_end(
            xs in crate::collection::vec(any::<i32>(), 0..8),
            k in 1usize..4,
        ) {
            prop_assert!(xs.len() < 8);
            prop_assert_eq!(k.min(3), k);
        }
    }
}
