//! Offline stand-in for `proptest`.
//!
//! The registry is unreachable in this build environment, so the real
//! proptest cannot be fetched. This crate is a deterministic mini
//! property-test engine covering the surface the workspace's test suites
//! use: the [`proptest!`] macro (with `#![proptest_config(..)]`),
//! [`prelude::Strategy`] with `prop_map`, range / tuple / `any` /
//! `collection::vec` strategies, and `prop_assert!` / `prop_assert_eq!`.
//!
//! Failure handling mirrors upstream's shape:
//! * **Minimal shrinking.** Integer and float ranges shrink toward their
//!   lower bound, tuples shrink component-wise, `collection::vec` shrinks
//!   by truncation (never below the size range's minimum), and `any` shrinks
//!   toward zero. `prop_map` does not shrink (the mapping is not
//!   invertible).
//! * **Failure persistence.** Each case draws from its own seed
//!   (derived from the test name and case index). A failing case is
//!   shrunk, appended to the sibling `*.proptest-regressions` file as a
//!   `cc <seed-hex> # shrinks to <value>` line, and those lines are
//!   replayed *before* fresh cases on every later run. Upstream's 256-bit
//!   seeds in checked-in files are folded to this shim's 64-bit seeds, so
//!   old files are read (as extra replayed cases), not rejected.
//!
//! Differences from upstream, deliberately accepted: no fork handling, and
//! `cases` is the sole knob on [`prelude::ProptestConfig`].

use std::ops::{Range, RangeInclusive};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};

use rand::{Rng, SeedableRng};

/// The RNG driving every strategy. Concrete so `Strategy` stays
/// object-simple.
pub type TestRng = rand_chacha::ChaCha8Rng;

/// Deterministic per-test RNG: seeded from an FNV-1a hash of the test
/// name, so each test gets an independent, stable stream.
pub fn test_rng(test_name: &str) -> TestRng {
    TestRng::seed_from_u64(fnv1a(test_name))
}

fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The seed for case `case` of test `name` — each case gets an independent
/// RNG so one `cc` line replays exactly one case.
pub fn case_seed(name: &str, case: u32) -> u64 {
    splitmix64(fnv1a(name) ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Everything a `use proptest::prelude::*;` site expects.
pub mod prelude {
    pub use crate::{any, prop_assert, prop_assert_eq, proptest};
    pub use crate::{Any, Just, Map, ProptestConfig, Strategy, TestRng};
}

/// Per-`proptest!`-block configuration.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` random cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The type this strategy produces.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Candidate simpler values to try when `value` made the test fail,
    /// most aggressive first. Every candidate must itself be a value this
    /// strategy could produce and strictly simpler than `value`, so the
    /// shrink loop terminates. The default (no candidates) disables
    /// shrinking for the strategy.
    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        let _ = value;
        Vec::new()
    }

    /// Transform every generated value with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// Strategy adaptor produced by [`Strategy::prop_map`]. Does not shrink:
/// the mapping is not invertible, so simpler pre-images cannot be derived
/// from a failing output.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Values that know how to move toward a lower bound in big strides —
/// the primitive behind range shrinking.
pub trait ShrinkTowards: Copy + PartialOrd {
    /// Candidates strictly between `low` (inclusive) and `v` (exclusive),
    /// most aggressive first; empty when `v <= low`.
    fn shrink_towards(low: Self, v: Self) -> Vec<Self>;
}

macro_rules! impl_shrink_towards_int {
    ($($t:ty),*) => {$(
        impl ShrinkTowards for $t {
            fn shrink_towards(low: Self, v: Self) -> Vec<Self> {
                if v <= low {
                    return Vec::new();
                }
                let mut c = vec![low, low + (v - low) / 2, v - 1];
                c.dedup();
                c.retain(|&x| x < v);
                c
            }
        }
    )*};
}

impl_shrink_towards_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_shrink_towards_float {
    ($($t:ty),*) => {$(
        impl ShrinkTowards for $t {
            fn shrink_towards(low: Self, v: Self) -> Vec<Self> {
                if !(v > low) {
                    return Vec::new();
                }
                // A bisection ladder `low, low + d/2, low + 3d/4, ...`
                // approaching `v` from below: whichever rung is the first
                // to still fail becomes the next value, so the distance to
                // a pass/fail boundary roughly halves per accepted shrink.
                let d = v - low;
                let mut c = Vec::with_capacity(53);
                c.push(low);
                let mut frac: $t = 0.5;
                for _ in 0..52 {
                    let x = low + d * frac;
                    if x > low && x < v && c.last().copied() != Some(x) {
                        c.push(x);
                    }
                    frac += (1.0 - frac) / 2.0;
                }
                c
            }
        }
    )*};
}

impl_shrink_towards_float!(f32, f64);

impl<T> Strategy for Range<T>
where
    Range<T>: rand::SampleRange<T> + Clone,
    T: ShrinkTowards,
{
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
    fn shrink(&self, value: &T) -> Vec<T> {
        T::shrink_towards(self.start, *value)
    }
}

impl<T> Strategy for RangeInclusive<T>
where
    RangeInclusive<T>: rand::SampleRange<T> + Clone,
    T: ShrinkTowards,
{
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
    fn shrink(&self, value: &T) -> Vec<T> {
        T::shrink_towards(*self.start(), *value)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+)
        where
            $($s::Value: Clone),+
        {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                // Component-wise: each candidate shrinks exactly one
                // component and keeps the rest, so progress is strictly
                // decreasing in the sum of component measures.
                let mut out = Vec::new();
                $(
                    for cand in self.$idx.shrink(&value.$idx) {
                        let mut next = value.clone();
                        next.$idx = cand;
                        out.push(next);
                    }
                )+
                out
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
}

/// Always produces a clone of one value (upstream `Just`).
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types `any::<T>()` can produce.
pub trait Arbitrary {
    /// Draw a value from the type's full range.
    fn arbitrary(rng: &mut TestRng) -> Self;

    /// Simpler candidates for a failing value (see [`Strategy::shrink`]).
    fn arbitrary_shrink(&self) -> Vec<Self>
    where
        Self: Sized,
    {
        Vec::new()
    }
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen_range(<$t>::MIN..=<$t>::MAX)
            }
            fn arbitrary_shrink(&self) -> Vec<Self> {
                ShrinkTowards::shrink_towards(0, *self)
            }
        }
    )*};
}

macro_rules! impl_arbitrary_sint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen_range(<$t>::MIN..=<$t>::MAX)
            }
            fn arbitrary_shrink(&self) -> Vec<Self> {
                let v = *self;
                if v == 0 {
                    return Vec::new();
                }
                // Toward zero from either side; integer halving moves
                // toward zero for both signs.
                let mut c = vec![0, v / 2, if v > 0 { v - 1 } else { v + 1 }];
                c.dedup();
                c.retain(|&x| x != v);
                c
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize);
impl_arbitrary_sint!(i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen_range(0u32..2) == 1
    }
    fn arbitrary_shrink(&self) -> Vec<Self> {
        if *self {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

/// Strategy over a type's whole value range (upstream `any`).
pub struct Any<T>(std::marker::PhantomData<T>);

/// `any::<T>()`: draw from the type's full range.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
    fn shrink(&self, value: &T) -> Vec<T> {
        value.arbitrary_shrink()
    }
}

/// Collection strategies: the `vec(element, size)` constructor.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Size ranges that expose their minimum, so vector shrinking never
    /// truncates below a length the strategy could produce.
    pub trait SizeRange: rand::SampleRange<usize> + Clone {
        /// Smallest length the range can draw.
        fn min_len(&self) -> usize;
    }

    impl SizeRange for Range<usize> {
        fn min_len(&self) -> usize {
            self.start
        }
    }

    impl SizeRange for RangeInclusive<usize> {
        fn min_len(&self) -> usize {
            *self.start()
        }
    }

    /// Strategy for `Vec<S::Value>` with a random length drawn from a
    /// size range.
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    /// A vector whose length is drawn from `size` (a `usize` range) and
    /// whose elements come from `element`.
    pub fn vec<S, R>(element: S, size: R) -> VecStrategy<S, R>
    where
        S: Strategy,
        R: SizeRange,
    {
        VecStrategy { element, size }
    }

    impl<S, R> Strategy for VecStrategy<S, R>
    where
        S: Strategy,
        S::Value: Clone,
        R: SizeRange,
    {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
        fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
            // Truncation first (aggressively, then by one), then shrink the
            // first shrinkable element in place.
            let min = self.size.min_len();
            let len = value.len();
            let mut out: Vec<Vec<S::Value>> = Vec::new();
            for cand_len in [min, min + (len - min.min(len)) / 2, len.saturating_sub(1)] {
                if cand_len < len && cand_len >= min && !out.iter().any(|v| v.len() == cand_len) {
                    out.push(value[..cand_len].to_vec());
                }
            }
            for (i, elem) in value.iter().enumerate() {
                for simpler in self.element.shrink(elem) {
                    let mut next = value.clone();
                    next[i] = simpler;
                    out.push(next);
                }
            }
            out
        }
    }
}

/// `prop_assert!`: plain `assert!` — the runner catches the panic, shrinks
/// the failing input, and persists a `cc` seed line.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// `prop_assert_eq!`: plain `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Resolve the sibling `*.proptest-regressions` file for a test source
/// file. `file` is the macro caller's `file!()`, which may be relative to
/// either the crate manifest dir or the workspace root depending on how
/// cargo was invoked — whichever join exists on disk wins.
pub fn regression_path(manifest_dir: &str, file: &str) -> PathBuf {
    let rel = Path::new(file).with_extension("proptest-regressions");
    let joined = Path::new(manifest_dir).join(&rel);
    if joined.exists() {
        return joined;
    }
    if rel.exists() {
        return rel;
    }
    if joined.parent().is_some_and(|p| p.is_dir()) {
        joined
    } else {
        rel
    }
}

/// Parse the seeds out of a `*.proptest-regressions` file. Upstream's
/// 256-bit `cc` hashes are folded (XOR over 64-bit words) into this shim's
/// 64-bit seed space, so checked-in upstream files replay as ordinary
/// extra cases.
pub fn read_regressions(path: &Path) -> Vec<u64> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    text.lines()
        .filter_map(|line| {
            let rest = line.trim().strip_prefix("cc ")?;
            let hex: String = rest.chars().take_while(|c| c.is_ascii_hexdigit()).collect();
            if hex.is_empty() {
                return None;
            }
            let mut folded = 0u64;
            let bytes = hex.as_bytes();
            let mut i = 0;
            while i < bytes.len() {
                let end = (i + 16).min(bytes.len());
                let chunk = std::str::from_utf8(&bytes[i..end]).ok()?;
                folded ^= u64::from_str_radix(chunk, 16).ok()?;
                i = end;
            }
            Some(folded)
        })
        .collect()
}

fn persist_failure(path: &Path, seed: u64, minimal: &str) {
    use std::io::Write;
    let fresh = !path.exists();
    let Ok(mut f) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
    else {
        eprintln!(
            "proptest shim: could not persist failure to {}",
            path.display()
        );
        return;
    };
    if fresh {
        let _ = writeln!(
            f,
            "# Seeds for failure cases proptest has generated in the past. It is\n\
             # automatically read and these particular cases re-run before any\n\
             # novel cases are generated.\n\
             #\n\
             # It is recommended to check this file in to source control so that\n\
             # everyone who runs the test benefits from these saved cases."
        );
    }
    let _ = writeln!(f, "cc {seed:016x} # shrinks to {minimal}");
}

/// Serializes panic-hook swaps across concurrently failing proptests.
static HOOK_GUARD: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// Silences the default panic printer while shrink candidates are probed
/// (each probe that still fails would otherwise print a full backtrace).
struct QuietPanics<'a> {
    _guard: std::sync::MutexGuard<'a, ()>,
    prev: Option<Box<dyn Fn(&std::panic::PanicHookInfo<'_>) + Sync + Send + 'static>>,
}

impl QuietPanics<'_> {
    fn new() -> Self {
        let guard = HOOK_GUARD.lock().unwrap_or_else(|e| e.into_inner());
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        QuietPanics {
            _guard: guard,
            prev: Some(prev),
        }
    }
}

impl Drop for QuietPanics<'_> {
    fn drop(&mut self) {
        if let Some(prev) = self.prev.take() {
            std::panic::set_hook(prev);
        }
    }
}

fn fails<S: Strategy>(body: &impl Fn(S::Value), value: S::Value) -> bool
where
    S::Value: Clone,
{
    catch_unwind(AssertUnwindSafe(|| body(value))).is_err()
}

fn shrink_to_minimal<S: Strategy>(
    strat: &S,
    body: &impl Fn(S::Value),
    mut value: S::Value,
) -> S::Value
where
    S::Value: Clone,
{
    let _quiet = QuietPanics::new();
    // Candidates are strictly simpler than their source, so this terminates;
    // the cap is a belt against a misbehaving user strategy.
    for _ in 0..10_000 {
        let Some(next) = strat
            .shrink(&value)
            .into_iter()
            .find(|cand| fails::<S>(body, cand.clone()))
        else {
            return value;
        };
        value = next;
    }
    value
}

fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// The engine behind [`proptest!`]: replays persisted regression seeds,
/// then runs `config.cases` fresh cases; a failing case is shrunk to a
/// minimal failing input, persisted (fresh failures only), and re-raised
/// with the seed and minimal input in the message.
pub fn run_property<S>(
    config: ProptestConfig,
    path: &Path,
    name: &str,
    strat: &S,
    body: impl Fn(S::Value),
) where
    S: Strategy,
    S::Value: Clone + std::fmt::Debug,
{
    let replayed = read_regressions(path);
    for &seed in &replayed {
        run_one(strat, &body, path, name, seed, true);
    }
    for case in 0..config.cases {
        run_one(strat, &body, path, name, case_seed(name, case), false);
    }
}

fn run_one<S>(strat: &S, body: &impl Fn(S::Value), path: &Path, name: &str, seed: u64, replay: bool)
where
    S: Strategy,
    S::Value: Clone + std::fmt::Debug,
{
    let mut rng = TestRng::seed_from_u64(seed);
    let value = strat.generate(&mut rng);
    let outcome = catch_unwind(AssertUnwindSafe(|| body(value.clone())));
    let Err(payload) = outcome else { return };
    let minimal = shrink_to_minimal(strat, body, value);
    let minimal_text = format!("{minimal:?}");
    if !replay {
        persist_failure(path, seed, &minimal_text);
    }
    let origin = if replay {
        " (replayed from the regressions file)"
    } else {
        ""
    };
    panic!(
        "proptest case for `{name}` failed{origin}: {}\n\
         seed: cc {seed:016x}\n\
         minimal failing input: {minimal_text}",
        panic_text(payload.as_ref()),
    );
}

/// The test-block macro. Each contained `fn name(arg in strategy, ..)`
/// becomes a `#[test]` (the attribute is written at the call site and
/// re-emitted here) that replays persisted regression seeds, then draws
/// `config.cases` random cases, shrinking and persisting any failure.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let __path = $crate::regression_path(env!("CARGO_MANIFEST_DIR"), file!());
            $crate::run_property(
                __config,
                &__path,
                concat!(module_path!(), "::", stringify!($name)),
                &($($strat,)+),
                |($($arg,)+)| $body,
            );
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use std::path::PathBuf;

    fn scratch(name: &str) -> PathBuf {
        let path = std::env::temp_dir().join(format!(
            "pbw-proptest-{name}-{}.regressions",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        path
    }

    #[test]
    fn strategies_are_deterministic_per_name() {
        let mut a = crate::test_rng("x");
        let mut b = crate::test_rng("x");
        let s = crate::collection::vec(0usize..10, 3..=5);
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }

    #[test]
    fn prop_map_applies() {
        let mut rng = crate::test_rng("prop_map");
        let s = (1u64..=4).prop_map(|x| x * 10);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!(v >= 10 && v <= 40 && v % 10 == 0);
        }
    }

    #[test]
    fn integer_ranges_shrink_to_the_smallest_failure() {
        // Fails for x >= 50: the minimal counterexample is exactly 50.
        let strat = (0u64..100,);
        let minimal = crate::shrink_to_minimal(&strat, &|(x,): (u64,)| assert!(x < 50), (99,));
        assert_eq!(minimal, (50,));
    }

    #[test]
    fn tuples_shrink_component_wise() {
        let strat = (0u32..100, 0u32..100);
        let minimal =
            crate::shrink_to_minimal(&strat, &|(a, _b): (u32, u32)| assert!(a < 60), (90, 77));
        assert_eq!(minimal, (60, 0));
    }

    #[test]
    fn floats_shrink_toward_the_low_bound() {
        let strat = (0.0f64..1.0,);
        let (x,) = crate::shrink_to_minimal(&strat, &|(x,): (f64,)| assert!(x < 0.5), (0.93,));
        assert!((0.5..0.5 + 1e-6).contains(&x), "got {x}");
    }

    #[test]
    fn vec_shrinking_respects_fixed_size() {
        let strat = (crate::collection::vec(0i64..10, 4..=4),);
        let (v,) = crate::shrink_to_minimal(
            &strat,
            &|(v,): (Vec<i64>,)| assert!(v.iter().sum::<i64>() < 5),
            (vec![3, 3, 3, 3],),
        );
        assert_eq!(v.len(), 4, "fixed-size vec must not be truncated");
        assert_eq!(v.iter().sum::<i64>(), 5);
    }

    #[test]
    fn failures_persist_and_replay() {
        let path = scratch("persist");
        let strat = (10u64..100,);
        let failing = std::panic::catch_unwind(|| {
            crate::run_property(
                ProptestConfig::with_cases(16),
                &path,
                "persist_demo",
                &strat,
                |(x,)| assert!(x < 10), // every case fails; minimal is 10
            );
        });
        assert!(failing.is_err());
        let msg = crate::panic_text(failing.unwrap_err().as_ref());
        assert!(msg.contains("minimal failing input: (10,)"), "{msg}");
        // The file now has a cc line that replays.
        let seeds = crate::read_regressions(&path);
        assert_eq!(seeds.len(), 1);
        let replayed = std::panic::catch_unwind(|| {
            crate::run_property(
                ProptestConfig::with_cases(0), // regressions only
                &path,
                "persist_demo",
                &strat,
                |(x,)| assert!(x < 10),
            );
        });
        assert!(replayed.is_err());
        let msg = crate::panic_text(replayed.unwrap_err().as_ref());
        assert!(msg.contains("replayed from the regressions file"), "{msg}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn upstream_256bit_seeds_fold_to_u64() {
        let path = scratch("fold");
        std::fs::write(
            &path,
            "# header\ncc 6566b51a09493003fdd6a510bcf24c87ca1111e0fc90fa23dafd5d24f7be2f3c # shrinks to x = 1\n",
        )
        .unwrap();
        let seeds = crate::read_regressions(&path);
        assert_eq!(
            seeds,
            vec![
                0x6566_b51a_0949_3003u64
                    ^ 0xfdd6_a510_bcf2_4c87
                    ^ 0xca11_11e0_fc90_fa23
                    ^ 0xdafd_5d24_f7be_2f3c
            ]
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn passing_property_writes_no_file() {
        let path = scratch("clean");
        crate::run_property(
            ProptestConfig::with_cases(32),
            &path,
            "clean_demo",
            &(0u64..100, 0u64..100),
            |(a, b)| assert!(a < 100 && b < 100),
        );
        assert!(!path.exists());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro wires strategies, config, and asserts together.
        #[test]
        fn macro_end_to_end(
            xs in crate::collection::vec(any::<i32>(), 0..8),
            k in 1usize..4,
        ) {
            prop_assert!(xs.len() < 8);
            prop_assert_eq!(k.min(3), k);
        }
    }
}
