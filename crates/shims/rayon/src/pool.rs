//! The work-stealing thread pool behind the parallel iterators.
//!
//! A *job* is a contiguous index range `[0, n)` executed by a closure
//! `f(start, end)` over disjoint subranges, plus a per-job chunk floor
//! `min_chunk` (the smallest range worth handing to another thread — sized
//! by the autotuner in [`crate::tune`]). Distribution is work-stealing over
//! per-thread deques:
//!
//! * Every worker (and every submitting caller) owns a deque of *spans*
//!   (job + subrange). The owner pushes and pops at the **back** (LIFO, so
//!   it always resumes the range nearest what it just executed), thieves
//!   steal from the **front** (FIFO, so a thief takes the largest,
//!   coldest span — the classic Chase-Lev discipline, here under a mutex
//!   per deque since this shim favors auditability over lock-freedom).
//! * While executing a span, a thread keeps **splitting in half** — pushing
//!   the far half onto its own deque and waking one sleeper — as long as
//!   idle workers exist and both halves stay at or above the job's chunk
//!   floor. Between floor-sized pieces of real work it re-checks, so
//!   capacity freed mid-span is still recruited. With no idle workers, no
//!   splits happen and the span runs as one sequential sweep.
//! * The submitting caller participates through its own deque: it executes
//!   the root span itself, then drains its deque and steals back its own
//!   job's spans until the job completes. Every span therefore always sits
//!   in some registered deque or is being executed, and a deque's owner
//!   drains it before sleeping — so jobs finish even if every steal misses,
//!   and nested submissions from inside a worker cannot deadlock.
//!
//! Determinism is unaffected by any of this: which thread executes which
//! span never influences *values* — the chunking layer above merges
//! per-chunk results in index order — so `PBW_THREADS=1` and a 64-wide
//! stealing pool produce byte-identical output (pinned by the
//! cross-thread-count conformance suite).
//!
//! ## Sizing
//!
//! The default width is, in priority order: `PBW_THREADS`, then
//! `RAYON_NUM_THREADS`, then `std::thread::available_parallelism()`. A width
//! of 1 short-circuits every parallel entry point to plain sequential
//! execution on the caller. [`ThreadPool::install`] overrides the width for
//! the duration of a closure on the calling thread — this is what the
//! cross-thread-count conformance suite uses to compare `PBW_THREADS ∈
//! {1, 2, 8}` inside one process.
//!
//! ## Safety
//!
//! The one `unsafe` construction in this crate is the lifetime erasure in
//! [`run_range_tasks`]: the borrowed task closure is stored in the
//! heap-allocated job as a raw pointer so workers can reach it. Soundness
//! argument: a thread dereferences the pointer only while executing a span
//! it removed from a deque, and a span's items are counted into the job's
//! completion total only *after* `f` returns on them — so any live span
//! (queued or executing) keeps `done < n`, which keeps the submitting
//! caller blocked inside `run_range_tasks`, which keeps the borrow alive
//! for every dereference. Once `done == n` no span of the job exists
//! anywhere, so no dereference can happen after the caller returns.

use std::any::Any;
use std::cell::Cell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError};

/// Lock a pool mutex, recovering from poisoning: pool state is only counters
/// and queues of `Arc`s, all valid at every instruction boundary, and task
/// panics are already routed through the owning job's panic slot.
pub(crate) fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A lifetime-erased `&(dyn Fn(usize, usize) + Sync)` (see the module docs
/// for the soundness argument).
struct RangeFn(*const (dyn Fn(usize, usize) + Sync + 'static));

// SAFETY: the pointee is `Sync` (shared calls from any thread are fine) and
// `run_range_tasks` guarantees it outlives every dereference.
unsafe impl Send for RangeFn {}
unsafe impl Sync for RangeFn {}

/// One submitted job: the range `[0, n)`, its chunk floor, completion
/// tracked item-by-item in `done`, first panic captured for the caller.
struct Job {
    func: RangeFn,
    n: usize,
    min_chunk: usize,
    done: AtomicUsize,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
    finished: Mutex<bool>,
    cv: Condvar,
}

impl Job {
    /// Count `k` items finished; the last item flips `finished` and wakes
    /// the submitting caller.
    fn complete(&self, k: usize) {
        if self.done.fetch_add(k, Ordering::AcqRel) + k == self.n {
            *lock(&self.finished) = true;
            self.cv.notify_all();
        }
    }

    fn is_finished(&self) -> bool {
        self.done.load(Ordering::Acquire) >= self.n
    }

    fn wait_finished(&self) {
        let mut fin = lock(&self.finished);
        while !*fin {
            fin = self.cv.wait(fin).unwrap_or_else(PoisonError::into_inner);
        }
    }
}

/// A contiguous piece of one job, owned by whichever deque it sits in.
struct Span {
    job: Arc<Job>,
    start: usize,
    end: usize,
}

/// Spans a fresh deque holds before its ring buffer must reallocate.
/// Splitting produces at most ~2x a dispatch's chunk count in live spans,
/// so this covers any realistic job; pre-reserving keeps steady-state
/// dispatches free of timing-dependent growth reallocations (the
/// alloc-budget suite counts allocations per superstep exactly).
const DEQUE_CAPACITY: usize = 256;

/// One thread's work queue. The owner uses the back, thieves the front.
struct Deque {
    q: Mutex<VecDeque<Span>>,
}

impl Deque {
    fn new() -> Self {
        Deque {
            q: Mutex::new(VecDeque::with_capacity(DEQUE_CAPACITY)),
        }
    }

    fn push_back(&self, span: Span) {
        lock(&self.q).push_back(span);
    }

    fn pop_back(&self) -> Option<Span> {
        lock(&self.q).pop_back()
    }

    /// Steal from the cold end. With `want`, take only the front-most span
    /// of that job (a participating caller helps its own job, never gets
    /// entangled in someone else's).
    fn steal_front(&self, want: Option<&Arc<Job>>) -> Option<Span> {
        let mut q = lock(&self.q);
        match want {
            None => q.pop_front(),
            Some(job) => {
                let pos = q.iter().position(|s| Arc::ptr_eq(&s.job, job))?;
                q.remove(pos)
            }
        }
    }
}

/// The process-global worker pool. Workers are spawned lazily, detached, and
/// live for the rest of the process.
struct Pool {
    /// Every registered deque: one per worker, plus one per thread that has
    /// ever submitted a job. Steals scan this list.
    deques: Mutex<Vec<Arc<Deque>>>,
    /// Workers currently waiting for work — the split policy's signal.
    idle: AtomicUsize,
    /// Wake generation: bumped (under the mutex) whenever a span is pushed,
    /// so a worker that advertised itself idle cannot miss a push that
    /// raced its final steal check.
    wake_gen: Mutex<u64>,
    wake_cv: Condvar,
    spawned: Mutex<usize>,
}

fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| Pool {
        deques: Mutex::new(Vec::new()),
        idle: AtomicUsize::new(0),
        wake_gen: Mutex::new(0),
        wake_cv: Condvar::new(),
        spawned: Mutex::new(0),
    })
}

thread_local! {
    /// This thread's deque, created on first use (workers at startup,
    /// callers at their first submission) and registered for the lifetime
    /// of the process.
    static MY_DEQUE: std::cell::OnceCell<Arc<Deque>> = const { std::cell::OnceCell::new() };
}

/// This thread's registered deque, creating and registering it on first use.
fn my_deque() -> Arc<Deque> {
    MY_DEQUE.with(|cell| {
        cell.get_or_init(|| {
            let d = Arc::new(Deque::new());
            lock(&pool().deques).push(Arc::clone(&d));
            d
        })
        .clone()
    })
}

impl Pool {
    /// Make sure at least `want` workers exist (they are never torn down).
    fn ensure_workers(&'static self, want: usize) {
        let mut spawned = lock(&self.spawned);
        while *spawned < want {
            *spawned += 1;
            let name = format!("pbw-rayon-worker-{spawned}");
            std::thread::Builder::new()
                .name(name)
                .spawn(worker_loop)
                .expect("failed to spawn pool worker");
        }
    }

    /// Announce newly-pushed work: bump the generation and wake one sleeper.
    fn wake_one(&self) {
        *lock(&self.wake_gen) += 1;
        self.wake_cv.notify_one();
    }

    /// Steal one span from any registered deque but `me` — front-most span,
    /// optionally restricted to `want`'s job. Scanning holds the registry
    /// lock; per-deque locks nest inside it (always in that order, so no
    /// cycle). Steals happen at chunk-floor granularity, so neither lock is
    /// hot.
    fn steal(&self, me: &Arc<Deque>, want: Option<&Arc<Job>>) -> Option<Span> {
        let deques = lock(&self.deques);
        for d in deques.iter() {
            if Arc::ptr_eq(d, me) {
                continue;
            }
            if let Some(span) = d.steal_front(want) {
                return Some(span);
            }
        }
        None
    }
}

/// Execute one span: keep offering the far half to idle workers while the
/// range stays splittable, and run the remainder in chunk-floor-sized pieces
/// so capacity freed mid-span is still recruited.
fn execute(p: &'static Pool, me: &Arc<Deque>, span: Span) {
    let Span {
        job,
        mut start,
        mut end,
    } = span;
    // SAFETY: see the module docs — this span's items are not yet counted
    // done, so the submitting caller (owner of the borrow) is still parked.
    let f = unsafe { &*job.func.0 };
    while start < end {
        while end - start >= 2 * job.min_chunk && p.idle.load(Ordering::Relaxed) > 0 {
            let mid = start + (end - start) / 2;
            me.push_back(Span {
                job: Arc::clone(&job),
                start: mid,
                end,
            });
            p.wake_one();
            end = mid;
        }
        let stop = end.min(start + job.min_chunk);
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| f(start, stop))) {
            lock(&job.panic).get_or_insert(payload);
        }
        job.complete(stop - start);
        start = stop;
    }
}

fn worker_loop() {
    let p = pool();
    let me = my_deque();
    loop {
        if let Some(span) = me.pop_back() {
            execute(p, &me, span);
            continue;
        }
        if let Some(span) = p.steal(&me, None) {
            execute(p, &me, span);
            continue;
        }
        // Go idle: record the wake generation, advertise idleness, re-check
        // for work that raced in, then sleep until the generation moves.
        // A push between the generation read and the wait cannot be lost —
        // it bumps the generation under the same mutex the wait watches.
        let gen = *lock(&p.wake_gen);
        p.idle.fetch_add(1, Ordering::SeqCst);
        if let Some(span) = p.steal(&me, None) {
            p.idle.fetch_sub(1, Ordering::SeqCst);
            execute(p, &me, span);
            continue;
        }
        let mut g = lock(&p.wake_gen);
        while *g == gen {
            g = p.wake_cv.wait(g).unwrap_or_else(PoisonError::into_inner);
        }
        drop(g);
        p.idle.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Run `f` over disjoint subranges covering `[0, n)` across the pool plus
/// the calling thread, returning when every index has been executed. Spans
/// handed to other threads never shrink below `min_chunk` items. Panics
/// inside `f` are re-thrown on the caller (first one wins). With an
/// effective width of 1, or `n <= min_chunk`, `f(0, n)` runs sequentially
/// on the caller.
pub fn run_range_tasks(n: usize, min_chunk: usize, f: &(dyn Fn(usize, usize) + Sync)) {
    if n == 0 {
        return;
    }
    let min_chunk = min_chunk.max(1);
    let threads = current_num_threads();
    if threads <= 1 || n <= min_chunk {
        f(0, n);
        return;
    }
    // SAFETY of the transmute: only erases the pointee's lifetime so it can
    // live in the non-generic `Job`; validity is argued in the module docs
    // (dereferences only happen while this frame is alive).
    let erased: *const (dyn Fn(usize, usize) + Sync + 'static) =
        unsafe { std::mem::transmute(f as *const (dyn Fn(usize, usize) + Sync)) };
    let job = Arc::new(Job {
        func: RangeFn(erased),
        n,
        min_chunk,
        done: AtomicUsize::new(0),
        panic: Mutex::new(None),
        finished: Mutex::new(false),
        cv: Condvar::new(),
    });
    let p = pool();
    p.ensure_workers((threads - 1).min(n.div_ceil(min_chunk)));
    let me = my_deque();
    // Execute the root span directly: splits (not an initial broadcast)
    // recruit workers, so a pool with no idle capacity costs nothing extra.
    execute(
        p,
        &me,
        Span {
            job: Arc::clone(&job),
            start: 0,
            end: n,
        },
    );
    // Help until done: drain our own deque (which can also hold spans of an
    // outer job when this is a nested submission — executing those is
    // harmless progress), then steal back our own job's spans. Sleeping is
    // safe only once both come up empty: nobody pushes to our deque but us.
    loop {
        if job.is_finished() {
            break;
        }
        if let Some(span) = me.pop_back() {
            execute(p, &me, span);
            continue;
        }
        if let Some(span) = p.steal(&me, Some(&job)) {
            execute(p, &me, span);
            continue;
        }
        job.wait_finished();
        break;
    }
    let payload = lock(&job.panic).take();
    if let Some(payload) = payload {
        resume_unwind(payload);
    }
}

/// Run `f(0) .. f(n-1)` across the pool plus the calling thread, returning
/// when all `n` tasks have finished — the index-at-a-time surface `join`
/// and the tests use, layered over [`run_range_tasks`] with a chunk floor
/// of one.
pub fn run_tasks(n: usize, f: &(dyn Fn(usize) + Sync)) {
    run_range_tasks(n, 1, &|start, end| {
        for i in start..end {
            f(i);
        }
    });
}

thread_local! {
    /// Per-thread width override installed by [`ThreadPool::install`];
    /// 0 means "no override".
    static OVERRIDE: Cell<usize> = const { Cell::new(0) };
}

fn default_threads() -> usize {
    for var in ["PBW_THREADS", "RAYON_NUM_THREADS"] {
        if let Ok(v) = std::env::var(var) {
            if let Ok(n) = v.trim().parse::<usize>() {
                if n >= 1 {
                    return n;
                }
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// The effective parallel width for the calling thread: a
/// [`ThreadPool::install`] override if one is active, otherwise the
/// process-wide default (`PBW_THREADS` / `RAYON_NUM_THREADS` /
/// `available_parallelism`, read once).
pub fn current_num_threads() -> usize {
    let o = OVERRIDE.with(Cell::get);
    if o > 0 {
        return o;
    }
    static DEFAULT: OnceLock<usize> = OnceLock::new();
    *DEFAULT.get_or_init(default_threads)
}

/// Builder mirroring `rayon::ThreadPoolBuilder` for the subset the
/// workspace uses: `num_threads` + `build`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

/// Building a pool cannot fail in this shim; the type exists so call sites
/// written against upstream (`.build().unwrap()`) compile unchanged.
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error (unreachable in the offline shim)")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

impl ThreadPoolBuilder {
    /// A builder with the default width (0 = resolve from the environment).
    pub fn new() -> Self {
        Self::default()
    }

    /// Request `n` threads; 0 keeps the environment-resolved default.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Build a pool handle.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            width: self.num_threads,
        })
    }
}

/// A width handle over the shared global pool.
///
/// Divergence from upstream, deliberately accepted: upstream pools own their
/// workers and `install` migrates the closure onto one of them; this shim
/// has a single global worker set and `install` only pins the parallel
/// *width* seen by parallel calls made from the closure (which runs on the
/// calling thread). Deterministic results do not depend on the difference.
#[derive(Debug)]
pub struct ThreadPool {
    width: usize,
}

impl ThreadPool {
    /// The width parallel calls under [`ThreadPool::install`] will see.
    pub fn current_num_threads(&self) -> usize {
        if self.width > 0 {
            self.width
        } else {
            current_num_threads()
        }
    }

    /// Run `op` with this pool's width installed for the calling thread
    /// (restored afterwards, panic-safe).
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R,
    {
        struct Restore(usize);
        impl Drop for Restore {
            fn drop(&mut self) {
                OVERRIDE.with(|c| c.set(self.0));
            }
        }
        let prev = OVERRIDE.with(|c| {
            let prev = c.get();
            c.set(self.width);
            prev
        });
        let _restore = Restore(prev);
        op()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    fn wide(n: usize) -> ThreadPool {
        ThreadPoolBuilder::new().num_threads(n).build().unwrap()
    }

    #[test]
    fn all_tasks_run_exactly_once() {
        for width in [1, 2, 8] {
            wide(width).install(|| {
                let hits: Vec<AtomicU64> = (0..100).map(|_| AtomicU64::new(0)).collect();
                run_tasks(100, &|i| {
                    hits[i].fetch_add(1, Ordering::SeqCst);
                });
                assert!(
                    hits.iter().all(|h| h.load(Ordering::SeqCst) == 1),
                    "width {width}"
                );
            });
        }
    }

    #[test]
    fn range_tasks_cover_range_disjointly_at_any_floor() {
        for width in [2, 8] {
            for min_chunk in [1usize, 3, 7, 100, 5000] {
                wide(width).install(|| {
                    let hits: Vec<AtomicU64> = (0..997).map(|_| AtomicU64::new(0)).collect();
                    run_range_tasks(997, min_chunk, &|start, end| {
                        assert!(start < end && end <= 997);
                        for h in &hits[start..end] {
                            h.fetch_add(1, Ordering::SeqCst);
                        }
                    });
                    assert!(
                        hits.iter().all(|h| h.load(Ordering::SeqCst) == 1),
                        "width {width} min_chunk {min_chunk}"
                    );
                });
            }
        }
    }

    #[test]
    fn task_panic_propagates_to_caller() {
        for width in [1, 4] {
            let err = std::panic::catch_unwind(|| {
                wide(width).install(|| {
                    run_tasks(16, &|i| {
                        if i == 7 {
                            panic!("boom-{i}");
                        }
                    });
                })
            })
            .unwrap_err();
            let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
            assert!(msg.contains("boom-7"), "width {width}: {msg}");
        }
    }

    #[test]
    fn nested_jobs_complete() {
        wide(4).install(|| {
            let total = AtomicU64::new(0);
            run_tasks(4, &|_| {
                run_tasks(4, &|j| {
                    total.fetch_add(j as u64 + 1, Ordering::SeqCst);
                });
            });
            assert_eq!(total.load(Ordering::SeqCst), 4 * (1 + 2 + 3 + 4));
        });
    }

    #[test]
    fn stealing_recruits_other_threads() {
        // Pieces that sleep give sleeping workers time to wake and steal,
        // so more than one thread must end up executing — even on one core
        // (the caller spends its piece blocked in `sleep`, yielding the
        // core). Warm the pool first so workers exist and are idle; retry a
        // few times to absorb scheduler noise.
        use std::collections::HashSet;
        use std::sync::Mutex as StdMutex;
        wide(4).install(|| {
            run_tasks(8, &|_| {
                std::thread::sleep(std::time::Duration::from_millis(1))
            });
            for attempt in 0..3 {
                let seen: StdMutex<HashSet<std::thread::ThreadId>> = StdMutex::new(HashSet::new());
                run_range_tasks(8, 1, &|_, _| {
                    seen.lock().unwrap().insert(std::thread::current().id());
                    std::thread::sleep(std::time::Duration::from_millis(2));
                });
                let n = seen.lock().unwrap().len();
                if n >= 2 {
                    return;
                }
                assert!(
                    attempt < 2,
                    "no steal observed in 3 attempts (got {n} thread)"
                );
            }
        });
    }

    #[test]
    fn install_overrides_and_restores() {
        let outside = current_num_threads();
        wide(7).install(|| assert_eq!(current_num_threads(), 7));
        assert_eq!(current_num_threads(), outside);
        // Panic inside install still restores the width.
        let _ = std::panic::catch_unwind(|| wide(5).install(|| panic!("x")));
        assert_eq!(current_num_threads(), outside);
    }

    #[test]
    fn width_zero_builder_keeps_default() {
        let pool = ThreadPoolBuilder::new().build().unwrap();
        assert_eq!(pool.current_num_threads(), current_num_threads());
    }
}
