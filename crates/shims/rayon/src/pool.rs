//! The thread pool behind the parallel iterators.
//!
//! One process-global pool of detached worker threads executes *jobs*: a job
//! is `n` independent tasks `f(0) .. f(n-1)` claimed dynamically off a shared
//! atomic counter (chunk-level work stealing — whichever thread is free takes
//! the next chunk). The submitting thread always participates, so a job
//! completes even when every worker is busy (this also makes nested parallel
//! calls deadlock-free: the inner caller runs its own tasks inline if no
//! worker is available).
//!
//! ## Sizing
//!
//! The default width is, in priority order: `PBW_THREADS`, then
//! `RAYON_NUM_THREADS`, then `std::thread::available_parallelism()`. A width
//! of 1 short-circuits every parallel entry point to plain sequential
//! execution on the caller. [`ThreadPool::install`] overrides the width for
//! the duration of a closure on the calling thread — this is what the
//! cross-thread-count conformance suite uses to compare `PBW_THREADS ∈
//! {1, 2, 8}` inside one process.
//!
//! ## Safety
//!
//! The one `unsafe` construction in this crate is the lifetime erasure in
//! [`run_tasks`]: the borrowed task closure is stored in the heap-allocated
//! job as a raw pointer so workers can reach it. Soundness argument: a worker
//! dereferences the pointer only after claiming an index `i < n`, and an
//! unexecuted claimed index keeps the job's completion count below `n`, which
//! keeps the submitting caller blocked inside `run_tasks` — so the borrow is
//! alive for every dereference. Workers that claim `i >= n` (late poppers of
//! an already-finished job) only touch the atomic counter of the
//! reference-counted job, never the closure.

use std::any::Any;
use std::cell::Cell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError};

/// Lock a pool mutex, recovering from poisoning: pool state is only counters
/// and queues of `Arc`s, all valid at every instruction boundary, and task
/// panics are already routed through the owning job's panic slot.
pub(crate) fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A lifetime-erased `&(dyn Fn(usize) + Sync)` (see the module docs for the
/// soundness argument).
struct TaskFn(*const (dyn Fn(usize) + Sync + 'static));

// SAFETY: the pointee is `Sync` (shared calls from any thread are fine) and
// `run_tasks` guarantees it outlives every dereference.
unsafe impl Send for TaskFn {}
unsafe impl Sync for TaskFn {}

/// One submitted job: `n` tasks claimed off `next`, completion tracked in
/// `done`, first panic captured for the caller to re-throw.
struct SharedJob {
    func: TaskFn,
    n: usize,
    next: AtomicUsize,
    done: AtomicUsize,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
    finished: Mutex<bool>,
    cv: Condvar,
}

/// Claim and run tasks until the claim counter is exhausted.
fn work_on(job: &SharedJob) {
    loop {
        let i = job.next.fetch_add(1, Ordering::Relaxed);
        if i >= job.n {
            return;
        }
        // SAFETY: `i < n` means this task has never run, so `done < n`, so
        // the caller that owns the closure is still parked in `run_tasks`.
        let f = unsafe { &*job.func.0 };
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| f(i))) {
            lock(&job.panic).get_or_insert(payload);
        }
        if job.done.fetch_add(1, Ordering::AcqRel) + 1 == job.n {
            *lock(&job.finished) = true;
            job.cv.notify_all();
        }
    }
}

/// The process-global worker pool. Workers are spawned lazily, detached, and
/// live for the rest of the process (they block on the queue when idle).
struct Pool {
    queue: Mutex<VecDeque<Arc<SharedJob>>>,
    queue_cv: Condvar,
    spawned: Mutex<usize>,
}

fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| Pool {
        queue: Mutex::new(VecDeque::new()),
        queue_cv: Condvar::new(),
        spawned: Mutex::new(0),
    })
}

fn worker_loop() {
    let p = pool();
    loop {
        let job = {
            let mut q = lock(&p.queue);
            loop {
                if let Some(job) = q.pop_front() {
                    break job;
                }
                q = p.queue_cv.wait(q).unwrap_or_else(PoisonError::into_inner);
            }
        };
        work_on(&job);
    }
}

impl Pool {
    /// Make sure at least `want` workers exist (they are never torn down).
    fn ensure_workers(&'static self, want: usize) {
        let mut spawned = lock(&self.spawned);
        while *spawned < want {
            *spawned += 1;
            let name = format!("pbw-rayon-worker-{spawned}");
            std::thread::Builder::new()
                .name(name)
                .spawn(worker_loop)
                .expect("failed to spawn pool worker");
        }
    }

    /// Enqueue `helpers` handles to `job` and wake that many workers.
    fn submit(&'static self, job: &Arc<SharedJob>, helpers: usize) {
        self.ensure_workers(helpers);
        let mut q = lock(&self.queue);
        for _ in 0..helpers {
            q.push_back(job.clone());
        }
        drop(q);
        self.queue_cv.notify_all();
    }
}

/// Run `f(0) .. f(n-1)` across the pool plus the calling thread, returning
/// when all `n` tasks have finished. Panics inside tasks are re-thrown on
/// the caller (first one wins). With an effective width of 1 the tasks run
/// sequentially in index order on the caller.
pub fn run_tasks(n: usize, f: &(dyn Fn(usize) + Sync)) {
    if n == 0 {
        return;
    }
    let threads = current_num_threads();
    if threads <= 1 || n == 1 {
        for i in 0..n {
            f(i);
        }
        return;
    }
    // SAFETY of the transmute: only erases the pointee's lifetime so it can
    // live in the non-generic `SharedJob`; validity is argued in the module
    // docs (dereferences only happen while this frame is alive).
    let erased: *const (dyn Fn(usize) + Sync + 'static) =
        unsafe { std::mem::transmute(f as *const (dyn Fn(usize) + Sync)) };
    let job = Arc::new(SharedJob {
        func: TaskFn(erased),
        n,
        next: AtomicUsize::new(0),
        done: AtomicUsize::new(0),
        panic: Mutex::new(None),
        finished: Mutex::new(false),
        cv: Condvar::new(),
    });
    let helpers = (threads - 1).min(n - 1);
    pool().submit(&job, helpers);
    work_on(&job);
    let mut fin = lock(&job.finished);
    while !*fin {
        fin = job.cv.wait(fin).unwrap_or_else(PoisonError::into_inner);
    }
    drop(fin);
    let payload = lock(&job.panic).take();
    if let Some(payload) = payload {
        resume_unwind(payload);
    }
}

thread_local! {
    /// Per-thread width override installed by [`ThreadPool::install`];
    /// 0 means "no override".
    static OVERRIDE: Cell<usize> = const { Cell::new(0) };
}

fn default_threads() -> usize {
    for var in ["PBW_THREADS", "RAYON_NUM_THREADS"] {
        if let Ok(v) = std::env::var(var) {
            if let Ok(n) = v.trim().parse::<usize>() {
                if n >= 1 {
                    return n;
                }
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// The effective parallel width for the calling thread: a
/// [`ThreadPool::install`] override if one is active, otherwise the
/// process-wide default (`PBW_THREADS` / `RAYON_NUM_THREADS` /
/// `available_parallelism`, read once).
pub fn current_num_threads() -> usize {
    let o = OVERRIDE.with(Cell::get);
    if o > 0 {
        return o;
    }
    static DEFAULT: OnceLock<usize> = OnceLock::new();
    *DEFAULT.get_or_init(default_threads)
}

/// Builder mirroring `rayon::ThreadPoolBuilder` for the subset the
/// workspace uses: `num_threads` + `build`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

/// Building a pool cannot fail in this shim; the type exists so call sites
/// written against upstream (`.build().unwrap()`) compile unchanged.
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error (unreachable in the offline shim)")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

impl ThreadPoolBuilder {
    /// A builder with the default width (0 = resolve from the environment).
    pub fn new() -> Self {
        Self::default()
    }

    /// Request `n` threads; 0 keeps the environment-resolved default.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Build a pool handle.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            width: self.num_threads,
        })
    }
}

/// A width handle over the shared global pool.
///
/// Divergence from upstream, deliberately accepted: upstream pools own their
/// workers and `install` migrates the closure onto one of them; this shim
/// has a single global worker set and `install` only pins the parallel
/// *width* seen by parallel calls made from the closure (which runs on the
/// calling thread). Deterministic results do not depend on the difference.
#[derive(Debug)]
pub struct ThreadPool {
    width: usize,
}

impl ThreadPool {
    /// The width parallel calls under [`ThreadPool::install`] will see.
    pub fn current_num_threads(&self) -> usize {
        if self.width > 0 {
            self.width
        } else {
            current_num_threads()
        }
    }

    /// Run `op` with this pool's width installed for the calling thread
    /// (restored afterwards, panic-safe).
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R,
    {
        struct Restore(usize);
        impl Drop for Restore {
            fn drop(&mut self) {
                OVERRIDE.with(|c| c.set(self.0));
            }
        }
        let prev = OVERRIDE.with(|c| {
            let prev = c.get();
            c.set(self.width);
            prev
        });
        let _restore = Restore(prev);
        op()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    fn wide(n: usize) -> ThreadPool {
        ThreadPoolBuilder::new().num_threads(n).build().unwrap()
    }

    #[test]
    fn all_tasks_run_exactly_once() {
        for width in [1, 2, 8] {
            wide(width).install(|| {
                let hits: Vec<AtomicU64> = (0..100).map(|_| AtomicU64::new(0)).collect();
                run_tasks(100, &|i| {
                    hits[i].fetch_add(1, Ordering::SeqCst);
                });
                assert!(
                    hits.iter().all(|h| h.load(Ordering::SeqCst) == 1),
                    "width {width}"
                );
            });
        }
    }

    #[test]
    fn task_panic_propagates_to_caller() {
        for width in [1, 4] {
            let err = std::panic::catch_unwind(|| {
                wide(width).install(|| {
                    run_tasks(16, &|i| {
                        if i == 7 {
                            panic!("boom-{i}");
                        }
                    });
                })
            })
            .unwrap_err();
            let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
            assert!(msg.contains("boom-7"), "width {width}: {msg}");
        }
    }

    #[test]
    fn nested_jobs_complete() {
        wide(4).install(|| {
            let total = AtomicU64::new(0);
            run_tasks(4, &|_| {
                run_tasks(4, &|j| {
                    total.fetch_add(j as u64 + 1, Ordering::SeqCst);
                });
            });
            assert_eq!(total.load(Ordering::SeqCst), 4 * (1 + 2 + 3 + 4));
        });
    }

    #[test]
    fn install_overrides_and_restores() {
        let outside = current_num_threads();
        wide(7).install(|| assert_eq!(current_num_threads(), 7));
        assert_eq!(current_num_threads(), outside);
        // Panic inside install still restores the width.
        let _ = std::panic::catch_unwind(|| wide(5).install(|| panic!("x")));
        assert_eq!(current_num_threads(), outside);
    }

    #[test]
    fn width_zero_builder_keeps_default() {
        let pool = ThreadPoolBuilder::new().build().unwrap();
        assert_eq!(pool.current_num_threads(), current_num_threads());
    }
}
