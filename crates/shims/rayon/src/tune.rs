//! Chunk-size autotuning: how much work one parallel chunk should carry.
//!
//! The scheduler in [`crate::pool`] distributes work at *chunk* granularity;
//! everything here exists to pick chunk sizes so that a chunk's useful work
//! dwarfs the cost of handing it to another thread. Three pieces:
//!
//! * **The chunk floor** — a per-process target for the minimum wall-clock
//!   work one chunk should carry, calibrated once by timing the pool's own
//!   dispatch round trip ([`chunk_floor_ns`]) and clamped to the 50–100µs
//!   band where parallel handoff overhead (a condvar wake, a steal, the
//!   completion accounting) amortizes to a few percent. The derivation from
//!   probe samples is the pure function [`floor_from_probe`], so calibration
//!   is deterministic given a fixed probe input.
//! * **Per-call-site cost estimates** — a registry of exponentially-weighted
//!   per-item cost averages, keyed by the monomorphized closure type of the
//!   call site ([`site_for`]). Every executed chunk feeds its measured
//!   ns/item back, so estimates track the workload across a run.
//! * **The sizing rule** — [`min_chunk_items`] converts (estimate, floor)
//!   into a minimum chunk length. When the estimate says the *entire* job is
//!   worth less than one floor, the caller runs it sequentially instead
//!   (the "sequential cutoff"): this is what keeps an 8-wide pool on a
//!   1-core container within noise of width 1 — small jobs never touch the
//!   scheduler at all.
//!
//! None of this affects results, only chunk *boundaries*: every consumer of
//! the pool merges per-chunk outputs in index order and the one chunked fold
//! in the workspace merges integer histograms (exact under any regrouping),
//! so timing-dependent chunk sizes cannot leak into observable values. The
//! cross-thread-count conformance suite pins that byte-for-byte.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::pool::lock;

/// Lower clamp for the calibrated chunk floor (ns): below ~50µs of work per
/// chunk, handoff overhead stops being negligible.
pub const FLOOR_MIN_NS: u64 = 50_000;
/// Upper clamp for the calibrated chunk floor (ns): past ~100µs, bigger
/// chunks only cost load-balancing slack without buying overhead back.
pub const FLOOR_MAX_NS: u64 = 100_000;
/// A chunk should out-weigh one measured dispatch round trip by this factor.
const FLOOR_OVERHEAD_FACTOR: u64 = 16;
/// How many dispatch round trips the startup probe times.
const PROBE_ROUNDS: usize = 8;
/// EWMA weight given to each new per-chunk cost sample.
const EWMA_ALPHA: f64 = 0.25;

/// Derive the chunk floor from dispatch-overhead probe samples.
///
/// Pure and total: the *minimum* sample (the least-disturbed round trip)
/// times [`FLOOR_OVERHEAD_FACTOR`], clamped to the
/// [`FLOOR_MIN_NS`]..=[`FLOOR_MAX_NS`] band. An empty probe yields the
/// conservative upper clamp.
pub fn floor_from_probe(samples_ns: &[u64]) -> u64 {
    match samples_ns.iter().copied().min() {
        Some(best) => best
            .max(1)
            .saturating_mul(FLOOR_OVERHEAD_FACTOR)
            .clamp(FLOOR_MIN_NS, FLOOR_MAX_NS),
        None => FLOOR_MAX_NS,
    }
}

/// The process-wide calibrated chunk floor, probed on first use.
///
/// The probe times [`PROBE_ROUNDS`] round trips of the smallest real
/// dispatch the pool performs — a two-span job at width 2, exercising the
/// deque push, the worker wake, the steal, and the completion notification —
/// and feeds the samples to [`floor_from_probe`]. Called lazily from the
/// chunking layer, so width-1 processes never pay for (or spawn workers
/// during) calibration.
pub fn chunk_floor_ns() -> u64 {
    static FLOOR: OnceLock<u64> = OnceLock::new();
    *FLOOR.get_or_init(|| {
        let mut samples = [0u64; PROBE_ROUNDS];
        let pool = crate::ThreadPoolBuilder::new()
            .num_threads(2)
            .build()
            .expect("shim pool build is infallible");
        pool.install(|| {
            for s in &mut samples {
                let t0 = Instant::now();
                crate::pool::run_range_tasks(2, 1, &|lo, hi| {
                    std::hint::black_box(hi - lo);
                });
                *s = elapsed_ns(t0);
            }
        });
        floor_from_probe(&samples)
    })
}

/// Minimum chunk length for a job of `n` items under the calibrated
/// `floor_ns`, given the call site's estimated per-item cost.
///
/// * With an estimate: `floor / estimate` items, clamped to `1..=n` — a
///   result of `n` means the whole job is worth at most one floor, and the
///   caller should take the sequential cutoff.
/// * Without one (first visit to a call site): fall back to even chunking at
///   `threads * 4` pieces, the pre-tuning policy, so a cold site still
///   parallelizes while its first measurements seed the estimator.
pub fn min_chunk_items(
    est_ns_per_item: Option<f64>,
    floor_ns: u64,
    n: usize,
    threads: usize,
) -> usize {
    debug_assert!(n > 0);
    match est_ns_per_item {
        Some(est) => {
            let items = (floor_ns as f64 / est.max(f64::MIN_POSITIVE)).ceil();
            if items >= n as f64 {
                n
            } else {
                (items as usize).max(1)
            }
        }
        None => n.div_ceil(threads.max(1) * 4).max(1),
    }
}

/// `0` encodes "no pin"; any other value is a fixed minimum chunk length.
static PINNED_MIN_CHUNK: AtomicUsize = AtomicUsize::new(0);

/// Test-support pin: force every call site to a fixed minimum chunk length,
/// bypassing floor calibration and the per-site estimators entirely.
///
/// Autotuned chunk sizing is timing-fed, so the *number* of chunks a
/// dispatch builds — and with it the dispatch's constant heap-allocation
/// count — can legitimately differ between two otherwise identical jobs
/// (e.g. the sequential cutoff engaging at one message volume but not
/// another). Allocation-accounting tests pin chunking so dispatch counts
/// are a pure function of job length. `None` (or `Some(0)`) restores
/// autotuning. Results are unaffected either way — only chunk boundaries
/// move.
pub fn pin_min_chunk(items: Option<usize>) {
    PINNED_MIN_CHUNK.store(items.unwrap_or(0), Ordering::Relaxed);
}

/// The active test-support pin, if any. Consulted by the chunking layer
/// before any calibration or estimator lookup.
pub fn pinned_min_chunk() -> Option<usize> {
    match PINNED_MIN_CHUNK.load(Ordering::Relaxed) {
        0 => None,
        n => Some(n),
    }
}

/// Exponentially-weighted per-item cost estimate for one parallel call site.
///
/// Lock-free and racy by design: concurrent chunk completions may overwrite
/// each other's EWMA update, which only perturbs a heuristic — chunk
/// boundaries — never results.
pub struct SiteEstimator {
    /// `f64::to_bits` of the EWMA ns/item; `0` means no sample yet.
    ewma_bits: AtomicU64,
}

impl SiteEstimator {
    /// A fresh estimator with no samples.
    pub const fn new() -> Self {
        SiteEstimator {
            ewma_bits: AtomicU64::new(0),
        }
    }

    /// Current estimate in ns/item, if any chunk has been measured.
    pub fn estimate_ns_per_item(&self) -> Option<f64> {
        match self.ewma_bits.load(Ordering::Relaxed) {
            0 => None,
            bits => Some(f64::from_bits(bits)),
        }
    }

    /// Feed one measured chunk (`items` elements in `elapsed_ns`).
    pub fn record(&self, items: usize, elapsed_ns: u64) {
        if items == 0 {
            return;
        }
        // Clamp away a zero sample: 0 encodes "no estimate".
        let sample = (elapsed_ns as f64 / items as f64).max(0.01);
        let next = match self.estimate_ns_per_item() {
            None => sample,
            Some(prev) => prev + EWMA_ALPHA * (sample - prev),
        };
        self.ewma_bits.store(next.to_bits(), Ordering::Relaxed);
    }
}

impl Default for SiteEstimator {
    fn default() -> Self {
        Self::new()
    }
}

/// The estimator for the call site monomorphized as `F` (keyed by
/// `std::any::type_name`). Closure names carry the enclosing item path but
/// not a per-closure index, so sibling closures defined in one function can
/// share an estimator — acceptable for a heuristic that only moves chunk
/// boundaries.
pub fn site_for<F: ?Sized>() -> &'static SiteEstimator {
    static REGISTRY: OnceLock<Mutex<HashMap<&'static str, &'static SiteEstimator>>> =
        OnceLock::new();
    let registry = REGISTRY.get_or_init(|| Mutex::new(HashMap::new()));
    let key = std::any::type_name::<F>();
    let mut map = lock(registry);
    map.entry(key)
        .or_insert_with(|| Box::leak(Box::new(SiteEstimator::new())))
}

/// Nanoseconds since `t0`, saturated into a `u64`.
pub(crate) fn elapsed_ns(t0: Instant) -> u64 {
    u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn floor_from_probe_is_deterministic_and_clamped() {
        // Fixed probe input -> fixed floor, twice over.
        let samples = [9_000u64, 3_000, 12_000, 5_000];
        assert_eq!(floor_from_probe(&samples), floor_from_probe(&samples));
        // min = 3_000, x16 = 48_000 -> clamped up to the band's low edge.
        assert_eq!(floor_from_probe(&samples), FLOOR_MIN_NS);
        // A slow probe clamps to the band's high edge.
        assert_eq!(floor_from_probe(&[40_000]), FLOOR_MAX_NS);
        // An in-band probe is taken as-is.
        assert_eq!(floor_from_probe(&[4_000]), 64_000);
        // Degenerate inputs stay in-band.
        assert_eq!(floor_from_probe(&[]), FLOOR_MAX_NS);
        assert_eq!(floor_from_probe(&[0]), FLOOR_MIN_NS);
        assert_eq!(floor_from_probe(&[u64::MAX]), FLOOR_MAX_NS);
    }

    #[test]
    fn min_chunk_respects_floor_and_bounds() {
        // 100ns/item under a 50µs floor -> 500-item chunks.
        assert_eq!(min_chunk_items(Some(100.0), 50_000, 10_000, 8), 500);
        // Whole job under one floor -> n (sequential cutoff signal).
        assert_eq!(min_chunk_items(Some(100.0), 50_000, 300, 8), 300);
        // Heavy items -> chunk of one.
        assert_eq!(min_chunk_items(Some(2e6), 50_000, 64, 8), 1);
        // No estimate -> pre-tuning even chunking.
        assert_eq!(min_chunk_items(None, 50_000, 1_000, 8), 32);
        assert_eq!(min_chunk_items(None, 50_000, 5, 8), 1);
    }

    #[test]
    fn estimator_seeds_then_smooths() {
        let s = SiteEstimator::new();
        assert_eq!(s.estimate_ns_per_item(), None);
        s.record(100, 10_000); // 100 ns/item
        assert_eq!(s.estimate_ns_per_item(), Some(100.0));
        s.record(100, 30_000); // sample 300, EWMA -> 150
        let est = s.estimate_ns_per_item().unwrap();
        assert!((est - 150.0).abs() < 1e-9, "est={est}");
        // Zero-item chunks are ignored.
        s.record(0, 1_000_000);
        assert_eq!(s.estimate_ns_per_item(), Some(est));
    }

    #[test]
    fn site_registry_is_stable_per_type() {
        // Same type -> same estimator, every time.
        let a1 = site_for::<fn()>() as *const _;
        let a2 = site_for::<fn()>() as *const _;
        assert_eq!(a1, a2);
        // Distinctly-named types get distinct estimators.
        let b = site_for::<fn(usize)>() as *const _;
        assert_ne!(a1, b);
    }

    #[test]
    fn chunk_pin_roundtrips_and_zero_means_off() {
        // Concurrent tests only ever see chunk boundaries move, never
        // results, so briefly flipping the global pin here is safe.
        assert_eq!(pinned_min_chunk(), None);
        pin_min_chunk(Some(8));
        assert_eq!(pinned_min_chunk(), Some(8));
        pin_min_chunk(Some(0));
        assert_eq!(pinned_min_chunk(), None);
        pin_min_chunk(Some(3));
        pin_min_chunk(None);
        assert_eq!(pinned_min_chunk(), None);
    }

    #[test]
    fn calibrated_floor_is_in_band_and_cached() {
        let f1 = chunk_floor_ns();
        let f2 = chunk_floor_ns();
        assert_eq!(f1, f2);
        assert!((FLOOR_MIN_NS..=FLOOR_MAX_NS).contains(&f1), "floor={f1}");
    }
}
