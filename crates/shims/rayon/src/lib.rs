//! Offline stand-in for `rayon`.
//!
//! The build environment has no registry access, so the real rayon cannot be
//! fetched. This shim maps the `par_iter` entry points the workspace uses
//! onto **sequential** `std` iterators: every adaptor the call sites chain
//! afterwards (`zip`, `enumerate`, `map`, `collect`, including
//! `collect::<Result<_, _>>()`) is the plain `Iterator` machinery.
//!
//! Sequential execution changes wall-clock behaviour, not results: the
//! engines in `pbw-sim`/`pbw-pram` were already written to be deterministic
//! regardless of rayon's scheduling (per-processor RNG streams, sequential
//! accounting passes), so swapping the executor is observationally identical
//! — and the superstep semantics of the simulated machines never depended on
//! host parallelism.

/// Parallel-iterator entry points, sequentially implemented.
pub mod prelude {
    /// `.par_iter()` / `.par_iter_mut()` on slices and `Vec`s.
    pub trait ParallelSliceExt<T> {
        /// Sequential stand-in for `rayon`'s borrowing parallel iterator.
        fn par_iter(&self) -> std::slice::Iter<'_, T>;
        /// Sequential stand-in for the mutably borrowing parallel iterator.
        fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T>;
    }

    impl<T> ParallelSliceExt<T> for [T] {
        fn par_iter(&self) -> std::slice::Iter<'_, T> {
            self.iter()
        }
        fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T> {
            self.iter_mut()
        }
    }

    impl<T> ParallelSliceExt<T> for Vec<T> {
        fn par_iter(&self) -> std::slice::Iter<'_, T> {
            self.as_slice().iter()
        }
        fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T> {
            self.as_mut_slice().iter_mut()
        }
    }

    /// `.into_par_iter()` on anything iterable (ranges, `Vec`s).
    pub trait IntoParallelIterator: IntoIterator + Sized {
        /// Sequential stand-in for the consuming parallel iterator.
        fn into_par_iter(self) -> Self::IntoIter {
            self.into_iter()
        }
    }

    impl<I: IntoIterator> IntoParallelIterator for I {}
}

/// Sequential stand-in for `rayon::join`: runs both closures in order.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_chains_like_rayon_call_sites() {
        let xs = vec![1u64, 2, 3];
        let mut ys = vec![10u64, 20, 30];
        let out: Vec<u64> = ys
            .par_iter_mut()
            .zip(xs.par_iter())
            .enumerate()
            .map(|(i, (y, x))| {
                *y += x;
                *y + i as u64
            })
            .collect();
        assert_eq!(out, vec![11, 23, 35]);
        assert_eq!(ys, vec![11, 22, 33]);
    }

    #[test]
    fn fallible_collect_works() {
        let xs = vec![1i32, 2, 3];
        let ok: Result<Vec<i32>, ()> = xs.par_iter().map(|&x| Ok(x * 2)).collect();
        assert_eq!(ok.unwrap(), vec![2, 4, 6]);
        let err: Result<Vec<i32>, i32> =
            xs.par_iter().map(|&x| if x == 2 { Err(x) } else { Ok(x) }).collect();
        assert_eq!(err.unwrap_err(), 2);
    }

    #[test]
    fn range_into_par_iter() {
        let v: Vec<usize> = (0..5).into_par_iter().map(|i| i * i).collect();
        assert_eq!(v, vec![0, 1, 4, 9, 16]);
    }

    #[test]
    fn join_runs_both() {
        let (a, b) = super::join(|| 1 + 1, || "x");
        assert_eq!((a, b), (2, "x"));
    }
}
