//! Offline stand-in for `rayon` — with a real thread pool.
//!
//! The build environment has no registry access, so upstream rayon cannot be
//! fetched. Unlike the earlier sequential stand-in, this shim actually runs
//! parallel chains on a pool of `std::thread` workers ([`mod@pool`]): work is
//! split into contiguous index chunks sized by a calibrated autotuner
//! ([`mod@tune`]), distributed by work-stealing over per-thread deques
//! (owner LIFO, thieves FIFO, splitting while idle workers exist), and chunk
//! results are merged back **in index order** ([`mod@iter`]).
//!
//! Contract kept from upstream: `par_iter` / `par_iter_mut` /
//! `into_par_iter` with `map` / `zip` / `enumerate` / `collect`
//! (including `collect::<Result<_, _>>()`), `join`, `current_num_threads`,
//! `ThreadPoolBuilder` → [`ThreadPool::install`], and the work-stealing
//! deque scheduler with split-until-floor chunking. Results are
//! element-for-element identical to sequential execution at every thread
//! count — the deterministic ordered merge is the load-bearing guarantee
//! the workspace's cross-thread-count conformance suite checks.
//!
//! Contract NOT kept: scoped pools that own their workers (here `install`
//! only pins the parallel *width* for the calling thread; workers come from
//! one global pool), and parallel `sum`/`reduce` (deliberately omitted —
//! floating-point tree reductions would re-associate with the chunk count
//! and break cross-thread-count bit-equality; collect in order, reduce
//! sequentially).
//!
//! Sizing: `PBW_THREADS` overrides `RAYON_NUM_THREADS` overrides
//! `std::thread::available_parallelism()`; a width of 1 short-circuits to
//! sequential execution on the caller.

pub mod iter;
pub mod pool;
pub mod tune;

pub use pool::{current_num_threads, ThreadPool, ThreadPoolBuilder};

use std::sync::Mutex;

/// Everything a `use rayon::prelude::*;` site expects.
pub mod prelude {
    pub use crate::iter::{
        FromParallelIterator, IndexedParallelIterator, IntoParallelIterator, ParallelSliceExt,
    };
}

/// Run `a` and `b` potentially in parallel, returning both results. The
/// caller always executes at least one closure itself, so `join` never
/// deadlocks under nesting; panics propagate to the caller.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let funcs = (Mutex::new(Some(a)), Mutex::new(Some(b)));
    let out = (Mutex::new(None), Mutex::new(None));
    pool::run_tasks(2, &|i| {
        if i == 0 {
            let f = pool::lock(&funcs.0).take().expect("join task 0 ran twice");
            *pool::lock(&out.0) = Some(f());
        } else {
            let f = pool::lock(&funcs.1).take().expect("join task 1 ran twice");
            *pool::lock(&out.1) = Some(f());
        }
    });
    let ra = out.0.into_inner().unwrap_or_else(|e| e.into_inner());
    let rb = out.1.into_inner().unwrap_or_else(|e| e.into_inner());
    (
        ra.expect("join task 0 did not finish"),
        rb.expect("join task 1 did not finish"),
    )
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_chains_like_rayon_call_sites() {
        let xs = vec![1u64, 2, 3];
        let mut ys = vec![10u64, 20, 30];
        let out: Vec<u64> = ys
            .par_iter_mut()
            .zip(xs.par_iter())
            .enumerate()
            .map(|(i, (y, x))| {
                *y += x;
                *y + i as u64
            })
            .collect();
        assert_eq!(out, vec![11, 23, 35]);
        assert_eq!(ys, vec![11, 22, 33]);
    }

    #[test]
    fn fallible_collect_works() {
        let xs = vec![1i32, 2, 3];
        let ok: Result<Vec<i32>, ()> = xs.par_iter().map(|&x| Ok(x * 2)).collect();
        assert_eq!(ok.unwrap(), vec![2, 4, 6]);
        let err: Result<Vec<i32>, i32> = xs
            .par_iter()
            .map(|&x| if x == 2 { Err(x) } else { Ok(x) })
            .collect();
        assert_eq!(err.unwrap_err(), 2);
    }

    #[test]
    fn range_into_par_iter() {
        let v: Vec<usize> = (0..5usize).into_par_iter().map(|i| i * i).collect();
        assert_eq!(v, vec![0, 1, 4, 9, 16]);
    }

    #[test]
    fn join_runs_both() {
        let (a, b) = super::join(|| 1 + 1, || "x");
        assert_eq!((a, b), (2, "x"));
    }

    #[test]
    fn join_runs_both_at_width_8() {
        super::ThreadPoolBuilder::new()
            .num_threads(8)
            .build()
            .unwrap()
            .install(|| {
                let (a, b) =
                    super::join(|| (0..100u64).sum::<u64>(), || (0..10u64).product::<u64>());
                assert_eq!((a, b), (4950, 0));
            });
    }
}
