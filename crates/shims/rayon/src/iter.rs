//! Index-chunked parallel iterators with a deterministic ordered merge.
//!
//! Everything here is driven by one invariant: **the output of a parallel
//! iterator chain is a pure function of the input order, never of thread
//! scheduling**. A chain is split into contiguous index chunks
//! ([`IndexedParallelIterator::split_at`]), chunks are executed by whichever
//! pool thread steals them first, each chunk's results land in its own
//! pre-allocated slot, and the slots are concatenated in chunk order. The
//! chunk *boundaries* are picked by the autotuner in [`crate::tune`] (and so
//! vary with measured per-item cost), but every per-element computation sees
//! exactly the indices and values it would see sequentially, and the merge
//! is always in index order — so `PBW_THREADS=1` and `PBW_THREADS=64`
//! produce identical values. The only construct whose result could observe
//! chunk boundaries is [`IndexedParallelIterator::fold_chunks`], which is
//! restricted to merges that are exact under regrouping (see its docs).
//!
//! Deliberately absent: parallel `sum`/`reduce`. A tree reduction over
//! floats re-associates with the chunk count, which would make results
//! depend on the thread configuration — exactly what the workspace's
//! cross-thread-count conformance suite forbids. Collect with an ordered
//! merge, then reduce sequentially.

use std::ops::Range;
use std::sync::Mutex;
use std::time::Instant;

use crate::pool::{current_num_threads, lock, run_range_tasks};
use crate::tune;

/// A splittable, exactly-sized source of parallel work.
///
/// Unlike upstream rayon's producer/consumer plumbing, this shim keeps one
/// object-level trait: a chain knows its length, can split itself at an
/// index, and can lower itself to a sequential iterator for one chunk.
pub trait IndexedParallelIterator: Sized + Send {
    /// Element type flowing through the chain.
    type Item: Send;
    /// The sequential iterator a chunk lowers to.
    type SeqIter: Iterator<Item = Self::Item>;

    /// Exact number of elements.
    fn len(&self) -> usize;

    /// Whether the chain is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Split into `[0, mid)` and `[mid, len)`. Callers guarantee
    /// `mid <= len()`.
    fn split_at(self, mid: usize) -> (Self, Self);

    /// Lower to a sequential iterator over this (chunk of the) chain.
    fn seq_iter(self) -> Self::SeqIter;

    /// Transform every element with `f`.
    ///
    /// `F: Clone` because each chunk carries its own copy across the split;
    /// closures capturing only shared references are `Copy`, so engine call
    /// sites satisfy this for free.
    fn map<F, R>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Item) -> R + Clone + Send,
        R: Send,
    {
        Map { base: self, f }
    }

    /// Pair elements with `other`, truncating to the shorter side.
    fn zip<B>(self, other: B) -> Zip<Self, B>
    where
        B: IndexedParallelIterator,
    {
        Zip { a: self, b: other }
    }

    /// Attach the global element index (stable across splits).
    fn enumerate(self) -> Enumerate<Self> {
        Enumerate {
            base: self,
            offset: 0,
        }
    }

    /// Execute the chain in parallel and collect into `C` with the
    /// deterministic ordered merge.
    fn collect<C>(self) -> C
    where
        C: FromParallelIterator<Self::Item>,
    {
        C::from_par_iter(self)
    }

    /// Fold each index chunk sequentially with `fold` (starting from
    /// `identity()`), then combine the per-chunk accumulators **in chunk
    /// order** with `merge`.
    ///
    /// Chunk *boundaries* vary with the configured thread count, so the
    /// result is thread-count independent only when `merge` is associative
    /// over chunk regrouping — exact for integer sums, maxima, and
    /// histogram addition; **not** for floating-point reductions, which is
    /// why this shim offers no parallel `sum`.
    fn fold_chunks<A, ID, F, M>(self, identity: ID, fold: F, merge: M) -> A
    where
        A: Send,
        ID: Fn() -> A + Sync,
        F: Fn(A, Self::Item) -> A + Sync,
        M: Fn(A, A) -> A,
    {
        let parts = run_chunks(self, |iter| iter.fold(identity(), &fold));
        parts.into_iter().fold(identity(), merge)
    }
}

/// Split `p` into at most `k` contiguous chunks of near-equal length, in
/// index order.
fn balanced_chunks<P: IndexedParallelIterator>(mut p: P, k: usize) -> Vec<P> {
    let mut remaining = p.len();
    let k = k.clamp(1, remaining.max(1));
    let mut chunks = Vec::with_capacity(k);
    for left in (2..=k).rev() {
        let take = remaining.div_ceil(left);
        let (head, tail) = p.split_at(take);
        chunks.push(head);
        p = tail;
        remaining -= take;
    }
    chunks.push(p);
    chunks
}

/// Run `per_chunk` over index chunks of `p` on the pool and return the
/// per-chunk results **in chunk order** — the ordered-merge primitive
/// behind every collect.
fn run_chunks<P, R, F>(p: P, per_chunk: F) -> Vec<R>
where
    P: IndexedParallelIterator,
    R: Send,
    F: Fn(P::SeqIter) -> R + Sync,
{
    let n = p.len();
    let threads = current_num_threads();
    if threads <= 1 || n <= 1 {
        return vec![per_chunk(p.seq_iter())];
    }
    // Chunk sizing is autotuned: the per-site cost estimator and the
    // calibrated chunk floor decide the minimum items one chunk should
    // carry. `min_items >= n` is the sequential cutoff — the whole job is
    // worth at most ~one floor of work, so handing it to the scheduler
    // would cost more than it buys. The cutoff still feeds the estimator,
    // so a site whose jobs grow later re-enters the parallel path.
    let site = tune::site_for::<F>();
    // A test-support pin bypasses calibration and the estimator so chunk
    // counts (and thus dispatch allocation counts) are a pure function of n.
    let min_items = match tune::pinned_min_chunk() {
        Some(pin) => pin.min(n),
        None => tune::min_chunk_items(
            site.estimate_ns_per_item(),
            tune::chunk_floor_ns(),
            n,
            threads,
        ),
    };
    if min_items >= n {
        let t0 = Instant::now();
        let out = per_chunk(p.seq_iter());
        site.record(n, tune::elapsed_ns(t0));
        return vec![out];
    }
    let chunks = balanced_chunks(p, n.div_ceil(min_items));
    let k = chunks.len();
    let inputs: Vec<Mutex<Option<P>>> = chunks.into_iter().map(|c| Mutex::new(Some(c))).collect();
    let outputs: Vec<Mutex<Option<R>>> = (0..k).map(|_| Mutex::new(None)).collect();
    run_range_tasks(k, 1, &|lo, hi| {
        for i in lo..hi {
            let chunk = lock(&inputs[i]).take().expect("chunk claimed twice");
            let items = chunk.len();
            let t0 = Instant::now();
            let result = per_chunk(chunk.seq_iter());
            site.record(items, tune::elapsed_ns(t0));
            *lock(&outputs[i]) = Some(result);
        }
    });
    outputs
        .into_iter()
        .map(|slot| slot.into_inner().unwrap_or_else(|e| e.into_inner()))
        .map(|r| r.expect("task completed without storing its result"))
        .collect()
}

/// Collect the elements of a parallel chain, order-preserving.
pub trait FromParallelIterator<T: Send>: Sized {
    /// Build `Self` from the chain's elements in index order.
    fn from_par_iter<P>(p: P) -> Self
    where
        P: IndexedParallelIterator<Item = T>;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter<P>(p: P) -> Self
    where
        P: IndexedParallelIterator<Item = T>,
    {
        let n = p.len();
        let parts = run_chunks(p, |iter| iter.collect::<Vec<T>>());
        let mut out = Vec::with_capacity(n);
        for part in parts {
            out.extend(part);
        }
        out
    }
}

/// Fallible collect. Each chunk short-circuits at its first error; the
/// chunk-ordered merge then surfaces the error with the **lowest global
/// index**, which is exactly what a sequential `collect::<Result<..>>()`
/// returns — so success/failure and the chosen error are thread-count
/// independent. (Unlike the sequential form, elements *after* a failing
/// index in other chunks may still have been computed; chains used with
/// fallible collect must be side-effect free, which engine validation
/// passes are.)
impl<T: Send, E: Send> FromParallelIterator<Result<T, E>> for Result<Vec<T>, E> {
    fn from_par_iter<P>(p: P) -> Self
    where
        P: IndexedParallelIterator<Item = Result<T, E>>,
    {
        let n = p.len();
        let parts = run_chunks(p, |iter| iter.collect::<Result<Vec<T>, E>>());
        let mut out = Vec::with_capacity(n);
        for part in parts {
            out.extend(part?);
        }
        Ok(out)
    }
}

// ---------------------------------------------------------------------------
// Producers
// ---------------------------------------------------------------------------

/// Borrowing producer over a slice (`par_iter`).
pub struct ParIter<'a, T>(&'a [T]);

impl<'a, T: Sync> IndexedParallelIterator for ParIter<'a, T> {
    type Item = &'a T;
    type SeqIter = std::slice::Iter<'a, T>;

    fn len(&self) -> usize {
        self.0.len()
    }
    fn split_at(self, mid: usize) -> (Self, Self) {
        let (l, r) = self.0.split_at(mid);
        (ParIter(l), ParIter(r))
    }
    fn seq_iter(self) -> Self::SeqIter {
        self.0.iter()
    }
}

/// Mutably borrowing producer over a slice (`par_iter_mut`).
pub struct ParIterMut<'a, T>(&'a mut [T]);

impl<'a, T: Send> IndexedParallelIterator for ParIterMut<'a, T> {
    type Item = &'a mut T;
    type SeqIter = std::slice::IterMut<'a, T>;

    fn len(&self) -> usize {
        self.0.len()
    }
    fn split_at(self, mid: usize) -> (Self, Self) {
        let (l, r) = self.0.split_at_mut(mid);
        (ParIterMut(l), ParIterMut(r))
    }
    fn seq_iter(self) -> Self::SeqIter {
        self.0.iter_mut()
    }
}

/// Consuming producer over a `Vec` (`into_par_iter`).
pub struct ParVec<T>(Vec<T>);

impl<T: Send> IndexedParallelIterator for ParVec<T> {
    type Item = T;
    type SeqIter = std::vec::IntoIter<T>;

    fn len(&self) -> usize {
        self.0.len()
    }
    fn split_at(self, mid: usize) -> (Self, Self) {
        let mut head = self.0;
        let tail = head.split_off(mid);
        (ParVec(head), ParVec(tail))
    }
    fn seq_iter(self) -> Self::SeqIter {
        self.0.into_iter()
    }
}

/// Producer over an integer range (`(0..n).into_par_iter()`). A newtype so
/// the parallel `map` never collides with `Iterator::map` on the range
/// itself.
pub struct ParRange<T>(Range<T>);

/// `.par_iter()` / `.par_iter_mut()` on slices and `Vec`s.
pub trait ParallelSliceExt<T> {
    /// Borrowing parallel iterator over the elements.
    fn par_iter(&self) -> ParIter<'_, T>;
    /// Mutably borrowing parallel iterator over the elements.
    fn par_iter_mut(&mut self) -> ParIterMut<'_, T>;
}

impl<T> ParallelSliceExt<T> for [T] {
    fn par_iter(&self) -> ParIter<'_, T> {
        ParIter(self)
    }
    fn par_iter_mut(&mut self) -> ParIterMut<'_, T> {
        ParIterMut(self)
    }
}

impl<T> ParallelSliceExt<T> for Vec<T> {
    fn par_iter(&self) -> ParIter<'_, T> {
        ParIter(self.as_slice())
    }
    fn par_iter_mut(&mut self) -> ParIterMut<'_, T> {
        ParIterMut(self.as_mut_slice())
    }
}

/// Conversion into a parallel iterator (`into_par_iter`).
pub trait IntoParallelIterator {
    /// Element type of the resulting chain.
    type Item: Send;
    /// The producer this converts into.
    type Iter: IndexedParallelIterator<Item = Self::Item>;

    /// Consume `self` into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = ParVec<T>;
    fn into_par_iter(self) -> ParVec<T> {
        ParVec(self)
    }
}

macro_rules! impl_range_producer {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for Range<$t> {
            type Item = $t;
            type Iter = ParRange<$t>;
            fn into_par_iter(self) -> ParRange<$t> {
                ParRange(self)
            }
        }

        impl IndexedParallelIterator for ParRange<$t> {
            type Item = $t;
            type SeqIter = Range<$t>;

            fn len(&self) -> usize {
                if self.0.end <= self.0.start {
                    0
                } else {
                    (self.0.end - self.0.start) as usize
                }
            }
            fn split_at(self, mid: usize) -> (Self, Self) {
                let m = self.0.start + mid as $t;
                (ParRange(self.0.start..m), ParRange(m..self.0.end))
            }
            fn seq_iter(self) -> Range<$t> {
                self.0
            }
        }
    )*};
}

impl_range_producer!(usize, u32, u64);

// ---------------------------------------------------------------------------
// Adaptors
// ---------------------------------------------------------------------------

/// Parallel `map` adaptor.
pub struct Map<P, F> {
    base: P,
    f: F,
}

impl<P, F, R> IndexedParallelIterator for Map<P, F>
where
    P: IndexedParallelIterator,
    F: Fn(P::Item) -> R + Clone + Send,
    R: Send,
{
    type Item = R;
    type SeqIter = MapSeq<P::SeqIter, F>;

    fn len(&self) -> usize {
        self.base.len()
    }
    fn split_at(self, mid: usize) -> (Self, Self) {
        let (l, r) = self.base.split_at(mid);
        (
            Map {
                base: l,
                f: self.f.clone(),
            },
            Map { base: r, f: self.f },
        )
    }
    fn seq_iter(self) -> Self::SeqIter {
        MapSeq {
            inner: self.base.seq_iter(),
            f: self.f,
        }
    }
}

/// Sequential lowering of [`Map`].
pub struct MapSeq<I, F> {
    inner: I,
    f: F,
}

impl<I, F, R> Iterator for MapSeq<I, F>
where
    I: Iterator,
    F: Fn(I::Item) -> R,
{
    type Item = R;
    fn next(&mut self) -> Option<R> {
        self.inner.next().map(&self.f)
    }
}

/// Parallel `zip` adaptor (truncates to the shorter side).
pub struct Zip<A, B> {
    a: A,
    b: B,
}

impl<A, B> IndexedParallelIterator for Zip<A, B>
where
    A: IndexedParallelIterator,
    B: IndexedParallelIterator,
{
    type Item = (A::Item, B::Item);
    type SeqIter = std::iter::Zip<A::SeqIter, B::SeqIter>;

    fn len(&self) -> usize {
        self.a.len().min(self.b.len())
    }
    fn split_at(self, mid: usize) -> (Self, Self) {
        let (al, ar) = self.a.split_at(mid);
        let (bl, br) = self.b.split_at(mid);
        (Zip { a: al, b: bl }, Zip { a: ar, b: br })
    }
    fn seq_iter(self) -> Self::SeqIter {
        self.a.seq_iter().zip(self.b.seq_iter())
    }
}

/// Parallel `enumerate` adaptor; `offset` keeps indices global across
/// splits.
pub struct Enumerate<P> {
    base: P,
    offset: usize,
}

impl<P> IndexedParallelIterator for Enumerate<P>
where
    P: IndexedParallelIterator,
{
    type Item = (usize, P::Item);
    type SeqIter = EnumerateSeq<P::SeqIter>;

    fn len(&self) -> usize {
        self.base.len()
    }
    fn split_at(self, mid: usize) -> (Self, Self) {
        let (l, r) = self.base.split_at(mid);
        (
            Enumerate {
                base: l,
                offset: self.offset,
            },
            Enumerate {
                base: r,
                offset: self.offset + mid,
            },
        )
    }
    fn seq_iter(self) -> Self::SeqIter {
        EnumerateSeq {
            inner: self.base.seq_iter(),
            next: self.offset,
        }
    }
}

/// Sequential lowering of [`Enumerate`].
pub struct EnumerateSeq<I> {
    inner: I,
    next: usize,
}

impl<I: Iterator> Iterator for EnumerateSeq<I> {
    type Item = (usize, I::Item);
    fn next(&mut self) -> Option<Self::Item> {
        let item = self.inner.next()?;
        let i = self.next;
        self.next += 1;
        Some((i, item))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ThreadPoolBuilder;

    fn at_width<R>(width: usize, f: impl FnOnce() -> R) -> R {
        ThreadPoolBuilder::new()
            .num_threads(width)
            .build()
            .unwrap()
            .install(f)
    }

    #[test]
    fn collect_preserves_order_at_every_width() {
        let input: Vec<u64> = (0..997).collect();
        let expect: Vec<u64> = input.iter().map(|x| x * 3 + 1).collect();
        for width in [1, 2, 3, 8, 64] {
            let got: Vec<u64> = at_width(width, || input.par_iter().map(|&x| x * 3 + 1).collect());
            assert_eq!(got, expect, "width {width}");
        }
    }

    #[test]
    fn par_iter_mut_touches_every_element_once() {
        for width in [1, 2, 8] {
            let mut v = vec![0u32; 1000];
            at_width(width, || {
                let _: Vec<()> = v
                    .par_iter_mut()
                    .enumerate()
                    .map(|(i, x)| *x += i as u32 + 1)
                    .collect();
            });
            assert!(
                v.iter().enumerate().all(|(i, &x)| x == i as u32 + 1),
                "width {width}"
            );
        }
    }

    #[test]
    fn enumerate_indices_are_global() {
        for width in [1, 2, 8] {
            let v = vec![7u8; 513];
            let idx: Vec<usize> =
                at_width(width, || v.par_iter().enumerate().map(|(i, _)| i).collect());
            assert_eq!(idx, (0..513).collect::<Vec<_>>(), "width {width}");
        }
    }

    #[test]
    fn fallible_collect_returns_lowest_index_error() {
        for width in [1, 2, 8] {
            let got: Result<Vec<usize>, usize> = at_width(width, || {
                (0..100usize)
                    .into_par_iter()
                    .map(|i| if i % 37 == 36 { Err(i) } else { Ok(i) })
                    .collect()
            });
            assert_eq!(got, Err(36), "width {width}");
            let ok: Result<Vec<usize>, usize> =
                at_width(width, || (0..100usize).into_par_iter().map(Ok).collect());
            assert_eq!(ok.unwrap(), (0..100).collect::<Vec<_>>(), "width {width}");
        }
    }

    #[test]
    fn zip_truncates_to_shorter() {
        let a = vec![1u32, 2, 3, 4, 5];
        let b = vec![10u32, 20, 30];
        for width in [1, 4] {
            let got: Vec<u32> = at_width(width, || {
                a.par_iter().zip(b.par_iter()).map(|(x, y)| x + y).collect()
            });
            assert_eq!(got, vec![11, 22, 33], "width {width}");
        }
    }

    #[test]
    fn empty_and_single_element_chains() {
        for width in [1, 8] {
            let empty: Vec<u8> = at_width(width, || {
                Vec::<u8>::new().into_par_iter().map(|x| x).collect()
            });
            assert!(empty.is_empty());
            let one: Vec<u8> = at_width(width, || {
                vec![42u8].into_par_iter().map(|x| x + 1).collect()
            });
            assert_eq!(one, vec![43]);
        }
    }

    #[test]
    fn balanced_chunks_cover_everything_in_order() {
        for (n, k) in [(10usize, 3usize), (1, 4), (17, 17), (100, 7), (0, 3)] {
            let chunks = balanced_chunks(ParRange(0..n), k);
            let flat: Vec<usize> = chunks.into_iter().flat_map(|c| c.seq_iter()).collect();
            assert_eq!(flat, (0..n).collect::<Vec<_>>(), "n={n} k={k}");
        }
    }

    mod autotune_props {
        use super::super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            // Any (len, floor, workers, estimate) triple the tuner can see
            // yields chunks that (a) never outnumber the items and (b)
            // concatenate in order to the identity permutation — the full
            // sizing-then-splitting path run_chunks takes.
            #[test]
            fn tuned_chunking_is_identity_permutation(
                len in 1usize..5_000,
                floor in 1u64..200_000,
                workers in 1usize..16,
                est_centi_ns in 0u64..100_000,
            ) {
                // 0 plays the cold-site (no estimate) path.
                let est = (est_centi_ns > 0).then(|| est_centi_ns as f64 / 100.0);
                let min_items = crate::tune::min_chunk_items(est, floor, len, workers);
                prop_assert!((1..=len).contains(&min_items));
                let chunks = balanced_chunks(ParRange(0..len), len.div_ceil(min_items));
                prop_assert!(chunks.len() <= len);
                let flat: Vec<usize> =
                    chunks.into_iter().flat_map(|c| c.seq_iter()).collect();
                prop_assert_eq!(flat, (0..len).collect::<Vec<_>>());
            }

            // End to end through the stealing pool: a parallel collect at a
            // random width is the identity map, i.e. stealing and splitting
            // never reorder, drop, or duplicate elements.
            #[test]
            fn stolen_collect_is_identity(
                len in 0usize..3_000,
                width in 1usize..12,
            ) {
                let got: Vec<usize> = crate::ThreadPoolBuilder::new()
                    .num_threads(width)
                    .build()
                    .unwrap()
                    .install(|| (0..len).into_par_iter().map(|i| i).collect());
                prop_assert_eq!(got, (0..len).collect::<Vec<_>>());
            }
        }
    }
}
