//! Explicit, enumerable fault scripts.
//!
//! A [`FaultScript`] is the *extensional* counterpart of the seeded
//! [`FaultPlan`](crate::FaultPlan): instead of deriving each message's
//! [`Fate`] from a ChaCha stream, it stores an explicit table keyed by
//! `(superstep, src, msg_idx)` plus an explicit stall set keyed by
//! `(superstep, pid)`. Everything not listed is delivered cleanly.
//!
//! Scripts exist for *enumeration*: the `pbw-check` bounded model checker
//! walks the space of all scripts over a small domain and needs (a) a hook
//! whose fate assignment it controls position-by-position and (b) a
//! canonical, human-readable serialization so a failing script can be
//! pasted into a unit test verbatim. [`fmt::Display`] and [`FromStr`] are
//! that format and round-trip exactly:
//!
//! ```
//! use pbw_faults::FaultScript;
//!
//! let s: FaultScript = "drop@0/1.0 delay2@1/0.1 stall@1/p2".parse().unwrap();
//! assert_eq!(s.to_string(), "drop@0/1.0 delay2@1/0.1 stall@1/p2");
//! assert_eq!(FaultScript::new().to_string(), "clean");
//! ```
//!
//! Grammar (tokens separated by single spaces, in the canonical order
//! below; `clean` denotes the empty script):
//!
//! ```text
//! script  := "clean" | token (" " token)*
//! token   := fate "@" superstep "/" src "." msg_idx
//!          | "stall@" superstep "/p" pid
//!          | "crash@" superstep "/p" pid
//! fate    := "drop" | "dup" | "delay" K | "displace" D
//! ```
//!
//! Canonical order: all fate tokens sorted by `(superstep, src, msg_idx)`,
//! then all stall tokens sorted by `(superstep, pid)`, then all crash
//! tokens sorted the same way — the iteration order of the underlying
//! B-tree maps, so `Display` is deterministic and two equal scripts always
//! render identically.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::str::FromStr;

use pbw_sim::{DeliveryCtx, DeliveryHook, Fate, Pid};

/// Key of one scripted message: `(superstep, src, msg_idx)` — the same
/// coordinates a [`DeliveryCtx`] presents and a [`FaultPlan`](crate::FaultPlan)
/// keys its streams by.
pub type ScriptKey = (u64, Pid, usize);

/// An explicit fate table + stall set; see the [module docs](self).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultScript {
    fates: BTreeMap<ScriptKey, Fate>,
    stalls: BTreeSet<(u64, Pid)>,
    crashes: BTreeSet<(u64, Pid)>,
}

impl FaultScript {
    /// The empty (all-deliver) script.
    pub fn new() -> Self {
        Self::default()
    }

    /// Script a fate for `(superstep, src, msg_idx)` (builder-style).
    /// Scripting [`Fate::Deliver`] removes any existing entry — clean
    /// delivery is the default, so the canonical form never stores it.
    pub fn with_fate(mut self, superstep: u64, src: Pid, msg_idx: usize, fate: Fate) -> Self {
        self.set_fate(superstep, src, msg_idx, fate);
        self
    }

    /// Script a whole-superstep stall for `pid` (builder-style).
    pub fn with_stall(mut self, superstep: u64, pid: Pid) -> Self {
        self.stalls.insert((superstep, pid));
        self
    }

    /// Script a whole-superstep crash for `pid` (builder-style). Unlike a
    /// stall, a crashed processor's inbox and incoming traffic are
    /// destroyed; script one entry per dead superstep for multi-step
    /// outages.
    pub fn with_crash(mut self, superstep: u64, pid: Pid) -> Self {
        self.crashes.insert((superstep, pid));
        self
    }

    /// Script a fate in place; see [`FaultScript::with_fate`].
    pub fn set_fate(&mut self, superstep: u64, src: Pid, msg_idx: usize, fate: Fate) {
        let key = (superstep, src, msg_idx);
        if fate == Fate::Deliver {
            self.fates.remove(&key);
        } else {
            self.fates.insert(key, fate);
        }
    }

    /// The scripted fate for a message ([`Fate::Deliver`] if unlisted).
    pub fn fate_at(&self, superstep: u64, src: Pid, msg_idx: usize) -> Fate {
        self.fates
            .get(&(superstep, src, msg_idx))
            .copied()
            .unwrap_or(Fate::Deliver)
    }

    /// Whether the script perturbs nothing.
    pub fn is_clean(&self) -> bool {
        self.fates.is_empty() && self.stalls.is_empty() && self.crashes.is_empty()
    }

    /// Number of non-deliver fate entries.
    pub fn n_fates(&self) -> usize {
        self.fates.len()
    }

    /// Number of scripted stalls.
    pub fn n_stalls(&self) -> usize {
        self.stalls.len()
    }

    /// Number of scripted crash processor-supersteps.
    pub fn n_crashes(&self) -> usize {
        self.crashes.len()
    }

    /// Iterate the non-deliver fate entries in canonical order.
    pub fn fates(&self) -> impl Iterator<Item = (ScriptKey, Fate)> + '_ {
        self.fates.iter().map(|(&k, &f)| (k, f))
    }

    /// Iterate the scripted stalls in canonical order.
    pub fn stalls(&self) -> impl Iterator<Item = (u64, Pid)> + '_ {
        self.stalls.iter().copied()
    }

    /// Iterate the scripted crashes in canonical order.
    pub fn crashes(&self) -> impl Iterator<Item = (u64, Pid)> + '_ {
        self.crashes.iter().copied()
    }

    /// Whether `pid` is scripted dead at `superstep` — the query
    /// [`DeliveryHook::crashed`] delegates to, exposed for the checker's
    /// ledger reconstruction.
    pub fn crashed_at(&self, superstep: u64, pid: Pid) -> bool {
        self.crashes.contains(&(superstep, pid))
    }

    /// Count scripted entries whose fate satisfies `pred` among the given
    /// consulted keys — the checker's independent ledger reconstruction:
    /// e.g. expected drops = `count_matching(keys, |f| f == Fate::Drop)`.
    pub fn count_matching(
        &self,
        consulted: impl IntoIterator<Item = ScriptKey>,
        pred: impl Fn(Fate) -> bool,
    ) -> u64 {
        consulted
            .into_iter()
            .filter(|&(s, src, idx)| pred(self.fate_at(s, src, idx)))
            .count() as u64
    }
}

impl DeliveryHook for FaultScript {
    fn fate(&self, ctx: &DeliveryCtx) -> Fate {
        self.fate_at(ctx.superstep, ctx.src, ctx.msg_idx)
    }

    fn stalled(&self, superstep: u64, pid: Pid) -> bool {
        self.stalls.contains(&(superstep, pid))
    }

    fn crashed(&self, superstep: u64, pid: Pid) -> bool {
        self.crashed_at(superstep, pid)
    }
}

impl fmt::Display for FaultScript {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_clean() {
            return f.write_str("clean");
        }
        let mut first = true;
        let mut sep = |f: &mut fmt::Formatter<'_>| -> fmt::Result {
            if !first {
                f.write_str(" ")?;
            }
            first = false;
            Ok(())
        };
        for (&(superstep, src, idx), &fate) in &self.fates {
            sep(f)?;
            match fate {
                Fate::Deliver => unreachable!("canonical form never stores Deliver"),
                Fate::Drop => write!(f, "drop@{superstep}/{src}.{idx}")?,
                Fate::Duplicate => write!(f, "dup@{superstep}/{src}.{idx}")?,
                Fate::Delay(k) => write!(f, "delay{k}@{superstep}/{src}.{idx}")?,
                Fate::Displace(d) => write!(f, "displace{d}@{superstep}/{src}.{idx}")?,
            }
        }
        for &(superstep, pid) in &self.stalls {
            sep(f)?;
            write!(f, "stall@{superstep}/p{pid}")?;
        }
        for &(superstep, pid) in &self.crashes {
            sep(f)?;
            write!(f, "crash@{superstep}/p{pid}")?;
        }
        Ok(())
    }
}

/// Why a script failed to parse (the offending token is embedded).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScriptParseError {
    token: String,
    reason: &'static str,
}

impl fmt::Display for ScriptParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad script token `{}`: {}", self.token, self.reason)
    }
}

impl std::error::Error for ScriptParseError {}

fn bad(token: &str, reason: &'static str) -> ScriptParseError {
    ScriptParseError {
        token: token.to_string(),
        reason,
    }
}

impl FromStr for FaultScript {
    type Err = ScriptParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut script = FaultScript::new();
        let s = s.trim();
        if s.is_empty() || s == "clean" {
            return Ok(script);
        }
        for token in s.split_whitespace() {
            let (head, pos) = token
                .split_once('@')
                .ok_or_else(|| bad(token, "missing `@`"))?;
            let (step_s, rest) = pos
                .split_once('/')
                .ok_or_else(|| bad(token, "missing `/` after superstep"))?;
            let superstep: u64 = step_s
                .parse()
                .map_err(|_| bad(token, "superstep is not a number"))?;
            if head == "stall" || head == "crash" {
                let pid_s = rest
                    .strip_prefix('p')
                    .ok_or_else(|| bad(token, "stall/crash target must be `p<pid>`"))?;
                let pid: Pid = pid_s
                    .parse()
                    .map_err(|_| bad(token, "pid is not a number"))?;
                if head == "stall" {
                    script.stalls.insert((superstep, pid));
                } else {
                    script.crashes.insert((superstep, pid));
                }
                continue;
            }
            let (src_s, idx_s) = rest
                .split_once('.')
                .ok_or_else(|| bad(token, "missing `.` between src and msg_idx"))?;
            let src: Pid = src_s
                .parse()
                .map_err(|_| bad(token, "src is not a number"))?;
            let idx: usize = idx_s
                .parse()
                .map_err(|_| bad(token, "msg_idx is not a number"))?;
            let fate = if head == "drop" {
                Fate::Drop
            } else if head == "dup" {
                Fate::Duplicate
            } else if let Some(k) = head.strip_prefix("delay") {
                let k: u32 = k
                    .parse()
                    .map_err(|_| bad(token, "delay magnitude is not a number"))?;
                if k == 0 {
                    return Err(bad(token, "delay magnitude must be ≥ 1"));
                }
                Fate::Delay(k)
            } else if let Some(d) = head.strip_prefix("displace") {
                let d: u64 = d
                    .parse()
                    .map_err(|_| bad(token, "displacement is not a number"))?;
                if d == 0 {
                    return Err(bad(token, "displacement must be ≥ 1"));
                }
                Fate::Displace(d)
            } else {
                return Err(bad(token, "unknown fate"));
            };
            script.set_fate(superstep, src, idx, fate);
        }
        Ok(script)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_script_delivers_everything() {
        let s = FaultScript::new();
        assert!(s.is_clean());
        assert_eq!(s.fate_at(0, 0, 0), Fate::Deliver);
        assert!(!s.stalled(3, 1));
        assert_eq!(s.to_string(), "clean");
        assert_eq!("clean".parse::<FaultScript>().unwrap(), s);
        assert_eq!("".parse::<FaultScript>().unwrap(), s);
    }

    #[test]
    fn display_parse_round_trips() {
        let s = FaultScript::new()
            .with_fate(0, 1, 0, Fate::Drop)
            .with_fate(1, 0, 1, Fate::Delay(2))
            .with_fate(1, 2, 0, Fate::Duplicate)
            .with_fate(2, 0, 0, Fate::Displace(3))
            .with_stall(1, 2)
            .with_stall(0, 0)
            .with_crash(2, 1);
        let text = s.to_string();
        assert_eq!(
            text,
            "drop@0/1.0 delay2@1/0.1 dup@1/2.0 displace3@2/0.0 stall@0/p0 stall@1/p2 crash@2/p1"
        );
        let back: FaultScript = text.parse().unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn crash_tokens_are_distinct_from_stalls() {
        let s: FaultScript = "crash@1/p0".parse().unwrap();
        assert!(s.crashed_at(1, 0));
        assert!(!s.crashed_at(0, 0));
        assert!(!s.stalled(1, 0));
        assert_eq!(s.n_crashes(), 1);
        assert_eq!(s.n_stalls(), 0);
        assert!(!s.is_clean());
        assert_eq!(s.to_string(), "crash@1/p0");
        assert!("crash@1/0".parse::<FaultScript>().is_err());
    }

    #[test]
    fn scripting_deliver_erases_the_entry() {
        let mut s = FaultScript::new().with_fate(0, 0, 0, Fate::Drop);
        assert_eq!(s.n_fates(), 1);
        s.set_fate(0, 0, 0, Fate::Deliver);
        assert!(s.is_clean());
    }

    #[test]
    fn hook_impl_matches_the_table() {
        let s = FaultScript::new()
            .with_fate(2, 1, 3, Fate::Drop)
            .with_stall(2, 0);
        let ctx = DeliveryCtx {
            superstep: 2,
            src: 1,
            dest: 0,
            msg_idx: 3,
            slot: 0,
        };
        assert_eq!(s.fate(&ctx), Fate::Drop);
        assert_eq!(s.fate(&DeliveryCtx { msg_idx: 2, ..ctx }), Fate::Deliver);
        assert!(s.stalled(2, 0));
        assert!(!s.stalled(1, 0));
    }

    #[test]
    fn count_matching_reconstructs_ledger_expectations() {
        let s = FaultScript::new()
            .with_fate(0, 0, 0, Fate::Drop)
            .with_fate(0, 1, 0, Fate::Duplicate)
            .with_fate(1, 0, 0, Fate::Drop);
        let consulted = vec![(0u64, 0usize, 0usize), (0, 1, 0), (0, 2, 0)];
        assert_eq!(s.count_matching(consulted.clone(), |f| f == Fate::Drop), 1);
        assert_eq!(
            s.count_matching(consulted.clone(), |f| f == Fate::Duplicate),
            1
        );
        assert_eq!(s.count_matching(consulted, |f| f == Fate::Deliver), 1);
    }

    #[test]
    fn bad_tokens_are_rejected_with_the_offender_named() {
        for bad in [
            "drop0/1.0",
            "drop@x/1.0",
            "drop@0:1.0",
            "drop@0/1",
            "frob@0/1.0",
            "delay0@0/1.0",
            "displace0@0/1.0",
            "stall@0/2",
        ] {
            let err = bad.parse::<FaultScript>().unwrap_err();
            assert!(err.to_string().contains("bad script token"), "{bad}: {err}");
        }
    }
}
