//! # pbw-faults
//!
//! Seeded, deterministic fault plans for the `pbw-sim` engines.
//!
//! A [`FaultPlan`] implements [`pbw_sim::DeliveryHook`]: attached to a
//! [`pbw_sim::BspMachine`] or [`pbw_sim::QsmMachine`] it decides, message by
//! message, whether the network delivers, drops, duplicates, delays, or
//! displaces each in-flight payload, and whether whole processors stall for
//! a superstep. Rates are configured by a [`FaultSpec`]; everything else is
//! derived from a single `u64` seed.
//!
//! The crate also ships [`FaultScript`], the *extensional* counterpart of a
//! plan: an explicit `(superstep, src, msg_idx) → Fate` table with a
//! canonical text serialization, used by the `pbw-check` bounded model
//! checker to enumerate fault assignments and to replay counterexamples.
//!
//! ## Determinism / seeding contract
//!
//! Like the schedulers in `pbw-core`, plans are keyed by the workspace's
//! deterministic ChaCha shim (`ChaCha8Rng::seed_from_u64` + `set_stream`;
//! see `crates/shims/README.md`):
//!
//! * A message's [`Fate`] is a **pure function** of
//!   `(seed, superstep, src, msg_idx)` — independent of thread scheduling,
//!   of other messages, and of how many times the hook is consulted. Two
//!   runs with equal seeds and equal programs are bit-identical, including
//!   their trace streams (certified by CI, which diffs two `reproduce
//!   faults --seed 7` traces).
//! * A stall is a pure function of `(seed, superstep, pid)`, and so is a
//!   crash: whether `pid` is dead at superstep `t` depends only on the
//!   seeded onset draws for the window of candidate onset steps that could
//!   still cover `t` — never on engine state or on consultation order.
//! * Because the superstep index is part of the key, a *retransmitted* copy
//!   of a lost message re-rolls its fate in the superstep it is resent —
//!   recovery protocols terminate with probability 1 for any drop rate
//!   `φ < 1`.
//! * Distinct seeds give statistically independent fault sequences; the
//!   same spec under a different seed is a fresh sample of the same fault
//!   process.

use pbw_sim::{BatchDests, DeliveryCtx, DeliveryHook, Fate, Pid};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

mod script;

pub use script::{FaultScript, ScriptKey, ScriptParseError};

/// Domain-separation tags so the per-message and per-processor keys of one
/// seed never collide.
const FATE_TAG: u64 = 0xFA7E_0001;
const STALL_TAG: u64 = 0x57A1_1002;
const CRASH_TAG: u64 = 0xC4A5_4003;

/// Why a scripted window was rejected by its constructor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WindowError {
    /// `len == 0`: the window covers no superstep at all, which silently
    /// turned a scripted outage into a no-op before this was validated.
    Empty,
    /// `end <= start` in a range-style constructor: the interval is
    /// inverted (or empty) and covers nothing.
    Inverted {
        /// The requested first superstep.
        start: u64,
        /// The requested one-past-the-end superstep.
        end: u64,
    },
    /// `start + len` overflows `u64`, so the window's upper edge is not
    /// representable.
    Overflow,
}

impl std::fmt::Display for WindowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WindowError::Empty => write!(f, "window length must be at least 1 superstep"),
            WindowError::Inverted { start, end } => {
                write!(f, "window range {start}..{end} is empty or inverted")
            }
            WindowError::Overflow => write!(f, "window end exceeds u64::MAX"),
        }
    }
}

impl std::error::Error for WindowError {}

/// Fault rates and magnitudes. All rates are per-message (or per
/// processor-superstep for `stall_rate`) Bernoulli probabilities; the four
/// message-fate rates must sum to at most 1 (the remainder is the
/// probability of clean delivery).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSpec {
    /// Probability φ that a message is lost.
    pub drop_rate: f64,
    /// Probability that a message is delivered twice.
    pub duplicate_rate: f64,
    /// Probability that a message is delivered late.
    pub delay_rate: f64,
    /// Largest delay, in supersteps; a delayed message waits
    /// `uniform{1..=max_delay}` extra supersteps.
    pub max_delay: u32,
    /// Probability that a message's injection slot is displaced.
    pub displace_rate: f64,
    /// Largest displacement, in slots; a displaced injection lands
    /// `uniform{1..=max_displacement}` slots late.
    pub max_displacement: u64,
    /// Probability that a processor stalls for a whole superstep.
    pub stall_rate: f64,
    /// Probability, per processor-superstep, that a processor crash-stops
    /// (an *onset* probability: the processor then stays dead for the
    /// sampled outage length; overlapping onsets merge into one outage, so
    /// liveness at step `t` is still a pure function of `(seed, t, pid)`).
    pub crash_rate: f64,
    /// Largest outage, in supersteps; a crashed processor stays dead for
    /// `uniform{1..=max_crash_len}` supersteps, then revives with its state
    /// as of the crash (recovery is a protocol concern, see
    /// `pbw_core::recovery::checkpoint`).
    pub max_crash_len: u64,
}

impl FaultSpec {
    /// A reliable network: every rate zero.
    pub fn none() -> Self {
        FaultSpec {
            drop_rate: 0.0,
            duplicate_rate: 0.0,
            delay_rate: 0.0,
            max_delay: 1,
            displace_rate: 0.0,
            max_displacement: 1,
            stall_rate: 0.0,
            crash_rate: 0.0,
            max_crash_len: 1,
        }
    }

    /// Pure message loss at rate `phi` — the spec the φ-sweep experiment
    /// uses.
    pub fn drop_only(phi: f64) -> Self {
        FaultSpec {
            drop_rate: phi,
            ..FaultSpec::none()
        }
    }

    /// Whether every rate is a probability and the message-fate rates leave
    /// room for delivery (`Σ rates ≤ 1`).
    pub fn is_valid(&self) -> bool {
        let rates = [
            self.drop_rate,
            self.duplicate_rate,
            self.delay_rate,
            self.displace_rate,
        ];
        rates.iter().all(|r| (0.0..=1.0).contains(r))
            && rates.iter().sum::<f64>() <= 1.0
            && (0.0..=1.0).contains(&self.stall_rate)
            && (0.0..=1.0).contains(&self.crash_rate)
            && self.max_delay >= 1
            && self.max_displacement >= 1
            && self.max_crash_len >= 1
    }

    /// Whether this spec can never perturb a run.
    pub fn is_none(&self) -> bool {
        self.drop_rate == 0.0
            && self.duplicate_rate == 0.0
            && self.delay_rate == 0.0
            && self.displace_rate == 0.0
            && self.stall_rate == 0.0
            && self.crash_rate == 0.0
    }
}

/// A deterministic window during which one processor is stalled,
/// independent of `stall_rate` (used to script bursts and targeted
/// outages).
///
/// Fields are private: the only way to build one is through the validating
/// constructors, which reject empty and inverted ranges that earlier
/// versions accepted silently (turning a scripted outage into a no-op).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StallWindow {
    pid: Pid,
    start: u64,
    len: u64,
}

impl StallWindow {
    /// A window stalling `pid` for the `len` supersteps starting at
    /// `start`. Rejects `len == 0` and ends past `u64::MAX`.
    pub fn new(pid: Pid, start: u64, len: u64) -> Result<Self, WindowError> {
        validate_window(start, len)?;
        Ok(StallWindow { pid, start, len })
    }

    /// Range-style constructor: stall `pid` over `start..end`. Rejects
    /// inverted/empty ranges (`end <= start`).
    pub fn from_range(pid: Pid, start: u64, end: u64) -> Result<Self, WindowError> {
        if end <= start {
            return Err(WindowError::Inverted { start, end });
        }
        StallWindow::new(pid, start, end - start)
    }

    /// The stalled processor.
    pub fn pid(&self) -> Pid {
        self.pid
    }

    /// First stalled superstep.
    pub fn start(&self) -> u64 {
        self.start
    }

    /// Number of consecutive stalled supersteps (always ≥ 1 — the
    /// constructors reject empty windows, so there is no `is_empty`).
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> u64 {
        self.len
    }

    fn covers(&self, superstep: u64, pid: Pid) -> bool {
        pid == self.pid && superstep >= self.start && superstep < self.start + self.len
    }
}

/// A deterministic window during which one processor is crash-stopped,
/// independent of `crash_rate` — the scripted counterpart of a seeded
/// crash, used by targeted experiments and the chaos soak harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashWindow {
    pid: Pid,
    start: u64,
    len: u64,
}

impl CrashWindow {
    /// A window crashing `pid` for the `len` supersteps starting at
    /// `start`. Rejects `len == 0` and ends past `u64::MAX`.
    pub fn new(pid: Pid, start: u64, len: u64) -> Result<Self, WindowError> {
        validate_window(start, len)?;
        Ok(CrashWindow { pid, start, len })
    }

    /// Range-style constructor: crash `pid` over `start..end`. Rejects
    /// inverted/empty ranges (`end <= start`).
    pub fn from_range(pid: Pid, start: u64, end: u64) -> Result<Self, WindowError> {
        if end <= start {
            return Err(WindowError::Inverted { start, end });
        }
        CrashWindow::new(pid, start, end - start)
    }

    /// The crashed processor.
    pub fn pid(&self) -> Pid {
        self.pid
    }

    /// First dead superstep.
    pub fn start(&self) -> u64 {
        self.start
    }

    /// Number of consecutive dead supersteps (always ≥ 1 — the
    /// constructors reject empty windows, so there is no `is_empty`).
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> u64 {
        self.len
    }

    fn covers(&self, superstep: u64, pid: Pid) -> bool {
        pid == self.pid && superstep >= self.start && superstep < self.start + self.len
    }
}

fn validate_window(start: u64, len: u64) -> Result<(), WindowError> {
    if len == 0 {
        return Err(WindowError::Empty);
    }
    if start.checked_add(len).is_none() {
        return Err(WindowError::Overflow);
    }
    Ok(())
}

/// A seeded fault plan: a [`FaultSpec`] plus the `u64` key that makes it a
/// concrete, replayable fault sequence.
///
/// ```
/// use pbw_faults::{FaultPlan, FaultSpec};
/// use pbw_sim::{BspMachine, DeliveryHook};
/// use pbw_models::MachineParams;
/// use std::sync::Arc;
///
/// let plan = FaultPlan::new(FaultSpec::drop_only(0.5), 7);
/// let mp = MachineParams::from_gap(8, 2, 4);
/// let mut m: BspMachine<(), u32> = BspMachine::new(mp, |_| ());
/// m.set_delivery_hook(Arc::new(plan));
/// m.superstep(|pid, _s, _in, out| out.send((pid + 1) % 8, 0));
/// let stats = m.fault_stats();
/// assert_eq!(stats.injected, 8);
/// assert!(stats.conserved());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    spec: FaultSpec,
    seed: u64,
    stall_windows: Vec<StallWindow>,
    crash_windows: Vec<CrashWindow>,
}

impl FaultPlan {
    /// Build a plan from a spec and seed.
    ///
    /// # Panics
    /// Panics if the spec is invalid (rates outside `[0, 1]` or message-fate
    /// rates summing past 1).
    pub fn new(spec: FaultSpec, seed: u64) -> Self {
        assert!(spec.is_valid(), "invalid fault spec: {spec:?}");
        FaultPlan {
            spec,
            seed,
            stall_windows: Vec::new(),
            crash_windows: Vec::new(),
        }
    }

    /// Add a scripted stall window (builder-style).
    pub fn with_stall_window(mut self, window: StallWindow) -> Self {
        self.stall_windows.push(window);
        self
    }

    /// Add a scripted crash window (builder-style).
    pub fn with_crash_window(mut self, window: CrashWindow) -> Self {
        self.crash_windows.push(window);
        self
    }

    /// The plan's spec.
    pub fn spec(&self) -> &FaultSpec {
        &self.spec
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The fate this plan assigns to the message identified by
    /// `(superstep, src, msg_idx)` — exposed so tests and analysis can
    /// interrogate a plan without running an engine. `fate` (the hook
    /// method) delegates here.
    pub fn fate_of(&self, superstep: u64, src: Pid, msg_idx: usize) -> Fate {
        if self.spec.is_none() {
            return Fate::Deliver;
        }
        let mut rng = self.message_rng(superstep, src, msg_idx);
        let u: f64 = rng.gen_range(0.0..1.0);
        let mut edge = self.spec.drop_rate;
        if u < edge {
            return Fate::Drop;
        }
        edge += self.spec.duplicate_rate;
        if u < edge {
            return Fate::Duplicate;
        }
        edge += self.spec.delay_rate;
        if u < edge {
            return Fate::Delay(rng.gen_range(1..=self.spec.max_delay));
        }
        edge += self.spec.displace_rate;
        if u < edge {
            return Fate::Displace(rng.gen_range(1..=self.spec.max_displacement));
        }
        Fate::Deliver
    }

    /// Batched [`FaultPlan::fate_of`]: append the fates of messages
    /// `0..n` sent by `src` at `superstep` to `out`, bit-identical to
    /// calling `fate_of` once per message (pinned by a proptest below).
    ///
    /// The win over the per-message path is hoisting loop invariants: the
    /// per-superstep RNG keying happens once (each message then only
    /// re-streams the cipher), and the fate thresholds are accumulated into
    /// cumulative edges up front — in the *same `f64` addition order* as
    /// `fate_of`'s incremental `edge +=` sequence, so the comparisons see
    /// bit-identical values. The common all-deliver draw takes a branchless
    /// four-compare path instead of re-deriving the edges per message.
    pub fn fates_of(&self, superstep: u64, src: Pid, n: usize, out: &mut Vec<Fate>) {
        if self.spec.is_none() {
            out.resize(out.len() + n, Fate::Deliver);
            return;
        }
        out.reserve(n);
        let key = self
            .seed
            .wrapping_add(FATE_TAG)
            .wrapping_add(superstep.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut rng = ChaCha8Rng::seed_from_u64(key);
        let base = (src as u64) << 24;
        let drop_edge = self.spec.drop_rate;
        let dup_edge = drop_edge + self.spec.duplicate_rate;
        let delay_edge = dup_edge + self.spec.delay_rate;
        let disp_edge = delay_edge + self.spec.displace_rate;
        for msg_idx in 0..n {
            // `set_stream` rewinds the cipher keyed by (seed, stream), so a
            // re-streamed template is bit-equal to `message_rng(..)`.
            rng.set_stream(base ^ msg_idx as u64);
            let u: f64 = rng.gen_range(0.0..1.0);
            out.push(if u < drop_edge {
                Fate::Drop
            } else if u < dup_edge {
                Fate::Duplicate
            } else if u < delay_edge {
                Fate::Delay(rng.gen_range(1..=self.spec.max_delay))
            } else if u < disp_edge {
                Fate::Displace(rng.gen_range(1..=self.spec.max_displacement))
            } else {
                Fate::Deliver
            });
        }
    }

    /// Whether this plan has `pid` crash-stopped at `superstep` — exposed,
    /// like [`FaultPlan::fate_of`], so tests and the recovery driver can
    /// interrogate a plan without running an engine. `crashed` (the hook
    /// method) delegates here.
    ///
    /// Liveness is reconstructed from the bounded history of candidate
    /// onsets: `pid` is dead at `t` iff some onset drawn at
    /// `t' ∈ [t − max_crash_len + 1, t]` has `t' + len(t') > t`. Each
    /// onset and its length come from a dedicated keyed stream, so the
    /// answer is pure in `(seed, superstep, pid)` and overlapping outages
    /// merge.
    pub fn crashed_at(&self, superstep: u64, pid: Pid) -> bool {
        if self.crash_windows.iter().any(|w| w.covers(superstep, pid)) {
            return true;
        }
        if self.spec.crash_rate == 0.0 {
            return false;
        }
        let lookback = self.spec.max_crash_len.saturating_sub(1);
        let first = superstep.saturating_sub(lookback);
        for onset in first..=superstep {
            let mut rng = self.crash_rng(onset, pid);
            if !rng.gen_bool(self.spec.crash_rate) {
                continue;
            }
            let len = rng.gen_range(1..=self.spec.max_crash_len);
            if onset + len > superstep {
                return true;
            }
        }
        false
    }

    fn crash_rng(&self, superstep: u64, pid: Pid) -> ChaCha8Rng {
        let key = self
            .seed
            .wrapping_add(CRASH_TAG)
            .wrapping_add(superstep.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut rng = ChaCha8Rng::seed_from_u64(key);
        rng.set_stream(pid as u64);
        rng
    }

    fn message_rng(&self, superstep: u64, src: Pid, msg_idx: usize) -> ChaCha8Rng {
        // Same keying idiom as the pbw-core schedulers: seed xor a
        // golden-ratio multiple of the step index, one stream per message.
        let key = self
            .seed
            .wrapping_add(FATE_TAG)
            .wrapping_add(superstep.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut rng = ChaCha8Rng::seed_from_u64(key);
        rng.set_stream(((src as u64) << 24) ^ msg_idx as u64);
        rng
    }
}

impl DeliveryHook for FaultPlan {
    fn fate(&self, ctx: &DeliveryCtx) -> Fate {
        self.fate_of(ctx.superstep, ctx.src, ctx.msg_idx)
    }

    fn fate_batch(
        &self,
        superstep: u64,
        src: Pid,
        _dests: BatchDests<'_>,
        slots: &[u64],
        out: &mut Vec<Fate>,
    ) {
        // A plan's fates ignore dest and slot (pure in superstep/src/
        // msg_idx), so the batch is just the hoisted-keying loop.
        self.fates_of(superstep, src, slots.len(), out);
    }

    fn stalled(&self, superstep: u64, pid: Pid) -> bool {
        if self.stall_windows.iter().any(|w| w.covers(superstep, pid)) {
            return true;
        }
        if self.spec.stall_rate == 0.0 {
            return false;
        }
        let key = self
            .seed
            .wrapping_add(STALL_TAG)
            .wrapping_add(superstep.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut rng = ChaCha8Rng::seed_from_u64(key);
        rng.set_stream(pid as u64);
        rng.gen_bool(self.spec.stall_rate)
    }

    fn crashed(&self, superstep: u64, pid: Pid) -> bool {
        self.crashed_at(superstep, pid)
    }

    fn fill_fault_masks(
        &self,
        superstep: u64,
        stalled: &mut pbw_sim::FrontierMask,
        crashed: &mut pbw_sim::FrontierMask,
    ) {
        // With both seeded rates at zero, the fault sets are exactly the
        // scripted windows covering this superstep: O(windows) insertions
        // instead of the default per-pid O(p) scan. The universe guard
        // mirrors the default implementation, which only ever queries pids
        // `< universe` — a window naming a larger pid contributes nothing
        // either way. Bit-equivalence to the per-pid predicates is pinned
        // by `mask_fill_matches_per_pid_predicates` below.
        if self.spec.stall_rate == 0.0 && self.spec.crash_rate == 0.0 {
            for w in &self.stall_windows {
                if w.pid() < stalled.universe() && w.covers(superstep, w.pid()) {
                    stalled.insert(w.pid());
                }
            }
            for w in &self.crash_windows {
                if w.pid() < crashed.universe() && w.covers(superstep, w.pid()) {
                    crashed.insert(w.pid());
                }
            }
            return;
        }
        // Seeded rates may fault any pid; fall back to the per-pid scan.
        for pid in 0..stalled.universe() {
            if self.stalled(superstep, pid) {
                stalled.insert(pid);
            }
            if self.crashed(superstep, pid) {
                crashed.insert(pid);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_spec_delivers_everything() {
        let plan = FaultPlan::new(FaultSpec::none(), 42);
        for step in 0..50 {
            for src in 0..8 {
                assert_eq!(plan.fate_of(step, src, 0), Fate::Deliver);
                assert!(!plan.stalled(step, src));
            }
        }
    }

    #[test]
    fn fates_are_replayable() {
        let spec = FaultSpec {
            drop_rate: 0.2,
            duplicate_rate: 0.1,
            delay_rate: 0.1,
            max_delay: 3,
            displace_rate: 0.1,
            max_displacement: 4,
            stall_rate: 0.05,
            crash_rate: 0.02,
            max_crash_len: 2,
        };
        let a = FaultPlan::new(spec, 7);
        let b = FaultPlan::new(spec, 7);
        for step in 0..20 {
            for src in 0..16 {
                for idx in 0..4 {
                    assert_eq!(a.fate_of(step, src, idx), b.fate_of(step, src, idx));
                }
                assert_eq!(a.stalled(step, src), b.stalled(step, src));
                assert_eq!(a.crashed(step, src), b.crashed(step, src));
            }
        }
    }

    #[test]
    fn mask_fill_matches_per_pid_predicates() {
        use pbw_sim::FrontierMask;
        let p = 70; // straddles a leaf-word boundary
        let check = |plan: &FaultPlan, steps: std::ops::Range<u64>| {
            for step in steps {
                let mut stalled = FrontierMask::new(p);
                let mut crashed = FrontierMask::new(p);
                plan.fill_fault_masks(step, &mut stalled, &mut crashed);
                for pid in 0..p {
                    assert_eq!(
                        stalled.contains(pid),
                        plan.stalled(step, pid),
                        "stalled mismatch at step {step} pid {pid}"
                    );
                    assert_eq!(
                        crashed.contains(pid),
                        plan.crashed(step, pid),
                        "crashed mismatch at step {step} pid {pid}"
                    );
                }
            }
        };
        // Scripted-windows-only plan exercises the O(windows) fast path,
        // including overlapping windows, a word-boundary pid, and a window
        // pid outside the machine (ignored, like the per-pid scan).
        let scripted = FaultPlan::new(FaultSpec::none(), 5)
            .with_stall_window(StallWindow::new(3, 2, 4).unwrap())
            .with_stall_window(StallWindow::new(3, 4, 1).unwrap())
            .with_stall_window(StallWindow::new(64, 0, 2).unwrap())
            .with_crash_window(CrashWindow::new(69, 1, 3).unwrap())
            .with_crash_window(CrashWindow::new(200, 0, 9).unwrap());
        check(&scripted, 0..8);
        // Nonzero seeded rates take the per-pid fallback; windows still
        // apply on top of the random faults.
        let seeded = FaultPlan::new(
            FaultSpec {
                stall_rate: 0.3,
                crash_rate: 0.2,
                max_crash_len: 2,
                ..FaultSpec::none()
            },
            9,
        )
        .with_stall_window(StallWindow::new(10, 0, 3).unwrap());
        check(&seeded, 0..6);
    }

    #[test]
    fn different_seeds_differ_somewhere() {
        let a = FaultPlan::new(FaultSpec::drop_only(0.5), 1);
        let b = FaultPlan::new(FaultSpec::drop_only(0.5), 2);
        let differs = (0..64).any(|i| a.fate_of(0, 0, i) != b.fate_of(0, 0, i));
        assert!(differs, "seeds 1 and 2 produced identical fate sequences");
    }

    #[test]
    fn drop_rate_is_roughly_respected() {
        let plan = FaultPlan::new(FaultSpec::drop_only(0.25), 11);
        let n = 4000;
        let dropped = (0..n)
            .filter(|&i| plan.fate_of(i as u64 / 64, (i % 64) as Pid, i / 64) == Fate::Drop)
            .count();
        let rate = dropped as f64 / n as f64;
        assert!((rate - 0.25).abs() < 0.05, "observed drop rate {rate}");
    }

    #[test]
    fn retransmissions_reroll_their_fate() {
        // A message dropped in superstep s must not be doomed forever: the
        // same (src, msg_idx) in a later superstep draws a fresh fate.
        let plan = FaultPlan::new(FaultSpec::drop_only(0.5), 3);
        let mut escaped = false;
        for step in 0..64 {
            if plan.fate_of(step, 0, 0) == Fate::Deliver {
                escaped = true;
                break;
            }
        }
        assert!(escaped, "message never re-rolled out of the drop fate");
    }

    #[test]
    fn delay_and_displacement_magnitudes_stay_in_range() {
        let spec = FaultSpec {
            delay_rate: 0.5,
            max_delay: 3,
            displace_rate: 0.5,
            max_displacement: 5,
            ..FaultSpec::none()
        };
        let plan = FaultPlan::new(spec, 9);
        for step in 0..100 {
            match plan.fate_of(step, 1, 2) {
                Fate::Delay(k) => assert!((1..=3).contains(&k)),
                Fate::Displace(d) => assert!((1..=5).contains(&d)),
                Fate::Deliver => {}
                other => panic!("unexpected fate {other:?}"),
            }
        }
    }

    #[test]
    fn stall_windows_are_deterministic_and_bounded() {
        let plan = FaultPlan::new(FaultSpec::none(), 0)
            .with_stall_window(StallWindow::new(2, 5, 3).unwrap());
        for step in 0..12 {
            assert_eq!(plan.stalled(step, 2), (5..8).contains(&step), "step {step}");
            assert!(!plan.stalled(step, 1));
        }
    }

    #[test]
    fn crash_windows_are_deterministic_and_bounded() {
        let plan = FaultPlan::new(FaultSpec::none(), 0)
            .with_crash_window(CrashWindow::new(1, 2, 4).unwrap());
        for step in 0..12 {
            assert_eq!(
                plan.crashed_at(step, 1),
                (2..6).contains(&step),
                "step {step}"
            );
            assert!(!plan.crashed_at(step, 0));
            assert!(!plan.stalled(step, 1), "a crash is not a stall");
        }
    }

    #[test]
    fn window_constructors_reject_empty_and_inverted_ranges() {
        // The satellite bugfix: these all used to build silently-inert
        // windows via the struct literal.
        assert_eq!(StallWindow::new(0, 3, 0), Err(WindowError::Empty));
        assert_eq!(CrashWindow::new(0, 3, 0), Err(WindowError::Empty));
        assert_eq!(
            StallWindow::from_range(0, 5, 5),
            Err(WindowError::Inverted { start: 5, end: 5 })
        );
        assert_eq!(
            CrashWindow::from_range(1, 7, 4),
            Err(WindowError::Inverted { start: 7, end: 4 })
        );
        assert_eq!(StallWindow::new(0, u64::MAX, 2), Err(WindowError::Overflow));
        assert_eq!(
            CrashWindow::new(0, u64::MAX - 1, 3),
            Err(WindowError::Overflow)
        );
        // Valid windows round-trip through the accessors.
        let w = StallWindow::from_range(3, 2, 6).unwrap();
        assert_eq!((w.pid(), w.start(), w.len()), (3, 2, 4));
        let c = CrashWindow::new(1, 0, 1).unwrap();
        assert_eq!((c.pid(), c.start(), c.len()), (1, 0, 1));
    }

    #[test]
    fn seeded_crashes_are_pure_and_respect_max_len() {
        let spec = FaultSpec {
            crash_rate: 0.2,
            max_crash_len: 3,
            ..FaultSpec::none()
        };
        let a = FaultPlan::new(spec, 13);
        let b = FaultPlan::new(spec, 13);
        let mut saw_crash = false;
        for pid in 0..8 {
            let mut run = 0u64;
            let mut longest = 0u64;
            for step in 0..200 {
                let dead = a.crashed_at(step, pid);
                assert_eq!(dead, b.crashed_at(step, pid), "purity at ({step},{pid})");
                if dead {
                    saw_crash = true;
                    run += 1;
                    longest = longest.max(run);
                } else {
                    run = 0;
                }
            }
            // Overlapping onsets can chain outages, but any *isolated*
            // outage is at most max_crash_len; a run far past the merge
            // bound would mean the lookback reconstruction is wrong.
            assert!(longest <= 40, "implausible outage length {longest}");
        }
        assert!(saw_crash, "rate 0.2 over 1600 draws produced no crash");
    }

    #[test]
    #[should_panic(expected = "invalid fault spec")]
    fn overfull_rates_are_rejected() {
        let spec = FaultSpec {
            drop_rate: 0.7,
            duplicate_rate: 0.5,
            ..FaultSpec::none()
        };
        let _ = FaultPlan::new(spec, 0);
    }

    mod batch_props {
        use super::*;
        use pbw_sim::BatchDests;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            // The batched fate kernel is bit-identical to the scalar
            // per-message path — including n = 0, n = 1, and batch sizes
            // that are not a multiple of any internal lane width.
            #[test]
            fn fate_batch_matches_scalar_fate(
                seed in 0u64..u64::MAX,
                superstep in 0u64..1_000,
                src in 0usize..4_096,
                n in 0usize..200,
                rates in (0u32..4, 0u32..4, 0u32..4, 0u32..4),
            ) {
                let (d, dup, del, disp) = rates;
                let spec = FaultSpec {
                    drop_rate: d as f64 * 0.08,
                    duplicate_rate: dup as f64 * 0.08,
                    delay_rate: del as f64 * 0.08,
                    max_delay: 5,
                    displace_rate: disp as f64 * 0.08,
                    max_displacement: 7,
                    ..FaultSpec::none()
                };
                let plan = FaultPlan::new(spec, seed);
                let slots: Vec<u64> = (0..n as u64).collect();
                let mut batch = Vec::new();
                plan.fate_batch(superstep, src, BatchDests::Uniform(0), &slots, &mut batch);
                let scalar: Vec<Fate> = (0..n)
                    .map(|i| plan.fate_of(superstep, src, i))
                    .collect();
                prop_assert_eq!(batch, scalar);
            }

            // The spec-free fast path (resize to Deliver) matches too.
            #[test]
            fn fate_batch_matches_scalar_when_spec_is_none(
                seed in 0u64..u64::MAX,
                superstep in 0u64..1_000,
                src in 0usize..4_096,
                n in 0usize..50,
            ) {
                let plan = FaultPlan::new(FaultSpec::none(), seed);
                let mut batch = Vec::new();
                plan.fates_of(superstep, src, n, &mut batch);
                prop_assert_eq!(batch.len(), n);
                prop_assert!(batch.iter().all(|f| *f == Fate::Deliver));
            }
        }
    }
}
