//! The Section 4 naive emulation: any g-model execution runs on the
//! corresponding m-model within the same time bound.
//!
//! > *"This is done by grouping the QSM(g) or the BSP(g) processors
//! > (arbitrarily) into g groups of p/g processors each, and by subdividing
//! > each communication step of the QSM(g) or the BSP(g) into g substeps.
//! > The processors send their messages in the ith substep of each
//! > communication step."*
//!
//! Mechanically, on a recorded [`SuperstepProfile`]: a step in which the
//! whole machine injected `m_t` messages is re-laid-out as `⌈m_t/m⌉`
//! substeps of at most `m` injections each. The emulated profile's BSP(m)
//! cost is then at most the original's BSP(g) cost whenever `g = p/m`
//! (checked by [`emulation_preserves_cost`] and property tests).

use crate::cost::{BspG, BspM, CostModel};
use crate::penalty::PenaltyFn;
use crate::profile::SuperstepProfile;

/// Re-lay-out a profile's injections so no step carries more than `m`:
/// each original step becomes `⌈m_t/m⌉` substeps.
///
/// Work, traffic maxima and contention are unchanged — only injection
/// timing moves, exactly the freedom the globally-limited models grant.
pub fn emulate_on_m(profile: &SuperstepProfile, m: usize) -> SuperstepProfile {
    assert!(m > 0);
    let mut injections = Vec::with_capacity(profile.injections.len());
    for &m_t in &profile.injections {
        if m_t == 0 {
            injections.push(0);
            continue;
        }
        let mut left = m_t;
        while left > 0 {
            let this = left.min(m as u64);
            injections.push(this);
            left -= this;
        }
    }
    SuperstepProfile {
        injections,
        ..profile.clone()
    }
}

/// The emulation guarantee, as an executable check: the emulated profile's
/// BSP(m, exponential) cost does not exceed the original's BSP(g) cost at
/// matched aggregate bandwidth (`g = p/m`), up to the stated `+L` floor.
pub fn emulation_preserves_cost(profile: &SuperstepProfile, g: u64, m: usize, l: u64) -> bool {
    let original = BspG { g, l }.superstep_cost(profile);
    let emulated = BspM {
        m,
        l,
        penalty: PenaltyFn::Exponential,
    }
    .superstep_cost(&emulate_on_m(profile, m));
    emulated <= original + 1e-9
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::ProfileBuilder;

    fn bursty_profile(p: u64, h: u64) -> SuperstepProfile {
        // Every processor pipelines h messages from slot 0 (a g-model
        // program's natural shape): slot t carries p messages for t < h.
        let mut b = ProfileBuilder::new();
        b.record_traffic(h, h);
        for t in 0..h {
            b.record_injections(t, p);
        }
        b.build()
    }

    #[test]
    fn emulated_slots_never_exceed_m() {
        let prof = bursty_profile(64, 5);
        let em = emulate_on_m(&prof, 8);
        assert!(em.injections.iter().all(|&x| x <= 8));
        assert_eq!(em.total_messages, prof.total_messages);
        assert_eq!(em.injections.iter().sum::<u64>(), 64 * 5);
    }

    #[test]
    fn substep_count_matches_paper() {
        // One step of p messages becomes exactly g = p/m substeps.
        let mut b = ProfileBuilder::new();
        b.record_injections(0, 64);
        let em = emulate_on_m(&b.build(), 8);
        assert_eq!(em.injections.len(), 8);
    }

    #[test]
    fn zero_steps_preserved() {
        let mut b = ProfileBuilder::new();
        b.record_injections(0, 4).record_injections(2, 4);
        let em = emulate_on_m(&b.build(), 8);
        // Slot 1 (empty) survives as an empty slot.
        assert_eq!(em.injections, vec![4, 0, 4]);
    }

    #[test]
    fn cost_preservation_on_bursty_runs() {
        for (p, h) in [(64u64, 1u64), (64, 8), (256, 3)] {
            let prof = bursty_profile(p, h);
            let m = 8usize;
            let g = p / m as u64;
            assert!(emulation_preserves_cost(&prof, g, m, 4), "p={p} h={h}");
        }
    }

    #[test]
    fn emulated_cost_equals_g_cost_for_full_steps() {
        // p messages per step for h steps: BSP(g) = g·h; emulated BSP(m) =
        // c_m = (p/m)·h = g·h. Exactly equal.
        let (p, h, m) = (64u64, 4u64, 8usize);
        let g = p / m as u64;
        let prof = bursty_profile(p, h);
        let em = emulate_on_m(&prof, m);
        let bsp_g = BspG { g, l: 1 }.superstep_cost(&prof);
        let bsp_m = BspM {
            m,
            l: 1,
            penalty: PenaltyFn::Exponential,
        }
        .superstep_cost(&em);
        assert_eq!(bsp_g, bsp_m);
    }
}
