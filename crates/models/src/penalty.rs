//! Overload penalty functions `f_m` of the globally-limited models.
//!
//! Section 2 of the paper defines, for a step in which `m_t` messages are
//! injected into a network of aggregate bandwidth `m`:
//!
//! ```text
//! f_m(m_t) = 0                      if m_t = 0
//! f_m(m_t) = 1                      if 1 ≤ m_t ≤ m
//! f_m(m_t) ≥ m_t / m, increasing    if m_t > m
//! ```
//!
//! Two instantiations are distinguished:
//!
//! * **Linear** (`f_m^ℓ(m_t) = m_t/m`) — the *minimum* admissible charge,
//!   used for lower bounds. Models a network that absorbs any injection rate
//!   and sustains throughput `m`.
//! * **Exponential** (`f_m^u(m_t) = e^{m_t/m − 1}` for `m_t > m`) — the
//!   pessimistic charge used for upper bounds. Models a network whose
//!   performance deteriorates drastically past its bandwidth limit; `m` is
//!   the breaking point.
//!
//! The paper's scheduling theorems are proved under the exponential penalty —
//! that is what makes "never exceed `m`" a real algorithmic obligation — and
//! the experiment harness prices schedules under both.

use std::sync::{Arc, Mutex, OnceLock};

use serde::{Deserialize, Serialize};

/// The overload charge `f_m` applied per machine step by BSP(m)/QSM(m).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum PenaltyFn {
    /// `f_m^ℓ(m_t) = m_t / m` when `m_t > m`: the minimum admissible charge
    /// (lower-bound semantics).
    Linear,
    /// `f_m^u(m_t) = e^{m_t/m − 1}` when `m_t > m`: the pessimistic charge
    /// (upper-bound semantics). This is the default because the paper's
    /// algorithms are required to perform well under it.
    #[default]
    Exponential,
}

impl PenaltyFn {
    /// The per-step charge `f_m(m_t)` for injecting `m_t` messages into a
    /// network of aggregate bandwidth `m`.
    ///
    /// Saturates at `f64::MAX` rather than overflowing to infinity so that
    /// comparisons and sums stay well-behaved in degenerate configurations.
    ///
    /// # Panics
    /// Panics if `m == 0`.
    #[inline]
    pub fn charge(&self, m_t: u64, m: usize) -> f64 {
        assert!(m > 0, "aggregate bandwidth m must be positive");
        if m_t == 0 {
            return 0.0;
        }
        if m_t as u128 <= m as u128 {
            return 1.0;
        }
        let ratio = m_t as f64 / m as f64;
        match self {
            PenaltyFn::Linear => ratio,
            PenaltyFn::Exponential => {
                let v = (ratio - 1.0).exp();
                if v.is_finite() {
                    v
                } else {
                    f64::MAX
                }
            }
        }
    }

    /// Total superstep communication charge `c_m = Σ_t f_m(m_t)` for a
    /// per-step injection histogram.
    #[inline]
    pub fn total_charge(&self, injections: &[u64], m: usize) -> f64 {
        if injections.is_empty() {
            return 0.0;
        }
        let table = PenaltyTable::shared(*self, m);
        table.total_charge(injections)
    }

    /// The memoized charge table for this penalty at bandwidth `m`, shared
    /// process-wide. Convenience alias for [`PenaltyTable::shared`].
    #[inline]
    pub fn table(&self, m: usize) -> Arc<PenaltyTable> {
        PenaltyTable::shared(*self, m)
    }
}

/// Default memoized span, as a multiple of `m`: loads up to `8·m` hit the
/// lookup table; rarer heavier loads fall back to the direct computation.
const TABLE_SPAN_FACTOR: usize = 8;

/// How many distinct `(PenaltyFn, m)` tables the process-wide cache retains.
/// Simulations use a handful of bandwidths; the bound only matters for
/// adversarial sweeps over thousands of distinct `m` values.
const SHARED_CACHE_CAP: usize = 64;

/// A memoized `f_m` table: the charge for every load `m_t ∈ 0..=8·m` is
/// precomputed once, so the per-slot pricing done every superstep by the
/// engines and the trace layer is a bounds check + indexed load instead of a
/// division and an `exp` call.
///
/// Bit-exactness is by construction: every table entry is produced by calling
/// [`PenaltyFn::charge`] itself, and loads beyond the memoized span fall back
/// to the same function, so `table.charge(m_t) == penalty.charge(m_t, m)`
/// bit-for-bit for all `m_t`.
#[derive(Debug, Clone)]
pub struct PenaltyTable {
    penalty: PenaltyFn,
    m: usize,
    table: Vec<f64>,
}

impl PenaltyTable {
    /// Build a table for `penalty` at bandwidth `m`, memoizing loads up to
    /// `8·m`.
    ///
    /// # Panics
    /// Panics if `m == 0` (no admissible bandwidth).
    pub fn new(penalty: PenaltyFn, m: usize) -> Self {
        assert!(m > 0, "aggregate bandwidth m must be positive");
        let span = m.saturating_mul(TABLE_SPAN_FACTOR);
        let table = (0..=span as u64)
            .map(|m_t| penalty.charge(m_t, m))
            .collect();
        PenaltyTable { penalty, m, table }
    }

    /// The process-wide shared table for `(penalty, m)`, built on first use.
    ///
    /// # Panics
    /// Panics if `m == 0`.
    pub fn shared(penalty: PenaltyFn, m: usize) -> Arc<PenaltyTable> {
        assert!(m > 0, "aggregate bandwidth m must be positive");
        static CACHE: OnceLock<Mutex<Vec<Arc<PenaltyTable>>>> = OnceLock::new();
        let cache = CACHE.get_or_init(|| Mutex::new(Vec::new()));
        // A poisoned cache only ever holds fully-built tables, so recover.
        let mut tables = match cache.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        if let Some(t) = tables.iter().find(|t| t.penalty == penalty && t.m == m) {
            return Arc::clone(t);
        }
        let t = Arc::new(PenaltyTable::new(penalty, m));
        if tables.len() == SHARED_CACHE_CAP {
            // Evict the oldest entry; callers holding an Arc keep theirs.
            tables.remove(0);
        }
        tables.push(Arc::clone(&t));
        t
    }

    /// The penalty function this table memoizes.
    #[inline]
    pub fn penalty(&self) -> PenaltyFn {
        self.penalty
    }

    /// The aggregate bandwidth `m` this table is built for.
    #[inline]
    pub fn bandwidth(&self) -> usize {
        self.m
    }

    /// The per-step charge `f_m(m_t)`: a table lookup for `m_t ≤ 8·m`, the
    /// direct computation beyond.
    #[inline]
    pub fn charge(&self, m_t: u64) -> f64 {
        match self.table.get(m_t as usize) {
            Some(&c) => c,
            None => self.penalty.charge(m_t, self.m),
        }
    }

    /// Total superstep communication charge `c_m = Σ_t f_m(m_t)`.
    ///
    /// Batched: one branch-free max-scan over the `u64` histogram decides
    /// whether *every* load is memoized; on that (overwhelmingly common)
    /// path the sum is a tight gather over the table with no per-element
    /// fallback test left in the loop. Terms are added left-to-right from
    /// `0.0` either way — the same order `iter().map(charge).sum()` used —
    /// so the result is bit-identical to the per-element path (pinned by a
    /// proptest below).
    #[inline]
    pub fn total_charge(&self, injections: &[u64]) -> f64 {
        let memoized =
            injections.iter().fold(0u64, |top, &m_t| top.max(m_t)) < self.table.len() as u64;
        // `iter().sum::<f64>()` folds from -0.0 (the true additive identity
        // for IEEE addition); seed identically so even the empty histogram
        // is bit-equal.
        let mut sum = -0.0f64;
        if memoized {
            for &m_t in injections {
                sum += self.table[m_t as usize];
            }
        } else {
            for &m_t in injections {
                sum += self.charge(m_t);
            }
        }
        sum
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_injections_free() {
        assert_eq!(PenaltyFn::Linear.charge(0, 8), 0.0);
        assert_eq!(PenaltyFn::Exponential.charge(0, 8), 0.0);
    }

    #[test]
    fn within_budget_costs_one() {
        for m_t in 1..=8 {
            assert_eq!(PenaltyFn::Linear.charge(m_t, 8), 1.0);
            assert_eq!(PenaltyFn::Exponential.charge(m_t, 8), 1.0);
        }
    }

    #[test]
    fn linear_charge_is_ratio() {
        assert!((PenaltyFn::Linear.charge(16, 8) - 2.0).abs() < 1e-12);
        assert!((PenaltyFn::Linear.charge(24, 8) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn exponential_charge_matches_formula() {
        let m = 8usize;
        for m_t in [9u64, 16, 32, 80] {
            let expect = (m_t as f64 / m as f64 - 1.0).exp();
            assert!((PenaltyFn::Exponential.charge(m_t, m) - expect).abs() < 1e-9);
        }
    }

    #[test]
    fn exponential_dominates_linear() {
        // f_m^u(m_t) ≥ f_m^ℓ(m_t) for all m_t ≥ m (stated in Section 2).
        for m in [1usize, 2, 8, 64, 1000] {
            for mult in 1..40u64 {
                let m_t = m as u64 * mult + 3;
                assert!(
                    PenaltyFn::Exponential.charge(m_t, m) >= PenaltyFn::Linear.charge(m_t, m),
                    "m={m} m_t={m_t}"
                );
            }
        }
    }

    #[test]
    fn exponential_saturates_instead_of_inf() {
        let v = PenaltyFn::Exponential.charge(u64::MAX, 1);
        assert!(v.is_finite());
        assert_eq!(v, f64::MAX);
    }

    #[test]
    fn total_charge_sums_steps() {
        let inj = [0u64, 4, 8, 16];
        let m = 8usize;
        let lin = PenaltyFn::Linear.total_charge(&inj, m);
        assert!((lin - (0.0 + 1.0 + 1.0 + 2.0)).abs() < 1e-12);
        let exp = PenaltyFn::Exponential.total_charge(&inj, m);
        assert!((exp - (0.0 + 1.0 + 1.0 + 1.0f64.exp())).abs() < 1e-9);
    }

    #[test]
    fn charge_is_monotone_in_m_t() {
        for model in [PenaltyFn::Linear, PenaltyFn::Exponential] {
            let mut prev = 0.0;
            for m_t in 0..100u64 {
                let c = model.charge(m_t, 10);
                assert!(c >= prev, "{model:?} not monotone at m_t={m_t}");
                prev = c;
            }
        }
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_bandwidth_panics() {
        let _ = PenaltyFn::Linear.charge(1, 0);
    }

    #[test]
    fn table_matches_direct_charge_bit_exact() {
        for penalty in [PenaltyFn::Linear, PenaltyFn::Exponential] {
            for m in [1usize, 2, 7, 64] {
                let table = PenaltyTable::new(penalty, m);
                // Memoized span, plus loads past it (fallback path).
                for m_t in 0..=(8 * m as u64 + 17) {
                    let direct = penalty.charge(m_t, m);
                    let memo = table.charge(m_t);
                    assert_eq!(
                        direct.to_bits(),
                        memo.to_bits(),
                        "{penalty:?} m={m} m_t={m_t}"
                    );
                }
            }
        }
    }

    #[test]
    fn shared_table_is_cached_per_key() {
        let a = PenaltyTable::shared(PenaltyFn::Exponential, 12);
        let b = PenaltyTable::shared(PenaltyFn::Exponential, 12);
        assert!(Arc::ptr_eq(&a, &b));
        let c = PenaltyTable::shared(PenaltyFn::Linear, 12);
        assert!(!Arc::ptr_eq(&a, &c));
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn table_zero_bandwidth_panics() {
        let _ = PenaltyTable::new(PenaltyFn::Exponential, 0);
    }

    #[test]
    fn table_metadata_accessors() {
        let t = PenaltyTable::new(PenaltyFn::Linear, 5);
        assert_eq!(t.penalty(), PenaltyFn::Linear);
        assert_eq!(t.bandwidth(), 5);
    }

    mod batch_props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            // The batched gather sum is bit-identical to the per-element
            // `iter().map(charge).sum()` it replaced — empty histograms, a
            // single step, odd lengths, and loads past the memoized span
            // (which force the fallback branch) all included.
            #[test]
            fn batched_total_charge_is_bit_exact(
                m in 1usize..32,
                kind in 0u8..2,
                injections in proptest::collection::vec(0u64..2_000, 0..50),
            ) {
                let penalty = if kind == 0 {
                    PenaltyFn::Linear
                } else {
                    PenaltyFn::Exponential
                };
                let table = PenaltyTable::new(penalty, m);
                let batched = table.total_charge(&injections);
                let scalar: f64 = injections.iter().map(|&m_t| table.charge(m_t)).sum();
                prop_assert_eq!(batched.to_bits(), scalar.to_bits());
            }
        }
    }
}
