//! Machine parameters shared by all four models.
//!
//! The paper compares locally- and globally-limited models at equal aggregate
//! bandwidth, i.e. `p · (1/g) = m`, or `g = p/m`. [`MachineParams`] stores a
//! consistent `(p, g, m, L)` quadruple and provides the constructors used
//! throughout the experiment suite.

use serde::{Deserialize, Serialize};

/// Parameters of a simulated machine: processor count `p`, per-processor gap
/// `g` (locally-limited models), aggregate bandwidth `m` (globally-limited
/// models) and latency/periodicity `L`.
///
/// The invariant `g = p / m` (aggregate-bandwidth parity, Section 4 of the
/// paper) is maintained by the constructors; [`MachineParams::new_unchecked`]
/// is available for deliberately mismatched configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MachineParams {
    /// Number of processors `p`.
    pub p: usize,
    /// Per-processor bandwidth gap `g ≥ 1` of BSP(g)/QSM(g).
    pub g: u64,
    /// Aggregate bandwidth `m ≥ 1` of BSP(m)/QSM(m): at most `m` message
    /// injections per machine step are free of penalty.
    pub m: usize,
    /// Latency / periodicity parameter `L ≥ 1` of the BSP models (message
    /// latency plus barrier-synchronization overhead).
    pub l: u64,
}

impl MachineParams {
    /// Build parameters from `(p, g, L)`, deriving `m = p / g` so that both
    /// model families have the same aggregate bandwidth.
    ///
    /// # Panics
    /// Panics if `g` is zero, `g` does not divide `p`, or `p == 0`.
    pub fn from_gap(p: usize, g: u64, l: u64) -> Self {
        assert!(p > 0, "p must be positive");
        assert!(g > 0, "g must be positive");
        assert!(l > 0, "L must be positive");
        assert!(
            (p as u64).is_multiple_of(g),
            "g must divide p for aggregate-bandwidth parity (p={p}, g={g})"
        );
        Self {
            p,
            g,
            m: (p as u64 / g) as usize,
            l,
        }
    }

    /// Build parameters from `(p, m, L)`, deriving `g = p / m`.
    ///
    /// # Panics
    /// Panics if `m` is zero, `m` does not divide `p`, or `p == 0`.
    pub fn from_bandwidth(p: usize, m: usize, l: u64) -> Self {
        assert!(p > 0, "p must be positive");
        assert!(m > 0, "m must be positive");
        assert!(l > 0, "L must be positive");
        assert!(
            p.is_multiple_of(m),
            "m must divide p for aggregate-bandwidth parity (p={p}, m={m})"
        );
        Self {
            p,
            g: (p / m) as u64,
            m,
            l,
        }
    }

    /// Build parameters without enforcing `g = p/m`. Used by ablation
    /// experiments that deliberately break aggregate-bandwidth parity.
    pub fn new_unchecked(p: usize, g: u64, m: usize, l: u64) -> Self {
        assert!(
            p > 0 && g > 0 && m > 0 && l > 0,
            "parameters must be positive"
        );
        Self { p, g, m, l }
    }

    /// Whether aggregate bandwidth parity `g = p/m` holds.
    pub fn parity_holds(&self) -> bool {
        self.p.is_multiple_of(self.m) && (self.p / self.m) as u64 == self.g
    }

    /// The ratio `L / g` as a float (fan-out of the optimal BSP(g) broadcast
    /// tree and the knob of Theorem 4.1).
    pub fn l_over_g(&self) -> f64 {
        self.l as f64 / self.g as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_gap_derives_m() {
        let mp = MachineParams::from_gap(1024, 16, 64);
        assert_eq!(mp.m, 64);
        assert!(mp.parity_holds());
    }

    #[test]
    fn from_bandwidth_derives_g() {
        let mp = MachineParams::from_bandwidth(1024, 64, 32);
        assert_eq!(mp.g, 16);
        assert!(mp.parity_holds());
    }

    #[test]
    fn unchecked_allows_mismatch() {
        let mp = MachineParams::new_unchecked(100, 7, 9, 5);
        assert!(!mp.parity_holds());
    }

    #[test]
    #[should_panic(expected = "g must divide p")]
    fn from_gap_rejects_nondivisor() {
        let _ = MachineParams::from_gap(100, 7, 4);
    }

    #[test]
    #[should_panic(expected = "m must divide p")]
    fn from_bandwidth_rejects_nondivisor() {
        let _ = MachineParams::from_bandwidth(100, 7, 4);
    }

    #[test]
    fn l_over_g() {
        let mp = MachineParams::from_gap(64, 8, 32);
        assert!((mp.l_over_g() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn g_equals_one_means_m_equals_p() {
        let mp = MachineParams::from_gap(256, 1, 4);
        assert_eq!(mp.m, 256);
    }
}
