//! Exact records of what happened during a superstep.
//!
//! A [`SuperstepProfile`] captures every quantity any of the four cost models
//! needs: the maximum local work `w`, per-processor send/receive maxima
//! (`h`), the per-step injection histogram (`m_t` for every step `t` of the
//! superstep, from which `c_m` is computed), the total message count `n`
//! (for the self-scheduling metric) and, for the QSM models, per-processor
//! read/write maxima and the maximum location contention `κ`.
//!
//! Profiles are produced by the simulator in `pbw-sim` but can also be built
//! directly (e.g. by the pure schedule evaluators in `pbw-core`) through
//! [`ProfileBuilder`].

use serde::{Deserialize, Serialize};

/// Everything the cost models of Section 2 need to price one superstep.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SuperstepProfile {
    /// `w = max_i w_i`: maximum local work performed by any processor.
    pub max_work: u64,
    /// `max_i s_i`: maximum number of messages sent by any processor.
    pub max_sent: u64,
    /// `max_i r_i`: maximum number of messages received by any processor.
    pub max_received: u64,
    /// `n`: total number of messages sent during the superstep.
    pub total_messages: u64,
    /// Injection histogram: `injections[t] = m_t`, the number of message
    /// sends initiated in step `t` of the superstep. Its length `τ` is the
    /// number of (occupied) steps of the superstep.
    pub injections: Vec<u64>,
    /// `max_i r_i` over QSM shared-memory reads.
    pub max_reads: u64,
    /// `max_i w_i` over QSM shared-memory writes.
    pub max_writes: u64,
    /// `κ`: maximum, over all shared locations, of the number of processors
    /// reading it or the number of processors writing it (QSM only).
    pub max_contention: u64,
}

impl SuperstepProfile {
    /// `h` as defined for the BSP models: `max_i max(s_i, r_i)`.
    #[inline]
    pub fn h_bsp(&self) -> u64 {
        self.max_sent.max(self.max_received)
    }

    /// `h` as defined for the QSM models: `max(1, max_i {r_i, w_i})`.
    #[inline]
    pub fn h_qsm(&self) -> u64 {
        self.max_reads.max(self.max_writes).max(1)
    }

    /// Number of steps `τ` spanned by the injection schedule.
    #[inline]
    pub fn num_steps(&self) -> usize {
        self.injections.len()
    }

    /// Merge another profile *sequentially after* this one, as if the two
    /// supersteps were fused: injection histograms concatenate, maxima
    /// combine, totals add.
    ///
    /// Used when an algorithm's cost is reported superstep-by-superstep but a
    /// caller wants a single aggregate profile.
    pub fn concat(&self, later: &SuperstepProfile) -> SuperstepProfile {
        let mut injections = Vec::with_capacity(self.injections.len() + later.injections.len());
        injections.extend_from_slice(&self.injections);
        injections.extend_from_slice(&later.injections);
        SuperstepProfile {
            max_work: self.max_work.max(later.max_work),
            max_sent: self.max_sent.max(later.max_sent),
            max_received: self.max_received.max(later.max_received),
            total_messages: self.total_messages + later.total_messages,
            injections,
            max_reads: self.max_reads.max(later.max_reads),
            max_writes: self.max_writes.max(later.max_writes),
            max_contention: self.max_contention.max(later.max_contention),
        }
    }
}

/// Incremental builder for [`SuperstepProfile`], fed with per-processor
/// observations by the simulator or a schedule evaluator.
#[derive(Debug, Clone, Default)]
pub struct ProfileBuilder {
    profile: SuperstepProfile,
}

impl ProfileBuilder {
    /// Start an empty profile.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record processor-local work of `w` units (taking the max across
    /// processors).
    pub fn record_work(&mut self, w: u64) -> &mut Self {
        self.profile.max_work = self.profile.max_work.max(w);
        self
    }

    /// Record that some processor sent `s` messages and received `r`.
    pub fn record_traffic(&mut self, sent: u64, received: u64) -> &mut Self {
        self.profile.max_sent = self.profile.max_sent.max(sent);
        self.profile.max_received = self.profile.max_received.max(received);
        self
    }

    /// Record a message injection at step `slot` (0-based within the
    /// superstep), growing the histogram as needed.
    pub fn record_injection(&mut self, slot: u64) -> &mut Self {
        self.record_injections(slot, 1)
    }

    /// Record `count` message injections at step `slot`.
    pub fn record_injections(&mut self, slot: u64, count: u64) -> &mut Self {
        let idx = usize::try_from(slot).expect("slot exceeds addressable range");
        if self.profile.injections.len() <= idx {
            self.profile.injections.resize(idx + 1, 0);
        }
        self.profile.injections[idx] += count;
        self.profile.total_messages += count;
        self
    }

    /// Record one injection per slot in `slots` — the batched form of
    /// calling [`ProfileBuilder::record_injection`] once per element, to
    /// which it is bit-equivalent (pinned by a proptest below).
    ///
    /// The batch hoists what the per-call form repeats per message: one
    /// max-scan over the `u64` lane (a branch-free reduction rustc
    /// autovectorizes) decides the final histogram length, one resize grows
    /// it, and the scatter loop then increments with no bounds/`try_from`
    /// checks in its body beyond the slice index.
    pub fn record_injections_batch(&mut self, slots: &[u64]) -> &mut Self {
        let Some(&max_slot) = slots.iter().max() else {
            return self;
        };
        let top = usize::try_from(max_slot).expect("slot exceeds addressable range");
        if self.profile.injections.len() <= top {
            self.profile.injections.resize(top + 1, 0);
        }
        for &slot in slots {
            self.profile.injections[slot as usize] += 1;
        }
        self.profile.total_messages += slots.len() as u64;
        self
    }

    /// Record the injections of a whole population of *sequentially-slotted*
    /// senders at once: `senders_by_len[k]` senders each injected exactly
    /// `k + 1` messages at slots `0..=k`. Bit-equivalent to calling
    /// [`ProfileBuilder::record_injections_batch`] with `[0, 1, .., k]` that
    /// many times (the histogram is a sum, so per-sender order is
    /// unobservable) — but costs O(max len), not O(messages). This is the
    /// aggregation the engines' delivery pass uses for plain `send` traffic,
    /// where every sender's slots are `0..n` by construction.
    pub fn record_injections_by_len(&mut self, senders_by_len: &[u64]) -> &mut Self {
        // Trailing zero buckets must not stretch the histogram: only the
        // longest sender actually observed decides its final length.
        let top = match senders_by_len.iter().rposition(|&c| c != 0) {
            Some(i) => i + 1,
            None => return self,
        };
        if self.profile.injections.len() < top {
            self.profile.injections.resize(top, 0);
        }
        // Slot `k` receives one injection from every sender with length
        // > k: a suffix sum over the length buckets.
        let mut senders_at_least = 0u64;
        let mut total = 0u64;
        for k in (0..top).rev() {
            senders_at_least += senders_by_len[k];
            total += senders_by_len[k] * (k as u64 + 1);
            self.profile.injections[k] += senders_at_least;
        }
        self.profile.total_messages += total;
        self
    }

    /// Record that some processor issued `reads` shared-memory reads and
    /// `writes` shared-memory writes (QSM).
    pub fn record_memory_ops(&mut self, reads: u64, writes: u64) -> &mut Self {
        self.profile.max_reads = self.profile.max_reads.max(reads);
        self.profile.max_writes = self.profile.max_writes.max(writes);
        self
    }

    /// Record location contention `κ_x` for some location (taking the max).
    pub fn record_contention(&mut self, kappa: u64) -> &mut Self {
        self.profile.max_contention = self.profile.max_contention.max(kappa);
        self
    }

    /// Record receive-side traffic from an epoch-stamped tally: one
    /// `record_traffic(0, count)` per touched destination.
    ///
    /// Untouched destinations hold zero received messages, and a zero can
    /// never raise `max_received`, so walking only the dirty list is exactly
    /// equivalent to scanning every destination — this is what makes the
    /// sparse engines' profile construction O(active) instead of O(p).
    /// Iteration order is irrelevant: the builder only takes maxima.
    pub fn record_recv_sparse(&mut self, counts: &crate::sparse::EpochCounts) -> &mut Self {
        for d in counts.touched().iter() {
            self.record_traffic(0, counts.get(d));
        }
        self
    }

    /// Finish and return the profile.
    pub fn build(self) -> SuperstepProfile {
        self.profile
    }

    /// Snapshot the profile built so far and reset the builder for the next
    /// superstep.
    ///
    /// The builder's injection histogram keeps its capacity across the
    /// reset, so an engine that holds one `ProfileBuilder` for the lifetime
    /// of a machine performs a constant number of allocations per superstep
    /// (the snapshot's own histogram) regardless of message volume.
    pub fn snapshot_reset(&mut self) -> SuperstepProfile {
        let snapshot = self.profile.clone();
        self.profile.max_work = 0;
        self.profile.max_sent = 0;
        self.profile.max_received = 0;
        self.profile.total_messages = 0;
        self.profile.injections.clear();
        self.profile.max_reads = 0;
        self.profile.max_writes = 0;
        self.profile.max_contention = 0;
        snapshot
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_tracks_maxima() {
        let mut b = ProfileBuilder::new();
        b.record_work(3).record_work(7).record_work(5);
        b.record_traffic(2, 9).record_traffic(4, 1);
        let p = b.build();
        assert_eq!(p.max_work, 7);
        assert_eq!(p.max_sent, 4);
        assert_eq!(p.max_received, 9);
        assert_eq!(p.h_bsp(), 9);
    }

    #[test]
    fn injections_build_histogram() {
        let mut b = ProfileBuilder::new();
        b.record_injection(0);
        b.record_injection(2);
        b.record_injection(2);
        b.record_injections(5, 4);
        let p = b.build();
        assert_eq!(p.injections, vec![1, 0, 2, 0, 0, 4]);
        assert_eq!(p.total_messages, 7);
        assert_eq!(p.num_steps(), 6);
    }

    #[test]
    fn qsm_h_is_at_least_one() {
        let p = SuperstepProfile::default();
        assert_eq!(p.h_qsm(), 1);
        let mut b = ProfileBuilder::new();
        b.record_memory_ops(3, 5);
        assert_eq!(b.build().h_qsm(), 5);
    }

    #[test]
    fn contention_maxes() {
        let mut b = ProfileBuilder::new();
        b.record_contention(2)
            .record_contention(17)
            .record_contention(4);
        assert_eq!(b.build().max_contention, 17);
    }

    #[test]
    fn sparse_recv_matches_dense_scan() {
        use crate::sparse::EpochCounts;
        let mut counts = EpochCounts::new(16);
        counts.add(3, 5);
        counts.add(11, 2);
        counts.add(3, 1);
        let mut sparse = ProfileBuilder::new();
        sparse.record_recv_sparse(&counts);
        let mut dense = ProfileBuilder::new();
        for d in 0..16 {
            dense.record_traffic(0, counts.get(d));
        }
        assert_eq!(sparse.build(), dense.build());
    }

    #[test]
    fn concat_fuses_sequentially() {
        let mut b1 = ProfileBuilder::new();
        b1.record_work(5)
            .record_injections(0, 3)
            .record_traffic(3, 1);
        let p1 = b1.build();
        let mut b2 = ProfileBuilder::new();
        b2.record_work(2)
            .record_injections(1, 2)
            .record_traffic(1, 4);
        let p2 = b2.build();
        let c = p1.concat(&p2);
        assert_eq!(c.max_work, 5);
        assert_eq!(c.injections, vec![3, 0, 2]);
        assert_eq!(c.total_messages, 5);
        assert_eq!(c.max_sent, 3);
        assert_eq!(c.max_received, 4);
    }

    #[test]
    fn snapshot_reset_round_trips_and_keeps_capacity() {
        let mut b = ProfileBuilder::new();
        b.record_work(5)
            .record_traffic(3, 2)
            .record_injections(4, 7);
        b.record_memory_ops(1, 2).record_contention(9);
        let first = b.snapshot_reset();
        assert_eq!(first.max_work, 5);
        assert_eq!(first.injections, vec![0, 0, 0, 0, 7]);
        assert_eq!(first.max_contention, 9);
        let cap = b.profile.injections.capacity();
        assert!(cap >= 5);
        // After the reset the builder prices a fresh superstep.
        b.record_work(1).record_injection(0);
        let second = b.snapshot_reset();
        assert_eq!(second, {
            let mut fresh = ProfileBuilder::new();
            fresh.record_work(1).record_injection(0);
            fresh.build()
        });
        assert_eq!(b.profile.injections.capacity(), cap);
    }

    #[test]
    fn empty_profile_is_neutral_for_concat() {
        let mut b = ProfileBuilder::new();
        b.record_work(4).record_injection(1);
        let p = b.build();
        let e = SuperstepProfile::default();
        assert_eq!(e.concat(&p).total_messages, p.total_messages);
        assert_eq!(p.concat(&e).max_work, 4);
    }

    mod batch_props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            // The batched injection scatter is bit-identical to recording
            // each slot individually — including the empty batch, a single
            // slot, odd tail lengths, and a builder with prior history.
            #[test]
            fn injections_batch_matches_scalar(
                slots in proptest::collection::vec(0u64..64, 0..50),
                pre in proptest::collection::vec(0u64..16, 0..4),
            ) {
                let mut batch = ProfileBuilder::new();
                for &s in &pre {
                    batch.record_injection(s);
                }
                batch.record_injections_batch(&slots);
                let mut scalar = ProfileBuilder::new();
                for &s in &pre {
                    scalar.record_injection(s);
                }
                for &s in &slots {
                    scalar.record_injection(s);
                }
                prop_assert_eq!(batch.build(), scalar.build());
            }
        }
    }
}
