//! Epoch-stamped sparse counters for the engines' per-superstep tallies.
//!
//! The BSP/QSM/PRAM engines keep several dense per-index tally vectors
//! (per-destination arena counts, per-processor receive counts, per-address
//! reader/writer counts). Clearing those with `fill(0)` costs Θ(table size)
//! every superstep even when only a handful of indices are touched — the
//! dense floor the active-set execution path removes.
//!
//! An [`EpochCounts`] replaces `fill(0)` with an epoch stamp: every slot
//! carries the epoch at which it was last written, and a slot's count is
//! *valid only if its stamp equals the current epoch*. Resetting the table
//! is then one epoch bump plus clearing the dirty list — O(1) — and a full
//! pass over the table never happens. The `touched` list records every index
//! written this epoch, in first-touch order (deterministic: it mirrors the
//! engine's sequential counting order), so consumers can iterate exactly the
//! dirty set instead of all slots.
//!
//! The epoch counter is a `u64` that only increments; at one reset per
//! superstep it cannot wrap within any realistic run, so a stale stamp can
//! never alias the current epoch.

/// A `u64` tally table with O(1) reset and dirty-list iteration.
#[derive(Debug, Clone, Default)]
pub struct EpochCounts {
    counts: Vec<u64>,
    stamps: Vec<u64>,
    epoch: u64,
    touched: Vec<usize>,
}

impl EpochCounts {
    /// A table of `n` slots, all reading 0.
    pub fn new(n: usize) -> Self {
        Self {
            counts: vec![0; n],
            // Stamps start below the first epoch, so every slot is stale
            // (i.e. reads 0) until first touched.
            stamps: vec![0; n],
            epoch: 1,
            touched: Vec::new(),
        }
    }

    /// Number of slots.
    #[inline]
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// Whether the table has zero slots.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Reset every slot to 0 by bumping the epoch. O(1) — no slot is
    /// actually written.
    #[inline]
    pub fn reset(&mut self) {
        self.epoch += 1;
        self.touched.clear();
    }

    /// Add `n` to slot `idx`, marking it touched for this epoch. `n` may be
    /// 0: the slot still joins the dirty list (the arena layout pass relies
    /// on counted-but-empty destinations being enumerable).
    #[inline]
    pub fn add(&mut self, idx: usize, n: u64) {
        if self.stamps[idx] != self.epoch {
            self.stamps[idx] = self.epoch;
            self.counts[idx] = 0;
            self.touched.push(idx);
        }
        self.counts[idx] += n;
    }

    /// Slot `idx`'s count this epoch (0 if untouched since the last reset).
    #[inline]
    pub fn get(&self, idx: usize) -> u64 {
        if self.stamps[idx] == self.epoch {
            self.counts[idx]
        } else {
            0
        }
    }

    /// The indices touched since the last reset, in first-touch order.
    #[inline]
    pub fn touched(&self) -> &[usize] {
        &self.touched
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_table_reads_zero() {
        let c = EpochCounts::new(4);
        assert_eq!(c.len(), 4);
        assert!(!c.is_empty());
        for i in 0..4 {
            assert_eq!(c.get(i), 0);
        }
        assert!(c.touched().is_empty());
    }

    #[test]
    fn add_accumulates_and_tracks_first_touch_order() {
        let mut c = EpochCounts::new(8);
        c.add(5, 2);
        c.add(1, 1);
        c.add(5, 3);
        assert_eq!(c.get(5), 5);
        assert_eq!(c.get(1), 1);
        assert_eq!(c.get(0), 0);
        assert_eq!(c.touched(), &[5, 1]);
    }

    #[test]
    fn reset_clears_without_touching_slots() {
        let mut c = EpochCounts::new(4);
        c.add(2, 7);
        c.reset();
        assert_eq!(c.get(2), 0);
        assert!(c.touched().is_empty());
        // A stale count is overwritten, not accumulated into, on re-touch.
        c.add(2, 1);
        assert_eq!(c.get(2), 1);
        assert_eq!(c.touched(), &[2]);
    }

    #[test]
    fn zero_add_still_marks_touched() {
        let mut c = EpochCounts::new(3);
        c.add(1, 0);
        assert_eq!(c.get(1), 0);
        assert_eq!(c.touched(), &[1]);
    }

    #[test]
    fn many_resets_stay_consistent() {
        let mut c = EpochCounts::new(2);
        for round in 0..100u64 {
            c.add(round as usize % 2, round);
            assert_eq!(c.get(round as usize % 2), round);
            c.reset();
        }
        assert_eq!(c.get(0), 0);
        assert_eq!(c.get(1), 0);
    }
}
