//! Epoch-stamped sparse counters for the engines' per-superstep tallies.
//!
//! The BSP/QSM/PRAM engines keep several dense per-index tally vectors
//! (per-destination arena counts, per-processor receive counts, per-address
//! reader/writer counts). Clearing those with `fill(0)` costs Θ(table size)
//! every superstep even when only a handful of indices are touched — the
//! dense floor the active-set execution path removes.
//!
//! An [`EpochCounts`] replaces `fill(0)` with an epoch stamp: every slot
//! carries the epoch at which it was last written, and a slot's count is
//! *valid only if its stamp equals the current epoch*. Resetting the table
//! is then one epoch bump plus clearing the dirty set — O(1) — and a full
//! pass over the table never happens. The dirty set is a [`FrontierMask`]
//! recording every index written this epoch; consumers iterate exactly the
//! touched slots, in **ascending index order** (the mask's iteration order),
//! instead of all slots. Ascending order is safe for every consumer — the
//! arena layout pass, the profile maxima, the QSM conflict scans — because
//! none of them observes the enumeration order, only the touched *set*.
//!
//! The epoch counter is a `u64` that only increments; at one reset per
//! superstep it cannot wrap within any realistic run, so a stale stamp can
//! never alias the current epoch.

use crate::mask::FrontierMask;

/// One tally slot: the count and the epoch that validates it, side by side
/// so a random-index `add` touches one cache line, not one per array.
#[derive(Debug, Clone, Copy, Default)]
struct Slot {
    count: u64,
    stamp: u64,
}

/// A `u64` tally table with O(1) reset and dirty-set iteration.
#[derive(Debug, Clone, Default)]
pub struct EpochCounts {
    slots: Vec<Slot>,
    epoch: u64,
    touched: FrontierMask,
}

impl EpochCounts {
    /// A table of `n` slots, all reading 0.
    pub fn new(n: usize) -> Self {
        Self {
            // Stamps start below the first epoch, so every slot is stale
            // (i.e. reads 0) until first touched.
            slots: vec![Slot::default(); n],
            epoch: 1,
            touched: FrontierMask::new(n),
        }
    }

    /// Number of slots.
    #[inline]
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the table has zero slots.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Reset every slot to 0 by bumping the epoch. O(1) — no slot is
    /// actually written.
    #[inline]
    pub fn reset(&mut self) {
        self.epoch += 1;
        self.touched.clear();
    }

    /// Add `n` to slot `idx`, marking it touched for this epoch. `n` may be
    /// 0: the slot still joins the dirty set (the arena layout pass relies
    /// on counted-but-empty destinations being enumerable).
    #[inline]
    pub fn add(&mut self, idx: usize, n: u64) {
        let slot = &mut self.slots[idx];
        if slot.stamp != self.epoch {
            slot.stamp = self.epoch;
            slot.count = n;
            self.touched.insert(idx);
        } else {
            slot.count += n;
        }
    }

    /// Add 1 to every slot named by `idxs` — the batched form of
    /// [`EpochCounts::add`]`(idx, 1)` per element, with the epoch and slot
    /// base hoisted out of the loop. This is the engines' per-message
    /// destination-counting kernel.
    pub fn add_ones(&mut self, idxs: &[usize]) {
        let epoch = self.epoch;
        for &idx in idxs {
            let slot = &mut self.slots[idx];
            if slot.stamp != epoch {
                slot.stamp = epoch;
                slot.count = 1;
                self.touched.insert(idx);
            } else {
                slot.count += 1;
            }
        }
    }

    /// Slot `idx`'s count this epoch (0 if untouched since the last reset).
    #[inline]
    pub fn get(&self, idx: usize) -> u64 {
        let slot = &self.slots[idx];
        if slot.stamp == self.epoch {
            slot.count
        } else {
            0
        }
    }

    /// The set of indices touched since the last reset; iterate it for the
    /// dirty slots in ascending index order.
    #[inline]
    pub fn touched(&self) -> &FrontierMask {
        &self.touched
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn touched(c: &EpochCounts) -> Vec<usize> {
        c.touched().iter().collect()
    }

    #[test]
    fn fresh_table_reads_zero() {
        let c = EpochCounts::new(4);
        assert_eq!(c.len(), 4);
        assert!(!c.is_empty());
        for i in 0..4 {
            assert_eq!(c.get(i), 0);
        }
        assert!(c.touched().is_empty());
    }

    #[test]
    fn add_accumulates_and_tracks_touched_ascending() {
        let mut c = EpochCounts::new(8);
        c.add(5, 2);
        c.add(1, 1);
        c.add(5, 3);
        assert_eq!(c.get(5), 5);
        assert_eq!(c.get(1), 1);
        assert_eq!(c.get(0), 0);
        assert_eq!(touched(&c), vec![1, 5]);
    }

    #[test]
    fn reset_clears_without_touching_slots() {
        let mut c = EpochCounts::new(4);
        c.add(2, 7);
        c.reset();
        assert_eq!(c.get(2), 0);
        assert!(c.touched().is_empty());
        // A stale count is overwritten, not accumulated into, on re-touch.
        c.add(2, 1);
        assert_eq!(c.get(2), 1);
        assert_eq!(touched(&c), vec![2]);
    }

    #[test]
    fn zero_add_still_marks_touched() {
        let mut c = EpochCounts::new(3);
        c.add(1, 0);
        assert_eq!(c.get(1), 0);
        assert_eq!(touched(&c), vec![1]);
    }

    #[test]
    fn many_resets_stay_consistent() {
        let mut c = EpochCounts::new(2);
        for round in 0..100u64 {
            c.add(round as usize % 2, round);
            assert_eq!(c.get(round as usize % 2), round);
            c.reset();
        }
        assert_eq!(c.get(0), 0);
        assert_eq!(c.get(1), 0);
    }

    #[test]
    fn touched_straddles_word_boundaries() {
        let mut c = EpochCounts::new(200);
        for &i in &[130, 64, 63, 0, 199] {
            c.add(i, 1);
        }
        assert_eq!(touched(&c), vec![0, 63, 64, 130, 199]);
    }
}
