//! Which term of a cost metric dominates a superstep.
//!
//! The paper's bounds are maxima of heterogeneous terms (`w`, `g·h` or `h`,
//! `c_m`, `κ`, `L`); knowing *which* term binds is how one reads the
//! experiments ("the hot receiver is the binding constraint", "L dominates
//! the tree rounds"). [`Breakdown`] computes all terms of a profile for a
//! given machine configuration, under both model families, and names the
//! dominant one.

use crate::params::MachineParams;
use crate::penalty::PenaltyFn;
use crate::profile::SuperstepProfile;

/// The term of a cost metric that determined a superstep's price.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dominant {
    /// Local computation `w`.
    Work,
    /// The per-processor traffic term (`g·h` locally, `h` globally).
    Traffic,
    /// The aggregate communication charge `c_m`.
    Bandwidth,
    /// Location contention `κ` (QSM only).
    Contention,
    /// The latency/periodicity floor `L` (BSP only).
    Latency,
}

impl std::fmt::Display for Dominant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Dominant::Work => "w",
            Dominant::Traffic => "h",
            Dominant::Bandwidth => "c_m",
            Dominant::Contention => "κ",
            Dominant::Latency => "L",
        };
        write!(f, "{s}")
    }
}

/// All terms of one superstep under one machine configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Breakdown {
    /// `w`.
    pub work: f64,
    /// `g·h` for the local family (message-passing `h`).
    pub local_traffic: f64,
    /// `h` for the global family.
    pub global_traffic: f64,
    /// `c_m` under the exponential penalty.
    pub bandwidth: f64,
    /// `n/m` — the self-scheduling bandwidth term: total messages over
    /// aggregate capacity, the best possible network time when slot
    /// assignment is left to the machine (Proposition 6.1's global side).
    pub ss_bandwidth: f64,
    /// `κ`.
    pub contention: f64,
    /// `L`.
    pub latency: f64,
}

impl Breakdown {
    /// Compute all terms for `profile` on machine `params`.
    pub fn of(params: MachineParams, profile: &SuperstepProfile) -> Self {
        Breakdown {
            work: profile.max_work as f64,
            local_traffic: (params.g * profile.h_bsp()) as f64,
            global_traffic: profile.h_bsp() as f64,
            bandwidth: PenaltyFn::Exponential.total_charge(&profile.injections, params.m),
            ss_bandwidth: profile.total_messages as f64 / params.m as f64,
            contention: profile.max_contention as f64,
            latency: params.l as f64,
        }
    }

    /// The binding term of the BSP(m) metric `max(w, h, c_m, L)`.
    pub fn dominant_bsp_m(&self) -> Dominant {
        let pairs = [
            (self.bandwidth, Dominant::Bandwidth),
            (self.global_traffic, Dominant::Traffic),
            (self.work, Dominant::Work),
            (self.latency, Dominant::Latency),
        ];
        pairs
            .into_iter()
            .max_by(|a, b| a.0.total_cmp(&b.0))
            .map(|(_, d)| d)
            .unwrap()
    }

    /// The binding term of the BSP(g) metric `max(w, g·h, L)`.
    pub fn dominant_bsp_g(&self) -> Dominant {
        let pairs = [
            (self.local_traffic, Dominant::Traffic),
            (self.work, Dominant::Work),
            (self.latency, Dominant::Latency),
        ];
        pairs
            .into_iter()
            .max_by(|a, b| a.0.total_cmp(&b.0))
            .map(|(_, d)| d)
            .unwrap()
    }

    /// The binding term of the self-scheduling BSP(m) metric
    /// `max(w, h, n/m, L)`, where [`Dominant::Bandwidth`] names the `n/m`
    /// term (the machine schedules injections itself, so there is no slot
    /// histogram to penalize).
    pub fn dominant_self_scheduling(&self) -> Dominant {
        let pairs = [
            (self.ss_bandwidth, Dominant::Bandwidth),
            (self.global_traffic, Dominant::Traffic),
            (self.work, Dominant::Work),
            (self.latency, Dominant::Latency),
        ];
        pairs
            .into_iter()
            .max_by(|a, b| a.0.total_cmp(&b.0))
            .map(|(_, d)| d)
            .unwrap()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::ProfileBuilder;

    fn params() -> MachineParams {
        MachineParams::from_gap(64, 8, 16)
    }

    #[test]
    fn bandwidth_dominates_overloaded_step() {
        let mut b = ProfileBuilder::new();
        b.record_traffic(2, 2).record_injections(0, 64); // 8× over m = 8
        let bd = Breakdown::of(params(), &b.build());
        assert_eq!(bd.dominant_bsp_m(), Dominant::Bandwidth);
        assert!(bd.bandwidth > 1000.0);
    }

    #[test]
    fn traffic_dominates_hot_sender_under_g() {
        let mut b = ProfileBuilder::new();
        b.record_traffic(100, 1);
        for t in 0..100 {
            b.record_injection(t);
        }
        let bd = Breakdown::of(params(), &b.build());
        assert_eq!(bd.dominant_bsp_g(), Dominant::Traffic);
        // Same profile globally: h = 100 = c_m — traffic or bandwidth tie,
        // ordering prefers bandwidth on exact ties; both are 100.
        assert_eq!(bd.global_traffic, 100.0);
        assert_eq!(bd.bandwidth, 100.0);
    }

    #[test]
    fn latency_dominates_empty_step() {
        let bd = Breakdown::of(params(), &SuperstepProfile::default());
        assert_eq!(bd.dominant_bsp_m(), Dominant::Latency);
        assert_eq!(bd.dominant_bsp_g(), Dominant::Latency);
    }

    #[test]
    fn work_dominates_compute_step() {
        let mut b = ProfileBuilder::new();
        b.record_work(1_000_000)
            .record_traffic(1, 1)
            .record_injection(0);
        let bd = Breakdown::of(params(), &b.build());
        assert_eq!(bd.dominant_bsp_m(), Dominant::Work);
        assert_eq!(bd.dominant_bsp_g(), Dominant::Work);
    }

    #[test]
    fn self_scheduling_term_is_total_over_m() {
        // 256 messages all in one slot: the exp c_m explodes, but the
        // self-scheduling term only sees n/m = 256/8 = 32, which binds
        // (L = 16 and h = 2 are smaller).
        let mut b = ProfileBuilder::new();
        b.record_traffic(2, 2).record_injections(0, 256);
        let bd = Breakdown::of(params(), &b.build());
        assert_eq!(bd.ss_bandwidth, 32.0);
        assert_eq!(bd.dominant_self_scheduling(), Dominant::Bandwidth);
        assert!(bd.bandwidth > bd.ss_bandwidth);
    }

    #[test]
    fn display_names() {
        assert_eq!(Dominant::Bandwidth.to_string(), "c_m");
        assert_eq!(Dominant::Latency.to_string(), "L");
    }
}
