//! Every closed-form bound quoted in the paper, as executable formulas.
//!
//! These are the "paper" column of the experiment tables: the harness runs an
//! algorithm on the simulator, measures its model cost, and prints it next to
//! the bound from this module. Bounds are stated up to constant factors in
//! the paper (Θ/O/Ω); the functions here return the *leading term* with unit
//! constants, so comparisons check shape (who wins, growth rate, crossover),
//! not absolute constants.
//!
//! Section references follow the SPAA'97 paper.

use crate::{div_ceil, lg};

// ---------------------------------------------------------------------------
// Table 1 (Section 4): separations at n = p, m = p/g
// ---------------------------------------------------------------------------

/// One-to-all personalized communication on QSM(m): `Θ(p)` (Table 1).
pub fn one_to_all_qsm_m(p: usize) -> f64 {
    p as f64
}

/// One-to-all personalized communication on QSM(g): `Θ(g·p)` (Table 1).
pub fn one_to_all_qsm_g(p: usize, g: u64) -> f64 {
    g as f64 * p as f64
}

/// One-to-all personalized communication on BSP(m): `Θ(p + L)` (Table 1).
pub fn one_to_all_bsp_m(p: usize, l: u64) -> f64 {
    p as f64 + l as f64
}

/// One-to-all personalized communication on BSP(g): `Θ(g·p + L)` (Table 1).
pub fn one_to_all_bsp_g(p: usize, g: u64, l: u64) -> f64 {
    g as f64 * p as f64 + l as f64
}

/// Broadcasting on QSM(m): `Θ(lg m + p/m)` (Table 1).
pub fn broadcast_qsm_m(p: usize, m: usize) -> f64 {
    lg(m as f64) + p as f64 / m as f64
}

/// Broadcasting on QSM(g): `Θ(g·lg p / lg g)` (Table 1).
pub fn broadcast_qsm_g(p: usize, g: u64) -> f64 {
    g as f64 * lg(p as f64) / lg(g as f64)
}

/// Broadcasting on BSP(m): `O(L·lg m / lg L + p/m + L)` (Table 1).
pub fn broadcast_bsp_m(p: usize, m: usize, l: u64) -> f64 {
    l as f64 * lg(m as f64) / lg(l as f64) + p as f64 / m as f64 + l as f64
}

/// Broadcasting on BSP(g): `Θ(L·lg p / lg(L/g))` (Table 1). The tree that
/// achieves it has fan-out `⌈L/g⌉`; the formula clamps `L/g` at 2 so the
/// denominator stays positive (when `L ≤ g` a fan-out-2, or with non-receipt
/// a fan-out-3, tree is optimal).
pub fn broadcast_bsp_g(p: usize, g: u64, l: u64) -> f64 {
    let fan = (l as f64 / g as f64).max(2.0);
    l as f64 * lg(p as f64) / lg(fan)
}

/// Deterministic broadcast *lower bound* on BSP(g), Theorem 4.1:
/// `L·lg p / (2·lg(2L/g + 1))`.
pub fn broadcast_bsp_g_lower(p: usize, g: u64, l: u64) -> f64 {
    let ratio = 2.0 * l as f64 / g as f64 + 1.0;
    l as f64 * lg(p as f64) / (2.0 * ratio.log2().max(f64::MIN_POSITIVE))
}

/// The Section 4.2 ternary *non-receipt* broadcast on BSP(g): exactly
/// `g·⌈lg₃ p⌉` when `L ≤ g`.
pub fn broadcast_ternary_bsp_g(p: usize, g: u64) -> f64 {
    g as f64 * crate::ceil_log3(p as u64) as f64
}

/// Parity / summation of `n` inputs on QSM(m): `Θ(lg m + n/m)` (Table 1).
pub fn summation_qsm_m(n: usize, m: usize) -> f64 {
    lg(m as f64) + n as f64 / m as f64
}

/// Parity / summation on QSM(g): `Ω(g·lg n / lg lg n)` (Table 1; via
/// Beame–Håstad through the CRCW→QSM(g) conversion of Section 4.1).
pub fn summation_qsm_g_lower(n: usize, g: u64) -> f64 {
    g as f64 * lg(n as f64) / lg(lg(n as f64))
}

/// Parity / summation on BSP(m): `O(L·lg m / lg L + n/m + L)` (Table 1).
pub fn summation_bsp_m(n: usize, m: usize, l: u64) -> f64 {
    l as f64 * lg(m as f64) / lg(l as f64) + n as f64 / m as f64 + l as f64
}

/// Parity / summation on BSP(g): `Θ(L·lg n / lg(L/g))` (Table 1).
pub fn summation_bsp_g(n: usize, g: u64, l: u64) -> f64 {
    let fan = (l as f64 / g as f64).max(2.0);
    l as f64 * lg(n as f64) / lg(fan)
}

/// List ranking on QSM(m): `O(lg m + n/m)` (Table 1).
pub fn list_ranking_qsm_m(n: usize, m: usize) -> f64 {
    lg(m as f64) + n as f64 / m as f64
}

/// List ranking on BSP(m): `O(L·lg m + n/m)` (Table 1).
pub fn list_ranking_bsp_m(n: usize, m: usize, l: u64) -> f64 {
    l as f64 * lg(m as f64) + n as f64 / m as f64
}

/// List ranking / sorting lower bound on the g-models:
/// `Ω(g·lg n / lg lg n)` (Table 1).
pub fn g_model_lower(n: usize, g: u64) -> f64 {
    summation_qsm_g_lower(n, g)
}

/// Sorting `n` keys on QSM(m): `Θ(n/m)` for `m = O(n^{1−ε})` (Table 1).
pub fn sorting_qsm_m(n: usize, m: usize) -> f64 {
    n as f64 / m as f64
}

/// Sorting on BSP(m): `Θ(n/m + L)` for `m = O(n^{1−ε})` (Table 1).
pub fn sorting_bsp_m(n: usize, m: usize, l: u64) -> f64 {
    n as f64 / m as f64 + l as f64
}

// ---------------------------------------------------------------------------
// Section 6.1: the static unbalanced routing problem
// ---------------------------------------------------------------------------

/// Proposition 6.1 — the routing problem on BSP(g) takes `Θ(g(x̄+ȳ) + L)`.
pub fn routing_bsp_g(xbar: u64, ybar: u64, g: u64, l: u64) -> f64 {
    g as f64 * (xbar + ybar) as f64 + l as f64
}

/// The global-bandwidth routing lower bound: `max(n/m, h)` with
/// `h = max(x̄, ȳ)` (Section 1/6).
pub fn routing_global_lower(n: u64, m: usize, xbar: u64, ybar: u64) -> f64 {
    (n as f64 / m as f64).max(xbar.max(ybar) as f64)
}

/// `τ`, the cost to compute and broadcast the total message count `n` on the
/// BSP(m): `O(p/m + L + L·lg m / lg L)` (Section 1, used in Theorems
/// 6.2–6.4).
pub fn tau_preamble(p: usize, m: usize, l: u64) -> f64 {
    p as f64 / m as f64 + l as f64 + l as f64 * lg(m as f64) / lg(l as f64)
}

/// Theorem 6.2 — the w.h.p. completion-time target of Unbalanced-Send:
/// `max((1+ε)n/m, x̄, ȳ, L) + τ`.
pub fn unbalanced_send_target(
    n: u64,
    m: usize,
    xbar: u64,
    ybar: u64,
    eps: f64,
    p: usize,
    l: u64,
) -> f64 {
    let sigma = ((1.0 + eps) * n as f64 / m as f64)
        .max(xbar as f64)
        .max(ybar as f64)
        .max(l as f64);
    sigma + tau_preamble(p, m, l)
}

/// Theorem 6.3 — the target of Unbalanced-Consecutive-Send:
/// `max((1+ε)n/m + x̄', x̄, ȳ) + τ`, where `x̄'` is the largest send count
/// among processors with at most `(1+ε)n/m` messages.
#[allow(clippy::too_many_arguments)] // the theorem's own parameter list
pub fn consecutive_send_target(
    n: u64,
    m: usize,
    xbar: u64,
    xbar_small: u64,
    ybar: u64,
    eps: f64,
    p: usize,
    l: u64,
) -> f64 {
    let sigma = ((1.0 + eps) * n as f64 / m as f64 + xbar_small as f64)
        .max(xbar as f64)
        .max(ybar as f64);
    sigma + tau_preamble(p, m, l)
}

/// Theorem 6.4 — Unbalanced-Granular-Send completes in `c·n/m` for a
/// constant `c`, provided `p < e^{αm}`. We report the target with the
/// explicit window constant used by our implementation.
pub fn granular_send_target(n: u64, m: usize, c: f64) -> f64 {
    c * n as f64 / m as f64
}

/// The long-message (flit) variant target (Section 6.1): the additive term is
/// `ℓ̂`, the maximum message length, instead of `x̄'`.
#[allow(clippy::too_many_arguments)] // the theorem's own parameter list
pub fn flit_send_target(
    n: u64,
    m: usize,
    xbar: u64,
    ybar: u64,
    lhat: u64,
    eps: f64,
    p: usize,
    l: u64,
) -> f64 {
    let sigma = ((1.0 + eps) * n as f64 / m as f64 + lhat as f64)
        .max(xbar as f64)
        .max(ybar as f64);
    sigma + tau_preamble(p, m, l)
}

/// The startup-overhead variant (Section 6.1, LogP-style gap `o`):
/// `(1+ε)(1 + o/ℓ̄)·n/m + ℓ̂ + o` plus `τ`, where `ℓ̄` is the mean message
/// length.
#[allow(clippy::too_many_arguments)] // the theorem's own parameter list
pub fn overhead_send_target(
    n: u64,
    m: usize,
    lbar: f64,
    lhat: u64,
    o: u64,
    eps: f64,
    p: usize,
    l: u64,
) -> f64 {
    assert!(lbar > 0.0, "mean message length must be positive");
    (1.0 + eps) * (1.0 + o as f64 / lbar) * n as f64 / m as f64
        + lhat as f64
        + o as f64
        + tau_preamble(p, m, l)
}

// ---------------------------------------------------------------------------
// Section 6.2: the dynamic problem (Adversarial Queuing Theory)
// ---------------------------------------------------------------------------

/// Theorem 6.5 — on BSP(g) with `g > 1`, the system is unstable for any
/// algorithm when the local arrival rate `β > 1/g`, and stable (with the
/// interval algorithm) when `β ≤ 1/g`. Returns the stability threshold on β.
pub fn dynamic_bsp_g_beta_threshold(g: u64) -> f64 {
    1.0 / g as f64
}

/// Corollary 6.6 — no algorithm on BSP(g) is stable above total rate `p/g`.
pub fn dynamic_bsp_g_alpha_threshold(p: usize, g: u64) -> f64 {
    p as f64 / g as f64
}

/// Theorem 6.7 — Algorithm B on BSP(m) is stable provided
/// `α ≤ m/a − m·u/(w·a)` (global rate) where `A` completes in
/// `max(a·n/m, b·x̄, b·ȳ)`.
pub fn dynamic_bsp_m_alpha_threshold(m: usize, a: f64, u: f64, w: f64) -> f64 {
    m as f64 / a - m as f64 * u / (w * a)
}

/// Theorem 6.7 — the matching local-rate threshold `β ≤ 1/b − u/(w·b)`.
pub fn dynamic_bsp_m_beta_threshold(b: f64, u: f64, w: f64) -> f64 {
    1.0 / b - u / (w * b)
}

/// Theorem 6.7 — the slack parameter `u ≥ ⌊1.21·r·w⌋ + 1` required for
/// stability, where `r` is the per-interval failure probability of `A`.
pub fn dynamic_slack_u(r: f64, w: f64) -> f64 {
    (1.21 * r * w).floor() + 1.0
}

/// Theorem 6.7 — expected service time of any arrival: `O(w²/u)`.
pub fn dynamic_expected_service(w: f64, u: f64) -> f64 {
    w * w / u
}

/// Claim 6.8 — the M/G/1 system `S''` has arrival rate `r` and expected
/// service time `< 1.21·w/u`; it is stable when `1.21·r·w/u < 1`.
pub fn mg1_utilization(r: f64, w: f64, u: f64) -> f64 {
    1.21 * r * w / u
}

/// Claim 6.8 — mean queue length at departure instants for an M/G/1 queue:
/// `r·μ̄ + r²·μ̄₂ / (2(1 − r·μ̄))` (Pollaczek–Khinchine), where `μ̄` is the
/// mean service time and `μ̄₂` its second moment.
pub fn mg1_mean_queue(r: f64, mu1: f64, mu2: f64) -> f64 {
    let rho = r * mu1;
    assert!(rho < 1.0, "M/G/1 queue is unstable at utilization {rho}");
    rho + r * r * mu2 / (2.0 * (1.0 - rho))
}

/// The service-time distribution `S₀''` of Claim 6.8 takes value `k·w/u`
/// with probability `1/k⁴ − 1/(k+1)⁴` for integers `k ≥ 1`. Its first
/// moment is `(w/u)·Σ k·(1/k⁴ − 1/(k+1)⁴) = (w/u)·Σ 1/k⁴·(telescoped)`
/// `< 1.21·w/u` — we compute the series numerically.
pub fn mg1_service_moments(w: f64, u: f64, terms: usize) -> (f64, f64) {
    let mut m1 = 0.0;
    let mut m2 = 0.0;
    for k in 1..=terms {
        let kf = k as f64;
        let pk = 1.0 / kf.powi(4) - 1.0 / (kf + 1.0).powi(4);
        let v = kf * w / u;
        m1 += pk * v;
        m2 += pk * v * v;
    }
    (m1, m2)
}

// ---------------------------------------------------------------------------
// Section 5: concurrent read in limited bandwidth
// ---------------------------------------------------------------------------

/// Theorem 5.1 — one CRCW PRAM(m) step simulates on QSM(m) in `O(p/m)`
/// (for `m = O(p^{1−ε})`).
pub fn cr_sim_slowdown(p: usize, m: usize) -> f64 {
    p as f64 / m as f64
}

/// Theorem 5.2 / abstract — the ER-vs-CR separation:
/// `Ω(p·lg m / (m·lg p))`.
pub fn er_cr_separation(p: usize, m: usize) -> f64 {
    p as f64 * lg(m as f64) / (m as f64 * lg(p as f64))
}

/// Lemma 5.3 — Leader Recognition on QSM(m) requires
/// `Ω(p·lg m / (m·w))` time, `w` = bits per memory cell.
pub fn leader_qsm_m_lower(p: usize, m: usize, word_bits: u64) -> f64 {
    p as f64 * lg(m as f64) / (m as f64 * word_bits as f64)
}

/// Leader Recognition on the CRCW PRAM(m): `O(max(lg p / w, 1))`.
pub fn leader_crcw_pram_m(p: usize, word_bits: u64) -> f64 {
    (lg(p as f64) / word_bits as f64).max(1.0)
}

/// The previously best known ER/CR separation, `2^Ω(√lg p)` (from [1]),
/// which the paper's `Ω(p·lg m/(m·lg p))` improves upon when `m ≪ p`.
pub fn previous_er_cr_separation(p: usize) -> f64 {
    2f64.powf(lg(p as f64).sqrt())
}

// ---------------------------------------------------------------------------
// Section 4.1: h-relation realization on the CRCW PRAM
// ---------------------------------------------------------------------------

/// The deterministic CRCW h-relation realization runs in `O(h)` time
/// (Section 4.1): we report `h` plus the constant number of setup rounds
/// used by our implementation.
pub fn hrelation_crcw_time(h: u64, setup_rounds: u64) -> f64 {
    (h + setup_rounds) as f64
}

/// Naive-emulation bound of Section 4: a QSM(g)/BSP(g) algorithm runs on the
/// corresponding m-model in the same time by splitting each communication
/// step into `g` substeps of `p/g = m` messages each.
pub fn g_to_m_emulation_substeps(p: usize, m: usize) -> u64 {
    div_ceil(p as u64, m as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_one_to_all_separation_is_g() {
        let (p, g, l) = (1024usize, 16u64, 16u64);
        let sep = one_to_all_bsp_g(p, g, l) / one_to_all_bsp_m(p, l);
        // Θ(g) separation for n = p.
        assert!(sep > g as f64 * 0.9 && sep < g as f64 * 1.1, "sep={sep}");
    }

    #[test]
    fn table1_broadcast_separation_shape() {
        // QSM separation Θ(lg p / lg g) when m = p/g.
        let (p, g) = (1 << 20, 16u64);
        let m = p / g as usize;
        let sep = broadcast_qsm_g(p, g) / broadcast_qsm_m(p, m);
        let predicted = lg(p as f64) / lg(g as f64);
        // Same growth within a small constant: QSM(m) cost is lg m + g ≈ g
        // dominated for this regime, so ratio tracks (g lg p / lg g) / (lg m + g).
        let expected = (g as f64 * lg(p as f64) / lg(g as f64)) / (lg(m as f64) + g as f64);
        assert!((sep - expected).abs() < 1e-9);
        assert!(predicted > 1.0);
    }

    #[test]
    fn thm41_lower_bound_below_upper() {
        for l in [4u64, 16, 64, 256] {
            for g in [1u64, 2, 4, 8] {
                let p = 4096;
                assert!(
                    broadcast_bsp_g_lower(p, g, l) <= broadcast_bsp_g(p, g, l) * 2.0 + 1e-9,
                    "L={l} g={g}"
                );
            }
        }
    }

    #[test]
    fn ternary_broadcast_beats_binary_when_l_le_g() {
        let (p, g, l) = (6561usize, 32u64, 8u64);
        // g·⌈lg₃p⌉ = 32·8 = 256 vs binary-tree L·lg p ≥ 8·12.68… — here the
        // ternary trick costs g per round; check exact value.
        assert_eq!(broadcast_ternary_bsp_g(p, g), 32.0 * 8.0);
        assert!(l <= g);
    }

    #[test]
    fn routing_local_vs_global_gap() {
        // One hot sender: x̄ = n, others 0. Global lower bound = max(n/m, n) = n;
        // local bound = g·n. Gap = g.
        let (n, m, g, l) = (10_000u64, 64usize, 16u64, 1u64);
        let local = routing_bsp_g(n, 0, g, l);
        let global = routing_global_lower(n, m, n, 1);
        assert!((local / global - g as f64).abs() < 0.01);
    }

    #[test]
    fn routing_balanced_no_gap() {
        // Perfect balance: x̄ = ȳ = n/p; with m = p/g the two bounds match to
        // within the additive L.
        let (p, g) = (1024usize, 16u64);
        let m = p / g as usize;
        let per = 100u64;
        let n = per * p as u64;
        let local = routing_bsp_g(per, per, g, 1);
        let global = routing_global_lower(n, m, per, per);
        // local = g·2·per, global = n/m = g·per → ratio 2.
        assert!((local / global - 2.0).abs() < 0.01);
    }

    #[test]
    fn unbalanced_send_target_dominated_by_terms() {
        let t = unbalanced_send_target(100_000, 64, 500, 700, 0.1, 1024, 16);
        let sigma = (1.1 * 100_000.0 / 64.0f64).max(700.0);
        assert!((t - (sigma + tau_preamble(1024, 64, 16))).abs() < 1e-9);
    }

    #[test]
    fn granular_target_linear_in_n() {
        assert_eq!(granular_send_target(1000, 10, 3.0), 300.0);
        assert_eq!(granular_send_target(2000, 10, 3.0), 600.0);
    }

    #[test]
    fn dynamic_thresholds() {
        assert!((dynamic_bsp_g_beta_threshold(4) - 0.25).abs() < 1e-12);
        assert!((dynamic_bsp_g_alpha_threshold(64, 4) - 16.0).abs() < 1e-12);
        let a = dynamic_bsp_m_alpha_threshold(16, 1.2, 2.0, 100.0);
        assert!(a > 0.0 && a < 16.0 / 1.2);
        let b = dynamic_bsp_m_beta_threshold(1.0, 2.0, 100.0);
        assert!(b > 0.9 && b < 1.0);
    }

    #[test]
    fn mg1_moments_converge_below_paper_constant() {
        let (m1, _m2) = mg1_service_moments(1.0, 1.0, 100_000);
        // Expected service time < 1.21·w/u (Claim 6.8 quotes Σ1/k³ < 1.21).
        assert!(m1 < 1.21, "m1={m1}");
        assert!(m1 > 1.0);
    }

    #[test]
    fn mg1_mean_queue_matches_pk() {
        // M/M/1 sanity check: exponential service mean 0.5 (μ2 = 2·0.25),
        // arrival 1.0 → ρ=0.5, Lq at departures = ρ + ρ²/(1-ρ) = 1.0.
        let q = mg1_mean_queue(1.0, 0.5, 0.5);
        assert!((q - (0.5 + 0.5 / 1.0)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "unstable")]
    fn mg1_mean_queue_rejects_overload() {
        let _ = mg1_mean_queue(2.0, 1.0, 1.0);
    }

    #[test]
    fn er_cr_separation_beats_previous_for_small_m() {
        // When m ≪ p the new separation dwarfs 2^√lg p (abstract claim).
        let p = 1 << 20;
        let m = 16;
        assert!(er_cr_separation(p, m) > previous_er_cr_separation(p));
    }

    #[test]
    fn er_cr_separation_modest_for_large_m() {
        let p = 1 << 20;
        let m = p / 2;
        assert!(er_cr_separation(p, m) < previous_er_cr_separation(p));
    }

    #[test]
    fn leader_bounds_consistent() {
        let (p, m, w) = (1 << 16, 64, 32);
        let lower = leader_qsm_m_lower(p, m, w);
        let crcw = leader_crcw_pram_m(p, w);
        assert!(lower > crcw, "separation must favour CRCW PRAM(m)");
    }

    #[test]
    fn emulation_substeps_is_g_under_parity() {
        assert_eq!(g_to_m_emulation_substeps(1024, 64), 16);
    }
}
