//! Pricing one execution under every model at once.
//!
//! The experiment tables of the paper compare the *same* algorithm (or the
//! same problem) across BSP(g), BSP(m), QSM(g) and QSM(m). Because the
//! engines record complete [`SuperstepProfile`]s, a single simulated run can
//! be priced under all models; [`CostSummary`] packages that.

use crate::cost::{BspG, BspM, CostModel, QsmG, QsmM, SelfSchedulingBspM};
use crate::params::MachineParams;
use crate::penalty::PenaltyFn;
use crate::profile::SuperstepProfile;

/// The cost of one run under every model of the paper.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostSummary {
    /// BSP(g) cost: `Σ max(w, g·h, L)`.
    pub bsp_g: f64,
    /// BSP(m) cost under the *linear* penalty (lower-bound semantics).
    pub bsp_m_linear: f64,
    /// BSP(m) cost under the *exponential* penalty (upper-bound semantics).
    pub bsp_m_exp: f64,
    /// Self-scheduling BSP(m) cost: `Σ max(w, h, n/m, L)`.
    pub bsp_m_self: f64,
    /// QSM(g) cost: `Σ max(w, g·h, κ)`.
    pub qsm_g: f64,
    /// QSM(m) cost under the linear penalty.
    pub qsm_m_linear: f64,
    /// QSM(m) cost under the exponential penalty.
    pub qsm_m_exp: f64,
}

impl CostSummary {
    /// Price a sequence of superstep profiles under every model derived from
    /// `params` (`g`, `m = p/g`, `L`).
    pub fn price(params: MachineParams, profiles: &[SuperstepProfile]) -> Self {
        let bsp_g = BspG {
            g: params.g,
            l: params.l,
        };
        let bsp_m_lin = BspM {
            m: params.m,
            l: params.l,
            penalty: PenaltyFn::Linear,
        };
        let bsp_m_exp = BspM {
            m: params.m,
            l: params.l,
            penalty: PenaltyFn::Exponential,
        };
        let bsp_m_self = SelfSchedulingBspM {
            m: params.m,
            l: params.l,
        };
        let qsm_g = QsmG { g: params.g };
        let qsm_m_lin = QsmM {
            m: params.m,
            penalty: PenaltyFn::Linear,
        };
        let qsm_m_exp = QsmM {
            m: params.m,
            penalty: PenaltyFn::Exponential,
        };
        CostSummary {
            bsp_g: bsp_g.run_cost(profiles),
            bsp_m_linear: bsp_m_lin.run_cost(profiles),
            bsp_m_exp: bsp_m_exp.run_cost(profiles),
            bsp_m_self: bsp_m_self.run_cost(profiles),
            qsm_g: qsm_g.run_cost(profiles),
            qsm_m_linear: qsm_m_lin.run_cost(profiles),
            qsm_m_exp: qsm_m_exp.run_cost(profiles),
        }
    }

    /// The local-over-global advantage ratio for message-passing runs:
    /// `BSP(g) / BSP(m, exp)` — the paper's headline "factor of Θ(g)"
    /// quantity.
    pub fn bsp_separation(&self) -> f64 {
        self.bsp_g / self.bsp_m_exp
    }

    /// The local-over-global advantage ratio for shared-memory runs.
    pub fn qsm_separation(&self) -> f64 {
        self.qsm_g / self.qsm_m_exp
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::ProfileBuilder;

    fn skewed_profile() -> SuperstepProfile {
        // Proc 0 sends 64 messages spread one per slot; everyone else idle.
        let mut b = ProfileBuilder::new();
        b.record_traffic(64, 1);
        for t in 0..64 {
            b.record_injection(t);
        }
        b.record_memory_ops(64, 0).record_contention(1);
        b.build()
    }

    #[test]
    fn skew_shows_global_advantage() {
        let params = MachineParams::from_gap(64, 8, 8);
        let s = CostSummary::price(params, &[skewed_profile()]);
        // BSP(g): g·h = 8·64 = 512. BSP(m): c_m = 64 (1 msg/slot ≤ m=8) → 64.
        assert_eq!(s.bsp_g, 512.0);
        assert_eq!(s.bsp_m_exp, 64.0);
        assert!((s.bsp_separation() - 8.0).abs() < 1e-12);
    }

    #[test]
    fn linear_never_exceeds_exponential() {
        let params = MachineParams::from_gap(64, 8, 8);
        let mut b = ProfileBuilder::new();
        b.record_traffic(10, 10).record_injections(0, 64); // heavy overload
        let p = b.build();
        let s = CostSummary::price(params, &[p]);
        assert!(s.bsp_m_linear <= s.bsp_m_exp);
        assert!(s.qsm_m_linear <= s.qsm_m_exp);
    }

    #[test]
    fn self_scheduling_ignores_slots() {
        let params = MachineParams::from_gap(64, 8, 1);
        // All 64 messages crammed into slot 0: exp penalty blows up, the
        // self-scheduling metric charges only n/m = 8.
        let mut b = ProfileBuilder::new();
        b.record_traffic(1, 1).record_injections(0, 64);
        let s = CostSummary::price(params, &[b.build()]);
        assert_eq!(s.bsp_m_self, 8.0);
        assert!(s.bsp_m_exp > 100.0);
    }
}
