//! Hierarchical bitset frontiers with O(1) reset.
//!
//! The engines' per-superstep *sets* — the active frontier, the arena's
//! touched destinations, the stalled/crashed processor sets — used to live
//! in sorted `Vec<Pid>` lists and per-pid `Vec<bool>` flag vectors. Both
//! representations pay for what they avoid: the frontier vector needs an
//! O(f log f) sort + dedup every superstep to restore canonical pid order,
//! and the flag vectors need either an O(p) `fill(false)` or careful
//! "never read unhooked" discipline.
//!
//! A [`FrontierMask`] replaces both with a two-level u64 bitset:
//!
//! * **leaf words** — bit `pid % 64` of leaf word `pid / 64`;
//! * **summary words** — bit `w % 64` of summary word `w / 64` is set when
//!   leaf word `w` has been written this epoch (a *superset* of the
//!   non-empty leaves: bulk clears like [`FrontierMask::and_not`] may zero
//!   a leaf without unsetting its summary bit — iteration skips zero
//!   words, so the slack is invisible).
//!
//! Both levels are epoch-stamped exactly like [`crate::EpochCounts`]:
//! clearing the mask is one epoch bump, never an O(p) sweep, and a stale
//! word is simply never observed. Iteration walks the summary words, then
//! each marked leaf word, emitting set bits via `trailing_zeros` — so it
//! visits members in **ascending pid order** at O(popcount) cost plus a
//! fixed O(words/64) summary scan, and never scans empty regions. Ascending
//! order is load-bearing: it is exactly the canonical delivery order the
//! engines' sorted-Vec frontiers used to establish by sorting, which is why
//! a mask-built frontier is byte-identical to the sorted one.
//!
//! The epoch counter is a `u64` that only increments; at one clear per
//! superstep it cannot wrap within any realistic run.

/// Iterator over the set bits of one u64, yielding `base + bit_index` in
/// ascending order (test reference for the hand-rolled iterators below).
#[cfg(test)]
struct WordBits {
    base: usize,
    word: u64,
}

#[cfg(test)]
impl Iterator for WordBits {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        if self.word == 0 {
            return None;
        }
        let bit = self.word.trailing_zeros() as usize;
        self.word &= self.word - 1;
        Some(self.base + bit)
    }
}

/// One bitset word and the epoch that validates it, side by side so a
/// random-index insert touches one cache line per level, not one per array.
#[derive(Debug, Clone, Copy, Default)]
struct StampedWord {
    bits: u64,
    stamp: u64,
}

/// Iterator over a mask's non-empty leaf words (see
/// [`FrontierMask::words`]). Hand-rolled state machine instead of an
/// adapter chain: the engines drive this from their innermost superstep
/// loops, where the generic `flat_map`/`filter` plumbing showed up as
/// measurable per-call overhead.
pub struct MaskWords<'a> {
    leaves: &'a [StampedWord],
    summary: &'a [StampedWord],
    epoch: u64,
    /// Index of the summary word whose remaining bits are in `bits`
    /// (starts one before 0, wrapping).
    s: usize,
    bits: u64,
}

impl Iterator for MaskWords<'_> {
    type Item = (usize, u64);

    #[inline]
    fn next(&mut self) -> Option<(usize, u64)> {
        loop {
            while self.bits != 0 {
                let w = self.s * 64 + self.bits.trailing_zeros() as usize;
                self.bits &= self.bits - 1;
                // Summary bit set this epoch ⟹ the leaf was stamped this
                // epoch, so its bits are valid without a stamp check.
                let word = self.leaves[w].bits;
                if word != 0 {
                    return Some((w, word));
                }
            }
            loop {
                self.s = self.s.wrapping_add(1);
                if self.s >= self.summary.len() {
                    return None;
                }
                let sum = &self.summary[self.s];
                if sum.stamp == self.epoch {
                    self.bits = sum.bits;
                    break;
                }
            }
        }
    }
}

/// Iterator over a mask's members in ascending order (see
/// [`FrontierMask::iter`]).
pub struct MaskIter<'a> {
    words: MaskWords<'a>,
    base: usize,
    word: u64,
}

impl Iterator for MaskIter<'_> {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        while self.word == 0 {
            let (w, word) = self.words.next()?;
            self.base = w * 64;
            self.word = word;
        }
        let bit = self.word.trailing_zeros() as usize;
        self.word &= self.word - 1;
        Some(self.base + bit)
    }
}

/// A two-level epoch-stamped bitset over `0..universe`.
#[derive(Debug, Clone, Default)]
pub struct FrontierMask {
    universe: usize,
    /// Leaf words; `leaves[w].bits` is valid only when its stamp == epoch.
    leaves: Vec<StampedWord>,
    /// Summary words over the leaves; same stamping discipline.
    summary: Vec<StampedWord>,
    epoch: u64,
}

#[inline]
fn words_for(n: usize) -> usize {
    n.div_ceil(64)
}

impl FrontierMask {
    /// An empty mask over members `0..universe`.
    pub fn new(universe: usize) -> Self {
        let leaves = words_for(universe);
        Self {
            universe,
            // Stamps start below the first epoch, so every word is stale
            // (i.e. reads empty) until first written.
            leaves: vec![StampedWord::default(); leaves],
            summary: vec![StampedWord::default(); words_for(leaves)],
            epoch: 1,
        }
    }

    /// The exclusive upper bound on members.
    #[inline]
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// Remove every member by bumping the epoch. O(1) — no word is written.
    #[inline]
    pub fn clear(&mut self) {
        self.epoch += 1;
    }

    /// Insert `i`.
    ///
    /// # Panics
    /// Panics if `i >= universe`.
    #[inline]
    pub fn insert(&mut self, i: usize) {
        assert!(
            i < self.universe,
            "mask member {i} out of universe 0..{}",
            self.universe
        );
        let w = i / 64;
        let bit = 1u64 << (i % 64);
        let leaf = &mut self.leaves[w];
        if leaf.stamp != self.epoch {
            leaf.stamp = self.epoch;
            leaf.bits = bit;
            self.mark_summary(w);
        } else {
            leaf.bits |= bit;
        }
    }

    /// OR a whole leaf word in at once: sets every `w * 64 + bit` for each
    /// set bit of `word`. The word-at-a-time entry point the engines' flag
    /// scans and mask unions feed.
    #[inline]
    pub fn insert_word(&mut self, w: usize, word: u64) {
        if word == 0 {
            return;
        }
        debug_assert!(
            w * 64 + (63 - word.leading_zeros() as usize) < self.universe,
            "word {w} sets bits past universe {}",
            self.universe
        );
        let leaf = &mut self.leaves[w];
        if leaf.stamp != self.epoch {
            leaf.stamp = self.epoch;
            leaf.bits = word;
            self.mark_summary(w);
        } else {
            leaf.bits |= word;
        }
    }

    #[inline]
    fn mark_summary(&mut self, w: usize) {
        let sum = &mut self.summary[w / 64];
        let bit = 1u64 << (w % 64);
        if sum.stamp != self.epoch {
            sum.stamp = self.epoch;
            sum.bits = bit;
        } else {
            sum.bits |= bit;
        }
    }

    /// Whether `i` is a member. Out-of-universe queries return `false`
    /// (the engines probe destinations against crash masks without
    /// pre-filtering).
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        let w = i / 64;
        match self.leaves.get(w) {
            Some(leaf) => leaf.stamp == self.epoch && leaf.bits >> (i % 64) & 1 != 0,
            None => false,
        }
    }

    /// Leaf word `w` as of this epoch (0 when stale or out of range) — the
    /// word-wise read side of [`FrontierMask::insert_word`].
    #[inline]
    pub fn word(&self, w: usize) -> u64 {
        match self.leaves.get(w) {
            Some(leaf) if leaf.stamp == self.epoch => leaf.bits,
            _ => 0,
        }
    }

    /// Number of leaf words covering the universe.
    #[inline]
    pub fn word_count(&self) -> usize {
        self.leaves.len()
    }

    /// Number of members.
    pub fn count(&self) -> usize {
        self.words()
            .map(|(_, word)| word.count_ones() as usize)
            .sum()
    }

    /// Whether the mask has no members.
    pub fn is_empty(&self) -> bool {
        self.words().next().is_none()
    }

    /// The non-empty leaf words touched this epoch, as `(leaf_index, word)`
    /// pairs in ascending index order. This is the cache-blocked iteration
    /// the delivery passes walk: one 64-pid block at a time, empty blocks
    /// skipped via the summary level.
    #[inline]
    pub fn words(&self) -> MaskWords<'_> {
        MaskWords {
            leaves: &self.leaves,
            summary: &self.summary,
            epoch: self.epoch,
            s: usize::MAX,
            bits: 0,
        }
    }

    /// The members in ascending order.
    #[inline]
    pub fn iter(&self) -> MaskIter<'_> {
        MaskIter {
            words: self.words(),
            base: 0,
            word: 0,
        }
    }

    /// Append the members, ascending, to `out` (which is *not* cleared —
    /// callers recycle their own buffers).
    pub fn push_to(&self, out: &mut Vec<usize>) {
        for (w, word) in self.words() {
            let base = w * 64;
            let mut bits = word;
            while bits != 0 {
                out.push(base + bits.trailing_zeros() as usize);
                bits &= bits - 1;
            }
        }
    }

    /// `self |= other`. Word-at-a-time: cost is O(other's touched words),
    /// independent of either universe.
    pub fn union_with(&mut self, other: &FrontierMask) {
        for (w, word) in other.words() {
            self.insert_word(w, word);
        }
    }

    /// `self &= !other`. Word-at-a-time over `self`'s touched words; the
    /// summary level is left as a superset (iteration skips zeroed words).
    pub fn and_not(&mut self, other: &FrontierMask) {
        for s in 0..self.summary.len() {
            if self.summary[s].stamp != self.epoch {
                continue;
            }
            let mut sum = self.summary[s].bits;
            while sum != 0 {
                let w = s * 64 + sum.trailing_zeros() as usize;
                sum &= sum - 1;
                self.leaves[w].bits &= !other.word(w);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect(m: &FrontierMask) -> Vec<usize> {
        m.iter().collect()
    }

    #[test]
    fn fresh_mask_is_empty() {
        let m = FrontierMask::new(200);
        assert!(m.is_empty());
        assert_eq!(m.count(), 0);
        assert_eq!(collect(&m), Vec::<usize>::new());
        assert!(!m.contains(0));
        assert!(!m.contains(199));
    }

    #[test]
    fn iteration_is_ascending_and_deduplicated() {
        let mut m = FrontierMask::new(300);
        for &i in &[299, 0, 64, 63, 65, 128, 0, 64, 299] {
            m.insert(i);
        }
        assert_eq!(collect(&m), vec![0, 63, 64, 65, 128, 299]);
        assert_eq!(m.count(), 6);
        assert!(m.contains(63));
        assert!(m.contains(299));
        assert!(!m.contains(1));
        assert!(!m.contains(66));
    }

    #[test]
    fn clear_is_an_epoch_bump() {
        let mut m = FrontierMask::new(1 << 12);
        for i in (0..(1 << 12)).step_by(7) {
            m.insert(i);
        }
        m.clear();
        assert!(m.is_empty());
        assert!(!m.contains(0));
        assert_eq!(m.word(0), 0);
        // Re-inserting after a clear starts from scratch, not from stale
        // words.
        m.insert(70);
        assert_eq!(collect(&m), vec![70]);
    }

    #[test]
    fn word_boundaries_round_trip() {
        // Every boundary-straddling pair around the leaf and summary word
        // edges (64 and 64*64) must read back exactly.
        let mut m = FrontierMask::new(1 << 13);
        let edges = [0, 63, 64, 127, 128, 4095, 4096, 4097, 8191];
        for &i in &edges {
            m.insert(i);
        }
        assert_eq!(collect(&m), edges.to_vec());
    }

    #[test]
    fn insert_word_matches_bitwise_inserts() {
        let mut a = FrontierMask::new(256);
        let mut b = FrontierMask::new(256);
        let word = 0xdead_beef_0badu64;
        a.insert_word(2, word);
        for bit in (WordBits { base: 128, word }) {
            b.insert(bit);
        }
        assert_eq!(collect(&a), collect(&b));
        assert_eq!(a.word(2), word);
        assert_eq!(a.word(1), 0);
    }

    #[test]
    fn union_and_and_not_compose() {
        let mut a = FrontierMask::new(500);
        let mut b = FrontierMask::new(500);
        for i in (0..500).step_by(3) {
            a.insert(i);
        }
        for i in (0..500).step_by(5) {
            b.insert(i);
        }
        let mut u = a.clone();
        u.union_with(&b);
        let want: Vec<usize> = (0..500).filter(|i| i % 3 == 0 || i % 5 == 0).collect();
        assert_eq!(collect(&u), want);

        let mut d = a.clone();
        d.and_not(&b);
        let want: Vec<usize> = (0..500).filter(|i| i % 3 == 0 && i % 5 != 0).collect();
        assert_eq!(collect(&d), want);
        // and_not may leave empty words behind the summary; count and
        // iteration must agree anyway.
        assert_eq!(d.count(), want.len());
    }

    #[test]
    fn push_to_appends_without_clearing() {
        let mut m = FrontierMask::new(100);
        m.insert(9);
        m.insert(64);
        let mut v = vec![7usize];
        m.push_to(&mut v);
        assert_eq!(v, vec![7, 9, 64]);
    }

    #[test]
    fn full_mask_iterates_every_member() {
        let n = 130;
        let mut m = FrontierMask::new(n);
        for i in 0..n {
            m.insert(i);
        }
        assert_eq!(collect(&m), (0..n).collect::<Vec<_>>());
        assert_eq!(m.count(), n);
    }

    #[test]
    #[should_panic(expected = "out of universe")]
    fn insert_past_universe_panics() {
        let mut m = FrontierMask::new(64);
        m.insert(64);
    }

    #[test]
    fn out_of_universe_contains_is_false() {
        let mut m = FrontierMask::new(10);
        m.insert(3);
        assert!(!m.contains(64));
        assert!(!m.contains(usize::MAX / 128));
        assert_eq!(m.word(17), 0);
    }
}
