//! Cost models of Section 2: how a [`SuperstepProfile`] is priced.
//!
//! | model | superstep cost |
//! |---|---|
//! | BSP(g) | `max(w, g·h, L)` |
//! | BSP(m) | `max(w, h, c_m, L)` |
//! | self-scheduling BSP(m) | `max(w, h, n/m, L)` |
//! | QSM(g) | `max(w, g·h, κ)` |
//! | QSM(m) | `max(w, h, κ, c_m)` |
//!
//! with `h = max_i max(s_i, r_i)` (BSP) or `max(1, max_i{r_i, w_i})` (QSM),
//! `c_m = Σ_t f_m(m_t)` and `κ` the maximum location contention.
//!
//! All models implement [`CostModel`], so one simulated execution can be
//! priced under every model at once.

use crate::penalty::PenaltyFn;
use crate::profile::SuperstepProfile;

/// A superstep pricing rule.
pub trait CostModel: Send + Sync {
    /// Price one superstep.
    fn superstep_cost(&self, profile: &SuperstepProfile) -> f64;

    /// Human-readable model name (e.g. `"BSP(m=64)"`), used in experiment
    /// tables.
    fn name(&self) -> String;

    /// Price a whole run: the sum of per-superstep costs.
    fn run_cost(&self, profiles: &[SuperstepProfile]) -> f64 {
        profiles.iter().map(|p| self.superstep_cost(p)).sum()
    }
}

/// The locally-limited, message-passing BSP(g) model (Valiant):
/// `T = max(w, g·h, L)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BspG {
    /// Per-processor gap `g`.
    pub g: u64,
    /// Latency/periodicity `L`.
    pub l: u64,
}

impl CostModel for BspG {
    fn superstep_cost(&self, p: &SuperstepProfile) -> f64 {
        let w = p.max_work as f64;
        let gh = (self.g as f64) * (p.h_bsp() as f64);
        w.max(gh).max(self.l as f64)
    }

    fn name(&self) -> String {
        format!("BSP(g={})", self.g)
    }
}

/// The globally-limited, message-passing BSP(m) model (this paper):
/// `T = max(w, h, c_m, L)` with `c_m = Σ_t f_m(m_t)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BspM {
    /// Aggregate bandwidth `m`.
    pub m: usize,
    /// Latency/periodicity `L`.
    pub l: u64,
    /// Overload charge `f_m` (linear for lower bounds, exponential for upper
    /// bounds).
    pub penalty: PenaltyFn,
}

impl BspM {
    /// The communication term `c_m` for a profile.
    pub fn c_m(&self, p: &SuperstepProfile) -> f64 {
        self.penalty.total_charge(&p.injections, self.m)
    }
}

impl CostModel for BspM {
    fn superstep_cost(&self, p: &SuperstepProfile) -> f64 {
        let w = p.max_work as f64;
        let h = p.h_bsp() as f64;
        w.max(h).max(self.c_m(p)).max(self.l as f64)
    }

    fn name(&self) -> String {
        let tag = match self.penalty {
            PenaltyFn::Linear => "lin",
            PenaltyFn::Exponential => "exp",
        };
        format!("BSP(m={},{tag})", self.m)
    }
}

/// The simplified globally-limited metric of Section 2: ignore exact sending
/// times and charge `T = max(w, h, n/m, L)` for a superstep transmitting `n`
/// messages. Theorem 6.2 shows any self-scheduling algorithm runs on the real
/// BSP(m) within `(1+ε)` of this.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SelfSchedulingBspM {
    /// Aggregate bandwidth `m`.
    pub m: usize,
    /// Latency/periodicity `L`.
    pub l: u64,
}

impl CostModel for SelfSchedulingBspM {
    fn superstep_cost(&self, p: &SuperstepProfile) -> f64 {
        let w = p.max_work as f64;
        let h = p.h_bsp() as f64;
        let nm = p.total_messages as f64 / self.m as f64;
        w.max(h).max(nm).max(self.l as f64)
    }

    fn name(&self) -> String {
        format!("ssBSP(m={})", self.m)
    }
}

/// The locally-limited, shared-memory QSM(g) model (Gibbons–Matias–
/// Ramachandran): `T = max(w, g·h, κ)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QsmG {
    /// Per-processor gap `g`.
    pub g: u64,
}

impl CostModel for QsmG {
    fn superstep_cost(&self, p: &SuperstepProfile) -> f64 {
        let w = p.max_work as f64;
        let gh = (self.g as f64) * (p.h_qsm() as f64);
        w.max(gh).max(p.max_contention as f64)
    }

    fn name(&self) -> String {
        format!("QSM(g={})", self.g)
    }
}

/// The globally-limited, shared-memory QSM(m) model (this paper):
/// `T = max(w, h, κ, c_m)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QsmM {
    /// Aggregate bandwidth `m`.
    pub m: usize,
    /// Overload charge `f_m`.
    pub penalty: PenaltyFn,
}

impl QsmM {
    /// The communication term `c_m` for a profile.
    pub fn c_m(&self, p: &SuperstepProfile) -> f64 {
        self.penalty.total_charge(&p.injections, self.m)
    }
}

impl CostModel for QsmM {
    fn superstep_cost(&self, p: &SuperstepProfile) -> f64 {
        let w = p.max_work as f64;
        let h = p.h_qsm() as f64;
        w.max(h).max(p.max_contention as f64).max(self.c_m(p))
    }

    fn name(&self) -> String {
        let tag = match self.penalty {
            PenaltyFn::Linear => "lin",
            PenaltyFn::Exponential => "exp",
        };
        format!("QSM(m={},{tag})", self.m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::ProfileBuilder;

    fn sample_profile() -> SuperstepProfile {
        // 3 steps; injections 4, 2, 10; h_bsp = 6; w = 5.
        let mut b = ProfileBuilder::new();
        b.record_work(5)
            .record_traffic(6, 3)
            .record_injections(0, 4)
            .record_injections(1, 2)
            .record_injections(2, 10);
        b.build()
    }

    #[test]
    fn bsp_g_cost() {
        let p = sample_profile();
        let model = BspG { g: 4, l: 10 };
        // max(5, 4*6, 10) = 24
        assert!((model.superstep_cost(&p) - 24.0).abs() < 1e-12);
    }

    #[test]
    fn bsp_g_latency_floor() {
        let p = SuperstepProfile::default();
        let model = BspG { g: 4, l: 17 };
        assert!((model.superstep_cost(&p) - 17.0).abs() < 1e-12);
    }

    #[test]
    fn bsp_m_linear_cost() {
        let p = sample_profile();
        let model = BspM {
            m: 4,
            l: 2,
            penalty: PenaltyFn::Linear,
        };
        // c_m = 1 + 1 + 10/4 = 4.5; max(5, 6, 4.5, 2) = 6
        assert!((model.c_m(&p) - 4.5).abs() < 1e-12);
        assert!((model.superstep_cost(&p) - 6.0).abs() < 1e-12);
    }

    #[test]
    fn bsp_m_exponential_cost() {
        let p = sample_profile();
        let model = BspM {
            m: 4,
            l: 2,
            penalty: PenaltyFn::Exponential,
        };
        // c_m = 1 + 1 + e^{10/4-1} = 2 + e^1.5
        let cm = 2.0 + 1.5f64.exp();
        assert!((model.c_m(&p) - cm).abs() < 1e-9);
        assert!((model.superstep_cost(&p) - cm.max(6.0)).abs() < 1e-9);
    }

    #[test]
    fn self_scheduling_uses_n_over_m() {
        let p = sample_profile(); // n = 16
        let model = SelfSchedulingBspM { m: 2, l: 1 };
        // max(5, 6, 16/2=8, 1) = 8
        assert!((model.superstep_cost(&p) - 8.0).abs() < 1e-12);
    }

    #[test]
    fn qsm_g_cost_uses_contention() {
        let mut b = ProfileBuilder::new();
        b.record_work(3)
            .record_memory_ops(2, 1)
            .record_contention(50);
        let p = b.build();
        let model = QsmG { g: 4 };
        // max(3, 4*2, 50) = 50
        assert!((model.superstep_cost(&p) - 50.0).abs() < 1e-12);
    }

    #[test]
    fn qsm_m_cost() {
        let mut b = ProfileBuilder::new();
        b.record_work(1)
            .record_memory_ops(3, 0)
            .record_contention(2)
            .record_injections(0, 6)
            .record_injections(1, 6);
        let p = b.build();
        let model = QsmM {
            m: 6,
            penalty: PenaltyFn::Exponential,
        };
        // c_m = 2, h = 3 → max(1, 3, 2, 2) = 3
        assert!((model.superstep_cost(&p) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn run_cost_sums() {
        let p = sample_profile();
        let model = BspG { g: 1, l: 1 };
        let single = model.superstep_cost(&p);
        assert!((model.run_cost(&[p.clone(), p]) - 2.0 * single).abs() < 1e-12);
    }

    #[test]
    fn names_are_descriptive() {
        assert_eq!(BspG { g: 7, l: 1 }.name(), "BSP(g=7)");
        assert_eq!(
            BspM {
                m: 9,
                l: 1,
                penalty: PenaltyFn::Exponential
            }
            .name(),
            "BSP(m=9,exp)"
        );
        assert_eq!(SelfSchedulingBspM { m: 9, l: 1 }.name(), "ssBSP(m=9)");
        assert_eq!(QsmG { g: 3 }.name(), "QSM(g=3)");
        assert_eq!(
            QsmM {
                m: 5,
                penalty: PenaltyFn::Linear
            }
            .name(),
            "QSM(m=5,lin)"
        );
    }

    #[test]
    fn exponential_bsp_m_upper_bounds_linear() {
        // Same profile must never be cheaper under the exponential charge.
        let p = sample_profile();
        for m in [1usize, 2, 4, 8, 16] {
            let lin = BspM {
                m,
                l: 1,
                penalty: PenaltyFn::Linear,
            };
            let exp = BspM {
                m,
                l: 1,
                penalty: PenaltyFn::Exponential,
            };
            assert!(exp.superstep_cost(&p) >= lin.superstep_cost(&p), "m={m}");
        }
    }
}
