//! # pbw-models
//!
//! Machine-model definitions and cost semantics for the SPAA'97 paper
//! *"Modeling Parallel Bandwidth: Local vs. Global Restrictions"* by
//! Adler, Gibbons, Matias and Ramachandran.
//!
//! The paper contrasts two families of bulk-synchronous models:
//!
//! * **Locally-limited** models — [`cost::BspG`] and [`cost::QsmG`] — charge a
//!   per-processor gap `g` for every message a processor sends or receives.
//!   The cost of a superstep is `max(w, g·h, L)`.
//! * **Globally-limited** models — [`cost::BspM`] and [`cost::QsmM`] — allow
//!   the machine as a whole to inject `m` messages per time step. Exceeding
//!   the limit in step `t` (injecting `m_t > m` messages) costs
//!   `f_m(m_t)` for that step instead of `1`; the cost of a superstep is
//!   `max(w, h, c_m, L)` with `c_m = Σ_t f_m(m_t)`.
//!
//! Both families are priced from the same [`profile::SuperstepProfile`], an
//! exact record of what happened during a superstep, so a single simulated
//! execution can be priced under every model simultaneously (that is how the
//! experiment harness produces its comparison tables).
//!
//! The [`bounds`] module collects every closed-form bound quoted in the paper
//! (Table 1, Theorem 4.1, Proposition 6.1, Theorems 6.2–6.7, Section 5); the
//! experiment harness prints these as the "paper" column next to measured
//! model costs.

pub mod bounds;
pub mod breakdown;
pub mod cost;
pub mod emulation;
pub mod mask;
pub mod params;
pub mod penalty;
pub mod profile;
pub mod sparse;
pub mod summary;

pub use cost::{BspG, BspM, CostModel, QsmG, QsmM, SelfSchedulingBspM};
pub use mask::FrontierMask;
pub use params::MachineParams;
pub use penalty::{PenaltyFn, PenaltyTable};
pub use profile::{ProfileBuilder, SuperstepProfile};
pub use sparse::EpochCounts;
pub use summary::CostSummary;

/// Base-2 logarithm clamped below at 1.0, so that `lg` of tiny arguments
/// never turns a denominator negative or zero.
///
/// The paper writes `lg x` with the implicit convention that all such terms
/// are at least constant; this helper makes that convention executable.
#[inline]
pub fn lg(x: f64) -> f64 {
    if x <= 2.0 {
        1.0
    } else {
        x.log2()
    }
}

/// `⌈log_3 p⌉` as used by the ternary non-receipt broadcast of Section 4.2.
#[inline]
pub fn ceil_log3(p: u64) -> u64 {
    if p <= 1 {
        return 0;
    }
    let mut k = 0u64;
    let mut reach = 1u64;
    while reach < p {
        reach = reach.saturating_mul(3);
        k += 1;
    }
    k
}

/// `⌈log_b p⌉` for an arbitrary integer base `b ≥ 2`.
#[inline]
pub fn ceil_log_base(b: u64, p: u64) -> u64 {
    assert!(b >= 2, "logarithm base must be at least 2");
    if p <= 1 {
        return 0;
    }
    let mut k = 0u64;
    let mut reach = 1u64;
    while reach < p {
        reach = reach.saturating_mul(b);
        k += 1;
    }
    k
}

/// Integer ceiling division.
#[inline]
pub fn div_ceil(a: u64, b: u64) -> u64 {
    assert!(b > 0, "division by zero");
    a / b + u64::from(!a.is_multiple_of(b))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lg_clamps_small_arguments() {
        assert_eq!(lg(0.0), 1.0);
        assert_eq!(lg(1.0), 1.0);
        assert_eq!(lg(2.0), 1.0);
        assert!((lg(8.0) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn ceil_log3_small_values() {
        assert_eq!(ceil_log3(1), 0);
        assert_eq!(ceil_log3(2), 1);
        assert_eq!(ceil_log3(3), 1);
        assert_eq!(ceil_log3(4), 2);
        assert_eq!(ceil_log3(9), 2);
        assert_eq!(ceil_log3(10), 3);
        assert_eq!(ceil_log3(27), 3);
    }

    #[test]
    fn ceil_log_base_matches_log3() {
        for p in 1..200u64 {
            assert_eq!(ceil_log_base(3, p), ceil_log3(p), "p={p}");
        }
    }

    #[test]
    fn ceil_log_base_powers() {
        assert_eq!(ceil_log_base(2, 1024), 10);
        assert_eq!(ceil_log_base(2, 1025), 11);
        assert_eq!(ceil_log_base(4, 16), 2);
        assert_eq!(ceil_log_base(4, 17), 3);
    }

    #[test]
    fn div_ceil_basics() {
        assert_eq!(div_ceil(0, 5), 0);
        assert_eq!(div_ceil(1, 5), 1);
        assert_eq!(div_ceil(5, 5), 1);
        assert_eq!(div_ceil(6, 5), 2);
        assert_eq!(div_ceil(10, 5), 2);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_ceil_zero_divisor_panics() {
        let _ = div_ceil(1, 0);
    }
}
