//! Invariant family 5: checkpoint/rollback recovery under every crash
//! window in the domain.
//!
//! The explorer drives [`pbw_core::run_with_checkpointed_recovery_to`] —
//! the real checkpoint driver over the real ack/retransmit protocol — for
//! **every** single-processor crash window expressible in the domain
//! (`pid × onset × length ≤ 2`), crossed with checkpoint intervals
//! `k ∈ {1, 2}`, over the recovery workload catalog. Enumerating one
//! window is exhaustive for this fault class: the wall-clock replay makes
//! multi-window behaviour a composition of single-window recoveries, and
//! the seeded chaos soak covers the mixed case statistically.
//!
//! Audited at every leaf:
//!
//! * **Recovery terminates** — the driver finishes without exhausting its
//!   rollback bound (every domain window is finite, so wall-clock advance
//!   must out-wait it);
//! * **Nothing is lost** — every flit is delivered and has an arrival step
//!   on record, exactly as in the crash-free run (post-recovery delivery
//!   state ≡ crash-free delivery state);
//! * **Conservation with crashes** — the terminal ledger balances under
//!   the extended law (`injected + duplicated + restored == delivered +
//!   dropped + crashed + in_flight`) and ends with nothing in flight;
//! * **Accounting is consistent** — a run that rolled back must have
//!   charged `restored` payloads and counted `crash_steps`, and replayed
//!   supersteps are only reported when a rollback happened;
//! * **Determinism** — re-running the same window bit-identically
//!   reproduces the summary, the ledger, and the rollback count.

use std::sync::Arc;

use pbw_core::schedulers::{OfflineOptimal, Scheduler};
use pbw_core::{
    run_with_checkpointed_recovery_to, CheckpointConfig, CheckpointedOutcome, RecoveryConfig,
    Workload,
};
use pbw_faults::{CrashWindow, FaultPlan, FaultSpec};
use pbw_models::MachineParams;
use pbw_sim::{DeliveryHook, Pid};
use pbw_trace::NullSink;

use crate::recovery::workload_by_name;
use crate::{Budget, Domain, FamilyReport, Violation};

/// Scheduler seed (the offline optimal ignores it; part of the replay
/// coordinates, mirroring the recovery family).
const SEED: u64 = 11;

/// Longest enumerated outage, in supersteps.
const MAX_LEN: u64 = 2;

/// Rollback ceiling handed to the driver. A domain window of length `L`
/// starting at onset `s` needs at most `s + L` rollbacks (each advances
/// the wall clock by at least one superstep), so 16 is generous — hitting
/// it is a termination defect, not tuning.
const MAX_ROLLBACKS: u32 = 16;

fn run_window(wl: &Workload, window: CrashWindow, interval: u64) -> CheckpointedOutcome {
    let params = MachineParams::from_bandwidth(wl.p(), 1, 2);
    let hook: Arc<dyn DeliveryHook> =
        Arc::new(FaultPlan::new(FaultSpec::none(), 0).with_crash_window(window));
    run_with_checkpointed_recovery_to(
        Arc::new(NullSink),
        wl,
        &OfflineOptimal as &dyn Scheduler,
        params,
        SEED,
        Some(hook),
        &RecoveryConfig::default(),
        &CheckpointConfig {
            interval,
            charge_state_io: true,
            max_rollbacks: MAX_ROLLBACKS,
        },
    )
}

/// Audit one crash-window run against the recovery contract.
fn leaf_defects(
    out: &CheckpointedOutcome,
    baseline: &CheckpointedOutcome,
    wl: &Workload,
) -> Vec<String> {
    let mut defects = Vec::new();
    if out.gave_up {
        defects.push(format!(
            "recovery did not terminate: gave up after {} rollbacks",
            out.rollbacks
        ));
        return defects;
    }
    if !out.recovery.delivered_all {
        defects.push("a finite crash window lost flits permanently".to_string());
    }
    if out.recovery.arrival_steps.len() as u64 != wl.n_flits() {
        defects.push(format!(
            "{} arrival step(s) recorded for {} flit(s)",
            out.recovery.arrival_steps.len(),
            wl.n_flits()
        ));
    }
    // Post-recovery delivery state ≡ crash-free run: same flits delivered
    // (delivered_all + the arrival count pins the set; the ledger cannot
    // have quietly written any of them off).
    if out.recovery.delivered_all != baseline.recovery.delivered_all
        || out.recovery.arrival_steps.len() != baseline.recovery.arrival_steps.len()
    {
        defects.push("post-recovery delivery state differs from the crash-free run".to_string());
    }
    let stats = out.recovery.fault_stats;
    if !stats.conserved() || stats.in_flight != 0 {
        defects.push(format!("terminal ledger broken: {stats:?}"));
    }
    if out.rollbacks > 0 && stats.crash_steps == 0 {
        defects.push("rolled back without any crashed superstep on the ledger".to_string());
    }
    if out.rollbacks == 0 && out.replayed_supersteps > 0 {
        defects.push(format!(
            "{} replayed supersteps without a rollback",
            out.replayed_supersteps
        ));
    }
    defects
}

/// Walk every crash window for every catalog workload.
pub fn explore(domain: &Domain, budget: &mut Budget) -> FamilyReport {
    let mut report = FamilyReport::new("crash-recovery");
    if !domain.crashes {
        return report;
    }
    for wl_name in ["hot", "ring"] {
        let wl = workload_by_name(wl_name, domain.p).unwrap();
        for interval in [1u64, 2] {
            // Crash-free baseline for the equivalence check.
            if !budget.try_charge(1) {
                report.truncated = true;
                return report;
            }
            report.runs += 1;
            let baseline = run_window(
                &wl,
                // A window that never fires: onset far past any run.
                CrashWindow::new(0, u64::MAX / 2, 1).expect("window"),
                interval,
            );
            for pid in 0..domain.p as Pid {
                for onset in 0..domain.supersteps {
                    for len in 1..=MAX_LEN {
                        if !budget.try_charge(2) {
                            report.truncated = true;
                            return report;
                        }
                        report.runs += 2;
                        report.leaves += 1;
                        let window = CrashWindow::new(pid, onset, len).expect("window");
                        let out = run_window(&wl, window, interval);
                        let again = run_window(&wl, window, interval);
                        let subject = format!(
                            "workload={wl_name} p={} k={interval} crash=p{pid}@{onset}+{len}",
                            wl.p()
                        );
                        let mut defects = leaf_defects(&out, &baseline, &wl);
                        if out.recovery.summary != again.recovery.summary
                            || out.recovery.fault_stats != again.recovery.fault_stats
                            || out.rollbacks != again.rollbacks
                        {
                            defects.push(
                                "identical crash windows produced different runs".to_string(),
                            );
                        }
                        for d in defects {
                            report.record(Violation {
                                family: "crash-recovery",
                                subject: subject.clone(),
                                script: format!("crash window p{pid}@{onset}+{len}"),
                                detail: d,
                            });
                        }
                    }
                }
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_window_recovers_and_matches_baseline() {
        let wl = workload_by_name("ring", 3).unwrap();
        let baseline = run_window(&wl, CrashWindow::new(0, u64::MAX / 2, 1).unwrap(), 1);
        assert_eq!(baseline.rollbacks, 0);
        let out = run_window(&wl, CrashWindow::new(1, 0, 2).unwrap(), 1);
        assert!(leaf_defects(&out, &baseline, &wl).is_empty());
        assert!(out.rollbacks >= 1);
    }

    #[test]
    fn ci_domain_crash_family_is_clean() {
        let mut budget = Budget::new(50_000);
        let report = explore(&crate::Domain::ci(), &mut budget);
        assert_eq!(report.n_violations(), 0, "{:?}", report.violations);
        assert!(!report.truncated);
        assert!(report.leaves > 0);
    }
}
