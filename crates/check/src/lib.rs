//! # pbw-check
//!
//! A bounded model checker for the `parallel-bandwidth` engines. Unlike a
//! property test, which samples the fault space, the checker **enumerates
//! it exhaustively** over a small domain (few processors, few supersteps,
//! few messages) and drives the *real* engines — [`pbw_sim::BspMachine`],
//! [`pbw_core::RecoverySession`], the schedulers — never a model of them.
//!
//! Five invariant families are checked:
//!
//! 1. **Conservation** — at every superstep boundary of every reachable
//!    fault assignment (crash-stop failures included), the fault ledger
//!    balances (`injected + duplicated + restored == delivered +
//!    dropped + crashed + in_flight`), and at quiescence the ledger is
//!    *reconstructible from the script alone*: dropped == scripted drops
//!    among consulted messages, crashed == payloads whose custody
//!    transfer lands on a scripted-dead destination, and so on.
//! 2. **Recovery termination** — under *every* drop pattern expressible in
//!    the domain, the ack/retransmit protocol drains: all flits delivered,
//!    rounds bounded by the number of faulted supersteps, and idle time
//!    exactly `Σ_r backoff(r)` (the bounded-exponential-backoff contract).
//! 3. **Sparse ≡ dense** — the active-set (`superstep_active`) and dense
//!    (`superstep`) execution paths produce *byte-identical* behaviour
//!    (canonical state hash at every explored node, full trace render at
//!    every leaf) for every fault assignment, not just clean runs.
//! 4. **Crash recovery** — for every single-processor crash window in the
//!    domain, checkpoint/rollback recovery terminates, delivers every
//!    flit (post-recovery delivery state ≡ the crash-free run), keeps the
//!    extended ledger conserved, and replays deterministically.
//! 5. **Cost envelope** — for every unit workload in the domain, the
//!    offline optimal is exactly `max(⌈n/m⌉, x̄)` slots with no overload,
//!    and Unbalanced-Send respects its window structure, its engine replay
//!    matches its analytic profile, and — whenever its w.h.p. event holds —
//!    its BSP(m) time is within the Theorem 6.2 target.
//!
//! Every counterexample carries a serialized [`FaultScript`] and enough
//! context to re-run it verbatim through [`replay`], so a checker finding
//! becomes a committed regression test by pasting two strings.
//!
//! Exploration is budgeted ([`Budget`], `PBW_CHECK_BUDGET` env var): each
//! engine execution costs one unit, and a report always states whether the
//! walk was exhaustive or truncated — a truncated pass is reported as such,
//! never silently presented as full coverage.

pub mod crash;
pub mod envelope;
pub mod machine;
pub mod program;
pub mod record;
pub mod recovery;

use std::fmt;

pub use pbw_faults::{FaultScript, ScriptKey};
use pbw_sim::Fate;

/// The exploration domain: how big a world the checker enumerates.
#[derive(Debug, Clone)]
pub struct Domain {
    /// Number of simulated processors.
    pub p: usize,
    /// Supersteps whose messages get enumerated fates (runs may extend
    /// further to drain delayed traffic).
    pub supersteps: u64,
    /// Cap on fate decisions per superstep (the catalog programs stay well
    /// under it; exceeding it marks the walk truncated).
    pub max_messages: usize,
    /// Non-deliver fate alphabet enumerated per message.
    pub fates: Vec<Fate>,
    /// Whether to enumerate per-superstep processor stalls.
    pub stalls: bool,
    /// Whether to enumerate per-superstep crash-stop failures (a crashed
    /// processor skips its closure, its unread inbox evaporates, and
    /// in-flight payloads addressed to it are written off to the ledger's
    /// `crashed` column).
    pub crashes: bool,
}

impl Domain {
    /// The CI domain: `p = 3`, 3 supersteps, ≤ 4 scripted messages per
    /// superstep, fates {drop, dup, delay 1}, stalls and crashes on.
    pub fn ci() -> Self {
        Domain {
            p: 3,
            supersteps: 3,
            max_messages: 4,
            fates: vec![Fate::Drop, Fate::Duplicate, Fate::Delay(1)],
            stalls: true,
            crashes: true,
        }
    }

    /// The widest supported domain: `p = 4`, 4 supersteps, ≤ 6 messages,
    /// plus longer delays and slot displacement.
    pub fn wide() -> Self {
        Domain {
            p: 4,
            supersteps: 4,
            max_messages: 6,
            fates: vec![
                Fate::Drop,
                Fate::Duplicate,
                Fate::Delay(1),
                Fate::Delay(2),
                Fate::Displace(1),
            ],
            stalls: true,
            crashes: true,
        }
    }

    /// A deliberately tiny domain for the crate's own unit tests.
    pub fn tiny() -> Self {
        Domain {
            p: 2,
            supersteps: 2,
            max_messages: 3,
            fates: vec![Fate::Drop, Fate::Delay(1)],
            stalls: true,
            crashes: true,
        }
    }
}

/// A shared execution budget: every engine run costs one unit. When the
/// budget runs dry the walk stops and the report is marked truncated.
#[derive(Debug)]
pub struct Budget {
    max: u64,
    used: u64,
}

/// Default budget when `PBW_CHECK_BUDGET` is unset: comfortably above the
/// ~352k engine runs the crash-enabled wide domain needs (the CI domain
/// needs under 8k), far below anything slow.
pub const DEFAULT_BUDGET: u64 = 450_000;

impl Budget {
    /// A budget of `max` engine executions.
    pub fn new(max: u64) -> Self {
        Budget { max, used: 0 }
    }

    /// Read the budget from `PBW_CHECK_BUDGET` (engine executions), or
    /// [`DEFAULT_BUDGET`] if unset/unparsable.
    pub fn from_env() -> Self {
        let max = std::env::var("PBW_CHECK_BUDGET")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(DEFAULT_BUDGET);
        Budget::new(max)
    }

    /// Try to spend `n` units; `false` (and no spend) once exhausted.
    pub fn try_charge(&mut self, n: u64) -> bool {
        if self.used + n > self.max {
            return false;
        }
        self.used += n;
        true
    }

    /// Units spent so far.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// The configured ceiling.
    pub fn max(&self) -> u64 {
        self.max
    }
}

/// One counterexample: everything needed to reproduce it verbatim.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Invariant family ("conservation", "recovery", "sparse-dense",
    /// "crash-recovery", "envelope").
    pub family: &'static str,
    /// What was being driven (program/workload name, p, config).
    pub subject: String,
    /// The serialized [`FaultScript`] (`"clean"` for fault-free subjects).
    pub script: String,
    /// What went wrong, human-readable.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "counterexample [{}] {}", self.family, self.subject)?;
        writeln!(f, "  script: {}", self.script)?;
        write!(f, "  detail: {}", self.detail)
    }
}

/// Stored-violation cap per family; everything beyond it is counted in
/// [`FamilyReport::suppressed`] rather than materialized.
const MAX_STORED_VIOLATIONS: usize = 24;

/// What one invariant family's walk did.
#[derive(Debug)]
pub struct FamilyReport {
    /// Family name.
    pub family: &'static str,
    /// Engine executions charged to this family.
    pub runs: u64,
    /// Nodes pruned because a canonically-equal state was already explored.
    pub dedup_hits: u64,
    /// Terminal states fully audited.
    pub leaves: u64,
    /// Counterexamples found (first [`MAX_STORED_VIOLATIONS`]).
    pub violations: Vec<Violation>,
    /// Counterexamples found beyond the storage cap.
    pub suppressed: u64,
    /// Whether the walk ran out of budget (or hit a domain cap) before
    /// finishing — i.e. this is *not* an exhaustiveness certificate.
    pub truncated: bool,
}

impl FamilyReport {
    pub(crate) fn new(family: &'static str) -> Self {
        FamilyReport {
            family,
            runs: 0,
            dedup_hits: 0,
            leaves: 0,
            violations: Vec::new(),
            suppressed: 0,
            truncated: false,
        }
    }

    pub(crate) fn record(&mut self, v: Violation) {
        if self.violations.len() < MAX_STORED_VIOLATIONS {
            self.violations.push(v);
        } else {
            self.suppressed += 1;
        }
    }

    /// Total counterexamples, stored or not.
    pub fn n_violations(&self) -> u64 {
        self.violations.len() as u64 + self.suppressed
    }
}

/// The whole checker run.
#[derive(Debug)]
pub struct CheckReport {
    /// One report per invariant family.
    pub families: Vec<FamilyReport>,
    /// Budget units spent.
    pub budget_used: u64,
    /// Budget ceiling.
    pub budget_max: u64,
}

impl CheckReport {
    /// No counterexamples anywhere (truncation is reported separately).
    pub fn ok(&self) -> bool {
        self.families.iter().all(|f| f.n_violations() == 0)
    }

    /// Whether any family's walk was cut short.
    pub fn truncated(&self) -> bool {
        self.families.iter().any(|f| f.truncated)
    }
}

impl fmt::Display for CheckReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "pbw-check: {} / {} budget units spent",
            self.budget_used, self.budget_max
        )?;
        for fam in &self.families {
            writeln!(
                f,
                "  {:<12} {:>8} runs  {:>7} dedup  {:>7} leaves  {:>4} violations  [{}]",
                fam.family,
                fam.runs,
                fam.dedup_hits,
                fam.leaves,
                fam.n_violations(),
                if fam.truncated {
                    "TRUNCATED"
                } else {
                    "exhaustive"
                },
            )?;
        }
        for fam in &self.families {
            for v in &fam.violations {
                writeln!(f, "{v}")?;
            }
            if fam.suppressed > 0 {
                writeln!(
                    f,
                    "  ({} further {} counterexample(s) suppressed)",
                    fam.suppressed, fam.family
                )?;
            }
        }
        Ok(())
    }
}

/// Run all five invariant families under one shared budget.
pub fn run_all(domain: &Domain, budget: &mut Budget) -> CheckReport {
    let mf = machine::explore(domain, budget);
    let rec = recovery::explore(domain, budget);
    let cr = crash::explore(domain, budget);
    let env = envelope::check(domain, budget);
    CheckReport {
        families: vec![mf.conservation, mf.sparse_dense, rec, cr, env],
        budget_used: budget.used(),
        budget_max: budget.max(),
    }
}

/// Re-run a serialized counterexample exactly as the explorer's leaf audit
/// would — the bridge from a checker finding to a committed regression
/// test. Each function returns `Err` with every defect found, `Ok(())` if
/// the invariants now hold.
pub mod replay {
    use crate::machine::check_leaf;
    use crate::program::Program;
    use crate::recovery::replay_recovery;
    use pbw_faults::FaultScript;

    /// Replay a machine-family (conservation / sparse≡dense)
    /// counterexample: `program` is a catalog name (`ring`, `fanout`,
    /// `echo`, `crossfire`), `script` the serialized [`FaultScript`].
    pub fn machine(program: &str, p: usize, supersteps: u64, script: &str) -> Result<(), String> {
        let prog = Program::by_name(program, p)
            .ok_or_else(|| format!("unknown checker program `{program}`"))?;
        let script: FaultScript = script.parse().map_err(|e| format!("{e}"))?;
        let defects = check_leaf(&prog, &script, supersteps);
        let all: Vec<String> = defects
            .conservation
            .into_iter()
            .chain(defects.sparse_dense)
            .collect();
        if all.is_empty() {
            Ok(())
        } else {
            Err(all.join("; "))
        }
    }

    /// Replay a recovery-family counterexample: `workload` is a catalog
    /// name (`hot`, `ring`), `script` a drop-only [`FaultScript`].
    pub fn recovery(
        workload: &str,
        p: usize,
        charge_acks: bool,
        script: &str,
    ) -> Result<(), String> {
        let script: FaultScript = script.parse().map_err(|e| format!("{e}"))?;
        replay_recovery(workload, p, charge_acks, &script)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_domain_is_fully_verified() {
        let mut budget = Budget::new(100_000);
        let report = run_all(&Domain::tiny(), &mut budget);
        assert!(report.ok(), "unexpected counterexamples:\n{report}");
        assert!(!report.truncated(), "tiny domain must fit the budget");
        assert!(report.families.iter().all(|f| f.leaves > 0));
        assert_eq!(report.families.len(), 5);
    }

    #[test]
    fn exhausted_budget_reports_truncation_not_failure() {
        let mut budget = Budget::new(10);
        let report = run_all(&Domain::tiny(), &mut budget);
        assert!(report.truncated());
        assert!(report.ok(), "truncation is not a counterexample");
        assert!(budget.used() <= 10);
    }

    #[test]
    fn machine_replay_accepts_a_clean_counterexample_script() {
        replay::machine("ring", 2, 2, "drop@0/0.0").expect("invariants hold on the real engine");
        replay::machine("ring", 2, 2, "delay1@0/1.0 stall@1/p0").expect("delay+stall holds too");
        assert!(replay::machine("no-such-program", 2, 2, "clean").is_err());
        assert!(replay::machine("ring", 2, 2, "garbage").is_err());
    }

    #[test]
    fn recovery_replay_accepts_a_drop_script() {
        replay::recovery("hot", 2, true, "drop@0/0.0").expect("protocol recovers from one drop");
        assert!(replay::recovery("hot", 2, true, "dup@0/0.0").is_err());
        assert!(replay::recovery("no-such-workload", 2, true, "clean").is_err());
    }
}
