//! A delivery hook that records which messages the engine consulted.
//!
//! The explorer does not know a priori which `(superstep, src, msg_idx)`
//! coordinates exist — that depends on the program, earlier fates and
//! stalls. So every node is first *probed*: run with the candidate script,
//! record the keys the engine actually consulted, and branch over fate
//! assignments to exactly those keys. Recording lives behind a `Mutex`
//! because engines consult fates from worker threads; the fate returned is
//! still a pure function of the presented context (the engine contract),
//! only the observation is accumulated.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Mutex;

use pbw_faults::{FaultScript, ScriptKey};
use pbw_sim::{DeliveryCtx, DeliveryHook, Fate, Pid};

/// Wraps a [`FaultScript`] and remembers every consulted key plus every
/// `(superstep, dest)` a consulted message was addressed to.
#[derive(Debug)]
pub struct RecordingHook {
    script: FaultScript,
    seen: Mutex<BTreeSet<ScriptKey>>,
    dests: Mutex<BTreeSet<(u64, Pid)>>,
    key_dests: Mutex<BTreeMap<ScriptKey, Pid>>,
}

impl RecordingHook {
    /// Record around `script`.
    pub fn new(script: FaultScript) -> Self {
        RecordingHook {
            script,
            seen: Mutex::new(BTreeSet::new()),
            dests: Mutex::new(BTreeSet::new()),
            key_dests: Mutex::new(BTreeMap::new()),
        }
    }

    /// All keys consulted so far, in canonical order.
    pub fn consulted(&self) -> BTreeSet<ScriptKey> {
        self.seen.lock().unwrap().clone()
    }

    /// Keys consulted at one superstep, in canonical order.
    pub fn keys_at(&self, superstep: u64) -> Vec<ScriptKey> {
        self.seen
            .lock()
            .unwrap()
            .iter()
            .copied()
            .filter(|k| k.0 == superstep)
            .collect()
    }

    /// The destination each consulted key was addressed to — the input the
    /// leaf audit needs to reconstruct the `crashed` ledger column from
    /// the script alone (a write-off is charged at the superstep the
    /// payload's custody transfer lands, per the fate's timing).
    pub fn key_dests(&self) -> BTreeMap<ScriptKey, Pid> {
        self.key_dests.lock().unwrap().clone()
    }

    /// Destinations of messages consulted at one superstep (sorted,
    /// deduplicated) — the processors that will be busy *receiving* next
    /// superstep, i.e. the interesting stall candidates.
    pub fn dests_at(&self, superstep: u64) -> Vec<Pid> {
        self.dests
            .lock()
            .unwrap()
            .iter()
            .copied()
            .filter(|&(s, _)| s == superstep)
            .map(|(_, d)| d)
            .collect()
    }
}

impl DeliveryHook for RecordingHook {
    fn fate(&self, ctx: &DeliveryCtx) -> Fate {
        let key = (ctx.superstep, ctx.src, ctx.msg_idx);
        self.seen.lock().unwrap().insert(key);
        self.dests.lock().unwrap().insert((ctx.superstep, ctx.dest));
        self.key_dests.lock().unwrap().insert(key, ctx.dest);
        self.script.fate(ctx)
    }

    fn stalled(&self, superstep: u64, pid: Pid) -> bool {
        self.script.stalled(superstep, pid)
    }

    fn crashed(&self, superstep: u64, pid: Pid) -> bool {
        self.script.crashed_at(superstep, pid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recording_delegates_and_observes() {
        let script = FaultScript::new()
            .with_fate(1, 0, 0, Fate::Drop)
            .with_stall(0, 1)
            .with_crash(2, 0);
        let hook = RecordingHook::new(script);
        let ctx = DeliveryCtx {
            superstep: 1,
            src: 0,
            dest: 2,
            msg_idx: 0,
            slot: 0,
        };
        assert_eq!(hook.fate(&ctx), Fate::Drop);
        assert_eq!(hook.fate(&DeliveryCtx { src: 1, ..ctx }), Fate::Deliver);
        assert!(hook.stalled(0, 1));
        assert_eq!(hook.keys_at(1), vec![(1, 0, 0), (1, 1, 0)]);
        assert!(hook.keys_at(0).is_empty());
        assert_eq!(hook.dests_at(1), vec![2]);
        assert_eq!(hook.consulted().len(), 2);
        assert!(hook.crashed(2, 0));
        assert!(!hook.crashed(1, 0));
        assert_eq!(hook.key_dests().get(&(1, 0, 0)), Some(&2));
    }
}
