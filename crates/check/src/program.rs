//! The catalog of tiny BSP programs the machine explorer drives.
//!
//! Each program is a deterministic superstep body over `u64` state and
//! `u64` payloads, plus an *active-set declaration* for the sparse
//! execution path. The catalog is chosen to exercise the communication
//! shapes the engine distinguishes: a cycle where everyone sends and
//! receives (`ring`), a one-to-all burst (`fanout`), a request/response
//! exchange whose second wave is *triggered by arrival* — including late,
//! delayed arrival (`echo`) — and an all-to-one hotspot (`crossfire`).
//! Message totals stay within the checker domains (≤ p per superstep).
//!
//! Programs are looked up by name ([`Program::by_name`]) so a serialized
//! counterexample (`program`, `p`, `supersteps`, script) replays verbatim.

use std::sync::Arc;

use pbw_sim::{Outbox, Pid};

/// A superstep body: `(pid, superstep, state, inbox, outbox)`.
pub type Body = Arc<dyn Fn(Pid, u64, &mut u64, &[u64], &mut Outbox<u64>) + Send + Sync>;

/// Declared active set per superstep (the sparse path's frontier seed;
/// processors with retained inboxes or due deliveries wake on their own).
pub type ActiveFn = Arc<dyn Fn(u64) -> Vec<Pid> + Send + Sync>;

/// One catalog entry.
pub struct Program {
    /// Catalog name (stable — serialized into counterexamples).
    pub name: &'static str,
    /// Processor count it was instantiated for.
    pub p: usize,
    /// The superstep body.
    pub body: Body,
    /// The sparse-path active-set declaration.
    pub active: ActiveFn,
}

impl Program {
    /// Every catalog program at processor count `p` (`p ≥ 2`).
    pub fn catalog(p: usize) -> Vec<Program> {
        assert!(p >= 2, "checker programs need at least two processors");
        vec![ring(p), fanout(p), echo(p), crossfire(p)]
    }

    /// Look a program up by catalog name (for counterexample replay).
    pub fn by_name(name: &str, p: usize) -> Option<Program> {
        Self::catalog(p).into_iter().find(|pr| pr.name == name)
    }
}

/// Every processor sends one message around the cycle at superstep 0 and
/// accumulates whatever arrives forever after.
fn ring(p: usize) -> Program {
    Program {
        name: "ring",
        p,
        body: Arc::new(move |pid, ss, state, inbox, out| {
            *state = state.wrapping_add(inbox.iter().sum::<u64>());
            if ss == 0 {
                out.send((pid + 1) % p, 100 + pid as u64);
            }
        }),
        active: Arc::new(move |ss| {
            if ss == 0 {
                (0..p).collect()
            } else {
                Vec::new()
            }
        }),
    }
}

/// Processor 0 sends one message to everyone else at superstep 0.
fn fanout(p: usize) -> Program {
    Program {
        name: "fanout",
        p,
        body: Arc::new(move |pid, ss, state, inbox, out| {
            *state = state.wrapping_add(inbox.iter().sum::<u64>());
            if ss == 0 && pid == 0 {
                for dest in 1..p {
                    out.send(dest, 200 + dest as u64);
                }
            }
        }),
        active: Arc::new(|ss| if ss == 0 { vec![0] } else { Vec::new() }),
    }
}

/// Processor 0 fans out at superstep 0; each receiver echoes back to 0 the
/// first time anything arrives — *whenever* that is, so a delayed or
/// duplicated request changes which superstep carries the reply.
fn echo(p: usize) -> Program {
    Program {
        name: "echo",
        p,
        body: Arc::new(move |pid, ss, state, inbox, out| {
            if pid == 0 {
                *state = state.wrapping_add(inbox.iter().sum::<u64>());
                if ss == 0 {
                    for dest in 1..p {
                        out.send(dest, 300 + dest as u64);
                    }
                }
            } else if *state == 0 && !inbox.is_empty() {
                out.send(0, inbox.iter().sum::<u64>() + 1);
                *state = 1;
            }
        }),
        active: Arc::new(|ss| if ss == 0 { vec![0] } else { Vec::new() }),
    }
}

/// Everyone except processor 0 fires one message at it in superstep 0.
fn crossfire(p: usize) -> Program {
    Program {
        name: "crossfire",
        p,
        body: Arc::new(move |pid, ss, state, inbox, out| {
            *state = state.wrapping_add(inbox.iter().sum::<u64>());
            if ss == 0 && pid != 0 {
                out.send(0, 400 + pid as u64);
            }
        }),
        active: Arc::new(move |ss| {
            if ss == 0 {
                (1..p).collect()
            } else {
                Vec::new()
            }
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_is_stable_and_addressable() {
        let names: Vec<&str> = Program::catalog(3).iter().map(|p| p.name).collect();
        assert_eq!(names, ["ring", "fanout", "echo", "crossfire"]);
        for name in names {
            assert!(Program::by_name(name, 3).is_some());
        }
        assert!(Program::by_name("nope", 3).is_none());
    }

    #[test]
    fn message_totals_fit_the_domains() {
        // Each program injects at most p messages in any superstep — the
        // widest domain allows 6 at p = 4.
        for p in 2..=4 {
            for prog in Program::catalog(p) {
                let mut out = Outbox::default();
                for pid in 0..p {
                    (prog.body)(pid, 0, &mut 0, &[], &mut out);
                }
                assert!(
                    out.len() <= p,
                    "{} sends {} > p = {p}",
                    prog.name,
                    out.len()
                );
            }
        }
    }
}
