//! Invariant family 4: the cost-envelope audit.
//!
//! For **every** unit workload over the domain (every multiset of
//! `(src, dest)` pairs up to `max_messages`, for every `p` up to the
//! domain's and every bandwidth `m` dividing `p`):
//!
//! * the offline optimal packs into *exactly* `max(⌈n/m⌉, x̄)` slots with
//!   no slot over `m` — the lower bound it exists to witness;
//! * Unbalanced-Send (ε = 1/2, several seeds) obeys its structural
//!   contract: in-window senders start strictly inside the window
//!   `w = ⌈(1+ε)n/m⌉`, over-window senders send eagerly from slot 0, and
//!   the makespan never exceeds `max(w, x̄)`;
//! * [`evaluate_schedule`]'s slot accounting agrees with an independent
//!   recount of the schedule's slot loads;
//! * replaying either schedule on the *engine* produces the analytic
//!   profile ([`to_profile`]) — the engine and the calculator price the
//!   same object;
//! * whenever the w.h.p. event of Theorem 6.2 holds (`no_slot_exceeds_m` —
//!   deterministically checkable per instance), the schedule's BSP(m) time
//!   is within the theorem's target
//!   `max((1+ε)n/m, x̄, ȳ, L) + τ(p, m, L)`.
//!
//! The theorem itself is probabilistic; the checker never asserts the
//! w.h.p. event, only the *conditional* envelope — which must hold on
//! every instance, enumerated exhaustively, or the accounting is wrong.

use pbw_core::exec::run_schedule_on_bsp;
use pbw_core::schedule::to_profile;
use pbw_core::schedulers::{OfflineOptimal, Scheduler, UnbalancedSend};
use pbw_core::workload::Msg;
use pbw_core::{evaluate_schedule, validate_schedule, Schedule, Workload};
use pbw_models::bounds::unbalanced_send_target;
use pbw_models::{div_ceil, MachineParams, PenaltyFn};

use crate::{Budget, Domain, FamilyReport, Violation};

const EPS: f64 = 0.5;
const L: u64 = 2;
const SEEDS: [u64; 3] = [0, 1, 2];

/// Walk every unit workload in the domain.
pub fn check(domain: &Domain, budget: &mut Budget) -> FamilyReport {
    let mut report = FamilyReport::new("envelope");
    for p in 2..=domain.p {
        // All ordered pairs (src, dest), src != dest.
        let pairs: Vec<(usize, usize)> = (0..p)
            .flat_map(|s| (0..p).filter(move |&d| d != s).map(move |d| (s, d)))
            .collect();
        for multiset in multisets(pairs.len(), domain.max_messages) {
            let mut dests: Vec<Vec<usize>> = vec![Vec::new(); p];
            for idx in &multiset {
                let (s, d) = pairs[*idx];
                dests[s].push(d);
            }
            let wl = Workload::new(
                dests
                    .into_iter()
                    .map(|ds| ds.into_iter().map(Msg::unit).collect())
                    .collect(),
            );
            for m in (1..=p).filter(|m| p % m == 0) {
                if !check_instance(&wl, p, m, budget, &mut report) {
                    return report;
                }
            }
        }
    }
    report
}

/// All index-multisets of size `0..=max_len` over `0..k` (non-decreasing
/// index sequences — combinations with repetition).
fn multisets(k: usize, max_len: usize) -> Vec<Vec<usize>> {
    let mut out: Vec<Vec<usize>> = vec![Vec::new()];
    let mut frontier: Vec<Vec<usize>> = vec![Vec::new()];
    for _ in 0..max_len {
        let mut next = Vec::new();
        for ms in &frontier {
            let lo = ms.last().copied().unwrap_or(0);
            for i in lo..k {
                let mut v = ms.clone();
                v.push(i);
                next.push(v);
            }
        }
        out.extend(next.iter().cloned());
        frontier = next;
    }
    out
}

fn subject(wl: &Workload, p: usize, m: usize, scheduler: &str, seed: u64) -> String {
    let sends: Vec<String> = (0..p)
        .flat_map(|src| {
            wl.msgs(src)
                .iter()
                .map(move |msg| format!("{src}→{}", msg.dest))
        })
        .collect();
    format!(
        "workload=[{}] p={p} m={m} scheduler={scheduler} seed={seed}",
        sends.join(",")
    )
}

/// Independent recount of per-slot loads straight from the start lists.
fn recount_loads(schedule: &Schedule) -> Vec<u64> {
    let mut loads: Vec<u64> = Vec::new();
    for starts in &schedule.starts {
        for &slot in starts {
            if loads.len() <= slot as usize {
                loads.resize(slot as usize + 1, 0);
            }
            loads[slot as usize] += 1;
        }
    }
    loads
}

/// Audit one `(workload, m)` instance; `false` when the budget ran dry.
fn check_instance(
    wl: &Workload,
    p: usize,
    m: usize,
    budget: &mut Budget,
    report: &mut FamilyReport,
) -> bool {
    let params = MachineParams::from_bandwidth(p, m, L);
    let n = wl.n_flits();
    let mut fail = |report: &mut FamilyReport, subj: String, detail: String| {
        report.record(Violation {
            family: "envelope",
            subject: subj,
            script: "clean".to_string(),
            detail,
        });
    };

    // --- Offline optimal: the exact lower-bound witness. ---
    if !budget.try_charge(1) {
        report.truncated = true;
        return false;
    }
    report.runs += 1;
    let subj = subject(wl, p, m, "Offline-Optimal", 0);
    let sched = OfflineOptimal.schedule(wl, m, 0);
    if let Err(e) = validate_schedule(&sched, wl) {
        fail(report, subj.clone(), format!("invalid schedule: {e:?}"));
        return true;
    }
    let cost = evaluate_schedule(&sched, wl, m, PenaltyFn::Exponential);
    let t_opt = if n == 0 {
        0
    } else {
        div_ceil(n, m as u64).max(wl.xbar())
    };
    if cost.makespan != t_opt {
        fail(
            report,
            subj.clone(),
            format!(
                "offline optimal took {} slots, bound is {t_opt}",
                cost.makespan
            ),
        );
    }
    if !cost.no_slot_exceeds_m {
        fail(
            report,
            subj.clone(),
            format!(
                "offline optimal overloaded a slot (max load {})",
                cost.max_slot_load
            ),
        );
    }
    check_engine_agreement(wl, &sched, params, &subj, report, &mut fail);

    // --- Unbalanced-Send: window structure + conditional Theorem 6.2. ---
    for seed in SEEDS {
        if !budget.try_charge(1) {
            report.truncated = true;
            return false;
        }
        report.runs += 1;
        let subj = subject(wl, p, m, "Unbalanced-Send", seed);
        let sched = UnbalancedSend::new(EPS).schedule(wl, m, seed);
        if let Err(e) = validate_schedule(&sched, wl) {
            fail(report, subj.clone(), format!("invalid schedule: {e:?}"));
            continue;
        }
        let w = (((1.0 + EPS) * n as f64 / m as f64).ceil() as u64).max(1);
        for pid in 0..p {
            let starts = &sched.starts[pid];
            let x_i = starts.len() as u64;
            if x_i <= w {
                if let Some(&bad) = starts.iter().find(|&&s| s >= w) {
                    fail(
                        report,
                        subj.clone(),
                        format!("in-window sender {pid} starts at slot {bad} ≥ window {w}"),
                    );
                }
            } else {
                let eager: Vec<u64> = (0..x_i).collect();
                if *starts != eager {
                    fail(
                        report,
                        subj.clone(),
                        format!("over-window sender {pid} is not eager: {starts:?}"),
                    );
                }
            }
        }
        let cost = evaluate_schedule(&sched, wl, m, PenaltyFn::Exponential);
        if cost.makespan > w.max(wl.xbar()) {
            fail(
                report,
                subj.clone(),
                format!(
                    "makespan {} exceeds max(window {w}, x̄ {})",
                    cost.makespan,
                    wl.xbar()
                ),
            );
        }
        // Recount the slot loads independently of `slot_loads`.
        let loads = recount_loads(&sched);
        let max_load = loads.iter().copied().max().unwrap_or(0);
        let overloaded = loads.iter().filter(|&&l| l > m as u64).count() as u64;
        if max_load != cost.max_slot_load || overloaded != cost.overloaded_slots {
            fail(
                report,
                subj.clone(),
                format!(
                    "slot accounting disagrees: recount (max {max_load}, over {overloaded}) vs \
                     ScheduleCost (max {}, over {})",
                    cost.max_slot_load, cost.overloaded_slots
                ),
            );
        }
        check_engine_agreement(wl, &sched, params, &subj, report, &mut fail);
        if cost.no_slot_exceeds_m {
            let target = unbalanced_send_target(n, m, wl.xbar(), wl.ybar(), EPS, p, L);
            if cost.model_time > target + 1e-9 {
                fail(
                    report,
                    subj.clone(),
                    format!(
                        "Theorem 6.2 envelope violated: BSP(m) time {} > target {target} \
                         (n={n}, x̄={}, ȳ={})",
                        cost.model_time,
                        wl.xbar(),
                        wl.ybar()
                    ),
                );
            }
        }
    }
    report.leaves += 1;
    true
}

/// The engine must realize exactly the profile the calculator predicts.
fn check_engine_agreement(
    wl: &Workload,
    sched: &Schedule,
    params: MachineParams,
    subj: &str,
    report: &mut FamilyReport,
    fail: &mut impl FnMut(&mut FamilyReport, String, String),
) {
    let exec = run_schedule_on_bsp(wl, sched, params);
    let analytic = to_profile(sched, wl);
    let got = &exec.profile;
    if got.injections != analytic.injections
        || got.max_sent != analytic.max_sent
        || got.max_received != analytic.max_received
        || got.total_messages != analytic.total_messages
    {
        fail(
            report,
            subj.to_string(),
            format!("engine profile {got:?} differs from analytic profile {analytic:?}"),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multiset_counts_match_combinatorics() {
        // Σ_{k=0..4} C(k+5, 5) over 6 pairs = 1 + 6 + 21 + 56 + 126.
        assert_eq!(multisets(6, 4).len(), 210);
        assert_eq!(multisets(2, 3).len(), 10);
        assert_eq!(multisets(3, 0).len(), 1);
    }

    #[test]
    fn tiny_envelope_is_clean() {
        let mut budget = Budget::new(50_000);
        let report = check(&crate::Domain::tiny(), &mut budget);
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        assert!(!report.truncated);
        assert!(report.leaves > 0);
    }
}
