//! Invariant families 1 and 3: exhaustive fate/interleaving exploration of
//! [`BspMachine`] over the program catalog.
//!
//! ## Search structure
//!
//! The space is walked breadth-first by superstep depth. A node is a
//! [`FaultScript`] whose entries all lie at supersteps `< depth`. Expanding
//! a node at `depth`:
//!
//! 1. **Probe** — re-execute the script prefix for `depth + 1` supersteps
//!    with a [`RecordingHook`], learning exactly which `(superstep, src,
//!    msg_idx)` keys the engine consulted at `depth` and which processors
//!    received traffic. The engine is deterministic, so the probe *is* the
//!    "all-deliver" child.
//! 2. **Branch** — enumerate every assignment of the domain's fate
//!    alphabet over those keys, and every single-processor stall *and
//!    crash-stop* among the processors that send at `depth` or received at
//!    `depth − 1` (perturbing anyone else is behaviourally inert for the
//!    catalog programs: they hold no inbox and post no messages). Stalls
//!    and crashes change which keys exist, so each perturbed variant is
//!    re-probed before its fates are enumerated.
//! 3. **Check + dedup** — every child is executed on both the dense and
//!    the sparse path; the ledger must conserve at every boundary and the
//!    two paths' [`BspMachine::canonical_hash`] must agree *at the node
//!    itself* (so a divergence is caught at the first superstep it
//!    appears, even if the node is then pruned). Children whose canonical
//!    hash was already seen at this depth are pruned: the hash covers the
//!    full behavioural state (superstep index, states, inboxes, pending
//!    network, fault ledger), so equal hashes have identical futures under
//!    identical script suffixes.
//!
//! At the final depth every surviving script is run to quiescence (the
//! scripted horizon plus a bounded drain for delayed traffic) on **both**
//! paths with full trace rendering; the renders must be byte-identical and
//! the terminal ledger must be reconstructible from the script alone.
//!
//! Machines are re-executed from scratch rather than snapshotted —
//! [`BspMachine`] is deliberately not `Clone` (its network queue is
//! private state), and at checker scale a replay costs microseconds.

use std::collections::HashSet;
use std::sync::Arc;

use pbw_faults::{FaultScript, ScriptKey};
use pbw_models::MachineParams;
use pbw_sim::{BspMachine, Fate, FaultStats, Pid};
use pbw_trace::RecordingSink;

use crate::program::Program;
use crate::record::RecordingHook;
use crate::{Budget, Domain, FamilyReport, Violation};

/// The two reports the shared walk produces.
pub struct MachineFamilies {
    /// Family 1: ledger conservation + reconstruction.
    pub conservation: FamilyReport,
    /// Family 3: sparse path ≡ dense path.
    pub sparse_dense: FamilyReport,
}

/// Extra supersteps allowed past the scripted horizon for delayed traffic
/// to land (the domain's largest delay is 2; 16 is a hard failure).
const DRAIN_GUARD: u64 = 16;

#[derive(Clone, Copy, PartialEq, Eq)]
enum Mode {
    Dense,
    Sparse,
}

struct RunOutcome {
    hash: u64,
    stats: FaultStats,
    hook: Arc<RecordingHook>,
    render: Option<String>,
    /// Supersteps actually executed (scripted horizon + drain).
    supersteps_run: u64,
    /// First conservation/drain failure observed, if any.
    violation: Option<String>,
}

/// Execute `script` on `prog` for `supersteps` supersteps (plus a drain
/// phase if `drain`), on the chosen path.
fn run_program(
    prog: &Program,
    script: &FaultScript,
    supersteps: u64,
    drain: bool,
    mode: Mode,
    with_render: bool,
) -> RunOutcome {
    let params = MachineParams::from_bandwidth(prog.p, 1, 2);
    let hook = Arc::new(RecordingHook::new(script.clone()));
    let sink = Arc::new(RecordingSink::new());
    let mut machine: BspMachine<u64, u64> = BspMachine::new(params, |pid| pid as u64 + 1);
    machine.set_delivery_hook(hook.clone());
    machine.set_trace_label("check");
    if with_render {
        machine.set_sink(sink.clone());
    }
    let mut violation: Option<String> = None;
    let step = |machine: &mut BspMachine<u64, u64>, ss: u64| {
        let body = prog.body.clone();
        let f = move |pid: Pid, s: &mut u64, inbox: &[u64], out: &mut pbw_sim::Outbox<u64>| {
            body(pid, ss, s, inbox, out)
        };
        match mode {
            Mode::Dense => {
                machine.superstep(f);
            }
            Mode::Sparse => {
                let active = (prog.active)(ss);
                machine.superstep_active(&active, f);
            }
        }
    };
    let mut ss = 0;
    while ss < supersteps {
        step(&mut machine, ss);
        if violation.is_none() && !machine.fault_stats().conserved() {
            violation = Some(format!(
                "ledger not conserved after superstep {ss}: {:?}",
                machine.fault_stats()
            ));
        }
        ss += 1;
    }
    if drain {
        // Keep running the *program body* (not an idle step) so arrivals
        // delayed past the horizon still trigger their reactions (echo).
        while machine.faults_in_flight() > 0 && ss < supersteps + DRAIN_GUARD {
            step(&mut machine, ss);
            if violation.is_none() && !machine.fault_stats().conserved() {
                violation = Some(format!(
                    "ledger not conserved after drain superstep {ss}: {:?}",
                    machine.fault_stats()
                ));
            }
            ss += 1;
        }
        if violation.is_none() && machine.faults_in_flight() > 0 {
            violation = Some(format!(
                "{} message(s) still in flight after {DRAIN_GUARD} drain supersteps",
                machine.faults_in_flight()
            ));
        }
    }
    let render = with_render.then(|| {
        let mut out = String::new();
        for e in sink.take() {
            out.push_str(&e.to_json());
            out.push('\n');
        }
        out.push_str(&format!(
            "ledger: {:?}\nstates: {:?}\nprofiles: {:?}\n",
            machine.fault_stats(),
            machine.states(),
            machine.profiles()
        ));
        out
    });
    RunOutcome {
        hash: machine.canonical_hash(),
        stats: machine.fault_stats(),
        hook,
        render,
        supersteps_run: ss,
        violation,
    }
}

/// Defects found at one terminal script, split by family.
pub struct LeafDefects {
    pub conservation: Vec<String>,
    pub sparse_dense: Vec<String>,
}

impl LeafDefects {
    pub fn is_empty(&self) -> bool {
        self.conservation.is_empty() && self.sparse_dense.is_empty()
    }
}

/// Run `script` to quiescence on both paths and audit every terminal
/// invariant. Public so [`crate::replay::machine`] reproduces exactly what
/// the explorer checked.
pub fn check_leaf(prog: &Program, script: &FaultScript, supersteps: u64) -> LeafDefects {
    let dense = run_program(prog, script, supersteps, true, Mode::Dense, true);
    let sparse = run_program(prog, script, supersteps, true, Mode::Sparse, true);
    let mut defects = LeafDefects {
        conservation: Vec::new(),
        sparse_dense: Vec::new(),
    };
    if let Some(v) = &dense.violation {
        defects.conservation.push(v.clone());
    }
    if let Some(v) = &sparse.violation {
        defects.conservation.push(format!("(sparse path) {v}"));
    }

    // Reconstruct the expected terminal ledger from the script + the set
    // of messages the engine actually consulted — an *independent* route
    // to the same numbers the engine's own counters took.
    let stats = dense.stats;
    let consulted = dense.hook.consulted();
    let expect = |pred: fn(Fate) -> bool| script.count_matching(consulted.iter().copied(), pred);
    // `crashed` write-offs, per fate timing: a payload is destroyed iff its
    // destination is down at the superstep its custody transfer lands —
    // the send superstep for Deliver/Displace (and a Duplicate's
    // original), one later for the spurious copy, `k` later for Delay(k).
    let key_dests = dense.hook.key_dests();
    let crashed_expected: u64 = consulted
        .iter()
        .map(|&(s, src, idx)| {
            let d = key_dests[&(s, src, idx)];
            let dead = |at: u64| script.crashed_at(at, d) as u64;
            match script.fate_at(s, src, idx) {
                Fate::Deliver | Fate::Displace(_) => dead(s),
                Fate::Drop => 0,
                Fate::Duplicate => dead(s) + dead(s + 1),
                Fate::Delay(k) => dead(s + k.max(1) as u64),
            }
        })
        .sum();
    let crash_steps_expected: u64 = script
        .crashes()
        .filter(|&(s, _)| s < dense.supersteps_run)
        .count() as u64;
    let checks: [(&str, u64, u64); 9] = [
        ("injected", stats.injected, consulted.len() as u64),
        ("dropped", stats.dropped, expect(|f| f == Fate::Drop)),
        (
            "duplicated",
            stats.duplicated,
            expect(|f| f == Fate::Duplicate),
        ),
        (
            "delayed",
            stats.delayed,
            expect(|f| matches!(f, Fate::Delay(_))),
        ),
        (
            "displaced",
            stats.displaced,
            expect(|f| matches!(f, Fate::Displace(_))),
        ),
        ("in_flight", stats.in_flight, 0),
        ("crashed", stats.crashed, crashed_expected),
        ("crash_steps", stats.crash_steps, crash_steps_expected),
        (
            "delivered",
            stats.delivered,
            (consulted.len() as u64 + stats.duplicated)
                .saturating_sub(stats.dropped)
                .saturating_sub(crashed_expected),
        ),
    ];
    for (what, got, want) in checks {
        if got != want {
            defects.conservation.push(format!(
                "terminal ledger disagrees with the script: {what} = {got}, expected {want} ({:?})",
                stats
            ));
        }
    }

    match (&dense.render, &sparse.render) {
        (Some(d), Some(s)) if d != s => {
            defects.sparse_dense.push(format!(
                "dense and sparse runs diverge: {}",
                first_diff(d, s)
            ));
        }
        _ => {}
    }
    defects
}

fn first_diff(dense: &str, sparse: &str) -> String {
    for (i, (ld, ls)) in dense.lines().zip(sparse.lines()).enumerate() {
        if ld != ls {
            return format!("line {}: dense `{ld}` vs sparse `{ls}`", i + 1);
        }
    }
    format!(
        "renders have different lengths: dense {} line(s), sparse {}",
        dense.lines().count(),
        sparse.lines().count()
    )
}

/// Walk the whole machine space for `domain`.
pub fn explore(domain: &Domain, budget: &mut Budget) -> MachineFamilies {
    let mut fam = MachineFamilies {
        conservation: FamilyReport::new("conservation"),
        sparse_dense: FamilyReport::new("sparse-dense"),
    };
    for prog in Program::catalog(domain.p) {
        explore_program(&prog, domain, budget, &mut fam);
        if fam.conservation.truncated {
            break;
        }
    }
    fam
}

struct NodeCtx<'a> {
    prog: &'a Program,
    subject: String,
    horizon: u64,
}

/// One single-processor perturbation enumerated per superstep alongside
/// the message-fate assignments.
#[derive(Clone, Copy)]
enum Perturb {
    Stall(Pid),
    Crash(Pid),
}

/// Run one node on both paths, check node-level invariants, and dedup.
/// Returns the dense outcome, or `None` when the budget ran dry.
#[allow(clippy::too_many_arguments)]
fn run_node(
    ctx: &NodeCtx,
    script: &FaultScript,
    depth: u64,
    budget: &mut Budget,
    seen: &mut HashSet<u64>,
    next: &mut Vec<FaultScript>,
    fam: &mut MachineFamilies,
) -> Option<RunOutcome> {
    if !budget.try_charge(2) {
        fam.conservation.truncated = true;
        fam.sparse_dense.truncated = true;
        return None;
    }
    fam.conservation.runs += 1;
    fam.sparse_dense.runs += 1;
    let dense = run_program(ctx.prog, script, depth + 1, false, Mode::Dense, false);
    let sparse = run_program(ctx.prog, script, depth + 1, false, Mode::Sparse, false);
    if let Some(v) = &dense.violation {
        fam.conservation.record(Violation {
            family: "conservation",
            subject: ctx.subject.clone(),
            script: script.to_string(),
            detail: v.clone(),
        });
    }
    if dense.hash != sparse.hash {
        fam.sparse_dense.record(Violation {
            family: "sparse-dense",
            subject: ctx.subject.clone(),
            script: script.to_string(),
            detail: format!(
                "canonical state hashes diverge after superstep {depth} (dense {:#x}, sparse {:#x}); dense ledger {:?}, sparse ledger {:?}",
                dense.hash, sparse.hash, dense.stats, sparse.stats
            ),
        });
    }
    if seen.insert(dense.hash) {
        next.push(script.clone());
    } else {
        fam.conservation.dedup_hits += 1;
    }
    Some(dense)
}

fn explore_program(
    prog: &Program,
    domain: &Domain,
    budget: &mut Budget,
    fam: &mut MachineFamilies,
) {
    let ctx = NodeCtx {
        prog,
        subject: format!(
            "program={} p={} supersteps={}",
            prog.name, prog.p, domain.supersteps
        ),
        horizon: domain.supersteps,
    };
    let mut frontier: Vec<FaultScript> = vec![FaultScript::new()];
    for depth in 0..ctx.horizon {
        let mut next: Vec<FaultScript> = Vec::new();
        let mut seen: HashSet<u64> = HashSet::new();
        for script in &frontier {
            // Probe without a stall: learns this node's keys and the
            // processors worth stalling.
            let Some(probe) = run_node(&ctx, script, depth, budget, &mut seen, &mut next, fam)
            else {
                return;
            };
            let mut candidates: Vec<Option<Perturb>> = vec![None];
            if domain.stalls || domain.crashes {
                let mut pids: Vec<Pid> = probe
                    .hook
                    .keys_at(depth)
                    .iter()
                    .map(|&(_, src, _)| src)
                    .collect();
                if depth > 0 {
                    pids.extend(probe.hook.dests_at(depth - 1));
                }
                pids.sort_unstable();
                pids.dedup();
                if domain.stalls {
                    candidates.extend(pids.iter().map(|&pid| Some(Perturb::Stall(pid))));
                }
                if domain.crashes {
                    candidates.extend(pids.iter().map(|&pid| Some(Perturb::Crash(pid))));
                }
            }
            for perturb in candidates {
                let (base, base_probe) = match perturb {
                    None => (script.clone(), None),
                    Some(p) => {
                        // A stall suppresses the stalled processor's sends
                        // (a crash additionally evaporates its inbox and
                        // destroys inbound custody), so the perturbed
                        // variant has its own key set: re-probe before
                        // enumerating fates.
                        let varied = match p {
                            Perturb::Stall(pid) => script.clone().with_stall(depth, pid),
                            Perturb::Crash(pid) => script.clone().with_crash(depth, pid),
                        };
                        let Some(p2) =
                            run_node(&ctx, &varied, depth, budget, &mut seen, &mut next, fam)
                        else {
                            return;
                        };
                        (varied, Some(p2))
                    }
                };
                let probe_ref = base_probe.as_ref().unwrap_or(&probe);
                let mut keys: Vec<ScriptKey> = probe_ref.hook.keys_at(depth);
                if keys.len() > domain.max_messages {
                    // The catalog never exceeds the domain cap; if a future
                    // program does, say so rather than silently skipping.
                    keys.truncate(domain.max_messages);
                    fam.conservation.truncated = true;
                    fam.sparse_dense.truncated = true;
                }
                let radix = domain.fates.len() + 1;
                let combos = radix.checked_pow(keys.len() as u32).unwrap_or(usize::MAX);
                // code 0 = all-deliver, already covered by the probe run.
                for code in 1..combos {
                    let mut child = base.clone();
                    let mut c = code;
                    for &(s, src, idx) in &keys {
                        let digit = c % radix;
                        c /= radix;
                        if digit > 0 {
                            child = child.with_fate(s, src, idx, domain.fates[digit - 1]);
                        }
                    }
                    if run_node(&ctx, &child, depth, budget, &mut seen, &mut next, fam).is_none() {
                        return;
                    }
                }
            }
        }
        frontier = next;
    }
    for script in &frontier {
        if !budget.try_charge(2) {
            fam.conservation.truncated = true;
            fam.sparse_dense.truncated = true;
            return;
        }
        fam.conservation.runs += 1;
        fam.sparse_dense.runs += 1;
        fam.conservation.leaves += 1;
        fam.sparse_dense.leaves += 1;
        let defects = check_leaf(prog, script, ctx.horizon);
        for d in defects.conservation {
            fam.conservation.record(Violation {
                family: "conservation",
                subject: ctx.subject.clone(),
                script: script.to_string(),
                detail: d,
            });
        }
        for d in defects.sparse_dense {
            fam.sparse_dense.record(Violation {
                family: "sparse-dense",
                subject: ctx.subject.clone(),
                script: script.to_string(),
                detail: d,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_leaf_passes_every_program() {
        for prog in Program::catalog(3) {
            let defects = check_leaf(&prog, &FaultScript::new(), 3);
            assert!(
                defects.is_empty(),
                "{}: {:?}",
                prog.name,
                defects.conservation
            );
        }
    }

    #[test]
    fn faulted_leaves_pass_on_the_real_engine() {
        let script: FaultScript = "drop@0/0.0 delay1@0/1.0 stall@1/p1".parse().unwrap();
        for prog in Program::catalog(3) {
            let defects = check_leaf(&prog, &script, 3);
            assert!(
                defects.is_empty(),
                "{}: {:?}",
                prog.name,
                defects.conservation
            );
        }
    }

    #[test]
    fn crashed_leaves_reconstruct_the_crashed_column() {
        // A crash alone, a crash meeting a delayed payload, and a crash
        // meeting a duplicate's spurious copy.
        for script in [
            "crash@1/p1",
            "delay1@0/0.0 crash@1/p1",
            "dup@0/0.0 crash@1/p1",
        ] {
            let script: FaultScript = script.parse().unwrap();
            for prog in Program::catalog(3) {
                let defects = check_leaf(&prog, &script, 3);
                assert!(
                    defects.is_empty(),
                    "{} / {script}: {:?} {:?}",
                    prog.name,
                    defects.conservation,
                    defects.sparse_dense
                );
            }
        }
    }

    #[test]
    fn tiny_walk_is_exhaustive_and_clean() {
        let domain = crate::Domain::tiny();
        let mut budget = Budget::new(50_000);
        let fam = explore(&domain, &mut budget);
        assert!(fam.conservation.violations.is_empty());
        assert!(fam.sparse_dense.violations.is_empty());
        assert!(!fam.conservation.truncated);
        assert!(fam.conservation.leaves > 0);
        assert!(fam.conservation.runs > fam.conservation.leaves);
    }
}
