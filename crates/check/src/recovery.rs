//! Invariant family 2: recovery termination under every drop pattern.
//!
//! The explorer drives [`RecoverySession`] — the real ack/retransmit
//! protocol, one superstep at a time — under *exhaustively enumerated*
//! drop scripts. A node is a drop-only [`FaultScript`]; executing it
//! replays the session from scratch (sessions, like machines, are not
//! snapshottable — determinism makes replay equivalent and cheap). At each
//! executed superstep beyond the script's last scripted superstep, the
//! recording hook reveals which messages the protocol put on the wire
//! there (data flits *and* acks); every non-empty subset of them becomes a
//! child script with those messages dropped, while the current run
//! continues as the drop-nothing choice. Each branch decision scripts one
//! superstep, so with decisions capped at `domain.supersteps` the walk
//! covers every drop pattern touching up to that many supersteps — and
//! every run reaches a leaf, where the termination contract is audited:
//!
//! * `delivered_all`: the protocol drained (φ < 1 analogue — every script
//!   here is finite, so retransmission must eventually win);
//! * the ledger conserves after **every** superstep and ends empty;
//! * `rounds ≤ scripted supersteps` (each retransmission round is caused
//!   by at least one faulted superstep, and a superstep's faults are one
//!   decision);
//! * `backoff_supersteps == Σ_{r=1..rounds} min(base·2^{r−1}, cap)` —
//!   drop-only runs leave nothing in flight to drain, so idle time is
//!   *exactly* the bounded-exponential-backoff schedule, not merely at
//!   most it;
//! * every flit has an arrival step on record.

use std::sync::Arc;

use pbw_core::schedulers::{OfflineOptimal, Scheduler};
use pbw_core::{
    workload, RecoveryConfig, RecoveryOutcome, RecoveryPhase, RecoverySession, Workload,
};
use pbw_faults::{FaultScript, ScriptKey};
use pbw_models::MachineParams;
use pbw_sim::{DeliveryHook, Fate};
use pbw_trace::NullSink;

use crate::record::RecordingHook;
use crate::{Budget, Domain, FamilyReport, Violation};

/// Workload seed for the scheduler (the offline optimal ignores it, but it
/// is part of the replay coordinates).
const SEED: u64 = 11;

/// Hard ceiling on supersteps per session — a session that runs this long
/// has failed to terminate for checker purposes.
const STEP_GUARD: u64 = 200;

/// The recovery workload catalog, by name (for replay).
pub fn workload_by_name(name: &str, p: usize) -> Option<Workload> {
    assert!(p >= 2);
    match name {
        // One hot sender: processor 0 sends one flit to everyone else.
        "hot" => Some(workload::one_to_all(p)),
        // A cycle: everyone sends one flit to its successor.
        "ring" => Some(Workload::from_dests(
            (0..p).map(|i| vec![(i + 1) % p]).collect(),
        )),
        _ => None,
    }
}

struct SessionRun {
    /// Conservation / termination defects observed while stepping.
    defects: Vec<String>,
    /// `(superstep, keys consulted there)` for supersteps that carried
    /// messages, in execution order.
    branch_points: Vec<(u64, Vec<ScriptKey>)>,
    outcome: Option<RecoveryOutcome>,
}

fn run_session(wl: &Workload, cfg: &RecoveryConfig, script: &FaultScript) -> SessionRun {
    let params = MachineParams::from_bandwidth(wl.p(), 1, 2);
    let scheduler = OfflineOptimal;
    let hook = Arc::new(RecordingHook::new(script.clone()));
    let mut session = RecoverySession::new(
        Arc::new(NullSink),
        wl,
        &scheduler as &dyn Scheduler,
        params,
        SEED,
        Some(hook.clone() as Arc<dyn DeliveryHook>),
        cfg,
    );
    let mut defects = Vec::new();
    let mut branch_points = Vec::new();
    let mut steps = 0u64;
    loop {
        let phase = session.step();
        if phase == RecoveryPhase::Done {
            break;
        }
        steps += 1;
        let s = session.machine().superstep_index() as u64 - 1;
        if !session.fault_stats().conserved() {
            defects.push(format!(
                "ledger not conserved after superstep {s} ({phase:?}): {:?}",
                session.fault_stats()
            ));
            break;
        }
        let keys = hook.keys_at(s);
        if !keys.is_empty() {
            branch_points.push((s, keys));
        }
        if steps > STEP_GUARD {
            defects.push(format!(
                "protocol did not terminate within {STEP_GUARD} supersteps \
                 (outstanding = {}, round = {})",
                session.outstanding(),
                session.rounds()
            ));
            break;
        }
    }
    let outcome = session.is_done().then(|| session.into_outcome());
    SessionRun {
        defects,
        branch_points,
        outcome,
    }
}

/// `Σ_{r=1..rounds} min(base·2^{r−1}, cap)` — the public backoff contract
/// (mirrors `RecoveryConfig`'s internal schedule).
fn expected_backoff_total(cfg: &RecoveryConfig, rounds: u32) -> u64 {
    (1..=rounds)
        .map(|r| {
            let shifted = if r > 32 {
                u32::MAX
            } else {
                cfg.backoff_base.checked_shl(r - 1).unwrap_or(u32::MAX)
            };
            shifted.min(cfg.backoff_cap) as u64
        })
        .sum()
}

/// Audit one completed run against the termination contract. `decisions`
/// is the number of scripted (faulted) supersteps.
fn leaf_defects(
    run: &SessionRun,
    wl: &Workload,
    cfg: &RecoveryConfig,
    decisions: u32,
) -> Vec<String> {
    let mut defects = run.defects.clone();
    let Some(outcome) = &run.outcome else {
        return defects;
    };
    if !outcome.delivered_all {
        defects.push(format!(
            "protocol gave up without delivering everything (rounds = {})",
            outcome.rounds
        ));
    }
    if !outcome.fault_stats.conserved() || outcome.fault_stats.in_flight != 0 {
        defects.push(format!("terminal ledger broken: {:?}", outcome.fault_stats));
    }
    if outcome.rounds > decisions {
        defects.push(format!(
            "{} retransmission rounds from only {decisions} faulted superstep(s)",
            outcome.rounds
        ));
    }
    let expected = expected_backoff_total(cfg, outcome.rounds);
    if outcome.backoff_supersteps != expected {
        defects.push(format!(
            "backoff schedule violated: {} idle supersteps over {} round(s), contract says exactly {expected}",
            outcome.backoff_supersteps, outcome.rounds
        ));
    }
    if outcome.arrival_steps.len() as u64 != wl.n_flits() {
        defects.push(format!(
            "{} arrival step(s) recorded for {} flit(s)",
            outcome.arrival_steps.len(),
            wl.n_flits()
        ));
    }
    defects
}

/// Number of distinct scripted supersteps (= branch decisions taken).
fn scripted_supersteps(script: &FaultScript) -> u32 {
    let mut steps: Vec<u64> = script.fates().map(|((s, _, _), _)| s).collect();
    steps.dedup(); // fates() iterates in key order, so equal steps adjoin
    steps.len() as u32
}

/// Replay one recovery counterexample (drop-only `script`) and re-audit.
pub(crate) fn replay_recovery(
    wl_name: &str,
    p: usize,
    charge_acks: bool,
    script: &FaultScript,
) -> Result<(), String> {
    if script.fates().any(|(_, f)| f != Fate::Drop) {
        return Err("recovery scripts are drop-only".to_string());
    }
    let wl = workload_by_name(wl_name, p)
        .ok_or_else(|| format!("unknown recovery workload `{wl_name}`"))?;
    let cfg = RecoveryConfig {
        charge_acks,
        ..RecoveryConfig::default()
    };
    let run = run_session(&wl, &cfg, script);
    let defects = leaf_defects(&run, &wl, &cfg, scripted_supersteps(script));
    if defects.is_empty() {
        Ok(())
    } else {
        Err(defects.join("; "))
    }
}

/// Walk every drop pattern for every catalog workload and config.
pub fn explore(domain: &Domain, budget: &mut Budget) -> FamilyReport {
    let mut report = FamilyReport::new("recovery");
    for wl_name in ["hot", "ring"] {
        let wl = workload_by_name(wl_name, domain.p).unwrap();
        for charge_acks in [true, false] {
            let cfg = RecoveryConfig {
                charge_acks,
                ..RecoveryConfig::default()
            };
            explore_workload(wl_name, &wl, &cfg, domain, budget, &mut report);
            if report.truncated {
                return report;
            }
        }
    }
    report
}

struct Node {
    script: FaultScript,
    decisions: u32,
}

fn explore_workload(
    wl_name: &str,
    wl: &Workload,
    cfg: &RecoveryConfig,
    domain: &Domain,
    budget: &mut Budget,
    report: &mut FamilyReport,
) {
    let subject = format!(
        "workload={wl_name} p={} charge_acks={}",
        wl.p(),
        cfg.charge_acks
    );
    let mut stack = vec![Node {
        script: FaultScript::new(),
        decisions: 0,
    }];
    while let Some(node) = stack.pop() {
        if !budget.try_charge(1) {
            report.truncated = true;
            return;
        }
        report.runs += 1;
        let run = run_session(wl, cfg, &node.script);
        // Branch: at every messaged superstep past the script's reach,
        // fork a child per non-empty drop subset. This run itself carries
        // on as the drop-nothing choice at each of those supersteps.
        if node.decisions < domain.supersteps as u32 {
            let decided_hi: i64 = node
                .script
                .fates()
                .map(|((s, _, _), _)| s as i64)
                .max()
                .unwrap_or(-1);
            for (s, keys) in &run.branch_points {
                if (*s as i64) <= decided_hi {
                    continue;
                }
                let mut keys = keys.clone();
                if keys.len() > domain.max_messages {
                    keys.truncate(domain.max_messages);
                    report.truncated = true;
                }
                for mask in 1u32..(1 << keys.len()) {
                    let mut child = node.script.clone();
                    for (i, &(ks, src, idx)) in keys.iter().enumerate() {
                        if mask & (1 << i) != 0 {
                            child = child.with_fate(ks, src, idx, Fate::Drop);
                        }
                    }
                    stack.push(Node {
                        script: child,
                        decisions: node.decisions + 1,
                    });
                }
            }
        }
        report.leaves += 1;
        for d in leaf_defects(&run, wl, cfg, scripted_supersteps(&node.script)) {
            report.record(Violation {
                family: "recovery",
                subject: subject.clone(),
                script: node.script.to_string(),
                detail: d,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_run_has_no_rounds_and_no_defects() {
        let wl = workload_by_name("hot", 3).unwrap();
        let cfg = RecoveryConfig::default();
        let run = run_session(&wl, &cfg, &FaultScript::new());
        assert!(leaf_defects(&run, &wl, &cfg, 0).is_empty());
        assert_eq!(run.outcome.as_ref().unwrap().rounds, 0);
        assert!(!run.branch_points.is_empty());
    }

    #[test]
    fn every_single_drop_recovers_in_one_round() {
        let wl = workload_by_name("ring", 3).unwrap();
        let cfg = RecoveryConfig::default();
        let probe = run_session(&wl, &cfg, &FaultScript::new());
        let (s0, keys) = &probe.branch_points[0];
        for &(s, src, idx) in keys {
            assert_eq!(s, *s0);
            let script = FaultScript::new().with_fate(s, src, idx, Fate::Drop);
            let run = run_session(&wl, &cfg, &script);
            let defects = leaf_defects(&run, &wl, &cfg, 1);
            assert!(defects.is_empty(), "drop {src}.{idx}: {defects:?}");
            assert_eq!(run.outcome.unwrap().rounds, 1);
        }
    }

    #[test]
    fn backoff_contract_mirror_matches_doubling_with_cap() {
        let cfg = RecoveryConfig {
            backoff_base: 1,
            backoff_cap: 8,
            ..RecoveryConfig::default()
        };
        // 1, 2, 4, 8, 8 → prefix sums
        assert_eq!(expected_backoff_total(&cfg, 0), 0);
        assert_eq!(expected_backoff_total(&cfg, 3), 7);
        assert_eq!(expected_backoff_total(&cfg, 5), 23);
    }
}
