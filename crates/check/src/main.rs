//! `pbw-check` — run the bounded model checker from the command line.
//!
//! ```text
//! pbw-check                    # CI domain (p ≤ 3, 3 supersteps, ≤ 4 msgs)
//! pbw-check --wide             # widest domain (p ≤ 4, 4 supersteps, ≤ 6 msgs)
//! pbw-check --require-exhaustive   # exit 3 if the budget truncated the walk
//! pbw-check --self-test        # prove the checker catches a planted bug
//!                              # (needs --features check-selftest)
//! PBW_CHECK_BUDGET=500000 pbw-check   # override the engine-run budget
//! ```
//!
//! Exit codes (also printed by `--help`): 0 all invariants verified;
//! 1 counterexamples found; 2 usage error; 3 walk truncated under
//! `--require-exhaustive`; 4 `--self-test` without the feature;
//! 5 `--self-test` failed (planted violation went undetected).

use std::process::ExitCode;
use std::time::Instant;

use pbw_check::{run_all, Budget, Domain};

fn main() -> ExitCode {
    let mut wide = false;
    let mut self_test = false;
    let mut require_exhaustive = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--wide" => wide = true,
            "--self-test" => self_test = true,
            "--require-exhaustive" => require_exhaustive = true,
            "--help" | "-h" => {
                println!(
                    "usage: pbw-check [--wide] [--self-test] [--require-exhaustive]\n\
                     env: PBW_CHECK_BUDGET=<engine runs> (default {})\n\
                     exit codes:\n\
                       0  all invariants verified\n\
                       1  counterexample(s) found\n\
                       2  usage error\n\
                       3  walk truncated by budget (--require-exhaustive only)\n\
                       4  --self-test without the check-selftest feature\n\
                       5  --self-test failed: planted violation went undetected",
                    pbw_check::DEFAULT_BUDGET
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("pbw-check: unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }
    if self_test {
        return run_self_test();
    }
    let domain = if wide { Domain::wide() } else { Domain::ci() };
    let mut budget = Budget::from_env();
    let t0 = Instant::now();
    let report = run_all(&domain, &mut budget);
    print!("{report}");
    println!("elapsed: {:.2?}", t0.elapsed());
    if !report.ok() {
        return ExitCode::FAILURE;
    }
    if report.truncated() {
        eprintln!("pbw-check: walk truncated by budget — NOT an exhaustiveness certificate");
        if require_exhaustive {
            return ExitCode::from(3);
        }
    }
    ExitCode::SUCCESS
}

/// With the `check-selftest` feature compiled in and `PBW_CHECK_SELFTEST`
/// set, the engine deliberately under-reports one delivery. A checker that
/// does not flag that immediately is not checking anything; this mode
/// *requires* the planted counterexample to surface.
#[cfg(feature = "check-selftest")]
fn run_self_test() -> ExitCode {
    std::env::set_var("PBW_CHECK_SELFTEST", "1");
    let domain = Domain {
        supersteps: 2,
        max_messages: 2,
        fates: vec![pbw_sim::Fate::Drop],
        ..Domain::ci()
    };
    let mut budget = Budget::new(20_000);
    let families = pbw_check::machine::explore(&domain, &mut budget);
    let caught = families.conservation.n_violations();
    if caught == 0 {
        eprintln!("pbw-check --self-test: FAILED — planted conservation violation went undetected");
        return ExitCode::from(5);
    }
    let first = &families.conservation.violations[0];
    println!(
        "pbw-check --self-test: OK — planted violation caught ({caught} counterexample(s); \
         first: {} / {})",
        first.subject, first.script
    );
    ExitCode::SUCCESS
}

#[cfg(not(feature = "check-selftest"))]
fn run_self_test() -> ExitCode {
    eprintln!(
        "pbw-check --self-test requires the planted bug to be compiled in:\n  \
         cargo run -p pbw-check --features check-selftest -- --self-test"
    );
    ExitCode::from(4)
}
