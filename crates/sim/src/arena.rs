//! Flat per-destination message arena for the superstep delivery path.
//!
//! A [`MsgArena`] replaces the `Vec<Vec<M>>` inbox-of-inboxes: one backing
//! `Vec<M>` holds every message delivered at a superstep boundary, and a
//! per-destination segment table marks each destination's contiguous slice.
//! The engines keep two arenas and *swap* them every superstep (read last
//! boundary's deliveries from one, fill the other), so at steady state the
//! backing storage is reused and a superstep performs no inbox allocations
//! at all, however many messages it moves.
//!
//! Filling is a two-pass protocol:
//!
//! 1. **Counting pass** — the engine walks its outboxes (and fault fates,
//!    retained inboxes and due late arrivals) once, accumulating the exact
//!    number of payloads each destination will receive, then opens a fill
//!    with [`MsgArena::begin`] (dense count table) or
//!    [`MsgArena::begin_sparse`] (epoch-stamped dirty counts from the
//!    active-set path). Both lay the segments out by prefix sum and arm one
//!    write cursor per counted destination.
//! 2. **Placement pass** — the engine replays its *sequential delivery
//!    order* (source pid, then send order, then due arrivals), calling
//!    [`MsgArena::place`] for each payload. Because segment `d` is written
//!    only by deliveries to `d`, and those deliveries occur in the same
//!    relative order as the replay, each destination's slice ends up in
//!    exactly the order the old per-destination `Vec::push` produced — the
//!    order the fault ledger, pending queue, and byte-identical trace
//!    contract are defined by. [`MsgArena::finish`] then asserts every
//!    reserved slot was filled and publishes the segments.
//!
//! ## Epoch-stamped segments
//!
//! Segment validity is tracked by an epoch stamp per destination instead of
//! a dense offset table zeroed every superstep: a destination's segment is
//! meaningful only if its stamp equals the arena's current epoch, and both
//! [`MsgArena::clear`] and the `begin` variants reset the arena by bumping
//! the epoch — O(1), never an O(p) `fill(0)`. [`MsgArena::begin_sparse`]
//! additionally lays out segments for *only the counted destinations*, so a
//! whole fill costs O(touched + messages) regardless of `p`. Unstamped
//! destinations read as empty. The arena also publishes the list of
//! destinations that received at least one message ([`MsgArena::touched`]),
//! which is how the sparse engines seed the next superstep's frontier
//! without scanning all `p` inboxes. Segments are laid out in first-touch
//! (counting) order, which is deterministic because the counting pass is
//! sequential; the layout order is unobservable anyway — `inbox(d)` content
//! and order depend only on the placement replay.
//!
//! ## Safety
//!
//! During a fill the backing vector's length stays 0 while `place` writes
//! initialized payloads into reserved capacity through raw pointers; the
//! cursor bound check (a hard assert, not a debug assert) keeps every write
//! inside its destination's segment and therefore inside the reservation.
//! If the engine panics mid-fill, already-placed payloads are leaked — never
//! double-dropped — because the vector still reports length 0. `finish`
//! publishes the length only after checking that the number of placements
//! equals the reserved total, so no uninitialized slot is ever readable.

use pbw_models::EpochCounts;

/// A reusable flat message store with one contiguous segment per
/// destination and O(1) reset.
#[derive(Debug)]
pub(crate) struct MsgArena<M> {
    /// Backing storage; `len()` is 0 while a fill is open, the segment total
    /// once published.
    data: Vec<M>,
    /// Start of destination `d`'s segment (valid iff `stamps[d] == epoch`).
    seg_start: Vec<usize>,
    /// One-past-the-end of destination `d`'s segment (same validity rule).
    seg_end: Vec<usize>,
    /// Next write index per destination during a fill.
    cursors: Vec<usize>,
    /// Epoch at which destination `d`'s segment was last laid out.
    stamps: Vec<u64>,
    /// Current epoch; bumped by `clear` and both `begin` variants. A `u64`
    /// bumped a few times per superstep never wraps, so stale stamps can't
    /// alias.
    epoch: u64,
    /// Destinations holding at least one message this fill, first-touch
    /// order.
    touched: Vec<usize>,
    /// Total payloads reserved by the open (or last published) fill.
    total: usize,
    /// Payloads placed since `begin`.
    placed: usize,
    /// Whether a fill is open (`begin` called, `finish` not yet).
    filling: bool,
}

impl<M> MsgArena<M> {
    /// An empty arena with `p` destinations: every segment is empty.
    pub(crate) fn new(p: usize) -> Self {
        Self {
            data: Vec::new(),
            seg_start: vec![0; p],
            seg_end: vec![0; p],
            cursors: vec![0; p],
            // Stamps start below the first epoch, so every destination is
            // unstamped (empty) until a fill lays it out.
            stamps: vec![0; p],
            epoch: 1,
            touched: Vec::new(),
            total: 0,
            placed: 0,
            filling: false,
        }
    }

    /// Number of destinations.
    pub(crate) fn dests(&self) -> usize {
        self.stamps.len()
    }

    /// Drop all stored payloads and reset every segment to empty, in O(1):
    /// the epoch bump invalidates every stamp at once. Keeps the backing
    /// capacity.
    pub(crate) fn clear(&mut self) {
        debug_assert!(!self.filling, "clear during an open fill");
        self.data.clear();
        self.epoch += 1;
        self.touched.clear();
        self.total = 0;
        self.placed = 0;
        self.filling = false;
    }

    /// Open a fill from a dense count table: lay out one segment per
    /// destination sized by `counts` and arm the write cursors. Any
    /// previous contents are dropped. O(p) — the dense engines' entry point.
    ///
    /// # Panics
    /// Panics if `counts.len() != dests()` or a fill is already open.
    pub(crate) fn begin(&mut self, counts: &[usize]) {
        assert_eq!(
            counts.len(),
            self.dests(),
            "count table must cover every destination"
        );
        assert!(!self.filling, "begin while a fill is already open");
        self.data.clear();
        self.epoch += 1;
        self.touched.clear();
        let mut total = 0usize;
        for (d, &c) in counts.iter().enumerate() {
            self.stamps[d] = self.epoch;
            self.seg_start[d] = total;
            self.cursors[d] = total;
            total += c;
            self.seg_end[d] = total;
            if c > 0 {
                self.touched.push(d);
            }
        }
        self.data.reserve(total);
        self.total = total;
        self.placed = 0;
        self.filling = true;
    }

    /// Open a fill from an epoch-stamped count table, laying out segments
    /// for *only the counted destinations* — O(touched), not O(p). Every
    /// other destination reads as empty (its stamp stays stale). Segments
    /// are laid out in the counts' first-touch order, which is deterministic
    /// because the engines' counting pass is sequential.
    ///
    /// # Panics
    /// Panics if `counts.len() != dests()` or a fill is already open.
    pub(crate) fn begin_sparse(&mut self, counts: &EpochCounts) {
        assert_eq!(
            counts.len(),
            self.dests(),
            "count table must cover every destination"
        );
        assert!(!self.filling, "begin while a fill is already open");
        self.data.clear();
        self.epoch += 1;
        self.touched.clear();
        let mut total = 0usize;
        for &d in counts.touched() {
            let c = counts.get(d) as usize;
            self.stamps[d] = self.epoch;
            self.seg_start[d] = total;
            self.cursors[d] = total;
            total += c;
            self.seg_end[d] = total;
            if c > 0 {
                self.touched.push(d);
            }
        }
        self.data.reserve(total);
        self.total = total;
        self.placed = 0;
        self.filling = true;
    }

    /// Place the next payload for `dest`, in delivery order.
    ///
    /// # Panics
    /// Panics if no fill is open, `dest` was never counted by this fill, or
    /// `dest`'s segment is already full (either of which would mean the
    /// counting pass and the delivery replay disagree).
    #[inline]
    pub(crate) fn place(&mut self, dest: usize, payload: M) {
        assert!(self.filling, "place outside an open fill");
        assert!(
            self.stamps[dest] == self.epoch,
            "delivery to destination {dest}, which the counting pass never counted"
        );
        let cursor = self.cursors[dest];
        assert!(
            cursor < self.seg_end[dest],
            "delivery overflows destination {dest}'s counted segment"
        );
        // SAFETY: `begin`/`begin_sparse` reserved capacity for the segment
        // total; the stamp assert proves `seg_end[dest]` belongs to this
        // fill's layout, and the cursor assert keeps the write strictly
        // inside it (hence inside the reservation). The length is still 0,
        // so this writes an initialized value into reserved, unobservable
        // capacity (leaked, not double-dropped, on panic).
        unsafe { self.data.as_mut_ptr().add(cursor).write(payload) };
        self.cursors[dest] = cursor + 1;
        self.placed += 1;
    }

    /// Close the fill and publish the segments.
    ///
    /// # Panics
    /// Panics if the number of placements differs from the reserved total —
    /// every counted slot must have been filled.
    pub(crate) fn finish(&mut self) {
        assert!(self.filling, "finish without an open fill");
        assert_eq!(
            self.placed, self.total,
            "counting pass and delivery replay disagree"
        );
        // SAFETY: exactly `total` slots were initialized by `place` (one per
        // placement, each at a distinct index by the per-destination cursor
        // discipline) into capacity reserved by `begin`.
        unsafe { self.data.set_len(self.total) };
        self.filling = false;
    }

    /// Destination `d`'s messages, in delivery order. Unstamped
    /// destinations (never counted by the last fill, or cleared) are empty.
    ///
    /// # Panics
    /// Panics if a fill is open.
    #[inline]
    pub(crate) fn inbox(&self, d: usize) -> &[M] {
        assert!(!self.filling, "inbox read during an open fill");
        if self.stamps[d] == self.epoch {
            &self.data[self.seg_start[d]..self.seg_end[d]]
        } else {
            &[]
        }
    }

    /// Number of messages stored for destination `d`.
    #[inline]
    pub(crate) fn len(&self, d: usize) -> usize {
        if self.stamps[d] == self.epoch {
            self.seg_end[d] - self.seg_start[d]
        } else {
            0
        }
    }

    /// Destinations holding at least one message in the current fill, in
    /// first-touch (counting) order. The sparse engines use this to seed
    /// the next superstep's frontier without scanning all `p` inboxes.
    #[inline]
    pub(crate) fn touched(&self) -> &[usize] {
        &self.touched
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_arena_has_empty_inboxes() {
        let a: MsgArena<u32> = MsgArena::new(4);
        assert_eq!(a.dests(), 4);
        for d in 0..4 {
            assert!(a.inbox(d).is_empty());
            assert_eq!(a.len(d), 0);
        }
        assert!(a.touched().is_empty());
    }

    #[test]
    fn fill_preserves_interleaved_delivery_order() {
        let mut a: MsgArena<u32> = MsgArena::new(3);
        a.begin(&[2, 0, 3]);
        // Delivery order interleaves destinations, as the engines' replay
        // does.
        a.place(2, 20);
        a.place(0, 1);
        a.place(2, 21);
        a.place(0, 2);
        a.place(2, 22);
        a.finish();
        assert_eq!(a.inbox(0), &[1, 2]);
        assert_eq!(a.inbox(1), &[] as &[u32]);
        assert_eq!(a.inbox(2), &[20, 21, 22]);
        assert_eq!(a.touched(), &[0, 2]);
    }

    #[test]
    fn refill_reuses_without_stale_contents() {
        let mut a: MsgArena<String> = MsgArena::new(2);
        a.begin(&[1, 1]);
        a.place(0, "a".into());
        a.place(1, "b".into());
        a.finish();
        a.begin(&[0, 2]);
        a.place(1, "c".into());
        a.place(1, "d".into());
        a.finish();
        assert!(a.inbox(0).is_empty());
        assert_eq!(a.inbox(1), &["c".to_string(), "d".to_string()]);
    }

    #[test]
    fn clear_empties_every_segment() {
        let mut a: MsgArena<u8> = MsgArena::new(2);
        a.begin(&[1, 1]);
        a.place(0, 1);
        a.place(1, 2);
        a.finish();
        a.clear();
        assert!(a.inbox(0).is_empty());
        assert!(a.inbox(1).is_empty());
        assert!(a.touched().is_empty());
    }

    #[test]
    fn sparse_fill_lays_out_only_counted_destinations() {
        let mut counts = EpochCounts::new(8);
        counts.add(6, 2);
        counts.add(1, 1);
        counts.add(4, 0); // counted but empty: enumerable, holds nothing
        let mut a: MsgArena<u32> = MsgArena::new(8);
        a.begin_sparse(&counts);
        a.place(6, 60);
        a.place(1, 10);
        a.place(6, 61);
        a.finish();
        assert_eq!(a.inbox(6), &[60, 61]);
        assert_eq!(a.inbox(1), &[10]);
        assert!(a.inbox(4).is_empty());
        // Never-counted destinations read as empty through the stale stamp.
        assert!(a.inbox(0).is_empty());
        assert_eq!(a.len(0), 0);
        // Only message-holding destinations are published as touched.
        assert_eq!(a.touched(), &[6, 1]);
    }

    #[test]
    fn sparse_refill_invalidates_previous_segments() {
        let mut counts = EpochCounts::new(4);
        counts.add(2, 1);
        let mut a: MsgArena<u8> = MsgArena::new(4);
        a.begin_sparse(&counts);
        a.place(2, 9);
        a.finish();
        assert_eq!(a.inbox(2), &[9]);
        counts.reset();
        counts.add(0, 1);
        a.begin_sparse(&counts);
        a.place(0, 7);
        a.finish();
        // Destination 2's old segment is stale, not re-served.
        assert!(a.inbox(2).is_empty());
        assert_eq!(a.inbox(0), &[7]);
    }

    #[test]
    #[should_panic(expected = "never counted")]
    fn placing_to_an_uncounted_destination_panics() {
        let mut counts = EpochCounts::new(4);
        counts.add(1, 1);
        let mut a: MsgArena<u8> = MsgArena::new(4);
        a.begin_sparse(&counts);
        a.place(3, 1);
    }

    #[test]
    #[should_panic(expected = "counted segment")]
    fn overflowing_a_segment_panics() {
        let mut a: MsgArena<u8> = MsgArena::new(2);
        a.begin(&[1, 0]);
        a.place(0, 1);
        a.place(0, 2);
    }

    #[test]
    #[should_panic(expected = "disagree")]
    fn underfilling_panics_at_finish() {
        let mut a: MsgArena<u8> = MsgArena::new(1);
        a.begin(&[2]);
        a.place(0, 1);
        a.finish();
    }

    #[test]
    #[should_panic(expected = "open fill")]
    fn inbox_read_during_fill_panics() {
        let mut a: MsgArena<u8> = MsgArena::new(1);
        a.begin(&[1]);
        let _ = a.inbox(0);
    }

    #[test]
    fn steady_state_refill_does_not_grow() {
        let mut a: MsgArena<u64> = MsgArena::new(8);
        let counts = [4usize; 8];
        for round in 0..3 {
            a.begin(&counts);
            for d in 0..8 {
                for k in 0..4 {
                    a.place(d, (round * 100 + d * 10 + k) as u64);
                }
            }
            a.finish();
        }
        let cap_after_warmup = a.data.capacity();
        for round in 3..10 {
            a.begin(&counts);
            for d in 0..8 {
                for k in 0..4 {
                    a.place(d, (round * 100 + d * 10 + k) as u64);
                }
            }
            a.finish();
        }
        assert_eq!(a.data.capacity(), cap_after_warmup);
        assert_eq!(a.inbox(7)[3], 973);
    }

    #[test]
    fn dense_and_sparse_fills_serve_identical_inboxes() {
        let mut dense: MsgArena<u32> = MsgArena::new(6);
        dense.begin(&[0, 2, 0, 0, 1, 0]);
        dense.place(4, 40);
        dense.place(1, 11);
        dense.place(1, 12);
        dense.finish();
        let mut counts = EpochCounts::new(6);
        counts.add(4, 1);
        counts.add(1, 2);
        let mut sparse: MsgArena<u32> = MsgArena::new(6);
        sparse.begin_sparse(&counts);
        sparse.place(4, 40);
        sparse.place(1, 11);
        sparse.place(1, 12);
        sparse.finish();
        for d in 0..6 {
            assert_eq!(dense.inbox(d), sparse.inbox(d), "dest {d}");
            assert_eq!(dense.len(d), sparse.len(d), "dest {d}");
        }
    }
}
