//! Flat per-destination message arena for the superstep delivery path.
//!
//! A [`MsgArena`] replaces the `Vec<Vec<M>>` inbox-of-inboxes: one backing
//! `Vec<M>` holds every message delivered at a superstep boundary, and a
//! `p + 1` offset table marks each destination's contiguous segment. The
//! engines keep two arenas and *swap* them every superstep (read last
//! boundary's deliveries from one, fill the other), so at steady state the
//! backing storage is reused and a superstep performs no inbox allocations
//! at all, however many messages it moves.
//!
//! Filling is a two-pass protocol:
//!
//! 1. **Counting pass** — the engine walks its outboxes (and fault fates,
//!    retained inboxes and due late arrivals) once, accumulating the exact
//!    number of payloads each destination will receive, then calls
//!    [`MsgArena::begin`] with the per-destination counts. `begin` lays the
//!    segments out by prefix sum and arms one write cursor per destination.
//! 2. **Placement pass** — the engine replays its *sequential delivery
//!    order* (source pid, then send order, then due arrivals), calling
//!    [`MsgArena::place`] for each payload. Because segment `d` is written
//!    only by deliveries to `d`, and those deliveries occur in the same
//!    relative order as the replay, each destination's slice ends up in
//!    exactly the order the old per-destination `Vec::push` produced — the
//!    order the fault ledger, pending queue, and byte-identical trace
//!    contract are defined by. [`MsgArena::finish`] then asserts every
//!    reserved slot was filled and publishes the segments.
//!
//! ## Safety
//!
//! During a fill the backing vector's length stays 0 while `place` writes
//! initialized payloads into reserved capacity through raw pointers; the
//! cursor bound check (a hard assert, not a debug assert) keeps every write
//! inside its destination's segment and therefore inside the reservation.
//! If the engine panics mid-fill, already-placed payloads are leaked — never
//! double-dropped — because the vector still reports length 0. `finish`
//! publishes the length only after checking that the number of placements
//! equals the reserved total, so no uninitialized slot is ever readable.

/// A reusable flat message store with one contiguous segment per
/// destination.
#[derive(Debug)]
pub(crate) struct MsgArena<M> {
    /// Backing storage; `len()` is 0 while a fill is open, the segment total
    /// once published.
    data: Vec<M>,
    /// `offsets[d]..offsets[d + 1]` is destination `d`'s segment
    /// (`dests() + 1` entries).
    offsets: Vec<usize>,
    /// Next write index per destination during a fill.
    cursors: Vec<usize>,
    /// Payloads placed since `begin`.
    placed: usize,
    /// Whether a fill is open (`begin` called, `finish` not yet).
    filling: bool,
}

impl<M> MsgArena<M> {
    /// An empty arena with `p` destinations: every segment is empty.
    pub(crate) fn new(p: usize) -> Self {
        Self {
            data: Vec::new(),
            offsets: vec![0; p + 1],
            cursors: vec![0; p],
            placed: 0,
            filling: false,
        }
    }

    /// Number of destinations.
    pub(crate) fn dests(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Drop all stored payloads and reset every segment to empty. Keeps the
    /// backing capacity.
    pub(crate) fn clear(&mut self) {
        debug_assert!(!self.filling, "clear during an open fill");
        self.data.clear();
        self.offsets.fill(0);
        self.cursors.fill(0);
        self.placed = 0;
        self.filling = false;
    }

    /// Open a fill: lay out one segment per destination sized by `counts`
    /// and arm the write cursors. Any previous contents are dropped.
    ///
    /// # Panics
    /// Panics if `counts.len() != dests()` or a fill is already open.
    pub(crate) fn begin(&mut self, counts: &[usize]) {
        assert_eq!(
            counts.len(),
            self.dests(),
            "count table must cover every destination"
        );
        assert!(!self.filling, "begin while a fill is already open");
        self.data.clear();
        let mut total = 0usize;
        for (d, &c) in counts.iter().enumerate() {
            self.offsets[d] = total;
            self.cursors[d] = total;
            total += c;
        }
        self.offsets[counts.len()] = total;
        self.data.reserve(total);
        self.placed = 0;
        self.filling = true;
    }

    /// Place the next payload for `dest`, in delivery order.
    ///
    /// # Panics
    /// Panics if no fill is open or `dest`'s segment is already full (which
    /// would mean the counting pass and the delivery replay disagree).
    #[inline]
    pub(crate) fn place(&mut self, dest: usize, payload: M) {
        assert!(self.filling, "place outside an open fill");
        let cursor = self.cursors[dest];
        assert!(
            cursor < self.offsets[dest + 1],
            "delivery overflows destination {dest}'s counted segment"
        );
        // SAFETY: `begin` reserved capacity for the segment total and the
        // assert above keeps `cursor` strictly inside it; the length is
        // still 0, so this writes an initialized value into reserved,
        // unobservable capacity (leaked, not double-dropped, on panic).
        unsafe { self.data.as_mut_ptr().add(cursor).write(payload) };
        self.cursors[dest] = cursor + 1;
        self.placed += 1;
    }

    /// Close the fill and publish the segments.
    ///
    /// # Panics
    /// Panics if the number of placements differs from the reserved total —
    /// every counted slot must have been filled.
    pub(crate) fn finish(&mut self) {
        assert!(self.filling, "finish without an open fill");
        let total = self.offsets[self.dests()];
        assert_eq!(
            self.placed, total,
            "counting pass and delivery replay disagree"
        );
        // SAFETY: exactly `total` slots were initialized by `place` (one per
        // placement, each at a distinct index by the per-destination cursor
        // discipline) into capacity reserved by `begin`.
        unsafe { self.data.set_len(total) };
        self.filling = false;
    }

    /// Destination `d`'s messages, in delivery order.
    ///
    /// # Panics
    /// Panics if a fill is open.
    #[inline]
    pub(crate) fn inbox(&self, d: usize) -> &[M] {
        assert!(!self.filling, "inbox read during an open fill");
        &self.data[self.offsets[d]..self.offsets[d + 1]]
    }

    /// Number of messages stored for destination `d`.
    #[inline]
    pub(crate) fn len(&self, d: usize) -> usize {
        self.offsets[d + 1] - self.offsets[d]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_arena_has_empty_inboxes() {
        let a: MsgArena<u32> = MsgArena::new(4);
        assert_eq!(a.dests(), 4);
        for d in 0..4 {
            assert!(a.inbox(d).is_empty());
            assert_eq!(a.len(d), 0);
        }
    }

    #[test]
    fn fill_preserves_interleaved_delivery_order() {
        let mut a: MsgArena<u32> = MsgArena::new(3);
        a.begin(&[2, 0, 3]);
        // Delivery order interleaves destinations, as the engines' replay
        // does.
        a.place(2, 20);
        a.place(0, 1);
        a.place(2, 21);
        a.place(0, 2);
        a.place(2, 22);
        a.finish();
        assert_eq!(a.inbox(0), &[1, 2]);
        assert_eq!(a.inbox(1), &[] as &[u32]);
        assert_eq!(a.inbox(2), &[20, 21, 22]);
    }

    #[test]
    fn refill_reuses_without_stale_contents() {
        let mut a: MsgArena<String> = MsgArena::new(2);
        a.begin(&[1, 1]);
        a.place(0, "a".into());
        a.place(1, "b".into());
        a.finish();
        a.begin(&[0, 2]);
        a.place(1, "c".into());
        a.place(1, "d".into());
        a.finish();
        assert!(a.inbox(0).is_empty());
        assert_eq!(a.inbox(1), &["c".to_string(), "d".to_string()]);
    }

    #[test]
    fn clear_empties_every_segment() {
        let mut a: MsgArena<u8> = MsgArena::new(2);
        a.begin(&[1, 1]);
        a.place(0, 1);
        a.place(1, 2);
        a.finish();
        a.clear();
        assert!(a.inbox(0).is_empty());
        assert!(a.inbox(1).is_empty());
    }

    #[test]
    #[should_panic(expected = "counted segment")]
    fn overflowing_a_segment_panics() {
        let mut a: MsgArena<u8> = MsgArena::new(2);
        a.begin(&[1, 0]);
        a.place(0, 1);
        a.place(0, 2);
    }

    #[test]
    #[should_panic(expected = "disagree")]
    fn underfilling_panics_at_finish() {
        let mut a: MsgArena<u8> = MsgArena::new(1);
        a.begin(&[2]);
        a.place(0, 1);
        a.finish();
    }

    #[test]
    #[should_panic(expected = "open fill")]
    fn inbox_read_during_fill_panics() {
        let mut a: MsgArena<u8> = MsgArena::new(1);
        a.begin(&[1]);
        let _ = a.inbox(0);
    }

    #[test]
    fn steady_state_refill_does_not_grow() {
        let mut a: MsgArena<u64> = MsgArena::new(8);
        let counts = [4usize; 8];
        for round in 0..3 {
            a.begin(&counts);
            for d in 0..8 {
                for k in 0..4 {
                    a.place(d, (round * 100 + d * 10 + k) as u64);
                }
            }
            a.finish();
        }
        let cap_after_warmup = a.data.capacity();
        for round in 3..10 {
            a.begin(&counts);
            for d in 0..8 {
                for k in 0..4 {
                    a.place(d, (round * 100 + d * 10 + k) as u64);
                }
            }
            a.finish();
        }
        assert_eq!(a.data.capacity(), cap_after_warmup);
        assert_eq!(a.inbox(7)[3], 973);
    }
}
