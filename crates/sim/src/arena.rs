//! Flat per-destination message arena for the superstep delivery path.
//!
//! A [`MsgArena`] replaces the `Vec<Vec<M>>` inbox-of-inboxes: one backing
//! `Vec<M>` holds every message delivered at a superstep boundary, and a
//! per-destination segment table marks each destination's contiguous slice.
//! The engines keep two arenas and *swap* them every superstep (read last
//! boundary's deliveries from one, fill the other), so at steady state the
//! backing storage is reused and a superstep performs no inbox allocations
//! at all, however many messages it moves.
//!
//! Filling is a two-pass protocol:
//!
//! 1. **Counting pass** — the engine walks its outboxes (and fault fates,
//!    retained inboxes and due late arrivals) once, accumulating the exact
//!    number of payloads each destination will receive, then opens a fill
//!    with [`MsgArena::begin`] (dense count table) or
//!    [`MsgArena::begin_sparse`] (epoch-stamped dirty counts from the
//!    active-set path). Both lay the segments out by prefix sum and arm one
//!    write cursor per counted destination.
//! 2. **Placement pass** — the engine replays its *sequential delivery
//!    order* (source pid, then send order, then due arrivals), calling
//!    [`MsgArena::place`] for each payload. Because segment `d` is written
//!    only by deliveries to `d`, and those deliveries occur in the same
//!    relative order as the replay, each destination's slice ends up in
//!    exactly the order the old per-destination `Vec::push` produced — the
//!    order the fault ledger, pending queue, and byte-identical trace
//!    contract are defined by. [`MsgArena::finish`] then asserts every
//!    reserved slot was filled and publishes the segments.
//!
//! ## Epoch-stamped segments
//!
//! Segment validity is tracked by an epoch stamp per destination instead of
//! a dense offset table zeroed every superstep: a destination's segment is
//! meaningful only if its stamp equals the arena's current epoch, and both
//! [`MsgArena::clear`] and the `begin` variants reset the arena by bumping
//! the epoch — O(1), never an O(p) `fill(0)`. [`MsgArena::begin_sparse`]
//! additionally lays out segments for *only the counted destinations*, so a
//! whole fill costs O(touched + messages) regardless of `p`. Unstamped
//! destinations read as empty. The arena also publishes the list of
//! destinations that received at least one message ([`MsgArena::touched`]),
//! which is how the sparse engines seed the next superstep's frontier
//! without scanning all `p` inboxes. Segments are laid out in first-touch
//! (counting) order, which is deterministic because the counting pass is
//! sequential; the layout order is unobservable anyway — `inbox(d)` content
//! and order depend only on the placement replay.
//!
//! ## Safety
//!
//! During a fill the backing vector's length stays 0 while `place` writes
//! initialized payloads into reserved capacity through raw pointers; the
//! cursor bound check (a hard assert, not a debug assert) keeps every write
//! inside its destination's segment and therefore inside the reservation.
//! If the engine panics mid-fill, already-placed payloads are leaked — never
//! double-dropped — because the vector still reports length 0. `finish`
//! publishes the length only after checking that the number of placements
//! equals the reserved total, so no uninitialized slot is ever readable.

use pbw_models::{EpochCounts, FrontierMask};

/// One destination's segment metadata, interleaved so the layout pass, the
/// placement cursor bump, and the inbox read each touch a single cache line
/// per destination instead of one line in each of four parallel arrays.
/// All four fields are `u32` — 16 bytes per destination, four per cache
/// line — which halves the memory traffic of the counting and layout
/// sweeps. A fill is capped at `u32::MAX` payloads (enforced in the layout
/// passes); any larger superstep would hold tens of gigabytes of envelopes
/// in memory before ever reaching the arena.
#[derive(Debug, Clone, Copy, Default)]
struct Seg {
    /// Start of the segment (valid iff `stamp` equals the arena epoch).
    start: u32,
    /// One-past-the-end of the segment (same validity rule). Doubles as the
    /// count accumulator between [`MsgArena::count`] and
    /// [`MsgArena::begin_counted`].
    end: u32,
    /// Next write index during a fill.
    cursor: u32,
    /// Epoch at which this segment was last laid out.
    stamp: u32,
}

/// A reusable flat message store with one contiguous segment per
/// destination and O(1) reset.
#[derive(Debug)]
pub(crate) struct MsgArena<M> {
    /// Backing storage; `len()` is 0 while a fill is open, the segment total
    /// once published.
    data: Vec<M>,
    /// Per-destination segment table.
    segs: Vec<Seg>,
    /// Current epoch; bumped by `clear` and both `begin` variants. A `u32`
    /// can wrap within a very long run, so the bump hard-resets every stamp
    /// when it does (once per ~4G resets) — stale stamps never alias.
    epoch: u32,
    /// Destinations holding at least one message this fill, as a bitset
    /// mask (cleared by an O(1) epoch bump alongside the arena's own).
    touched: FrontierMask,
    /// Total payloads reserved by the open (or last published) fill.
    total: usize,
    /// Payloads placed since `begin`.
    placed: usize,
    /// Whether a fill is open (`begin` called, `finish` not yet).
    filling: bool,
}

impl<M> MsgArena<M> {
    /// An empty arena with `p` destinations: every segment is empty.
    pub(crate) fn new(p: usize) -> Self {
        Self {
            data: Vec::new(),
            // Stamps start below the first epoch, so every destination is
            // unstamped (empty) until a fill lays it out.
            segs: vec![Seg::default(); p],
            epoch: 1,
            touched: FrontierMask::new(p),
            total: 0,
            placed: 0,
            filling: false,
        }
    }

    /// Number of destinations.
    pub(crate) fn dests(&self) -> usize {
        self.segs.len()
    }

    /// Drop all stored payloads and reset every segment to empty, in O(1):
    /// the epoch bump invalidates every stamp at once. Keeps the backing
    /// capacity.
    pub(crate) fn clear(&mut self) {
        debug_assert!(!self.filling, "clear during an open fill");
        self.data.clear();
        self.bump_epoch();
        self.touched.clear();
        self.total = 0;
        self.placed = 0;
        self.filling = false;
    }

    /// Invalidate every stamp by bumping the epoch. On the (once per ~4G
    /// resets) wrap, hard-reset every stamp instead, so a stale segment can
    /// never alias the restarted counter.
    #[inline]
    fn bump_epoch(&mut self) {
        if self.epoch == u32::MAX {
            for seg in &mut self.segs {
                seg.stamp = 0;
            }
            self.epoch = 1;
        } else {
            self.epoch += 1;
        }
    }

    /// Open a fill from a dense count table: lay out one segment per
    /// destination sized by `counts` and arm the write cursors. Any
    /// previous contents are dropped. O(p) — the dense engines' entry point.
    ///
    /// # Panics
    /// Panics if `counts.len() != dests()` or a fill is already open.
    pub(crate) fn begin(&mut self, counts: &[usize]) {
        assert_eq!(
            counts.len(),
            self.dests(),
            "count table must cover every destination"
        );
        assert!(!self.filling, "begin while a fill is already open");
        self.data.clear();
        self.bump_epoch();
        self.touched.clear();
        let mut total = 0usize;
        for (d, &c) in counts.iter().enumerate() {
            let seg = &mut self.segs[d];
            seg.stamp = self.epoch;
            seg.start = total as u32;
            seg.cursor = total as u32;
            total += c;
            seg.end = total as u32;
            if c > 0 {
                self.touched.insert(d);
            }
        }
        // Truncated u32 offsets are never observed: the fill aborts here
        // before any placement can read them.
        assert!(
            total <= u32::MAX as usize,
            "fill exceeds u32 payload indexing"
        );
        self.data.reserve(total);
        self.total = total;
        self.placed = 0;
        self.filling = true;
    }

    /// Open a fill from an epoch-stamped count table, laying out segments
    /// for *only the counted destinations* — O(touched), not O(p). Every
    /// other destination reads as empty (its stamp stays stale). Segments
    /// are laid out in ascending destination order (the counts' mask
    /// iteration order); the layout order is unobservable — `inbox(d)`
    /// addresses each segment through its own start/end, never through its
    /// neighbours.
    ///
    /// Returns the largest single segment laid out (0 when none): the
    /// layout walk reads every count anyway, and on the unhooked path that
    /// maximum *is* the superstep's max receive count, which saves the
    /// engine a second sweep over the touched set.
    ///
    /// # Panics
    /// Panics if `counts.len() != dests()` or a fill is already open.
    pub(crate) fn begin_sparse(&mut self, counts: &EpochCounts) -> u64 {
        assert_eq!(
            counts.len(),
            self.dests(),
            "count table must cover every destination"
        );
        assert!(!self.filling, "begin while a fill is already open");
        self.data.clear();
        self.bump_epoch();
        self.touched.clear();
        let mut total = 0usize;
        let mut max_seg = 0usize;
        // Walk the dirty mask one leaf word at a time, accumulating the
        // non-empty destinations of each block into a word OR'd in with one
        // `insert_word` — the per-destination two-level `insert` was a
        // measurable cost at high message rates.
        for (leaf, word) in counts.touched().words() {
            let mut bits = word;
            let mut nonempty = 0u64;
            while bits != 0 {
                let bit = bits.trailing_zeros();
                bits &= bits - 1;
                let d = leaf * 64 + bit as usize;
                let c = counts.get(d) as usize;
                let seg = &mut self.segs[d];
                seg.stamp = self.epoch;
                seg.start = total as u32;
                seg.cursor = total as u32;
                total += c;
                seg.end = total as u32;
                max_seg = max_seg.max(c);
                nonempty |= u64::from(c > 0) << bit;
            }
            self.touched.insert_word(leaf, nonempty);
        }
        assert!(
            total <= u32::MAX as usize,
            "fill exceeds u32 payload indexing"
        );
        self.data.reserve(total);
        self.total = total;
        self.placed = 0;
        self.filling = true;
        max_seg as u64
    }

    /// Counting-phase alternative to an external count table: accumulate
    /// `n` payloads for `dest` directly into the segment table (`end`
    /// doubles as the count accumulator until [`MsgArena::begin_counted`]
    /// converts the counts to offsets by prefix sum). Must run between
    /// [`MsgArena::clear`] and `begin_counted`. A zero increment on a
    /// never-counted destination is a no-op: the destination stays
    /// unstamped and reads as empty, exactly as if it were laid out with an
    /// empty segment.
    #[inline]
    pub(crate) fn count(&mut self, dest: usize, n: usize) {
        debug_assert!(!self.filling, "count during an open fill");
        if n == 0 {
            return;
        }
        let seg = &mut self.segs[dest];
        if seg.stamp != self.epoch {
            seg.stamp = self.epoch;
            seg.end = n as u32;
            self.touched.insert(dest);
        } else {
            seg.end += n as u32;
        }
    }

    /// Count one payload for every destination in `dests` — the batched
    /// form of [`MsgArena::count`]`(d, 1)`, with the epoch hoisted. This is
    /// the unhooked sparse path's per-sender counting kernel.
    pub(crate) fn count_ones(&mut self, dests: &[usize]) {
        debug_assert!(!self.filling, "count during an open fill");
        let epoch = self.epoch;
        // Newly touched destinations are accumulated one leaf word at a
        // time and flushed with a single `insert_word` per run — for the
        // (typical) ascending destination lanes this replaces a two-level
        // mask insert per destination with one per 64. `insert_word` ORs,
        // so revisiting a leaf after a non-monotonic jump still lands every
        // bit.
        let mut cur_leaf = usize::MAX;
        let mut cur_bits = 0u64;
        for &d in dests {
            let seg = &mut self.segs[d];
            if seg.stamp != epoch {
                seg.stamp = epoch;
                seg.end = 1;
                let leaf = d / 64;
                if leaf != cur_leaf {
                    if cur_bits != 0 {
                        self.touched.insert_word(cur_leaf, cur_bits);
                    }
                    cur_leaf = leaf;
                    cur_bits = 0;
                }
                cur_bits |= 1u64 << (d % 64);
            } else {
                seg.end += 1;
            }
        }
        if cur_bits != 0 {
            self.touched.insert_word(cur_leaf, cur_bits);
        }
    }

    /// Open a fill from the counts accumulated by [`MsgArena::count`] /
    /// [`MsgArena::count_ones`]: one in-place prefix-sum walk over the
    /// touched mask turns each count into its segment bounds. The epoch is
    /// *not* bumped (the accumulated stamps must stay valid) — the
    /// counterpart of [`MsgArena::begin_sparse`] without the external count
    /// table, saving a second per-destination tally structure and the
    /// read-back walk over it.
    ///
    /// Returns the largest single segment laid out (0 when none), as
    /// [`MsgArena::begin_sparse`] does.
    ///
    /// # Panics
    /// Panics if a fill is already open.
    pub(crate) fn begin_counted(&mut self) -> u64 {
        assert!(!self.filling, "begin while a fill is already open");
        self.data.clear();
        let mut total = 0usize;
        let mut max_seg = 0usize;
        let Self {
            ref touched,
            ref mut segs,
            ..
        } = *self;
        for (leaf, word) in touched.words() {
            let base = leaf * 64;
            let mut bits = word;
            while bits != 0 {
                let bit = bits.trailing_zeros();
                bits &= bits - 1;
                let seg = &mut segs[base + bit as usize];
                let c = seg.end as usize;
                seg.start = total as u32;
                seg.cursor = total as u32;
                total += c;
                seg.end = total as u32;
                max_seg = max_seg.max(c);
            }
        }
        assert!(
            total <= u32::MAX as usize,
            "fill exceeds u32 payload indexing"
        );
        self.data.reserve(total);
        self.total = total;
        self.placed = 0;
        self.filling = true;
        max_seg as u64
    }

    /// Place the next payload for `dest`, in delivery order.
    ///
    /// # Panics
    /// Panics if no fill is open, `dest` was never counted by this fill, or
    /// `dest`'s segment is already full (either of which would mean the
    /// counting pass and the delivery replay disagree).
    #[inline]
    pub(crate) fn place(&mut self, dest: usize, payload: M) {
        assert!(self.filling, "place outside an open fill");
        let seg = &mut self.segs[dest];
        assert!(
            seg.stamp == self.epoch,
            "delivery to destination {dest}, which the counting pass never counted"
        );
        let cursor = seg.cursor;
        assert!(
            cursor < seg.end,
            "delivery overflows destination {dest}'s counted segment"
        );
        seg.cursor = cursor + 1;
        // SAFETY: `begin`/`begin_sparse` reserved capacity for the segment
        // total; the stamp assert proves `seg.end` belongs to this fill's
        // layout, and the cursor assert keeps the write strictly inside it
        // (hence inside the reservation). The length is still 0, so this
        // writes an initialized value into reserved, unobservable capacity
        // (leaked, not double-dropped, on panic).
        unsafe { self.data.as_mut_ptr().add(cursor as usize).write(payload) };
        self.placed += 1;
    }

    /// Close the fill and publish the segments.
    ///
    /// # Panics
    /// Panics if the number of placements differs from the reserved total —
    /// every counted slot must have been filled.
    pub(crate) fn finish(&mut self) {
        assert!(self.filling, "finish without an open fill");
        assert_eq!(
            self.placed, self.total,
            "counting pass and delivery replay disagree"
        );
        // SAFETY: exactly `total` slots were initialized by `place` (one per
        // placement, each at a distinct index by the per-destination cursor
        // discipline) into capacity reserved by `begin`.
        unsafe { self.data.set_len(self.total) };
        self.filling = false;
    }

    /// Destination `d`'s messages, in delivery order. Unstamped
    /// destinations (never counted by the last fill, or cleared) are empty.
    ///
    /// # Panics
    /// Panics if a fill is open.
    #[inline]
    pub(crate) fn inbox(&self, d: usize) -> &[M] {
        assert!(!self.filling, "inbox read during an open fill");
        let seg = &self.segs[d];
        if seg.stamp == self.epoch {
            &self.data[seg.start as usize..seg.end as usize]
        } else {
            &[]
        }
    }

    /// Number of messages stored for destination `d`.
    #[inline]
    pub(crate) fn len(&self, d: usize) -> usize {
        let seg = &self.segs[d];
        if seg.stamp == self.epoch {
            (seg.end - seg.start) as usize
        } else {
            0
        }
    }

    /// Destinations holding at least one message in the current fill, as a
    /// bitset. The sparse engines union this mask into the next superstep's
    /// frontier word-at-a-time, without scanning all `p` inboxes — and
    /// without the sort the old first-touch-ordered list forced on them.
    #[inline]
    pub(crate) fn touched(&self) -> &FrontierMask {
        &self.touched
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_arena_has_empty_inboxes() {
        let a: MsgArena<u32> = MsgArena::new(4);
        assert_eq!(a.dests(), 4);
        for d in 0..4 {
            assert!(a.inbox(d).is_empty());
            assert_eq!(a.len(d), 0);
        }
        assert!(a.touched().is_empty());
    }

    #[test]
    fn fill_preserves_interleaved_delivery_order() {
        let mut a: MsgArena<u32> = MsgArena::new(3);
        a.begin(&[2, 0, 3]);
        // Delivery order interleaves destinations, as the engines' replay
        // does.
        a.place(2, 20);
        a.place(0, 1);
        a.place(2, 21);
        a.place(0, 2);
        a.place(2, 22);
        a.finish();
        assert_eq!(a.inbox(0), &[1, 2]);
        assert_eq!(a.inbox(1), &[] as &[u32]);
        assert_eq!(a.inbox(2), &[20, 21, 22]);
        assert_eq!(a.touched().iter().collect::<Vec<_>>(), vec![0, 2]);
    }

    #[test]
    fn refill_reuses_without_stale_contents() {
        let mut a: MsgArena<String> = MsgArena::new(2);
        a.begin(&[1, 1]);
        a.place(0, "a".into());
        a.place(1, "b".into());
        a.finish();
        a.begin(&[0, 2]);
        a.place(1, "c".into());
        a.place(1, "d".into());
        a.finish();
        assert!(a.inbox(0).is_empty());
        assert_eq!(a.inbox(1), &["c".to_string(), "d".to_string()]);
    }

    #[test]
    fn clear_empties_every_segment() {
        let mut a: MsgArena<u8> = MsgArena::new(2);
        a.begin(&[1, 1]);
        a.place(0, 1);
        a.place(1, 2);
        a.finish();
        a.clear();
        assert!(a.inbox(0).is_empty());
        assert!(a.inbox(1).is_empty());
        assert!(a.touched().is_empty());
    }

    #[test]
    fn sparse_fill_lays_out_only_counted_destinations() {
        let mut counts = EpochCounts::new(8);
        counts.add(6, 2);
        counts.add(1, 1);
        counts.add(4, 0); // counted but empty: enumerable, holds nothing
        let mut a: MsgArena<u32> = MsgArena::new(8);
        a.begin_sparse(&counts);
        a.place(6, 60);
        a.place(1, 10);
        a.place(6, 61);
        a.finish();
        assert_eq!(a.inbox(6), &[60, 61]);
        assert_eq!(a.inbox(1), &[10]);
        assert!(a.inbox(4).is_empty());
        // Never-counted destinations read as empty through the stale stamp.
        assert!(a.inbox(0).is_empty());
        assert_eq!(a.len(0), 0);
        // Only message-holding destinations are published as touched.
        assert_eq!(a.touched().iter().collect::<Vec<_>>(), vec![1, 6]);
    }

    #[test]
    fn sparse_refill_invalidates_previous_segments() {
        let mut counts = EpochCounts::new(4);
        counts.add(2, 1);
        let mut a: MsgArena<u8> = MsgArena::new(4);
        a.begin_sparse(&counts);
        a.place(2, 9);
        a.finish();
        assert_eq!(a.inbox(2), &[9]);
        counts.reset();
        counts.add(0, 1);
        a.begin_sparse(&counts);
        a.place(0, 7);
        a.finish();
        // Destination 2's old segment is stale, not re-served.
        assert!(a.inbox(2).is_empty());
        assert_eq!(a.inbox(0), &[7]);
    }

    #[test]
    #[should_panic(expected = "never counted")]
    fn placing_to_an_uncounted_destination_panics() {
        let mut counts = EpochCounts::new(4);
        counts.add(1, 1);
        let mut a: MsgArena<u8> = MsgArena::new(4);
        a.begin_sparse(&counts);
        a.place(3, 1);
    }

    #[test]
    #[should_panic(expected = "counted segment")]
    fn overflowing_a_segment_panics() {
        let mut a: MsgArena<u8> = MsgArena::new(2);
        a.begin(&[1, 0]);
        a.place(0, 1);
        a.place(0, 2);
    }

    #[test]
    #[should_panic(expected = "disagree")]
    fn underfilling_panics_at_finish() {
        let mut a: MsgArena<u8> = MsgArena::new(1);
        a.begin(&[2]);
        a.place(0, 1);
        a.finish();
    }

    #[test]
    #[should_panic(expected = "open fill")]
    fn inbox_read_during_fill_panics() {
        let mut a: MsgArena<u8> = MsgArena::new(1);
        a.begin(&[1]);
        let _ = a.inbox(0);
    }

    #[test]
    fn steady_state_refill_does_not_grow() {
        let mut a: MsgArena<u64> = MsgArena::new(8);
        let counts = [4usize; 8];
        for round in 0..3 {
            a.begin(&counts);
            for d in 0..8 {
                for k in 0..4 {
                    a.place(d, (round * 100 + d * 10 + k) as u64);
                }
            }
            a.finish();
        }
        let cap_after_warmup = a.data.capacity();
        for round in 3..10 {
            a.begin(&counts);
            for d in 0..8 {
                for k in 0..4 {
                    a.place(d, (round * 100 + d * 10 + k) as u64);
                }
            }
            a.finish();
        }
        assert_eq!(a.data.capacity(), cap_after_warmup);
        assert_eq!(a.inbox(7)[3], 973);
    }

    #[test]
    fn dense_and_sparse_fills_serve_identical_inboxes() {
        let mut dense: MsgArena<u32> = MsgArena::new(6);
        dense.begin(&[0, 2, 0, 0, 1, 0]);
        dense.place(4, 40);
        dense.place(1, 11);
        dense.place(1, 12);
        dense.finish();
        let mut counts = EpochCounts::new(6);
        counts.add(4, 1);
        counts.add(1, 2);
        let mut sparse: MsgArena<u32> = MsgArena::new(6);
        sparse.begin_sparse(&counts);
        sparse.place(4, 40);
        sparse.place(1, 11);
        sparse.place(1, 12);
        sparse.finish();
        for d in 0..6 {
            assert_eq!(dense.inbox(d), sparse.inbox(d), "dest {d}");
            assert_eq!(dense.len(d), sparse.len(d), "dest {d}");
        }
    }
}
