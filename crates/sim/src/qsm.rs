//! The shared-memory bulk-synchronous machine (QSM style).
//!
//! A [`QsmMachine`] holds `p` processor states plus a shared memory of
//! [`Word`]s. Each [`QsmMachine::phase`] runs a closure once per processor;
//! the closure receives the *values returned by the reads it issued in the
//! previous phase* (QSM semantics: "the value returned by a shared-memory
//! read can only be used in a subsequent phase") and posts new read/write
//! requests to a [`QsmCtx`].
//!
//! Model rules enforced by the engine:
//!
//! * Concurrent reads or concurrent writes to a location within a phase are
//!   allowed; a mix of both on one location is an error
//!   ([`SimError::ReadWriteConflict`]).
//! * Multiple writers to one location are resolved arbitrarily; for
//!   reproducibility this engine deterministically lets the *lowest
//!   processor id* win (a valid instance of the Arbitrary rule).
//! * The maximum location contention `κ` and the per-step request-injection
//!   histogram `m_t` (for the QSM(m) cost metric) are metered exactly. As in
//!   the BSP engine, requests may be pinned to explicit injection slots via
//!   [`QsmCtx::read_at`] / [`QsmCtx::write_at`]; unpinned requests pipeline
//!   into the earliest free slots.

use crate::{Pid, SimError};
use pbw_models::{MachineParams, ProfileBuilder, SuperstepProfile};
use pbw_trace::{TraceEvent, TraceSink, TraceSource};
use rayon::prelude::*;
use std::collections::BTreeSet;
use std::sync::Arc;

/// A shared-memory word. The paper's Section 5 bounds are sensitive to the
/// word width `w`; 64-bit words match the `w = Θ(lg p)` regime.
pub type Word = i64;

/// Shared-memory address.
pub type Addr = usize;

/// The value delivered to a processor for one read it issued last phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadResult {
    /// Address that was read.
    pub addr: Addr,
    /// Value the location held during the read phase.
    pub value: Word,
}

#[derive(Debug, Clone)]
enum Request {
    Read { addr: Addr, slot: Option<u64> },
    Write { addr: Addr, value: Word, slot: Option<u64> },
}

/// Per-processor request buffer for one QSM phase.
#[derive(Debug, Default)]
pub struct QsmCtx {
    requests: Vec<Request>,
    work: u64,
}

impl QsmCtx {
    /// Issue a shared-memory read; the value arrives next phase, pipelined
    /// into the earliest free injection slot.
    pub fn read(&mut self, addr: Addr) {
        self.requests.push(Request::Read { addr, slot: None });
    }

    /// Issue a read pinned to injection step `slot`.
    pub fn read_at(&mut self, addr: Addr, slot: u64) {
        self.requests.push(Request::Read { addr, slot: Some(slot) });
    }

    /// Issue a shared-memory write, pipelined.
    pub fn write(&mut self, addr: Addr, value: Word) {
        self.requests.push(Request::Write { addr, value, slot: None });
    }

    /// Issue a write pinned to injection step `slot`.
    pub fn write_at(&mut self, addr: Addr, value: Word, slot: u64) {
        self.requests.push(Request::Write { addr, value, slot: Some(slot) });
    }

    /// Charge `w` units of local computation.
    pub fn charge_work(&mut self, w: u64) {
        self.work += w;
    }

    fn counts(&self) -> (u64, u64) {
        let mut r = 0;
        let mut w = 0;
        for req in &self.requests {
            match req {
                Request::Read { .. } => r += 1,
                Request::Write { .. } => w += 1,
            }
        }
        (r, w)
    }
}

/// Report for one executed QSM phase.
#[derive(Debug, Clone)]
pub struct PhaseReport {
    /// Exact cost profile of the phase.
    pub profile: SuperstepProfile,
    /// Number of read requests served.
    pub reads: u64,
    /// Number of write requests applied (post-arbitration writes count once
    /// per request, not per surviving value).
    pub writes: u64,
}

/// A simulated `p`-processor QSM machine with `size` shared-memory words.
///
/// ```
/// use pbw_models::MachineParams;
/// use pbw_sim::QsmMachine;
///
/// let mp = MachineParams::from_gap(4, 2, 2);
/// let mut qsm: QsmMachine<i64> = QsmMachine::new(mp, 8, |_| 0);
/// // Phase 1: everyone writes its own cell (exclusive, κ = 1)…
/// qsm.phase(|pid, _s, _res, ctx| ctx.write(pid, 10 * pid as i64));
/// // Phase 2: …then reads its neighbour's; values arrive next phase.
/// qsm.phase(|pid, _s, _res, ctx| ctx.read((pid + 1) % 4));
/// qsm.phase(|_pid, s, res, _ctx| *s = res[0].value);
/// assert_eq!(qsm.states(), &[10, 20, 30, 0]);
/// assert_eq!(qsm.profiles()[0].max_contention, 1);
/// ```
pub struct QsmMachine<S> {
    params: MachineParams,
    shared: Vec<Word>,
    states: Vec<S>,
    read_results: Vec<Vec<ReadResult>>,
    profiles: Vec<SuperstepProfile>,
    phase: usize,
    sink: Arc<dyn TraceSink>,
    trace_label: String,
}

impl<S: Send + Sync> QsmMachine<S> {
    /// Create a machine with `params.p` processors and `size` words of
    /// shared memory (zero-initialized).
    ///
    /// The machine captures the process-wide trace sink
    /// ([`pbw_trace::global_sink`]) at construction; use
    /// [`QsmMachine::set_sink`] to attach a specific sink instead.
    pub fn new(params: MachineParams, size: usize, init: impl FnMut(Pid) -> S) -> Self {
        let states: Vec<S> = (0..params.p).map(init).collect();
        let read_results = (0..params.p).map(|_| Vec::new()).collect();
        Self {
            params,
            shared: vec![0; size],
            states,
            read_results,
            profiles: Vec::new(),
            phase: 0,
            sink: pbw_trace::global_sink(),
            trace_label: String::new(),
        }
    }

    /// Attach a trace sink, replacing the one captured at construction.
    pub fn set_sink(&mut self, sink: Arc<dyn TraceSink>) -> &mut Self {
        self.sink = sink;
        self
    }

    /// Label stamped on every trace event this machine emits.
    pub fn set_trace_label(&mut self, label: impl Into<String>) -> &mut Self {
        self.trace_label = label.into();
        self
    }

    /// Machine parameters.
    pub fn params(&self) -> MachineParams {
        self.params
    }

    /// The shared memory (for test setup and result extraction — reading it
    /// directly is free and does not perturb cost accounting).
    pub fn shared(&self) -> &[Word] {
        &self.shared
    }

    /// Mutable shared memory (setup only).
    pub fn shared_mut(&mut self) -> &mut [Word] {
        &mut self.shared
    }

    /// Processor states.
    pub fn states(&self) -> &[S] {
        &self.states
    }

    /// Mutable processor states (setup only).
    pub fn states_mut(&mut self) -> &mut [S] {
        &mut self.states
    }

    /// One processor's state.
    pub fn state(&self, pid: Pid) -> &S {
        &self.states[pid]
    }

    /// Profiles of all executed phases.
    pub fn profiles(&self) -> &[SuperstepProfile] {
        &self.profiles
    }

    /// Number of phases executed.
    pub fn phase_index(&self) -> usize {
        self.phase
    }

    /// Total run cost under any cost model.
    pub fn cost(&self, model: &dyn pbw_models::CostModel) -> f64 {
        model.run_cost(&self.profiles)
    }

    /// Execute one phase, panicking on model-rule violations.
    pub fn phase<F>(&mut self, f: F) -> PhaseReport
    where
        F: Fn(Pid, &mut S, &[ReadResult], &mut QsmCtx) + Sync,
    {
        self.try_phase(f).unwrap_or_else(|e| panic!("QSM phase failed: {e}"))
    }

    /// Execute one phase, returning model-rule violations as errors.
    pub fn try_phase<F>(&mut self, f: F) -> Result<PhaseReport, SimError>
    where
        F: Fn(Pid, &mut S, &[ReadResult], &mut QsmCtx) + Sync,
    {
        let p = self.params.p;
        let size = self.shared.len();
        let prev_results = std::mem::replace(
            &mut self.read_results,
            (0..p).map(|_| Vec::new()).collect(),
        );

        // Run all processors in parallel.
        let ctxs: Vec<QsmCtx> = self
            .states
            .par_iter_mut()
            .zip(prev_results.par_iter())
            .enumerate()
            .map(|(pid, (state, results))| {
                let mut ctx = QsmCtx::default();
                f(pid, state, results, &mut ctx);
                ctx
            })
            .collect();

        // Validate addresses and resolve per-processor injection slots.
        for ctx in &ctxs {
            for req in &ctx.requests {
                let addr = match req {
                    Request::Read { addr, .. } | Request::Write { addr, .. } => *addr,
                };
                if addr >= size {
                    return Err(SimError::BadAddress { addr, size });
                }
            }
        }
        let resolved: Result<Vec<Vec<u64>>, SimError> = ctxs
            .par_iter()
            .enumerate()
            .map(|(pid, ctx)| {
                let slots: Vec<Option<u64>> = ctx
                    .requests
                    .iter()
                    .map(|r| match r {
                        Request::Read { slot, .. } | Request::Write { slot, .. } => *slot,
                    })
                    .collect();
                assign_slots(pid, &slots)
            })
            .collect();
        let resolved = resolved?;

        // Contention audit: readers and writers per location.
        let mut readers = vec![0u64; size];
        let mut writers = vec![0u64; size];
        // Tracks which addresses each processor touched, to count per-proc
        // distinct access contention correctly: the paper counts processors
        // per location.
        for ctx in &ctxs {
            let mut seen_r: BTreeSet<Addr> = BTreeSet::new();
            let mut seen_w: BTreeSet<Addr> = BTreeSet::new();
            for req in &ctx.requests {
                match req {
                    Request::Read { addr, .. } => {
                        if seen_r.insert(*addr) {
                            readers[*addr] += 1;
                        }
                    }
                    Request::Write { addr, .. } => {
                        if seen_w.insert(*addr) {
                            writers[*addr] += 1;
                        }
                    }
                }
            }
        }
        let mut builder = ProfileBuilder::new();
        for addr in 0..size {
            if readers[addr] > 0 && writers[addr] > 0 {
                return Err(SimError::ReadWriteConflict { addr });
            }
            let kappa = readers[addr].max(writers[addr]);
            if kappa > 0 {
                builder.record_contention(kappa);
            }
        }

        // Serve reads against the pre-phase memory; collect writes.
        let mut total_reads = 0u64;
        let mut total_writes = 0u64;
        // (addr, pid, value): min-pid arbitration per address.
        let mut pending_writes: Vec<(Addr, Pid, Word)> = Vec::new();
        for (pid, ctx) in ctxs.iter().enumerate() {
            let (r_i, w_i) = ctx.counts();
            builder.record_memory_ops(r_i, w_i);
            builder.record_work(ctx.work);
            for (req, &slot) in ctx.requests.iter().zip(resolved[pid].iter()) {
                builder.record_injection(slot);
                match req {
                    Request::Read { addr, .. } => {
                        self.read_results[pid]
                            .push(ReadResult { addr: *addr, value: self.shared[*addr] });
                        total_reads += 1;
                    }
                    Request::Write { addr, value, .. } => {
                        pending_writes.push((*addr, pid, *value));
                        total_writes += 1;
                    }
                }
            }
        }

        // Arbitrary-rule write resolution: deterministic min-pid winner.
        // Sort by (addr, pid) and keep the first writer per address.
        pending_writes.sort_unstable_by_key(|&(addr, pid, _)| (addr, pid));
        let mut last_addr = usize::MAX;
        for (addr, _pid, value) in pending_writes {
            if addr != last_addr {
                self.shared[addr] = value;
                last_addr = addr;
            }
        }

        let profile = builder.build();
        if self.sink.enabled() {
            let mut per_proc_sent = Vec::with_capacity(p);
            let mut per_proc_recv = Vec::with_capacity(p);
            for (pid, ctx) in ctxs.iter().enumerate() {
                let (r_i, w_i) = ctx.counts();
                per_proc_sent.push(r_i + w_i);
                per_proc_recv.push(self.read_results[pid].len() as u64);
            }
            self.sink.record(TraceEvent::for_superstep(
                TraceSource::Qsm,
                self.trace_label.clone(),
                self.phase as u64,
                self.params,
                profile.clone(),
                per_proc_sent,
                per_proc_recv,
                crate::max_slot_multiplicity(&resolved),
                total_reads + total_writes,
            ));
        }
        self.profiles.push(profile.clone());
        self.phase += 1;
        Ok(PhaseReport { profile, reads: total_reads, writes: total_writes })
    }
}

/// Assign injection slots: explicit slots honoured, autos fill earliest free.
fn assign_slots(pid: Pid, slots: &[Option<u64>]) -> Result<Vec<u64>, SimError> {
    let mut explicit: BTreeSet<u64> = BTreeSet::new();
    for s in slots.iter().flatten() {
        if !explicit.insert(*s) {
            return Err(SimError::DuplicateSlot { pid, slot: *s });
        }
    }
    let mut next_auto = 0u64;
    let mut out = Vec::with_capacity(slots.len());
    for s in slots {
        match s {
            Some(v) => out.push(*v),
            None => {
                while explicit.contains(&next_auto) {
                    next_auto += 1;
                }
                out.push(next_auto);
                next_auto += 1;
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbw_models::{PenaltyFn, QsmG, QsmM};

    fn params(p: usize) -> MachineParams {
        MachineParams::from_gap(p, 4, 8)
    }

    #[test]
    fn read_values_arrive_next_phase() {
        let mut m: QsmMachine<Word> = QsmMachine::new(params(4), 16, |_| -1);
        m.shared_mut()[3] = 42;
        m.phase(|_pid, _s, _res, ctx| ctx.read(3));
        m.phase(|_pid, s, res, _ctx| {
            assert_eq!(res.len(), 1);
            assert_eq!(res[0], ReadResult { addr: 3, value: 42 });
            *s = res[0].value;
        });
        assert_eq!(m.states(), &[42, 42, 42, 42]);
    }

    #[test]
    fn concurrent_reads_meter_contention() {
        let mut m: QsmMachine<()> = QsmMachine::new(params(4), 8, |_| ());
        m.phase(|_pid, _s, _res, ctx| ctx.read(0));
        assert_eq!(m.profiles()[0].max_contention, 4);
    }

    #[test]
    fn exclusive_reads_have_unit_contention() {
        let mut m: QsmMachine<()> = QsmMachine::new(params(4), 8, |_| ());
        m.phase(|pid, _s, _res, ctx| ctx.read(pid));
        assert_eq!(m.profiles()[0].max_contention, 1);
    }

    #[test]
    fn min_pid_wins_concurrent_write() {
        let mut m: QsmMachine<()> = QsmMachine::new(params(4), 8, |_| ());
        m.phase(|pid, _s, _res, ctx| ctx.write(5, pid as Word + 100));
        assert_eq!(m.shared()[5], 100);
        assert_eq!(m.profiles()[0].max_contention, 4);
    }

    #[test]
    fn read_write_conflict_rejected() {
        let mut m: QsmMachine<()> = QsmMachine::new(params(4), 8, |_| ());
        let err = m
            .try_phase(|pid, _s, _res, ctx| {
                if pid == 0 {
                    ctx.read(2);
                } else {
                    ctx.write(2, 9);
                }
            })
            .unwrap_err();
        assert_eq!(err, SimError::ReadWriteConflict { addr: 2 });
    }

    #[test]
    fn bad_address_rejected() {
        let mut m: QsmMachine<()> = QsmMachine::new(params(4), 8, |_| ());
        let err = m.try_phase(|_pid, _s, _res, ctx| ctx.read(8)).unwrap_err();
        assert_eq!(err, SimError::BadAddress { addr: 8, size: 8 });
    }

    #[test]
    fn reads_see_pre_phase_values() {
        // Reads and writes in the same phase must touch different locations;
        // a read concurrent with a write to a *different* location sees the
        // old value of its own location trivially. Check sequencing across
        // phases instead: a write in phase 1 is visible to a phase-2 read.
        let mut m: QsmMachine<Word> = QsmMachine::new(MachineParams::from_gap(2, 2, 8), 4, |_| 0);
        m.phase(|pid, _s, _res, ctx| {
            if pid == 0 {
                ctx.write(1, 7);
            }
        });
        m.phase(|pid, _s, _res, ctx| {
            if pid == 1 {
                ctx.read(1);
            }
        });
        m.phase(|pid, s, res, _ctx| {
            if pid == 1 {
                *s = res[0].value;
            }
        });
        assert_eq!(*m.state(1), 7);
    }

    #[test]
    fn qsm_g_prices_pipelined_requests() {
        let mut m: QsmMachine<()> = QsmMachine::new(params(4), 64, |_| ());
        m.phase(|pid, _s, _res, ctx| {
            for k in 0..6 {
                ctx.read(pid * 6 + k);
            }
        });
        // h = 6, g = 4 → phase cost 24 under QSM(g), κ = 1.
        let qsm_g = QsmG { g: 4 };
        assert_eq!(m.cost(&qsm_g), 24.0);
        // QSM(m) with m = 1: injections are 4 per step for 6 steps →
        // c_m = Σ f(4) with m=1 exp = 6·e^3.
        let qsm_m = QsmM { m: 1, penalty: PenaltyFn::Exponential };
        let expect = 6.0 * (3.0f64).exp();
        assert!((m.cost(&qsm_m) - expect).abs() < 1e-9);
    }

    #[test]
    fn explicit_slots_stagger_requests() {
        let p = 8;
        let mut m: QsmMachine<()> = QsmMachine::new(params(p), 64, |_| ());
        // Stagger: processor i injects its single read at slot i — never more
        // than 1 request per machine step.
        m.phase(|pid, _s, _res, ctx| ctx.read_at(pid, pid as u64));
        let prof = &m.profiles()[0];
        assert_eq!(prof.injections, vec![1; p]);
        let qsm_m = QsmM { m: 1, penalty: PenaltyFn::Exponential };
        assert_eq!(m.cost(&qsm_m), 8.0); // c_m = 8 slots · charge 1
    }

    #[test]
    fn duplicate_slot_rejected() {
        let mut m: QsmMachine<()> = QsmMachine::new(params(4), 8, |_| ());
        let err = m
            .try_phase(|pid, _s, _res, ctx| {
                if pid == 1 {
                    ctx.read_at(0, 3);
                    ctx.write_at(1, 5, 3);
                }
            })
            .unwrap_err();
        assert_eq!(err, SimError::DuplicateSlot { pid: 1, slot: 3 });
    }

    #[test]
    fn repeat_read_same_location_counts_once_for_contention() {
        let mut m: QsmMachine<()> = QsmMachine::new(params(4), 8, |_| ());
        m.phase(|pid, _s, _res, ctx| {
            if pid == 0 {
                ctx.read(0);
                ctx.read(0);
            }
        });
        // One processor reading a location twice is contention 1 (paper
        // counts processors), though h = 2.
        assert_eq!(m.profiles()[0].max_contention, 1);
        assert_eq!(m.profiles()[0].max_reads, 2);
    }

    #[test]
    fn trace_events_cover_phases() {
        use pbw_trace::RecordingSink;
        let sink = Arc::new(RecordingSink::new());
        let mut m: QsmMachine<Word> = QsmMachine::new(params(4), 16, |_| 0);
        m.set_sink(sink.clone()).set_trace_label("neighbour-read");
        m.phase(|pid, _s, _res, ctx| ctx.write(pid, pid as Word));
        m.phase(|pid, _s, _res, ctx| ctx.read((pid + 1) % 4));
        let events = sink.take();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].source, TraceSource::Qsm);
        assert_eq!(events[0].superstep, 0);
        assert_eq!(events[0].per_proc_sent, vec![1, 1, 1, 1]);
        assert_eq!(events[0].delivered, 4);
        // Reads issued in phase 1 are delivered during that phase's serve
        // loop, so the phase-1 event sees 4 read results.
        assert_eq!(events[1].per_proc_recv, vec![1, 1, 1, 1]);
        assert_eq!(events[1].profile, m.profiles()[1]);
        assert_eq!(events[1].max_proc_slot_injections, 1);
    }

    #[test]
    fn work_charges_take_max() {
        let mut m: QsmMachine<()> = QsmMachine::new(params(4), 8, |_| ());
        m.phase(|pid, _s, _res, ctx| ctx.charge_work(pid as u64));
        assert_eq!(m.profiles()[0].max_work, 3);
    }
}
