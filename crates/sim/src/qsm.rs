//! The shared-memory bulk-synchronous machine (QSM style).
//!
//! A [`QsmMachine`] holds `p` processor states plus a shared memory of
//! [`Word`]s. Each [`QsmMachine::phase`] runs a closure once per processor;
//! the closure receives the *values returned by the reads it issued in the
//! previous phase* (QSM semantics: "the value returned by a shared-memory
//! read can only be used in a subsequent phase") and posts new read/write
//! requests to a [`QsmCtx`].
//!
//! Model rules enforced by the engine:
//!
//! * Concurrent reads or concurrent writes to a location within a phase are
//!   allowed; a mix of both on one location is an error
//!   ([`SimError::ReadWriteConflict`]).
//! * Multiple writers to one location are resolved arbitrarily; for
//!   reproducibility this engine deterministically lets the *lowest
//!   processor id* win (a valid instance of the Arbitrary rule).
//! * The maximum location contention `κ` and the per-step request-injection
//!   histogram `m_t` (for the QSM(m) cost metric) are metered exactly. As in
//!   the BSP engine, requests may be pinned to explicit injection slots via
//!   [`QsmCtx::read_at`] / [`QsmCtx::write_at`]; unpinned requests pipeline
//!   into the earliest free slots.

use crate::arena::MsgArena;
use crate::hook::{BatchDests, DeliveryHook, Fate, FaultStats};
use crate::{Pid, SimError};
use pbw_models::{EpochCounts, FrontierMask, MachineParams, ProfileBuilder, SuperstepProfile};
use pbw_trace::{FaultCounters, TraceEvent, TraceSink, TraceSource};
use rayon::prelude::*;
use std::collections::{BTreeSet, VecDeque};
use std::sync::Arc;

/// A shared-memory word. The paper's Section 5 bounds are sensitive to the
/// word width `w`; 64-bit words match the `w = Θ(lg p)` regime.
pub type Word = i64;

/// Shared-memory address.
pub type Addr = usize;

/// The value delivered to a processor for one read it issued last phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadResult {
    /// Address that was read.
    pub addr: Addr,
    /// Value the location held during the read phase.
    pub value: Word,
}

#[derive(Debug, Clone)]
enum Request {
    Read {
        addr: Addr,
        slot: Option<u64>,
    },
    Write {
        addr: Addr,
        value: Word,
        slot: Option<u64>,
    },
}

/// Per-processor request buffer for one QSM phase.
#[derive(Debug, Default)]
pub struct QsmCtx {
    requests: Vec<Request>,
    work: u64,
}

impl QsmCtx {
    /// Issue a shared-memory read; the value arrives next phase, pipelined
    /// into the earliest free injection slot.
    pub fn read(&mut self, addr: Addr) {
        self.requests.push(Request::Read { addr, slot: None });
    }

    /// Issue a read pinned to injection step `slot`.
    pub fn read_at(&mut self, addr: Addr, slot: u64) {
        self.requests.push(Request::Read {
            addr,
            slot: Some(slot),
        });
    }

    /// Issue a shared-memory write, pipelined.
    pub fn write(&mut self, addr: Addr, value: Word) {
        self.requests.push(Request::Write {
            addr,
            value,
            slot: None,
        });
    }

    /// Issue a write pinned to injection step `slot`.
    pub fn write_at(&mut self, addr: Addr, value: Word, slot: u64) {
        self.requests.push(Request::Write {
            addr,
            value,
            slot: Some(slot),
        });
    }

    /// Charge `w` units of local computation.
    pub fn charge_work(&mut self, w: u64) {
        self.work += w;
    }

    /// Empty the context for the next phase, keeping its capacity.
    fn reset(&mut self) {
        self.requests.clear();
        self.work = 0;
    }

    fn counts(&self) -> (u64, u64) {
        let mut r = 0;
        let mut w = 0;
        for req in &self.requests {
            match req {
                Request::Read { .. } => r += 1,
                Request::Write { .. } => w += 1,
            }
        }
        (r, w)
    }
}

/// Report for one executed QSM phase.
#[derive(Debug, Clone)]
pub struct PhaseReport {
    /// Exact cost profile of the phase.
    pub profile: SuperstepProfile,
    /// Number of read requests served.
    pub reads: u64,
    /// Number of write requests applied (post-arbitration writes count once
    /// per request, not per surviving value).
    pub writes: u64,
}

/// A simulated `p`-processor QSM machine with `size` shared-memory words.
///
/// ```
/// use pbw_models::MachineParams;
/// use pbw_sim::QsmMachine;
///
/// let mp = MachineParams::from_gap(4, 2, 2);
/// let mut qsm: QsmMachine<i64> = QsmMachine::new(mp, 8, |_| 0);
/// // Phase 1: everyone writes its own cell (exclusive, κ = 1)…
/// qsm.phase(|pid, _s, _res, ctx| ctx.write(pid, 10 * pid as i64));
/// // Phase 2: …then reads its neighbour's; values arrive next phase.
/// qsm.phase(|pid, _s, _res, ctx| ctx.read((pid + 1) % 4));
/// qsm.phase(|_pid, s, res, _ctx| *s = res[0].value);
/// assert_eq!(qsm.states(), &[10, 20, 30, 0]);
/// assert_eq!(qsm.profiles()[0].max_contention, 1);
/// ```
pub struct QsmMachine<S> {
    params: MachineParams,
    shared: Vec<Word>,
    states: Vec<S>,
    /// Read results awaiting the next phase, segmented per processor.
    read_results: MsgArena<ReadResult>,
    /// The previous phase's arena, recycled by swapping (see
    /// [`crate::bsp::BspMachine`]'s double-buffered inboxes).
    spare: MsgArena<ReadResult>,
    /// Per-processor request contexts, reset (capacity kept) every phase.
    ctxs: Vec<QsmCtx>,
    /// Per-processor resolved injection slots, refilled every phase.
    resolved: Vec<Vec<u64>>,
    /// Per-processor precomputed fates (hooked machines only).
    fates: Vec<Vec<Fate>>,
    /// Stalled processors this phase (read only behind `hooked`); cleared
    /// by an O(1) epoch bump and filled through
    /// [`DeliveryHook::fill_fault_masks`].
    stalled: FrontierMask,
    /// Crash-stopped processors this phase.
    crashed: FrontierMask,
    /// Counting-pass scratch: per-processor result segment sizes.
    arena_counts: Vec<usize>,
    /// Counting-pass scratch for the active-set path: epoch-stamped, so the
    /// reset is O(1) instead of an O(p) `fill(0)`.
    sparse_arena_counts: EpochCounts,
    /// Contention audit scratch: readers/writers per location.
    readers: Vec<u64>,
    writers: Vec<u64>,
    /// Contention audit scratch for the active-set path: epoch-stamped
    /// per-location tallies, reset in O(1) and walked via their dirty lists.
    sparse_readers: EpochCounts,
    sparse_writers: EpochCounts,
    /// Active-set scratch: the sorted frontier of pids visited this phase,
    /// unloaded from `frontier_mask` in ascending pid order.
    frontier: Vec<Pid>,
    /// Mask twin of `frontier`: declared active set OR-ed word-at-a-time
    /// with the arena's touched mask — insertion is the dedup, iteration
    /// the sort.
    frontier_mask: FrontierMask,
    /// Distinct-address scratch for the per-processor contention audit.
    audit_reads: Vec<Addr>,
    audit_writes: Vec<Addr>,
    /// Write-arbitration scratch: `(addr, pid, value)`.
    pending_writes: Vec<(Addr, Pid, Word)>,
    /// Profile accumulator, snapshot-and-reset every phase.
    builder: ProfileBuilder,
    profiles: Vec<SuperstepProfile>,
    phase: usize,
    sink: Arc<dyn TraceSink>,
    trace_label: String,
    hook: Option<Arc<dyn DeliveryHook>>,
    /// `pending_results[k]` holds read results the memory system will hand
    /// back `k + 1` phases from now (delayed responses, duplicate copies).
    pending_results: VecDeque<Vec<(Pid, ReadResult)>>,
    /// Drained pending-level buffers kept for reuse by `queue_result`.
    pending_pool: Vec<Vec<(Pid, ReadResult)>>,
    fault_stats: FaultStats,
}

impl<S: Send + Sync> QsmMachine<S> {
    /// Create a machine with `params.p` processors and `size` words of
    /// shared memory (zero-initialized).
    ///
    /// The machine captures the process-wide trace sink
    /// ([`pbw_trace::global_sink`]) at construction; use
    /// [`QsmMachine::set_sink`] to attach a specific sink instead.
    pub fn new(params: MachineParams, size: usize, init: impl FnMut(Pid) -> S) -> Self {
        let p = params.p;
        let states: Vec<S> = (0..p).map(init).collect();
        Self {
            params,
            shared: vec![0; size],
            states,
            read_results: MsgArena::new(p),
            spare: MsgArena::new(p),
            ctxs: std::iter::repeat_with(QsmCtx::default).take(p).collect(),
            resolved: vec![Vec::new(); p],
            fates: Vec::new(),
            stalled: FrontierMask::new(p),
            crashed: FrontierMask::new(p),
            arena_counts: vec![0; p],
            sparse_arena_counts: EpochCounts::new(p),
            readers: vec![0; size],
            writers: vec![0; size],
            sparse_readers: EpochCounts::new(size),
            sparse_writers: EpochCounts::new(size),
            frontier: Vec::new(),
            frontier_mask: FrontierMask::new(p),
            audit_reads: Vec::new(),
            audit_writes: Vec::new(),
            pending_writes: Vec::new(),
            builder: ProfileBuilder::new(),
            profiles: Vec::new(),
            phase: 0,
            sink: pbw_trace::global_sink(),
            trace_label: String::new(),
            hook: None,
            pending_results: VecDeque::new(),
            pending_pool: Vec::new(),
            fault_stats: FaultStats::default(),
        }
    }

    /// Attach a trace sink, replacing the one captured at construction.
    pub fn set_sink(&mut self, sink: Arc<dyn TraceSink>) -> &mut Self {
        self.sink = sink;
        self
    }

    /// Attach a fault-injection hook (see [`crate::hook`]).
    ///
    /// QSM fault semantics: a [`Fate::Drop`] discards the request (a read
    /// returns no result — non-receipt is observable — and a write is never
    /// applied); [`Fate::Delay`] holds a read's *response* for `k` extra
    /// phases (the value is still the one read in the request phase — the
    /// memory served the read, the network delayed the reply); a delayed
    /// write is applied on time (the memory system absorbs it in order);
    /// [`Fate::Duplicate`] hands a read result back twice (a duplicated
    /// write is idempotent and treated as normal); [`Fate::Displace`]
    /// shifts the request's injection slot. All fates consume the request's
    /// injection slot and bandwidth.
    ///
    /// Crash-stop semantics ([`DeliveryHook::crashed`]): a crashed
    /// processor's closure is skipped (it issues no requests), its unseen
    /// read results evaporate uncharged (they were already counted
    /// `delivered`), and any delayed response falling due while it is down
    /// is destroyed and charged to the ledger's `crashed` column. Crash
    /// overrides stall — nothing is retained across a crashed phase.
    pub fn set_delivery_hook(&mut self, hook: Arc<dyn DeliveryHook>) -> &mut Self {
        self.hook = Some(hook);
        self
    }

    /// Remove any fault-injection hook (in-flight delayed responses still
    /// arrive on schedule).
    pub fn clear_delivery_hook(&mut self) -> &mut Self {
        self.hook = None;
        self
    }

    /// The running fault ledger (see [`FaultStats`]).
    pub fn fault_stats(&self) -> FaultStats {
        self.fault_stats
    }

    /// Read responses currently held inside the memory system.
    pub fn faults_in_flight(&self) -> u64 {
        self.fault_stats.in_flight
    }

    /// Label stamped on every trace event this machine emits.
    pub fn set_trace_label(&mut self, label: impl Into<String>) -> &mut Self {
        self.trace_label = label.into();
        self
    }

    /// Machine parameters.
    pub fn params(&self) -> MachineParams {
        self.params
    }

    /// The shared memory (for test setup and result extraction — reading it
    /// directly is free and does not perturb cost accounting).
    pub fn shared(&self) -> &[Word] {
        &self.shared
    }

    /// Mutable shared memory (setup only).
    pub fn shared_mut(&mut self) -> &mut [Word] {
        &mut self.shared
    }

    /// Processor states.
    pub fn states(&self) -> &[S] {
        &self.states
    }

    /// Mutable processor states (setup only).
    pub fn states_mut(&mut self) -> &mut [S] {
        &mut self.states
    }

    /// One processor's state.
    pub fn state(&self, pid: Pid) -> &S {
        &self.states[pid]
    }

    /// Profiles of all executed phases.
    pub fn profiles(&self) -> &[SuperstepProfile] {
        &self.profiles
    }

    /// Number of phases executed.
    pub fn phase_index(&self) -> usize {
        self.phase
    }

    /// Total run cost under any cost model.
    pub fn cost(&self, model: &dyn pbw_models::CostModel) -> f64 {
        model.run_cost(&self.profiles)
    }

    /// Execute one phase, panicking on model-rule violations.
    pub fn phase<F>(&mut self, f: F) -> PhaseReport
    where
        F: Fn(Pid, &mut S, &[ReadResult], &mut QsmCtx) + Sync,
    {
        self.try_phase(f)
            .unwrap_or_else(|e| panic!("QSM phase failed: {e}"))
    }

    /// Execute one phase, returning model-rule violations as errors.
    pub fn try_phase<F>(&mut self, f: F) -> Result<PhaseReport, SimError>
    where
        F: Fn(Pid, &mut S, &[ReadResult], &mut QsmCtx) + Sync,
    {
        self.phase_core(None, f)
    }

    /// Execute one phase over an explicit active set, panicking on
    /// model-rule violations. See [`QsmMachine::try_phase_active`].
    pub fn phase_active<F>(&mut self, active: &[Pid], f: F) -> PhaseReport
    where
        F: Fn(Pid, &mut S, &[ReadResult], &mut QsmCtx) + Sync,
    {
        self.try_phase_active(active, f)
            .unwrap_or_else(|e| panic!("QSM phase failed: {e}"))
    }

    /// Execute one phase visiting only the *frontier*: the declared
    /// `active` pids plus every pid still holding undelivered read results
    /// (retained after a stall, or released late by a `Delay`/`Duplicate`
    /// fate). Phase cost is O(frontier + requests) instead of O(p).
    ///
    /// The run is byte-identical to [`QsmMachine::try_phase`] — same
    /// states, shared memory, profiles, fault ledger, and trace events —
    /// provided `f` is a *no-op* for every pid outside `active` whose
    /// result inbox is empty: it must not mutate that pid's state, post
    /// requests, or charge work. The frontier is visited in ascending pid
    /// order, which replays the dense path's canonical serve order, and a
    /// skipped pid contributes only zero-valued observations that cannot
    /// move any profile maximum.
    ///
    /// Two caveats: a machine with a delivery hook consults the stall and
    /// crash masks, filled once per phase via
    /// [`DeliveryHook::fill_fault_masks`] and scanned word-at-a-time —
    /// O(fault-words), not O(p) — and an enabled trace sink materializes
    /// dense per-processor vectors (zeroed rows filled O(frontier);
    /// tracing is the observability path).
    ///
    /// # Panics
    /// Panics if `active` names a pid `>= p`.
    pub fn try_phase_active<F>(&mut self, active: &[Pid], f: F) -> Result<PhaseReport, SimError>
    where
        F: Fn(Pid, &mut S, &[ReadResult], &mut QsmCtx) + Sync,
    {
        self.phase_core(Some(active), f)
    }

    /// Shared phase body: `active = None` is the dense path (all `p`
    /// processors, parallel passes), `Some(pids)` the sparse path
    /// (sequential passes over the sorted frontier).
    fn phase_core<F>(&mut self, active: Option<&[Pid]>, f: F) -> Result<PhaseReport, SimError>
    where
        F: Fn(Pid, &mut S, &[ReadResult], &mut QsmCtx) + Sync,
    {
        let p = self.params.p;
        let size = self.shared.len();
        let step = self.phase as u64;
        // Rotate the arenas: `spare` becomes the read side (last phase's
        // responses), and the arena the previous phase read from is cleared
        // for refill. A rejected phase leaves `read_results` cleared — its
        // in-flight responses are lost but the machine stays runnable.
        std::mem::swap(&mut self.read_results, &mut self.spare);
        self.read_results.clear();

        // A stalled processor skips its closure this phase; its undelivered
        // read results are re-presented next phase. The masks are cleared
        // in O(1) (epoch bumps) and filled in one
        // [`DeliveryHook::fill_fault_masks`] call, so a hook that knows its
        // fault windows in closed form never pays the per-pid O(p) scan.
        // Unhooked machines never read the masks (every use below is
        // guarded by `hooked`).
        let hook = self.hook.clone();
        let hooked = hook.is_some();
        if let Some(h) = &hook {
            self.stalled.clear();
            self.crashed.clear();
            h.fill_fault_masks(step, &mut self.stalled, &mut self.crashed);
        }

        // The frontier: declared-active pids plus every pid with read
        // results to consume (`spare.touched()` — retained or late
        // responses landed there last phase). The mask OR is the dedup and
        // its ascending-pid unload the sort, so every sparse pass replays
        // the dense path's canonical pid order.
        if let Some(declared) = active {
            self.frontier_mask.clear();
            for &pid in declared {
                assert!(
                    pid < p,
                    "active set names processor {pid}, but the machine has {p} processors"
                );
                self.frontier_mask.insert(pid);
            }
            self.frontier_mask.union_with(self.spare.touched());
            self.frontier.clear();
            self.frontier_mask.push_to(&mut self.frontier);
        }

        // Run the frontier's processors, each filling its recycled context.
        match active {
            None => {
                let f = &f;
                let stalled = &self.stalled;
                let crashed = &self.crashed;
                let spare = &self.spare;
                let _: Vec<()> = self
                    .states
                    .par_iter_mut()
                    .zip(self.ctxs.par_iter_mut())
                    .enumerate()
                    .map(|(pid, (state, ctx))| {
                        ctx.reset();
                        if !(hooked && (stalled.contains(pid) || crashed.contains(pid))) {
                            f(pid, state, spare.inbox(pid), ctx);
                        }
                    })
                    .collect();
            }
            Some(_) => {
                // Sequential: the frontier is expected to be far smaller
                // than `p`, and the passes below need its sorted order
                // anyway. Contexts outside the frontier keep stale requests
                // from an earlier phase; no later pass reads them.
                for i in 0..self.frontier.len() {
                    let pid = self.frontier[i];
                    self.ctxs[pid].reset();
                    if !(hooked && (self.stalled.contains(pid) || self.crashed.contains(pid))) {
                        f(
                            pid,
                            &mut self.states[pid],
                            self.spare.inbox(pid),
                            &mut self.ctxs[pid],
                        );
                    }
                }
            }
        }

        // Validate addresses and resolve per-processor injection slots into
        // the recycled slot buffers.
        match active {
            None => {
                for ctx in &self.ctxs {
                    for req in &ctx.requests {
                        let addr = match req {
                            Request::Read { addr, .. } | Request::Write { addr, .. } => *addr,
                        };
                        if addr >= size {
                            return Err(SimError::BadAddress { addr, size });
                        }
                    }
                }
                let validated: Result<Vec<()>, SimError> = self
                    .ctxs
                    .par_iter()
                    .zip(self.resolved.par_iter_mut())
                    .enumerate()
                    .map(|(pid, (ctx, slots))| assign_slots_into(pid, &ctx.requests, slots))
                    .collect();
                validated?;
            }
            Some(_) => {
                for &pid in &self.frontier {
                    for req in &self.ctxs[pid].requests {
                        let addr = match req {
                            Request::Read { addr, .. } | Request::Write { addr, .. } => *addr,
                        };
                        if addr >= size {
                            return Err(SimError::BadAddress { addr, size });
                        }
                    }
                }
                for &pid in &self.frontier {
                    assign_slots_into(pid, &self.ctxs[pid].requests, &mut self.resolved[pid])?;
                }
            }
        }

        // Fates are pure in `(phase, pid, msg_idx, slot)`, so they are
        // *computed* here in a parallel (dense) or frontier-only (sparse)
        // pass; the sequential serve loop below only *applies* them,
        // preserving the fixed order the ledger, pending-result queue, and
        // traces are defined by. Fate buffers outside the frontier go
        // stale; no later pass reads them.
        if let Some(h) = &hook {
            if self.fates.len() != p {
                self.fates.resize_with(p, Vec::new);
            }
            match active {
                None => {
                    let _: Vec<()> = self
                        .resolved
                        .par_iter()
                        .zip(self.fates.par_iter_mut())
                        .enumerate()
                        .map(|(pid, (slots, fates))| {
                            fates.clear();
                            // Every request in a QSM phase belongs to the
                            // requesting processor, so the batch sees one
                            // uniform destination.
                            h.fate_batch(step, pid, BatchDests::Uniform(pid), slots, fates);
                        })
                        .collect();
                }
                Some(_) => {
                    for &pid in &self.frontier {
                        let slots = &self.resolved[pid];
                        let fates = &mut self.fates[pid];
                        fates.clear();
                        h.fate_batch(step, pid, BatchDests::Uniform(pid), slots, fates);
                    }
                }
            }
        }

        // Contention audit: readers and writers per location, counting each
        // processor once per distinct address (the paper counts processors
        // per location). The distinct-address scratch replaces a per-
        // processor `BTreeSet`, so the audit is allocation-free at steady
        // state. The sparse path tallies into epoch-stamped tables, so the
        // audit costs O(frontier requests) rather than O(memory size).
        // Either way every conflict check happens before anything is
        // recorded into the persistent profile builder, so a rejected phase
        // leaves it untouched.
        match active {
            None => {
                self.readers.fill(0);
                self.writers.fill(0);
                for ctx in &self.ctxs {
                    self.audit_reads.clear();
                    self.audit_writes.clear();
                    for req in &ctx.requests {
                        match req {
                            Request::Read { addr, .. } => self.audit_reads.push(*addr),
                            Request::Write { addr, .. } => self.audit_writes.push(*addr),
                        }
                    }
                    self.audit_reads.sort_unstable();
                    self.audit_reads.dedup();
                    self.audit_writes.sort_unstable();
                    self.audit_writes.dedup();
                    for &addr in &self.audit_reads {
                        self.readers[addr] += 1;
                    }
                    for &addr in &self.audit_writes {
                        self.writers[addr] += 1;
                    }
                }
                for addr in 0..size {
                    if self.readers[addr] > 0 && self.writers[addr] > 0 {
                        return Err(SimError::ReadWriteConflict { addr });
                    }
                }
            }
            Some(_) => {
                self.sparse_readers.reset();
                self.sparse_writers.reset();
                for i in 0..self.frontier.len() {
                    let pid = self.frontier[i];
                    self.audit_reads.clear();
                    self.audit_writes.clear();
                    for req in &self.ctxs[pid].requests {
                        match req {
                            Request::Read { addr, .. } => self.audit_reads.push(*addr),
                            Request::Write { addr, .. } => self.audit_writes.push(*addr),
                        }
                    }
                    self.audit_reads.sort_unstable();
                    self.audit_reads.dedup();
                    self.audit_writes.sort_unstable();
                    self.audit_writes.dedup();
                    for &addr in &self.audit_reads {
                        self.sparse_readers.add(addr, 1);
                    }
                    for &addr in &self.audit_writes {
                        self.sparse_writers.add(addr, 1);
                    }
                }
                // The dense scan reports the *lowest* conflicting address;
                // the touched mask already iterates ascending, but keep the
                // explicit minimum on the (cold) conflict path so the
                // equivalence doesn't lean on iteration order.
                let mut conflict: Option<Addr> = None;
                for addr in self.sparse_readers.touched().iter() {
                    if self.sparse_writers.get(addr) > 0 {
                        conflict = Some(conflict.map_or(addr, |c| c.min(addr)));
                    }
                }
                if let Some(addr) = conflict {
                    return Err(SimError::ReadWriteConflict { addr });
                }
            }
        }

        // From here on everything is sequential and deterministic. Borrow
        // the machine's parts individually so the serve loop can fill the
        // arena while queueing pending responses.
        let Self {
            ref params,
            ref mut shared,
            ref mut read_results,
            ref spare,
            ref ctxs,
            ref resolved,
            ref fates,
            ref stalled,
            ref crashed,
            ref mut arena_counts,
            ref mut sparse_arena_counts,
            ref readers,
            ref writers,
            ref sparse_readers,
            ref sparse_writers,
            ref frontier,
            ref mut pending_writes,
            ref mut builder,
            ref mut profiles,
            phase: ref mut phase_idx,
            ref sink,
            ref trace_label,
            ref mut pending_results,
            ref mut pending_pool,
            ref mut fault_stats,
            ..
        } = *self;

        // κ only feeds a maximum, so walking the touched masks (ascending)
        // is equivalent to the dense ascending address scan.
        match active {
            None => {
                for addr in 0..size {
                    let kappa = readers[addr].max(writers[addr]);
                    if kappa > 0 {
                        builder.record_contention(kappa);
                    }
                }
            }
            Some(_) => {
                for addr in sparse_readers.touched().iter() {
                    builder
                        .record_contention(sparse_readers.get(addr).max(sparse_writers.get(addr)));
                }
                for addr in sparse_writers.touched().iter() {
                    if sparse_readers.get(addr) == 0 {
                        builder.record_contention(sparse_writers.get(addr));
                    }
                }
            }
        }

        let mut counters = FaultCounters::default();
        // Responses the memory system is due to release this phase (queued
        // by earlier Delay/Duplicate fates).
        let mut due: Vec<(Pid, ReadResult)> = pending_results.pop_front().unwrap_or_default();

        // Counting pass: exact per-processor response counts (results a
        // stalled processor retains, reads served now by fate, plus due
        // late responses) lay out the arena segments before any result
        // moves. Stalls are whole-processor facts the hook filled into the
        // fault masks, so both paths scan O(stalled-words) rather than O(p)
        // (see `try_phase_active`).
        match active {
            None => {
                arena_counts.fill(0);
                if hooked {
                    // Crash overrides stall: a down processor retains
                    // nothing (its unseen results evaporate, uncharged —
                    // they were already counted delivered).
                    let down = crashed.count() as u64;
                    fault_stats.crash_steps += down;
                    counters.crashed_procs += down;
                    for (leaf, word) in stalled.words() {
                        let live = word & !crashed.word(leaf);
                        let retained = u64::from(live.count_ones());
                        fault_stats.stalled_steps += retained;
                        counters.stalled_procs += retained;
                        let mut bits = live;
                        while bits != 0 {
                            let pid = leaf * 64 + bits.trailing_zeros() as usize;
                            bits &= bits - 1;
                            arena_counts[pid] += spare.len(pid);
                        }
                    }
                }
                for (pid, ctx) in ctxs.iter().enumerate() {
                    for (msg_idx, req) in ctx.requests.iter().enumerate() {
                        if let Request::Read { .. } = req {
                            let fate = if hooked {
                                fates[pid][msg_idx]
                            } else {
                                Fate::Deliver
                            };
                            match fate {
                                Fate::Deliver | Fate::Duplicate | Fate::Displace(_) => {
                                    arena_counts[pid] += 1
                                }
                                Fate::Drop | Fate::Delay(_) => {}
                            }
                        }
                    }
                }
                for &(pid, _) in due.iter() {
                    if !(hooked && crashed.contains(pid)) {
                        arena_counts[pid] += 1;
                    }
                }
                read_results.begin(arena_counts);
            }
            Some(_) => {
                sparse_arena_counts.reset();
                if hooked {
                    let down = crashed.count() as u64;
                    fault_stats.crash_steps += down;
                    counters.crashed_procs += down;
                    for (leaf, word) in stalled.words() {
                        let live = word & !crashed.word(leaf);
                        let retained = u64::from(live.count_ones());
                        fault_stats.stalled_steps += retained;
                        counters.stalled_procs += retained;
                        let mut bits = live;
                        while bits != 0 {
                            let pid = leaf * 64 + bits.trailing_zeros() as usize;
                            bits &= bits - 1;
                            sparse_arena_counts.add(pid, spare.len(pid) as u64);
                        }
                    }
                }
                for &pid in frontier.iter() {
                    for (msg_idx, req) in ctxs[pid].requests.iter().enumerate() {
                        if let Request::Read { .. } = req {
                            let fate = if hooked {
                                fates[pid][msg_idx]
                            } else {
                                Fate::Deliver
                            };
                            match fate {
                                Fate::Deliver | Fate::Duplicate | Fate::Displace(_) => {
                                    sparse_arena_counts.add(pid, 1)
                                }
                                Fate::Drop | Fate::Delay(_) => {}
                            }
                        }
                    }
                }
                for &(pid, _) in due.iter() {
                    if !(hooked && crashed.contains(pid)) {
                        sparse_arena_counts.add(pid, 1);
                    }
                }
                read_results.begin_sparse(sparse_arena_counts);
            }
        }
        // Stalled processors keep their unseen read results (consumed next
        // phase instead); they are retained ahead of this phase's serves.
        if hooked {
            for (leaf, word) in stalled.words() {
                let mut bits = word & !crashed.word(leaf);
                while bits != 0 {
                    let pid = leaf * 64 + bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    for result in spare.inbox(pid) {
                        read_results.place(pid, *result);
                    }
                }
            }
        }

        // Serve reads against the pre-phase memory; collect writes into
        // (addr, pid, value) for min-pid arbitration per address.
        pending_writes.clear();
        let (mut total_reads, total_writes) = match active {
            None => serve_pass(
                0..p,
                ctxs,
                resolved,
                fates,
                hooked,
                shared,
                read_results,
                pending_writes,
                builder,
                pending_results,
                pending_pool,
                fault_stats,
                &mut counters,
            ),
            Some(_) => serve_pass(
                frontier.iter().copied(),
                ctxs,
                resolved,
                fates,
                hooked,
                shared,
                read_results,
                pending_writes,
                builder,
                pending_results,
                pending_pool,
                fault_stats,
                &mut counters,
            ),
        };
        // Late responses land after this phase's on-time serves. A response
        // falling due while its processor is down dies in the network,
        // charged to the crash column.
        for (pid, result) in due.drain(..) {
            fault_stats.in_flight -= 1;
            if hooked && crashed.contains(pid) {
                fault_stats.crashed += 1;
                counters.crashed += 1;
                continue;
            }
            read_results.place(pid, result);
            fault_stats.delivered += 1;
            counters.late_arrivals += 1;
            total_reads += 1;
        }
        if due.capacity() > 0 && pending_pool.len() < RESULT_POOL_CAP {
            pending_pool.push(due);
        }
        read_results.finish();

        // Arbitrary-rule write resolution: deterministic min-pid winner.
        // Sort by (addr, pid) and keep the first writer per address.
        pending_writes.sort_unstable_by_key(|&(addr, pid, _)| (addr, pid));
        let mut last_addr = usize::MAX;
        for &(addr, _pid, value) in pending_writes.iter() {
            if addr != last_addr {
                shared[addr] = value;
                last_addr = addr;
            }
        }

        let profile = builder.snapshot_reset();
        if sink.enabled() {
            // The trace contract is dense per-processor vectors; the sparse
            // path fills zeroed rows from the frontier / touched mask, so
            // beyond the unavoidable O(p) allocation the fill itself is
            // O(frontier).
            let per_proc_sent: Vec<u64> = match active {
                None => ctxs
                    .iter()
                    .map(|ctx| {
                        let (r_i, w_i) = ctx.counts();
                        r_i + w_i
                    })
                    .collect(),
                Some(_) => {
                    let mut sent = vec![0u64; p];
                    for &pid in frontier.iter() {
                        let (r_i, w_i) = ctxs[pid].counts();
                        sent[pid] = r_i + w_i;
                    }
                    sent
                }
            };
            let per_proc_recv: Vec<u64> = match active {
                None => (0..p).map(|d| read_results.len(d) as u64).collect(),
                Some(_) => {
                    // O(touched) fill of the dense-by-contract row: only
                    // pids with live arena segments can hold results.
                    let mut recv = vec![0u64; p];
                    for pid in read_results.touched().iter() {
                        recv[pid] = read_results.len(pid) as u64;
                    }
                    recv
                }
            };
            let max_mult = match active {
                None => crate::max_slot_multiplicity(resolved, 0..p),
                Some(_) => crate::max_slot_multiplicity(resolved, frontier.iter().copied()),
            };
            let mut ev = TraceEvent::for_superstep(
                TraceSource::Qsm,
                trace_label.clone(),
                step,
                *params,
                profile.clone(),
                per_proc_sent,
                per_proc_recv,
                max_mult,
                total_reads + total_writes,
            );
            if hooked {
                ev = ev.with_faults(counters);
            }
            sink.record(ev);
        }
        profiles.push(profile.clone());
        *phase_idx += 1;
        Ok(PhaseReport {
            profile,
            reads: total_reads,
            writes: total_writes,
        })
    }
}

/// The sequential serve loop, shared by both execution paths: visit `pids`
/// in order, record each context's memory-op and work observations, then
/// apply each request's (precomputed) fate — serving reads against the
/// pre-phase memory and collecting writes for arbitration. Returns
/// `(reads_served_on_time, writes_collected)`.
///
/// Monomorphized per iterator type: the dense instantiation (`0..p`)
/// compiles to the loop the dense engine always ran, the sparse one walks
/// only the frontier. A pid outside the frontier issued no requests, so
/// skipping it drops only `record_memory_ops(0, 0)` / `record_work(0)`
/// observations, which cannot move any profile maximum.
#[allow(clippy::too_many_arguments)]
fn serve_pass(
    pids: impl Iterator<Item = Pid>,
    ctxs: &[QsmCtx],
    resolved: &[Vec<u64>],
    fates: &[Vec<Fate>],
    hooked: bool,
    shared: &[Word],
    read_results: &mut MsgArena<ReadResult>,
    pending_writes: &mut Vec<(Addr, Pid, Word)>,
    builder: &mut ProfileBuilder,
    pending_results: &mut VecDeque<Vec<(Pid, ReadResult)>>,
    pending_pool: &mut Vec<Vec<(Pid, ReadResult)>>,
    fault_stats: &mut FaultStats,
    counters: &mut FaultCounters,
) -> (u64, u64) {
    let mut total_reads = 0u64;
    let mut total_writes = 0u64;
    for pid in pids {
        let ctx = &ctxs[pid];
        let (r_i, w_i) = ctx.counts();
        builder.record_memory_ops(r_i, w_i);
        builder.record_work(ctx.work);
        for (msg_idx, (req, &slot)) in ctx.requests.iter().zip(resolved[pid].iter()).enumerate() {
            let fate = if hooked {
                fates[pid][msg_idx]
            } else {
                Fate::Deliver
            };
            fault_stats.injected += 1;
            let charged_slot = match fate {
                Fate::Displace(d) => {
                    fault_stats.displaced += 1;
                    counters.displaced += 1;
                    slot + d
                }
                _ => slot,
            };
            builder.record_injection(charged_slot);
            if fate == Fate::Drop {
                fault_stats.dropped += 1;
                counters.dropped += 1;
                continue;
            }
            match req {
                Request::Read { addr, .. } => {
                    let result = ReadResult {
                        addr: *addr,
                        value: shared[*addr],
                    };
                    match fate {
                        Fate::Delay(k) => {
                            queue_result(
                                pending_results,
                                pending_pool,
                                fault_stats,
                                k.max(1),
                                pid,
                                result,
                            );
                            fault_stats.delayed += 1;
                            counters.delayed += 1;
                        }
                        Fate::Duplicate => {
                            read_results.place(pid, result);
                            fault_stats.delivered += 1;
                            queue_result(
                                pending_results,
                                pending_pool,
                                fault_stats,
                                1,
                                pid,
                                result,
                            );
                            fault_stats.duplicated += 1;
                            counters.duplicated += 1;
                            total_reads += 1;
                        }
                        _ => {
                            read_results.place(pid, result);
                            fault_stats.delivered += 1;
                            total_reads += 1;
                        }
                    }
                }
                Request::Write { addr, value, .. } => {
                    // Delayed/duplicated writes are absorbed in order by
                    // the memory system (see
                    // [`QsmMachine::set_delivery_hook`]).
                    pending_writes.push((*addr, pid, *value));
                    fault_stats.delivered += 1;
                    total_writes += 1;
                }
            }
        }
    }
    (total_reads, total_writes)
}

/// How many drained pending-response buffers a machine keeps for reuse.
const RESULT_POOL_CAP: usize = 16;

/// Queue a read response for release `k ≥ 1` phases from now, reusing
/// drained level buffers from `pool`.
fn queue_result(
    pending_results: &mut VecDeque<Vec<(Pid, ReadResult)>>,
    pool: &mut Vec<Vec<(Pid, ReadResult)>>,
    fault_stats: &mut FaultStats,
    k: u32,
    pid: Pid,
    result: ReadResult,
) {
    let idx = (k.max(1) - 1) as usize;
    while pending_results.len() <= idx {
        pending_results.push_back(pool.pop().unwrap_or_default());
    }
    pending_results[idx].push((pid, result));
    fault_stats.in_flight += 1;
}

/// Assign injection slots into the recycled buffer `out`: explicit slots
/// honoured, autos fill earliest free. All-auto phases (the common case) are
/// allocation-free — an empty `BTreeSet` never allocates.
fn assign_slots_into(pid: Pid, requests: &[Request], out: &mut Vec<u64>) -> Result<(), SimError> {
    let slot_of = |req: &Request| match req {
        Request::Read { slot, .. } | Request::Write { slot, .. } => *slot,
    };
    let mut explicit: BTreeSet<u64> = BTreeSet::new();
    for req in requests {
        if let Some(s) = slot_of(req) {
            if !explicit.insert(s) {
                out.clear();
                return Err(SimError::DuplicateSlot { pid, slot: s });
            }
        }
    }
    let mut next_auto = 0u64;
    out.clear();
    out.reserve(requests.len());
    for req in requests {
        match slot_of(req) {
            Some(v) => out.push(v),
            None => {
                while explicit.contains(&next_auto) {
                    next_auto += 1;
                }
                out.push(next_auto);
                next_auto += 1;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hook::DeliveryCtx;
    use pbw_models::{PenaltyFn, QsmG, QsmM};

    fn params(p: usize) -> MachineParams {
        MachineParams::from_gap(p, 4, 8)
    }

    #[test]
    fn read_values_arrive_next_phase() {
        let mut m: QsmMachine<Word> = QsmMachine::new(params(4), 16, |_| -1);
        m.shared_mut()[3] = 42;
        m.phase(|_pid, _s, _res, ctx| ctx.read(3));
        m.phase(|_pid, s, res, _ctx| {
            assert_eq!(res.len(), 1);
            assert_eq!(res[0], ReadResult { addr: 3, value: 42 });
            *s = res[0].value;
        });
        assert_eq!(m.states(), &[42, 42, 42, 42]);
    }

    #[test]
    fn concurrent_reads_meter_contention() {
        let mut m: QsmMachine<()> = QsmMachine::new(params(4), 8, |_| ());
        m.phase(|_pid, _s, _res, ctx| ctx.read(0));
        assert_eq!(m.profiles()[0].max_contention, 4);
    }

    #[test]
    fn exclusive_reads_have_unit_contention() {
        let mut m: QsmMachine<()> = QsmMachine::new(params(4), 8, |_| ());
        m.phase(|pid, _s, _res, ctx| ctx.read(pid));
        assert_eq!(m.profiles()[0].max_contention, 1);
    }

    #[test]
    fn min_pid_wins_concurrent_write() {
        let mut m: QsmMachine<()> = QsmMachine::new(params(4), 8, |_| ());
        m.phase(|pid, _s, _res, ctx| ctx.write(5, pid as Word + 100));
        assert_eq!(m.shared()[5], 100);
        assert_eq!(m.profiles()[0].max_contention, 4);
    }

    #[test]
    fn read_write_conflict_rejected() {
        let mut m: QsmMachine<()> = QsmMachine::new(params(4), 8, |_| ());
        let err = m
            .try_phase(|pid, _s, _res, ctx| {
                if pid == 0 {
                    ctx.read(2);
                } else {
                    ctx.write(2, 9);
                }
            })
            .unwrap_err();
        assert_eq!(err, SimError::ReadWriteConflict { addr: 2 });
    }

    #[test]
    fn bad_address_rejected() {
        let mut m: QsmMachine<()> = QsmMachine::new(params(4), 8, |_| ());
        let err = m.try_phase(|_pid, _s, _res, ctx| ctx.read(8)).unwrap_err();
        assert_eq!(err, SimError::BadAddress { addr: 8, size: 8 });
    }

    #[test]
    fn reads_see_pre_phase_values() {
        // Reads and writes in the same phase must touch different locations;
        // a read concurrent with a write to a *different* location sees the
        // old value of its own location trivially. Check sequencing across
        // phases instead: a write in phase 1 is visible to a phase-2 read.
        let mut m: QsmMachine<Word> = QsmMachine::new(MachineParams::from_gap(2, 2, 8), 4, |_| 0);
        m.phase(|pid, _s, _res, ctx| {
            if pid == 0 {
                ctx.write(1, 7);
            }
        });
        m.phase(|pid, _s, _res, ctx| {
            if pid == 1 {
                ctx.read(1);
            }
        });
        m.phase(|pid, s, res, _ctx| {
            if pid == 1 {
                *s = res[0].value;
            }
        });
        assert_eq!(*m.state(1), 7);
    }

    #[test]
    fn qsm_g_prices_pipelined_requests() {
        let mut m: QsmMachine<()> = QsmMachine::new(params(4), 64, |_| ());
        m.phase(|pid, _s, _res, ctx| {
            for k in 0..6 {
                ctx.read(pid * 6 + k);
            }
        });
        // h = 6, g = 4 → phase cost 24 under QSM(g), κ = 1.
        let qsm_g = QsmG { g: 4 };
        assert_eq!(m.cost(&qsm_g), 24.0);
        // QSM(m) with m = 1: injections are 4 per step for 6 steps →
        // c_m = Σ f(4) with m=1 exp = 6·e^3.
        let qsm_m = QsmM {
            m: 1,
            penalty: PenaltyFn::Exponential,
        };
        let expect = 6.0 * (3.0f64).exp();
        assert!((m.cost(&qsm_m) - expect).abs() < 1e-9);
    }

    #[test]
    fn explicit_slots_stagger_requests() {
        let p = 8;
        let mut m: QsmMachine<()> = QsmMachine::new(params(p), 64, |_| ());
        // Stagger: processor i injects its single read at slot i — never more
        // than 1 request per machine step.
        m.phase(|pid, _s, _res, ctx| ctx.read_at(pid, pid as u64));
        let prof = &m.profiles()[0];
        assert_eq!(prof.injections, vec![1; p]);
        let qsm_m = QsmM {
            m: 1,
            penalty: PenaltyFn::Exponential,
        };
        assert_eq!(m.cost(&qsm_m), 8.0); // c_m = 8 slots · charge 1
    }

    #[test]
    fn duplicate_slot_rejected() {
        let mut m: QsmMachine<()> = QsmMachine::new(params(4), 8, |_| ());
        let err = m
            .try_phase(|pid, _s, _res, ctx| {
                if pid == 1 {
                    ctx.read_at(0, 3);
                    ctx.write_at(1, 5, 3);
                }
            })
            .unwrap_err();
        assert_eq!(err, SimError::DuplicateSlot { pid: 1, slot: 3 });
    }

    #[test]
    fn repeat_read_same_location_counts_once_for_contention() {
        let mut m: QsmMachine<()> = QsmMachine::new(params(4), 8, |_| ());
        m.phase(|pid, _s, _res, ctx| {
            if pid == 0 {
                ctx.read(0);
                ctx.read(0);
            }
        });
        // One processor reading a location twice is contention 1 (paper
        // counts processors), though h = 2.
        assert_eq!(m.profiles()[0].max_contention, 1);
        assert_eq!(m.profiles()[0].max_reads, 2);
    }

    #[test]
    fn trace_events_cover_phases() {
        use pbw_trace::RecordingSink;
        let sink = Arc::new(RecordingSink::new());
        let mut m: QsmMachine<Word> = QsmMachine::new(params(4), 16, |_| 0);
        m.set_sink(sink.clone()).set_trace_label("neighbour-read");
        m.phase(|pid, _s, _res, ctx| ctx.write(pid, pid as Word));
        m.phase(|pid, _s, _res, ctx| ctx.read((pid + 1) % 4));
        let events = sink.take();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].source, TraceSource::Qsm);
        assert_eq!(events[0].superstep, 0);
        assert_eq!(events[0].per_proc_sent, vec![1, 1, 1, 1]);
        assert_eq!(events[0].delivered, 4);
        // Reads issued in phase 1 are delivered during that phase's serve
        // loop, so the phase-1 event sees 4 read results.
        assert_eq!(events[1].per_proc_recv, vec![1, 1, 1, 1]);
        assert_eq!(events[1].profile, m.profiles()[1]);
        assert_eq!(events[1].max_proc_slot_injections, 1);
    }

    struct DropReads;
    impl crate::hook::DeliveryHook for DropReads {
        fn fate(&self, _ctx: &DeliveryCtx) -> Fate {
            Fate::Drop
        }
    }

    #[test]
    fn dropped_request_returns_no_result_and_writes_nothing() {
        let mut m: QsmMachine<Word> = QsmMachine::new(params(4), 8, |_| -1);
        m.shared_mut()[0] = 42;
        m.set_delivery_hook(Arc::new(DropReads));
        let r = m.phase(|pid, _s, _res, ctx| {
            if pid == 0 {
                ctx.read(0);
            } else {
                ctx.write(pid, 7);
            }
        });
        assert_eq!((r.reads, r.writes), (0, 0));
        // All four requests still consumed injection slots.
        assert_eq!(m.profiles()[0].injections.iter().sum::<u64>(), 4);
        m.phase(|pid, _s, res, _ctx| {
            if pid == 0 {
                assert!(
                    res.is_empty(),
                    "dropped read must be observable as non-receipt"
                );
            }
        });
        assert_eq!(&m.shared()[1..4], &[0, 0, 0]);
        let stats = m.fault_stats();
        assert_eq!(stats.dropped, 4);
        assert!(stats.conserved());
    }

    struct DelayReads(u32);
    impl crate::hook::DeliveryHook for DelayReads {
        fn fate(&self, _ctx: &DeliveryCtx) -> Fate {
            Fate::Delay(self.0)
        }
    }

    #[test]
    fn delayed_read_response_carries_the_request_phase_value() {
        let mut m: QsmMachine<Word> = QsmMachine::new(params(4), 8, |_| 0);
        m.shared_mut()[3] = 10;
        m.set_delivery_hook(Arc::new(DelayReads(1)));
        m.phase(|pid, _s, _res, ctx| {
            if pid == 0 {
                ctx.read(3);
            }
        });
        assert_eq!(m.faults_in_flight(), 1);
        // Overwrite the location while the response is in flight: the reply
        // must still carry the value served at request time.
        m.phase(|pid, _s, res, ctx| {
            assert!(res.is_empty());
            if pid == 1 {
                ctx.write(3, 99);
            }
        });
        // Delay(1) = one extra phase: requested in phase 0, normally seen in
        // phase 1, actually seen in phase 2.
        m.phase(|pid, s, res, _ctx| {
            if pid == 0 {
                assert_eq!(res, &[ReadResult { addr: 3, value: 10 }]);
                *s = res[0].value;
            }
        });
        assert_eq!(*m.state(0), 10);
        assert_eq!(m.faults_in_flight(), 0);
        assert!(m.fault_stats().conserved());
    }

    #[test]
    fn stalled_qsm_processor_keeps_its_read_results() {
        struct StallP0Phase1;
        impl crate::hook::DeliveryHook for StallP0Phase1 {
            fn stalled(&self, phase: u64, pid: Pid) -> bool {
                pid == 0 && phase == 1
            }
        }
        let mut m: QsmMachine<Word> = QsmMachine::new(params(4), 8, |_| 0);
        m.shared_mut()[5] = 77;
        m.set_delivery_hook(Arc::new(StallP0Phase1));
        m.phase(|pid, _s, _res, ctx| {
            if pid == 0 {
                ctx.read(5);
            }
        });
        // Phase 1: pid 0 is stalled and never sees the result…
        m.phase(|pid, s, res, _ctx| {
            if pid == 0 {
                *s = res.first().map_or(-1, |r| r.value);
            }
        });
        assert_eq!(*m.state(0), 0, "stalled closure must not run");
        // …phase 2: the retained result is finally consumed.
        m.phase(|pid, s, res, _ctx| {
            if pid == 0 {
                *s = res[0].value;
            }
        });
        assert_eq!(*m.state(0), 77);
        assert_eq!(m.fault_stats().stalled_steps, 1);
    }

    #[test]
    fn crashed_qsm_processor_issues_nothing_and_loses_unseen_results() {
        struct CrashP0Phase1;
        impl crate::hook::DeliveryHook for CrashP0Phase1 {
            fn crashed(&self, phase: u64, pid: Pid) -> bool {
                pid == 0 && phase == 1
            }
        }
        let mut m: QsmMachine<Word> = QsmMachine::new(params(4), 8, |_| 0);
        m.shared_mut()[5] = 77;
        m.set_delivery_hook(Arc::new(CrashP0Phase1));
        m.phase(|pid, _s, _res, ctx| {
            if pid == 0 {
                ctx.read(5);
            }
        });
        // Phase 1: pid 0 is down. Its unseen result evaporates (no stall-
        // style retention) and its closure never runs.
        m.phase(|pid, s, res, ctx| {
            if pid == 0 {
                *s = res.first().map_or(-1, |r| r.value);
                ctx.read(5);
            }
        });
        assert_eq!(*m.state(0), 0, "crashed closure must not run");
        // Phase 2: pid 0 is back with nothing — the result is gone for good
        // and no request was issued on its behalf while down.
        m.phase(|pid, s, res, _ctx| {
            if pid == 0 {
                *s = res.first().map_or(-1, |r| r.value);
            }
        });
        assert_eq!(*m.state(0), -1);
        let stats = m.fault_stats();
        assert_eq!(stats.crash_steps, 1);
        assert_eq!(stats.crashed, 0, "evaporated results are not re-charged");
        assert_eq!((stats.injected, stats.delivered), (1, 1));
        assert!(stats.conserved(), "ledger {stats:?}");
    }

    #[test]
    fn delayed_response_due_at_a_crashed_processor_is_destroyed() {
        struct DelayIntoCrash;
        impl crate::hook::DeliveryHook for DelayIntoCrash {
            fn fate(&self, ctx: &DeliveryCtx) -> Fate {
                if ctx.superstep == 0 {
                    Fate::Delay(1)
                } else {
                    Fate::Deliver
                }
            }
            fn crashed(&self, phase: u64, pid: Pid) -> bool {
                // Phase 1 is where the Delay(1) response is released back
                // to pid 0 — the custody-transfer point.
                pid == 0 && phase == 1
            }
        }
        let mut m: QsmMachine<Word> = QsmMachine::new(params(4), 8, |_| 0);
        m.shared_mut()[3] = 10;
        m.set_delivery_hook(Arc::new(DelayIntoCrash));
        m.phase(|pid, _s, _res, ctx| {
            if pid == 0 {
                ctx.read(3);
            }
        });
        assert_eq!(m.faults_in_flight(), 1);
        m.phase(|_pid, _s, _res, _ctx| {});
        // The delayed response fell due exactly while pid 0 was down: it is
        // destroyed in the network and charged crashed.
        m.phase(|pid, s, res, _ctx| {
            if pid == 0 {
                *s = res.first().map_or(-1, |r| r.value);
            }
        });
        m.phase(|pid, s, res, _ctx| {
            if pid == 0 && !res.is_empty() {
                *s = res[0].value;
            }
        });
        // Phase 2 observed an empty result inbox (the map_or default):
        // the destroyed response never arrived, and never will.
        assert_eq!(*m.state(0), -1, "destroyed response must never arrive");
        let stats = m.fault_stats();
        assert_eq!(stats.crashed, 1);
        assert_eq!(stats.in_flight, 0);
        assert_eq!(stats.delivered, 0);
        assert!(stats.conserved(), "ledger {stats:?}");
    }

    #[test]
    fn sparse_and_dense_qsm_agree_under_crashes() {
        struct CrashP1;
        impl crate::hook::DeliveryHook for CrashP1 {
            fn crashed(&self, phase: u64, pid: Pid) -> bool {
                pid == 1 && phase == 1
            }
        }
        let actors = [1usize, 5];
        let program = |pid: Pid, s: &mut Word, res: &[ReadResult], ctx: &mut QsmCtx, ph: usize| {
            if let Some(r) = res.first() {
                *s = r.value;
            }
            if actors.contains(&pid) && ph < 2 {
                ctx.read(pid);
            }
        };
        let mut dense: QsmMachine<Word> = QsmMachine::new(params(8), 16, |_| 0);
        dense.set_delivery_hook(Arc::new(CrashP1));
        dense.shared_mut()[1] = 11;
        dense.shared_mut()[5] = 55;
        let mut sparse: QsmMachine<Word> = QsmMachine::new(params(8), 16, |_| 0);
        sparse.set_delivery_hook(Arc::new(CrashP1));
        sparse.shared_mut()[1] = 11;
        sparse.shared_mut()[5] = 55;
        for ph in 0..3 {
            dense.phase(|pid, s, res, ctx| program(pid, s, res, ctx, ph));
            sparse.phase_active(&actors, |pid, s, res, ctx| program(pid, s, res, ctx, ph));
        }
        assert_eq!(dense.states(), sparse.states());
        assert_eq!(dense.profiles(), sparse.profiles());
        assert_eq!(dense.fault_stats(), sparse.fault_stats());
    }

    #[test]
    fn work_charges_take_max() {
        let mut m: QsmMachine<()> = QsmMachine::new(params(4), 8, |_| ());
        m.phase(|pid, _s, _res, ctx| ctx.charge_work(pid as u64));
        assert_eq!(m.profiles()[0].max_work, 3);
    }

    #[test]
    fn active_phase_matches_dense_phase() {
        use pbw_trace::RecordingSink;
        // The same 3-phase program (two writers, then a cross-read, then a
        // consume) run dense and sparse must agree on everything observable.
        let writers = [1usize, 5];
        let program = |pid: Pid, s: &mut Word, res: &[ReadResult], ctx: &mut QsmCtx, ph: usize| {
            if !writers.contains(&pid) {
                return;
            }
            match ph {
                0 => ctx.write(pid, 10 * pid as Word),
                1 => ctx.read(writers[usize::from(pid == writers[0])]),
                _ => *s = res[0].value,
            }
        };
        let dense_sink = Arc::new(RecordingSink::new());
        let mut dense: QsmMachine<Word> = QsmMachine::new(params(8), 16, |_| 0);
        dense.set_sink(dense_sink.clone());
        let sparse_sink = Arc::new(RecordingSink::new());
        let mut sparse: QsmMachine<Word> = QsmMachine::new(params(8), 16, |_| 0);
        sparse.set_sink(sparse_sink.clone());
        for ph in 0..3 {
            dense.phase(|pid, s, res, ctx| program(pid, s, res, ctx, ph));
            sparse.phase_active(&writers, |pid, s, res, ctx| program(pid, s, res, ctx, ph));
        }
        assert_eq!(dense.states(), sparse.states());
        assert_eq!(dense.shared(), sparse.shared());
        assert_eq!(dense.profiles(), sparse.profiles());
        assert_eq!(dense_sink.take(), sparse_sink.take());
    }

    #[test]
    fn active_phase_keeps_result_holders_in_the_frontier() {
        // pid 2 reads in phase 0; the next phase declares *nobody* active,
        // yet pid 2 must still run (it holds an undelivered result).
        let mut m: QsmMachine<Word> = QsmMachine::new(params(8), 8, |_| -1);
        m.shared_mut()[4] = 33;
        m.phase_active(&[2], |pid, _s, _res, ctx| {
            if pid == 2 {
                ctx.read(4);
            }
        });
        m.phase_active(&[], |_pid, s, res, _ctx| {
            if let Some(r) = res.first() {
                *s = r.value;
            }
        });
        let mut want = vec![-1; 8];
        want[2] = 33;
        assert_eq!(m.states(), want.as_slice());
    }

    #[test]
    fn active_phase_reports_sparse_conflicts_like_dense() {
        let body = |pid: Pid, _s: &mut (), _res: &[ReadResult], ctx: &mut QsmCtx| match pid {
            1 => {
                ctx.read(6);
                ctx.write(3, 1);
            }
            5 => {
                ctx.write(6, 9);
                ctx.read(3);
            }
            _ => {}
        };
        let mut dense: QsmMachine<()> = QsmMachine::new(params(8), 8, |_| ());
        let mut sparse: QsmMachine<()> = QsmMachine::new(params(8), 8, |_| ());
        let want = dense.try_phase(body).unwrap_err();
        let got = sparse.try_phase_active(&[1, 5], body).unwrap_err();
        // Both paths must report the lowest conflicting address.
        assert_eq!(want, SimError::ReadWriteConflict { addr: 3 });
        assert_eq!(got, want);
    }

    #[test]
    #[should_panic(expected = "active set names processor")]
    fn active_phase_rejects_out_of_range_pid() {
        let mut m: QsmMachine<()> = QsmMachine::new(params(4), 8, |_| ());
        m.phase_active(&[4], |_pid, _s, _res, _ctx| {});
    }
}
