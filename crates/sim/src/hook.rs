//! Pre-delivery fault hooks.
//!
//! The engines consult an optional [`DeliveryHook`] at the communication
//! boundary of every superstep (BSP) or phase (QSM): once per in-flight
//! message, *after* slot resolution and model-rule validation but *before*
//! the payload lands in a destination inbox. The hook decides each message's
//! [`Fate`] and can stall whole processors for a step. Implementations live
//! outside this crate (see `pbw-faults` for the seeded plan used by the
//! experiments); the engines only define the contract:
//!
//! * **Cost accounting.** Every injected message consumes send bandwidth and
//!   an injection slot in the superstep it was posted, whatever its fate —
//!   the network accepted it; the models price the attempt. Receive
//!   bandwidth is charged in the superstep a payload actually arrives, so a
//!   delayed message shifts `max_received` (and any resulting overload
//!   penalty) to the arrival superstep.
//! * **Determinism.** `fate` must be a pure function of the hook's
//!   pre-superstep state and the presented [`DeliveryCtx`] (and `stalled`
//!   pure in `(superstep, pid)`): the engines *compute* all fates for a
//!   boundary in a parallel pass, in unspecified thread order, then *apply*
//!   them in the fixed delivery order (source pid, then send order). A pure
//!   hook therefore yields a bit-identical run at every thread count —
//!   which the cross-thread-count conformance suite checks by comparing
//!   traces byte-for-byte.
//! * **Conservation.** The engine tracks [`FaultStats`] such that
//!   `injected + duplicated + restored == delivered + dropped + crashed +
//!   in_flight` at every superstep boundary (checked by the property suite
//!   and enumerated exhaustively by `pbw-check`). The `crashed` and
//!   `restored` columns exist so crash-stop failures and checkpoint
//!   rollback stay inside the same balance sheet instead of silently
//!   resetting it.

use crate::Pid;

/// What happens to one in-flight message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fate {
    /// Deliver normally at the end of this superstep.
    Deliver,
    /// The network loses the message: bandwidth is consumed, nothing
    /// arrives. Recovery (if any) is a protocol concern, not the engine's.
    Drop,
    /// Deliver now *and* deliver a spurious copy one superstep later.
    Duplicate,
    /// Deliver `k ≥ 1` supersteps late (a `Delay(0)` is treated as
    /// `Delay(1)`). The payload stays in flight until it arrives.
    Delay(u32),
    /// Deliver now, but the injection lands `d` slots later than the
    /// program asked — the router displaced it within the superstep,
    /// reshaping the machine-wide `m_t` histogram the penalty prices.
    Displace(u64),
}

/// Identifies one message presented to a [`DeliveryHook`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeliveryCtx {
    /// Superstep (BSP) or phase (QSM) index the message was posted in.
    pub superstep: u64,
    /// Sending processor.
    pub src: Pid,
    /// Destination processor (for QSM: the requesting processor).
    pub dest: Pid,
    /// Send order within `src`'s outbox this superstep.
    pub msg_idx: usize,
    /// Resolved injection slot.
    pub slot: u64,
}

/// Destination lane for one sender's batched fate computation.
///
/// The engines keep destinations as a flat `u64` lane alongside each outbox
/// (BSP) or know them to be constant (QSM, where every message in a phase
/// belongs to the requesting processor) — this enum lets one dyn-safe
/// [`DeliveryHook::fate_batch`] signature serve both without materializing
/// a per-message context.
#[derive(Debug, Clone, Copy)]
pub enum BatchDests<'a> {
    /// Per-message destinations, indexed by `msg_idx`.
    Lane(&'a [Pid]),
    /// Every message in the batch goes to the same processor.
    Uniform(Pid),
}

impl BatchDests<'_> {
    /// Destination of message `msg_idx`.
    #[inline]
    pub fn get(&self, msg_idx: usize) -> Pid {
        match self {
            BatchDests::Lane(lane) => lane[msg_idx],
            BatchDests::Uniform(pid) => *pid,
        }
    }
}

/// A fault model consulted at every delivery boundary.
///
/// Implementations must be deterministic functions of their own state and
/// the presented context — the engines guarantee a fixed consultation order
/// so that equal hooks produce bit-identical runs.
pub trait DeliveryHook: Send + Sync {
    /// Decide the fate of one message. The default delivers everything.
    fn fate(&self, ctx: &DeliveryCtx) -> Fate {
        let _ = ctx;
        Fate::Deliver
    }

    /// Decide the fates of one sender's whole outbox for one boundary:
    /// message `i` was sent by `src` to `dests.get(i)` into resolved slot
    /// `slots[i]`. Appends exactly `slots.len()` fates to `out` (which the
    /// engine has cleared), **bit-identical** to calling [`Self::fate`] once
    /// per message — the provided implementation does exactly that, and any
    /// override (see `FaultPlan` in `pbw-faults` for the batched seeded
    /// plan) must preserve the equivalence, which the engines' conformance
    /// suite and the kernel bit-equality proptests pin.
    fn fate_batch(
        &self,
        superstep: u64,
        src: Pid,
        dests: BatchDests<'_>,
        slots: &[u64],
        out: &mut Vec<Fate>,
    ) {
        out.reserve(slots.len());
        for (msg_idx, &slot) in slots.iter().enumerate() {
            out.push(self.fate(&DeliveryCtx {
                superstep,
                src,
                dest: dests.get(msg_idx),
                msg_idx,
                slot,
            }));
        }
    }

    /// Whether `pid` is stalled for the whole of `superstep`: its closure
    /// does not run and its inbox is re-presented next superstep. Messages
    /// addressed *to* a stalled processor still arrive.
    fn stalled(&self, superstep: u64, pid: Pid) -> bool {
        let _ = (superstep, pid);
        false
    }

    /// Whether `pid` is crash-stopped for the whole of `superstep`. A
    /// crashed processor is strictly worse than a stalled one: its closure
    /// does not run, it sends nothing, and any payload whose custody would
    /// transfer to it during the superstep (fresh delivery, duplicate copy,
    /// late arrival, or an inbox retained across a simultaneous stall) is
    /// *destroyed* and charged to [`FaultStats::crashed`]. Like `stalled`,
    /// this must be pure in `(superstep, pid)`.
    fn crashed(&self, superstep: u64, pid: Pid) -> bool {
        let _ = (superstep, pid);
        false
    }

    /// Fill the superstep's whole-processor fault sets in one call: set bit
    /// `pid` of `stalled`/`crashed` exactly when [`Self::stalled`] /
    /// [`Self::crashed`] returns true for `(superstep, pid)`. The engines
    /// clear both masks (O(1) epoch bumps) before calling, once per
    /// superstep, and read them word-wise everywhere downstream.
    ///
    /// The provided implementation queries every pid — O(p). Hooks that
    /// know their fault sets in closed form should override it: `FaultPlan`
    /// in `pbw-faults` inserts scripted stall/crash windows directly,
    /// O(windows) instead of O(p), whenever its seeded per-pid rates are
    /// zero. Any override must stay bit-identical to the per-pid
    /// predicates, which the fault-plan suite pins.
    fn fill_fault_masks(
        &self,
        superstep: u64,
        stalled: &mut pbw_models::FrontierMask,
        crashed: &mut pbw_models::FrontierMask,
    ) {
        for pid in 0..stalled.universe() {
            if self.stalled(superstep, pid) {
                stalled.insert(pid);
            }
            if self.crashed(superstep, pid) {
                crashed.insert(pid);
            }
        }
    }
}

/// Running fault ledger kept by an engine (all zeros when no hook is set,
/// except `injected`/`delivered`, which count every message).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct FaultStats {
    /// Messages posted by programs (originals only, not duplicates).
    pub injected: u64,
    /// Payloads that landed in an inbox (originals, duplicates, and late
    /// arrivals alike).
    pub delivered: u64,
    /// Messages lost to [`Fate::Drop`].
    pub dropped: u64,
    /// Spurious copies created by [`Fate::Duplicate`].
    pub duplicated: u64,
    /// Messages that took a [`Fate::Delay`] detour (they still count in
    /// `delivered` once they arrive).
    pub delayed: u64,
    /// Messages displaced to a later injection slot.
    pub displaced: u64,
    /// Processor-supersteps lost to stalls.
    pub stalled_steps: u64,
    /// Payloads currently queued inside the network (delays + pending
    /// duplicate copies).
    pub in_flight: u64,
    /// Payloads destroyed because their custody transferred to a
    /// crash-stopped processor (inbox wiped at crash onset, deliveries and
    /// late arrivals addressed to a dead pid, rollback-discarded traffic).
    pub crashed: u64,
    /// Payloads re-materialized by checkpoint rollback: a restored snapshot
    /// re-creates inbox and pending-network payloads that the crash column
    /// just wrote off, so the books stay balanced.
    pub restored: u64,
    /// Processor-supersteps lost to crash outages.
    pub crash_steps: u64,
}

impl FaultStats {
    /// The conservation invariant every engine maintains at superstep
    /// boundaries: `injected + duplicated + restored == delivered +
    /// dropped + crashed + in_flight`.
    ///
    /// With no crashes and no rollbacks the two new columns are zero and
    /// this reduces to the original PR-2 law.
    pub fn conserved(&self) -> bool {
        self.injected + self.duplicated + self.restored
            == self.delivered + self.dropped + self.crashed + self.in_flight
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Everything;
    impl DeliveryHook for Everything {}

    #[test]
    fn default_hook_delivers_and_never_stalls() {
        let h = Everything;
        let ctx = DeliveryCtx {
            superstep: 3,
            src: 0,
            dest: 1,
            msg_idx: 0,
            slot: 2,
        };
        assert_eq!(h.fate(&ctx), Fate::Deliver);
        assert!(!h.stalled(0, 0));
        assert!(!h.crashed(0, 0));
    }

    #[test]
    fn zero_stats_are_conserved() {
        assert!(FaultStats::default().conserved());
        let s = FaultStats {
            injected: 5,
            delivered: 3,
            dropped: 1,
            in_flight: 1,
            ..Default::default()
        };
        assert!(s.conserved());
        let bad = FaultStats {
            injected: 5,
            delivered: 3,
            ..Default::default()
        };
        assert!(!bad.conserved());
    }

    #[test]
    fn crash_columns_balance_the_extended_law() {
        // Two payloads destroyed by a crash, three re-created by rollback.
        let s = FaultStats {
            injected: 6,
            delivered: 5,
            crashed: 2,
            restored: 3,
            in_flight: 2,
            ..Default::default()
        };
        assert!(s.conserved());
        // A crash that destroys a payload without charging the column
        // must unbalance the books.
        let bad = FaultStats {
            injected: 6,
            delivered: 5,
            ..Default::default()
        };
        assert!(!bad.conserved());
    }
}
