//! Measured density crossover: when is the active-set (sparse) execution
//! path cheaper than the dense all-processor pass?
//!
//! The engines and the scheduling/recovery layers all face the same choice
//! every superstep: walk all `p` processors (dense — O(p), but with perfect
//! streaming constants), or walk only the active senders (sparse —
//! O(active + flits), but with stamp checks and indirection per touched
//! slot). Both
//! paths are byte-identical in every observable (inboxes, profiles, traces,
//! `canonical_hash`), so the choice is *purely* a performance decision —
//! which is exactly why it should be measured, not guessed. Historically
//! five call sites each hardcoded `active.len() * 4 <= p`; the magic `4`
//! lives here now, as the *default* for a factor a once-per-process probe
//! calibrates on the machine actually running (same shape as the
//! scheduling-floor autotuner in `rayon::tune`).
//!
//! The calibrated `factor` approximates (sparse cost per active sender) /
//! (dense cost per processor): the sparse path wins while `active * factor
//! <= p`, i.e. the break-even active fraction is `1/factor`. The factor is
//! clamped to [`FACTOR_MIN`]`..=`[`FACTOR_MAX`] so a noisy probe can never
//! push the crossover outside a sane band, and because both paths are
//! byte-identical, a *different* factor on a different machine changes
//! nothing but wall-clock — the conformance suites hold at any pin.
//!
//! Overrides, highest precedence first:
//!
//! 1. [`pin_factor`] — in-process test pin (0 = off), used by the
//!    calibration tests and anything that needs a branch held still.
//! 2. `PBW_DENSITY_FACTOR` — environment override, read once. `1` forces
//!    the sparse path whenever `active <= p`; a huge value forces dense.
//!    The CI `density-crossover` stage diffs traces across forced-sparse /
//!    forced-dense / probed runs to pin the byte-identity this module's
//!    freedom rests on.
//! 3. The cached probe.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

use pbw_models::MachineParams;

use crate::bsp::BspMachine;

/// Lowest crossover factor the probe may report: even on hardware where the
/// stamp-checked sparse path is nearly free, a majority-active superstep
/// stays dense (the dense pass also feeds the cache-blocked kernels).
pub const FACTOR_MIN: usize = 2;

/// Highest crossover factor the probe may report: even where dense
/// streaming is very cheap per processor, a ≤1/16-active superstep goes
/// sparse — at bench scale (p = 2¹⁶, 10 senders) the sparse win is ~100×,
/// so the clamp only guards the probe, it never flips a clear-cut regime.
pub const FACTOR_MAX: usize = 16;

/// The historical hardcoded crossover (`active * 4 <= p`), used before the
/// probe has run (re-entrant calls from inside the probe itself) and as the
/// fallback for degenerate probe readings.
pub const DEFAULT_FACTOR: usize = 4;

/// Probe shape: one dense superstep over `PROBE_P` processors vs one
/// active-set superstep with `PROBE_ACTIVE` senders, same per-sender
/// traffic. Small enough to stay cache-resident and fast (the whole probe
/// is a few hundred microseconds, paid once per process), large enough
/// that per-superstep constants don't dominate the per-slot costs being
/// compared.
const PROBE_P: usize = 2048;
const PROBE_ACTIVE: usize = 16;
const PROBE_FANOUT: usize = 4;
const PROBE_ROUNDS: usize = 6;

/// Should `active` senders out of `p` processors take the sparse
/// (active-set) path? `true` = sparse. The implicit contract at every call
/// site: both branches produce byte-identical observables, so this is free
/// to be a measured, machine-dependent decision.
#[inline]
pub fn crossover(active: usize, p: usize) -> bool {
    active.saturating_mul(crossover_factor()) <= p
}

/// The crossover factor in effect: pin, then environment, then the cached
/// probe (run on first use).
#[inline]
pub fn crossover_factor() -> usize {
    match PINNED_FACTOR.load(Ordering::Relaxed) {
        0 => {}
        pinned => return pinned,
    }
    if in_probe() {
        // The probe's own dense superstep lands here (the engine consults
        // `crossover` internally); answer with the default instead of
        // re-entering the OnceLock initializer, which would deadlock.
        return DEFAULT_FACTOR;
    }
    static CACHED: OnceLock<usize> = OnceLock::new();
    *CACHED.get_or_init(|| env_factor().unwrap_or_else(probed_factor))
}

/// Pin the factor for the current process (tests, experiments). `None` or
/// `Some(0)` unpins. Safe to flip at any time: the pinned and unpinned
/// branches are byte-identical, so concurrent work only ever sees its
/// wall-clock change.
pub fn pin_factor(factor: Option<usize>) {
    PINNED_FACTOR.store(factor.unwrap_or(0), Ordering::Relaxed);
}

/// The current pin, if any.
pub fn pinned_factor() -> Option<usize> {
    match PINNED_FACTOR.load(Ordering::Relaxed) {
        0 => None,
        n => Some(n),
    }
}

/// Derive a clamped crossover factor from one probe reading: the best
/// dense-superstep and sparse-superstep times observed. Pure and total —
/// the calibration tests pin determinism and the clamp edges directly.
pub fn factor_from_probe(dense_ns: u64, sparse_ns: u64) -> usize {
    if dense_ns == 0 || sparse_ns == 0 {
        // A sub-nanosecond reading means the clock, not the path, won the
        // race; fall back rather than extrapolate from noise.
        return DEFAULT_FACTOR;
    }
    // factor = (sparse_ns / PROBE_ACTIVE) / (dense_ns / PROBE_P), in
    // integer arithmetic with the division last.
    let num = (sparse_ns as u128) * (PROBE_P as u128);
    let den = (dense_ns as u128) * (PROBE_ACTIVE as u128);
    let factor = (num / den) as usize;
    factor.clamp(FACTOR_MIN, FACTOR_MAX)
}

static PINNED_FACTOR: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static IN_PROBE: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

#[inline]
fn in_probe() -> bool {
    IN_PROBE.with(|f| f.get())
}

fn env_factor() -> Option<usize> {
    let raw = std::env::var("PBW_DENSITY_FACTOR").ok()?;
    match raw.trim().parse::<usize>() {
        Ok(n) if n > 0 => Some(n),
        _ => None,
    }
}

/// Time the two paths on a real (small) machine and derive the factor.
/// Runs once per process, on the thread that first asks.
fn probed_factor() -> usize {
    IN_PROBE.with(|f| f.set(true));
    let mp = MachineParams::from_gap(PROBE_P, 16, 8);
    let mut machine: BspMachine<u64, u64> = BspMachine::new(mp, |_| 0);
    // The probe must be unobservable: machines capture the process-global
    // trace sink at construction, so without this a traced run (e.g.
    // `reproduce --trace`) would find the probe's own supersteps spliced
    // into its event stream the first time a crossover was consulted.
    machine.set_sink(std::sync::Arc::new(pbw_trace::NullSink));
    let body = |pid: usize, s: &mut u64, inbox: &[u64], out: &mut crate::bsp::Outbox<u64>| {
        *s = s.wrapping_add(inbox.iter().sum::<u64>());
        if pid < PROBE_ACTIVE {
            for k in 0..PROBE_FANOUT {
                out.send((pid * 97 + k * 31 + 1) % PROBE_P, (pid + k) as u64);
            }
        }
    };
    let active: Vec<usize> = (0..PROBE_ACTIVE).collect();
    // Warm both paths once (allocations, page faults), then take the best
    // of PROBE_ROUNDS — min is the right estimator for "cost of the path",
    // since every source of noise only ever adds time.
    machine.superstep(body);
    machine.superstep_active(&active, body);
    let mut dense_ns = u64::MAX;
    let mut sparse_ns = u64::MAX;
    for _ in 0..PROBE_ROUNDS {
        let t0 = Instant::now();
        machine.superstep(body);
        dense_ns = dense_ns.min(elapsed_ns(t0));
        let t0 = Instant::now();
        machine.superstep_active(&active, body);
        sparse_ns = sparse_ns.min(elapsed_ns(t0));
    }
    IN_PROBE.with(|f| f.set(false));
    factor_from_probe(dense_ns, sparse_ns)
}

fn elapsed_ns(t0: Instant) -> u64 {
    u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factor_from_probe_is_deterministic_and_clamped() {
        // Fixed probe reading -> fixed factor, twice over.
        assert_eq!(
            factor_from_probe(10_000, 1_000),
            factor_from_probe(10_000, 1_000)
        );
        // dense 10µs over 2048 pids ≈ 4.9ns/pid; sparse 1µs over 16
        // senders = 62.5ns/sender -> factor 12, inside the band.
        assert_eq!(factor_from_probe(10_000, 1_000), 12);
        // A very cheap sparse path clamps to the low edge...
        assert_eq!(factor_from_probe(1_000_000, 1), FACTOR_MIN);
        // ...and a very cheap dense path to the high edge.
        assert_eq!(factor_from_probe(1, 1_000_000), FACTOR_MAX);
        // Degenerate (clock-resolution) readings fall back to the default.
        assert_eq!(factor_from_probe(0, 5_000), DEFAULT_FACTOR);
        assert_eq!(factor_from_probe(5_000, 0), DEFAULT_FACTOR);
        // No overflow at the extremes: equal path times mean equal
        // per-superstep cost, i.e. per-slot the sparse path is
        // PROBE_P/PROBE_ACTIVE = 128× dearer — clamped to the high edge.
        assert_eq!(factor_from_probe(u64::MAX, u64::MAX), FACTOR_MAX);
    }

    #[test]
    fn calibrated_factor_is_in_band_and_cached() {
        // Leave any test pin out of the way for this read.
        let saved = pinned_factor();
        pin_factor(None);
        let f1 = crossover_factor();
        let f2 = crossover_factor();
        pin_factor(saved);
        assert_eq!(f1, f2);
        // Env override may name any positive factor; the probe is clamped.
        if std::env::var("PBW_DENSITY_FACTOR").is_err() {
            assert!((FACTOR_MIN..=FACTOR_MAX).contains(&f1), "factor={f1}");
        }
    }

    #[test]
    fn pin_roundtrips_and_steers_crossover() {
        // One test owns the pin end-to-end so parallel test threads never
        // race each other's flips; flipping is harmless to *results*
        // either way (the branches are byte-identical).
        pin_factor(Some(7));
        assert_eq!(pinned_factor(), Some(7));
        assert!(crossover(1, 7)); // 1*7 <= 7
        assert!(!crossover(2, 13)); // 2*7 > 13
        pin_factor(Some(0));
        assert_eq!(pinned_factor(), None);
        pin_factor(Some(3));
        pin_factor(None);
        assert_eq!(pinned_factor(), None);
        // Unpinned, the default band still separates the regimes the five
        // historical call sites cared about: a handful of senders out of
        // 2¹⁶ is sparse, an all-sender superstep is dense.
        assert!(crossover(10, 1 << 16));
        assert!(!crossover(1 << 16, 1 << 16));
    }
}
