//! Data-oriented batch kernels for the superstep communication passes.
//!
//! The engines keep a flat structure-of-arrays destination lane next to
//! every outbox (`Outbox::dests`), so the counting pass — "how many payloads
//! land in each destination arena this superstep?" — never has to walk
//! `Envelope` structs (whose inline payloads make the walk a cache-miss per
//! message for any non-trivial `M`). These kernels sweep the `usize` lane
//! directly, in exact-width chunks that rustc fully unrolls, with the
//! per-message fate/liveness decision computed as a branchless 0/1 increment
//! instead of a `match` per element.
//!
//! Every kernel is bit-equivalent to the scalar per-envelope loop it
//! replaced; `#[cfg(test)]` keeps those scalar references alive and the
//! proptests below pin the equivalence on random inputs — including the
//! empty batch, a single message, and lengths straddling the chunk width.

use crate::hook::Fate;
use crate::Pid;
use pbw_models::{EpochCounts, FrontierMask};

/// Exact-width inner chunk: small enough that rustc fully unrolls the inner
/// loop, large enough to hide the loop-carried scatter dependency.
const LANE: usize = 8;

/// Whether `fate` places a payload into the destination arena *this*
/// superstep (drops never arrive; delays arrive in a later superstep).
#[inline(always)]
fn counts_now(fate: Fate) -> bool {
    matches!(fate, Fate::Deliver | Fate::Duplicate | Fate::Displace(_))
}

/// Unhooked dense counting: histogram one sender's destination lane into the
/// per-processor arena counts. With no hook every message counts — the
/// kernel is a pure scatter-increment over the lane.
pub fn count_dests(dests: &[Pid], counts: &mut [usize]) {
    let mut chunks = dests.chunks_exact(LANE);
    for chunk in &mut chunks {
        for &d in chunk {
            counts[d] += 1;
        }
    }
    for &d in chunks.remainder() {
        counts[d] += 1;
    }
}

/// Hooked dense counting: like [`count_dests`], but message `i` counts only
/// if its fate arrives this superstep and its destination is alive. The
/// decision is a branchless 0/1 increment — dense counts tolerate `+= 0` —
/// so the unrolled chunks have no per-element control flow. The crash lane
/// is read word-wise out of the [`FrontierMask`]: one shift + mask per
/// destination, no byte table.
pub fn count_dests_hooked(
    dests: &[Pid],
    fates: &[Fate],
    crashed: &FrontierMask,
    counts: &mut [usize],
) {
    debug_assert_eq!(dests.len(), fates.len());
    let mut d_chunks = dests.chunks_exact(LANE);
    let mut f_chunks = fates.chunks_exact(LANE);
    for (dc, fc) in (&mut d_chunks).zip(&mut f_chunks) {
        for (&d, &f) in dc.iter().zip(fc) {
            counts[d] += (counts_now(f) & !crashed.contains(d)) as usize;
        }
    }
    for (&d, &f) in d_chunks.remainder().iter().zip(f_chunks.remainder()) {
        counts[d] += (counts_now(f) & !crashed.contains(d)) as usize;
    }
}

/// Unhooked sparse counting: [`count_dests`] against epoch-stamped tallies.
pub fn count_dests_sparse(dests: &[Pid], counts: &mut EpochCounts) {
    counts.add_ones(dests);
}

/// Hooked sparse counting: [`count_dests_hooked`] against epoch-stamped
/// tallies. Unlike the dense kernel this one *must* branch: `add(d, 0)`
/// would stamp `d` into the dirty set and change which arenas the sparse
/// layout visits.
pub fn count_dests_sparse_hooked(
    dests: &[Pid],
    fates: &[Fate],
    crashed: &FrontierMask,
    counts: &mut EpochCounts,
) {
    debug_assert_eq!(dests.len(), fates.len());
    for (&d, &f) in dests.iter().zip(fates) {
        if counts_now(f) && !crashed.contains(d) {
            counts.add(d, 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// The scalar per-envelope loop the dense kernels replaced, verbatim
    /// (per-pid bool flags, as the engines carried before the mask).
    fn scalar_count(dests: &[Pid], fates: Option<&[Fate]>, crashed: &[bool], counts: &mut [usize]) {
        for (msg_idx, &dest) in dests.iter().enumerate() {
            let fate = match fates {
                Some(f) => f[msg_idx],
                None => Fate::Deliver,
            };
            match fate {
                Fate::Deliver | Fate::Duplicate | Fate::Displace(_) => {
                    if !(fates.is_some() && crashed[dest]) {
                        counts[dest] += 1;
                    }
                }
                Fate::Drop | Fate::Delay(_) => {}
            }
        }
    }

    /// Lift the scalar reference's bool flags into the mask the kernels take.
    fn crash_mask_of(crashed: &[bool]) -> FrontierMask {
        let mut m = FrontierMask::new(crashed.len());
        for (pid, &c) in crashed.iter().enumerate() {
            if c {
                m.insert(pid);
            }
        }
        m
    }

    fn fate_strategy() -> impl Strategy<Value = Fate> {
        (0u32..5, 1u32..4, 1u64..4).prop_map(|(k, d, s)| match k {
            0 => Fate::Deliver,
            1 => Fate::Drop,
            2 => Fate::Duplicate,
            3 => Fate::Delay(d),
            _ => Fate::Displace(s),
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        // Dense kernels match the scalar loop — lengths 0..40 cover empty,
        // single-message, and tails on both sides of the chunk width.
        #[test]
        fn dense_kernels_match_scalar(
            p in 1usize..16,
            msgs in proptest::collection::vec((0usize..16, fate_strategy()), 0..40),
            crash_mask in 0u16..u16::MAX,
        ) {
            let dests: Vec<Pid> = msgs.iter().map(|(d, _)| d % p).collect();
            let fates: Vec<Fate> = msgs.iter().map(|&(_, f)| f).collect();
            let crashed: Vec<bool> = (0..p).map(|i| crash_mask & (1 << i) != 0).collect();

            let mut expect = vec![0usize; p];
            scalar_count(&dests, None, &crashed, &mut expect);
            let mut got = vec![0usize; p];
            count_dests(&dests, &mut got);
            prop_assert_eq!(&got, &expect, "unhooked");

            let mut expect = vec![0usize; p];
            scalar_count(&dests, Some(&fates), &crashed, &mut expect);
            let mut got = vec![0usize; p];
            count_dests_hooked(&dests, &fates, &crash_mask_of(&crashed), &mut got);
            prop_assert_eq!(&got, &expect, "hooked");
        }

        // Sparse kernels agree with their dense twins slot-for-slot.
        #[test]
        fn sparse_kernels_match_dense(
            p in 1usize..16,
            msgs in proptest::collection::vec((0usize..16, fate_strategy()), 0..40),
            crash_mask in 0u16..u16::MAX,
        ) {
            let dests: Vec<Pid> = msgs.iter().map(|(d, _)| d % p).collect();
            let fates: Vec<Fate> = msgs.iter().map(|&(_, f)| f).collect();
            let crashed: Vec<bool> = (0..p).map(|i| crash_mask & (1 << i) != 0).collect();

            let mut dense = vec![0usize; p];
            count_dests(&dests, &mut dense);
            let mut sparse = EpochCounts::new(p);
            count_dests_sparse(&dests, &mut sparse);
            for (pid, &d) in dense.iter().enumerate() {
                prop_assert_eq!(sparse.get(pid), d as u64, "unhooked pid {}", pid);
            }

            let crashed = crash_mask_of(&crashed);
            let mut dense = vec![0usize; p];
            count_dests_hooked(&dests, &fates, &crashed, &mut dense);
            let mut sparse = EpochCounts::new(p);
            count_dests_sparse_hooked(&dests, &fates, &crashed, &mut sparse);
            for (pid, &d) in dense.iter().enumerate() {
                prop_assert_eq!(sparse.get(pid), d as u64, "hooked pid {}", pid);
            }
        }
    }
}
