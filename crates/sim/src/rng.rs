//! Reproducible per-processor randomness.
//!
//! The paper's algorithms are randomized; reproducing their w.h.p. bounds in
//! tests requires deterministic replay. Superstep closures execute on rayon
//! worker threads in nondeterministic order, so a shared RNG would destroy
//! reproducibility. Instead, every (seed, processor, superstep) triple maps
//! to an independent ChaCha8 stream.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A deterministic RNG for processor `pid`, derived from a global `seed`.
///
/// Distinct `pid`s get statistically independent streams; the same
/// `(seed, pid)` always yields the same stream regardless of thread
/// scheduling.
pub fn proc_rng(seed: u64, pid: usize) -> ChaCha8Rng {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    rng.set_stream(pid as u64);
    rng
}

/// A deterministic RNG for processor `pid` *within superstep `step`*: use
/// when a processor draws fresh randomness each superstep and the closure
/// cannot carry RNG state across supersteps.
pub fn proc_step_rng(seed: u64, pid: usize, step: usize) -> ChaCha8Rng {
    // Mix the superstep into the seed with splitmix64-style finalization so
    // neighbouring (pid, step) pairs decorrelate.
    let mut z = seed ^ (step as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    let mut rng = ChaCha8Rng::seed_from_u64(z);
    rng.set_stream(pid as u64);
    rng
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_pid_same_stream() {
        let mut a = proc_rng(7, 3);
        let mut b = proc_rng(7, 3);
        for _ in 0..32 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_pids_different_streams() {
        let mut a = proc_rng(7, 3);
        let mut b = proc_rng(7, 4);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn different_seeds_different_streams() {
        let mut a = proc_rng(1, 0);
        let mut b = proc_rng(2, 0);
        assert_ne!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn step_rng_varies_by_step() {
        let mut a = proc_step_rng(9, 5, 0);
        let mut b = proc_step_rng(9, 5, 1);
        assert_ne!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn step_rng_reproducible() {
        let mut a = proc_step_rng(9, 5, 2);
        let mut b = proc_step_rng(9, 5, 2);
        for _ in 0..16 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }
}
