//! Pricing one execution under every model at once.
//!
//! [`CostSummary`] now lives in `pbw-models` (so the trace layer can price
//! profiles without depending on the engines); this module re-exports it at
//! its historical path.

pub use pbw_models::summary::CostSummary;
