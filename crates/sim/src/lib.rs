//! # pbw-sim
//!
//! An executable bulk-synchronous machine simulator for the models of the
//! SPAA'97 paper *"Modeling Parallel Bandwidth: Local vs. Global
//! Restrictions"*.
//!
//! Two engines are provided:
//!
//! * [`bsp::BspMachine`] — a message-passing machine. Algorithms run as
//!   closures invoked once per processor per superstep (executed in parallel
//!   with rayon); they read their inbox, mutate their local state, and post
//!   messages to an [`bsp::Outbox`], optionally pinning each message to an
//!   explicit *injection slot* — the knob that globally-limited algorithms
//!   use to stay within the aggregate bandwidth `m`.
//! * [`qsm::QsmMachine`] — a shared-memory machine in the QSM style:
//!   processors issue pipelined read/write requests against a shared array,
//!   values become visible in the next phase, concurrent reads *or* writes
//!   (never both) per location are allowed, and location contention `κ` is
//!   metered.
//!
//! Both engines record an exact [`pbw_models::SuperstepProfile`] for every
//! superstep, so one execution can be priced under BSP(g), BSP(m), QSM(g),
//! QSM(m) and the self-scheduling metric simultaneously (see
//! [`summary::CostSummary`]).
//!
//! ## Design notes
//!
//! * Determinism: superstep closures receive a processor id and may use
//!   [`rng::proc_rng`] for per-processor reproducible randomness; message
//!   delivery order is fixed (by source pid, then send order), independent of
//!   rayon's scheduling. Fault fates ([`hook::DeliveryHook`]) are likewise
//!   *computed* in a parallel pass (they are pure in the delivery context)
//!   and *applied* in the fixed delivery order, so runs — including their
//!   trace streams — are byte-identical at every `PBW_THREADS` setting.
//! * Non-receipt is observable: a processor can branch on an *empty* inbox,
//!   as required by the Section 4.2 ternary broadcast.

pub(crate) mod arena;
pub mod bsp;
pub mod density;
pub mod hook;
pub mod kernels;
pub mod qsm;
pub mod rng;
pub mod summary;
pub mod timeline;

pub use bsp::{BspMachine, Envelope, MachineCheckpoint, Outbox};
pub use hook::{BatchDests, DeliveryCtx, DeliveryHook, Fate, FaultStats};
pub use pbw_models::FrontierMask;
pub use qsm::{QsmCtx, QsmMachine, Word};
pub use summary::CostSummary;

/// Processor identifier.
pub type Pid = usize;

/// Largest number of injections any single processor charged to one slot of
/// a superstep. The pipelining rule requires this to be ≤ 1; it is recomputed
/// from the engines' resolved slot assignments for each trace event — rather
/// than assumed — so the conformance suite checks the engine, not itself.
///
/// `pids` restricts the scan to the processors whose slot buffers are live
/// this superstep: `0..p` on the dense path, the frontier on the sparse path
/// (non-frontier buffers hold stale assignments from an earlier superstep
/// and must not be read). A pid outside the frontier has no resolved slots
/// this superstep, so restricting the scan cannot change the maximum.
pub(crate) fn max_slot_multiplicity(resolved: &[Vec<u64>], pids: impl Iterator<Item = Pid>) -> u64 {
    pids.map(|pid| {
        let slots = &resolved[pid];
        {
            let mut sorted = slots.clone();
            sorted.sort_unstable();
            let mut best = 0u64;
            let mut run = 0u64;
            let mut prev = None;
            for &s in &sorted {
                run = if prev == Some(s) { run + 1 } else { 1 };
                best = best.max(run);
                prev = Some(s);
            }
            best
        }
    })
    .max()
    .unwrap_or(0)
}

/// Errors raised by the simulation engines when a program violates model
/// rules.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A processor attempted two message injections in the same step of a
    /// superstep (the BSP(m) model allows at most one per processor per
    /// step).
    DuplicateSlot { pid: Pid, slot: u64 },
    /// A message was addressed to a processor id `>= p`.
    BadDestination { pid: Pid, dest: Pid },
    /// A QSM phase both read and wrote the same shared location (Section 2
    /// permits concurrent reads or concurrent writes to a location, not
    /// both).
    ReadWriteConflict { addr: usize },
    /// A QSM access was outside the shared address space.
    BadAddress { addr: usize, size: usize },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::DuplicateSlot { pid, slot } => write!(
                f,
                "processor {pid} injected two messages at step {slot} of one superstep"
            ),
            SimError::BadDestination { pid, dest } => {
                write!(
                    f,
                    "processor {pid} sent a message to nonexistent processor {dest}"
                )
            }
            SimError::ReadWriteConflict { addr } => write!(
                f,
                "shared location {addr} was both read and written in one QSM phase"
            ),
            SimError::BadAddress { addr, size } => {
                write!(f, "shared address {addr} out of bounds (size {size})")
            }
        }
    }
}

impl std::error::Error for SimError {}
