//! The message-passing bulk-synchronous machine.
//!
//! A [`BspMachine`] holds `p` processor states. Each call to
//! [`BspMachine::superstep`] runs a closure once per processor (in parallel
//! with rayon), giving it the processor's inbox (messages sent to it in the
//! previous superstep) and an [`Outbox`] for posting new messages.
//!
//! ## Injection slots
//!
//! The BSP(m) cost metric prices each *step* of a superstep by the number of
//! messages injected machine-wide in that step (`m_t`). A processor may
//! initiate at most one send per step. Programs targeting globally-limited
//! models therefore control *when* within the superstep each message is
//! injected, via [`Outbox::send_at`]. Messages posted with plain
//! [`Outbox::send`] are auto-assigned the earliest free slots of their
//! processor (the natural pipelined schedule). The engine validates the
//! one-injection-per-processor-per-step rule and builds the machine-wide
//! `m_t` histogram for the cost models.

use std::sync::Arc;

use crate::{Pid, SimError};
use pbw_models::{MachineParams, ProfileBuilder, SuperstepProfile};
use pbw_trace::{TraceEvent, TraceSink, TraceSource};
use rayon::prelude::*;

/// A message posted during a superstep: destination, payload, and the
/// injection slot it occupies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope<M> {
    /// Destination processor.
    pub dest: Pid,
    /// Payload.
    pub payload: M,
    /// Injection step within the superstep (`None` = auto-assign).
    pub slot: Option<u64>,
}

/// Per-processor output buffer for one superstep.
#[derive(Debug)]
pub struct Outbox<M> {
    envelopes: Vec<Envelope<M>>,
    work: u64,
}

impl<M> Default for Outbox<M> {
    fn default() -> Self {
        Self { envelopes: Vec::new(), work: 0 }
    }
}

impl<M> Outbox<M> {
    /// Post a message with automatic (pipelined) slot assignment: the k-th
    /// auto message of a processor is injected at the k-th step of the
    /// superstep not claimed by an explicit send.
    pub fn send(&mut self, dest: Pid, payload: M) {
        self.envelopes.push(Envelope { dest, payload, slot: None });
    }

    /// Post a message pinned to injection step `slot` (0-based within the
    /// superstep). Two pinned sends from the same processor must use
    /// distinct slots.
    pub fn send_at(&mut self, dest: Pid, payload: M, slot: u64) {
        self.envelopes.push(Envelope { dest, payload, slot: Some(slot) });
    }

    /// Charge `w` units of local computation to this processor for this
    /// superstep.
    pub fn charge_work(&mut self, w: u64) {
        self.work += w;
    }

    /// Number of messages posted so far.
    pub fn len(&self) -> usize {
        self.envelopes.len()
    }

    /// Whether any message has been posted.
    pub fn is_empty(&self) -> bool {
        self.envelopes.is_empty()
    }
}

/// Report for one executed superstep.
#[derive(Debug, Clone)]
pub struct SuperstepReport {
    /// The exact cost profile (price it with any `CostModel`).
    pub profile: SuperstepProfile,
    /// Number of messages delivered.
    pub delivered: u64,
}

/// A simulated `p`-processor message-passing machine.
///
/// Type parameters: `S` is the per-processor local state, `M` the message
/// payload type.
///
/// ```
/// use pbw_models::{MachineParams, BspM, PenaltyFn, CostModel};
/// use pbw_sim::BspMachine;
///
/// // A 4-processor ring rotation: every processor sends its id rightward.
/// let mp = MachineParams::from_gap(4, 2, 2);
/// let mut machine: BspMachine<u64, u64> = BspMachine::new(mp, |_| 0);
/// machine.superstep(|pid, _state, _inbox, out| {
///     out.send((pid + 1) % 4, pid as u64);
/// });
/// machine.superstep(|_pid, state, inbox, _out| {
///     *state = inbox[0];
/// });
/// assert_eq!(machine.states(), &[3, 0, 1, 2]);
///
/// // The same run priced under the globally-limited metric:
/// let model = BspM { m: mp.m, l: mp.l, penalty: PenaltyFn::Exponential };
/// assert!(machine.cost(&model) >= 2.0); // two supersteps, cost ≥ L each
/// ```
pub struct BspMachine<S, M> {
    params: MachineParams,
    states: Vec<S>,
    inboxes: Vec<Vec<M>>,
    profiles: Vec<SuperstepProfile>,
    superstep: usize,
    sink: Arc<dyn TraceSink>,
    trace_label: String,
}

impl<S: Send, M: Send> BspMachine<S, M> {
    /// Create a machine with `params.p` processors, initializing processor
    /// `i`'s state to `init(i)`.
    ///
    /// The machine captures the process-wide trace sink
    /// ([`pbw_trace::global_sink`]) at construction; use
    /// [`BspMachine::set_sink`] to attach a specific sink instead.
    pub fn new(params: MachineParams, init: impl FnMut(Pid) -> S) -> Self {
        let states: Vec<S> = (0..params.p).map(init).collect();
        let inboxes = (0..params.p).map(|_| Vec::new()).collect();
        Self {
            params,
            states,
            inboxes,
            profiles: Vec::new(),
            superstep: 0,
            sink: pbw_trace::global_sink(),
            trace_label: String::new(),
        }
    }

    /// Attach a trace sink, replacing the one captured at construction.
    pub fn set_sink(&mut self, sink: Arc<dyn TraceSink>) -> &mut Self {
        self.sink = sink;
        self
    }

    /// Label stamped on every trace event this machine emits.
    pub fn set_trace_label(&mut self, label: impl Into<String>) -> &mut Self {
        self.trace_label = label.into();
        self
    }

    /// Machine parameters.
    pub fn params(&self) -> MachineParams {
        self.params
    }

    /// Index of the next superstep to execute (0-based).
    pub fn superstep_index(&self) -> usize {
        self.superstep
    }

    /// Immutable view of a processor's state.
    pub fn state(&self, pid: Pid) -> &S {
        &self.states[pid]
    }

    /// Immutable view of all processor states.
    pub fn states(&self) -> &[S] {
        &self.states
    }

    /// Mutable view of all processor states (for test setup and workload
    /// injection between supersteps).
    pub fn states_mut(&mut self) -> &mut [S] {
        &mut self.states
    }

    /// The inbox a processor would see at the start of the next superstep.
    pub fn pending_inbox(&self, pid: Pid) -> &[M] {
        &self.inboxes[pid]
    }

    /// Profiles of all executed supersteps.
    pub fn profiles(&self) -> &[SuperstepProfile] {
        &self.profiles
    }

    /// Total run cost under any cost model: the sum over supersteps.
    pub fn cost(&self, model: &dyn pbw_models::CostModel) -> f64 {
        model.run_cost(&self.profiles)
    }

    /// Execute one superstep, panicking on model-rule violations.
    ///
    /// The closure is called once per processor with
    /// `(pid, &mut state, inbox, &mut outbox)`; the inbox holds the messages
    /// sent to `pid` during the previous superstep, in (source pid, send
    /// order) order.
    pub fn superstep<F>(&mut self, f: F) -> SuperstepReport
    where
        F: Fn(Pid, &mut S, &[M], &mut Outbox<M>) + Sync,
        M: Sync,
        S: Sync,
    {
        self.try_superstep(f).unwrap_or_else(|e| panic!("superstep failed: {e}"))
    }

    /// Execute one superstep, returning model-rule violations as errors.
    pub fn try_superstep<F>(&mut self, f: F) -> Result<SuperstepReport, SimError>
    where
        F: Fn(Pid, &mut S, &[M], &mut Outbox<M>) + Sync,
        M: Sync,
        S: Sync,
    {
        let p = self.params.p;
        // Replace with p fresh inboxes (not an empty Vec!) so the machine
        // stays runnable even if this superstep is rejected below — a
        // failed superstep loses its in-flight messages but nothing else.
        let inboxes =
            std::mem::replace(&mut self.inboxes, (0..p).map(|_| Vec::new()).collect());

        // Run all processors in parallel; collect their outboxes.
        let mut outboxes: Vec<Outbox<M>> = self
            .states
            .par_iter_mut()
            .zip(inboxes.par_iter())
            .enumerate()
            .map(|(pid, (state, inbox))| {
                let mut out = Outbox::default();
                f(pid, state, inbox, &mut out);
                out
            })
            .collect();

        // Resolve injection slots per processor and validate the
        // one-injection-per-step rule.
        let mut builder = ProfileBuilder::new();
        let mut recv_counts = vec![0u64; p];
        let mut new_inboxes: Vec<Vec<M>> = (0..p).map(|_| Vec::new()).collect();
        let mut delivered = 0u64;

        // First pass (parallel): per-processor slot resolution + validation.
        let resolved: Result<Vec<Vec<u64>>, SimError> = outboxes
            .par_iter()
            .enumerate()
            .map(|(pid, out)| resolve_slots(pid, p, &out.envelopes))
            .collect();
        let resolved = resolved?;

        // Second pass (sequential, deterministic): accounting + delivery.
        let tracing = self.sink.enabled();
        let mut per_proc_sent: Vec<u64> = Vec::new();
        for (pid, out) in outboxes.iter_mut().enumerate() {
            let slots = &resolved[pid];
            builder.record_work(out.work);
            builder.record_traffic(out.envelopes.len() as u64, 0);
            if tracing {
                per_proc_sent.push(out.envelopes.len() as u64);
            }
            for (env, &slot) in out.envelopes.drain(..).zip(slots.iter()) {
                builder.record_injection(slot);
                recv_counts[env.dest] += 1;
                new_inboxes[env.dest].push(env.payload);
                delivered += 1;
            }
        }
        for &r in &recv_counts {
            builder.record_traffic(0, r);
        }

        let profile = builder.build();
        if tracing {
            self.sink.record(TraceEvent::for_superstep(
                TraceSource::Bsp,
                self.trace_label.clone(),
                self.superstep as u64,
                self.params,
                profile.clone(),
                per_proc_sent,
                recv_counts,
                crate::max_slot_multiplicity(&resolved),
                delivered,
            ));
        }
        self.inboxes = new_inboxes;
        self.profiles.push(profile.clone());
        self.superstep += 1;
        Ok(SuperstepReport { profile, delivered })
    }

    /// Run supersteps until `f` posts no messages anywhere (quiescence) or
    /// `max_supersteps` is reached; returns the number of supersteps run.
    pub fn run_to_quiescence<F>(&mut self, f: F, max_supersteps: usize) -> usize
    where
        F: Fn(Pid, &mut S, &[M], &mut Outbox<M>) + Sync,
        M: Sync,
        S: Sync,
    {
        for i in 0..max_supersteps {
            let report = self.superstep(&f);
            if report.delivered == 0 {
                return i + 1;
            }
        }
        max_supersteps
    }
}

/// Assign injection slots to a processor's envelopes: explicit slots are
/// honoured; auto messages fill the earliest slots not explicitly claimed.
/// Errors if two explicit sends collide or a destination is invalid.
fn resolve_slots<M>(pid: Pid, p: usize, envelopes: &[Envelope<M>]) -> Result<Vec<u64>, SimError> {
    use std::collections::BTreeSet;
    let mut explicit: BTreeSet<u64> = BTreeSet::new();
    for env in envelopes {
        if env.dest >= p {
            return Err(SimError::BadDestination { pid, dest: env.dest });
        }
        if let Some(s) = env.slot {
            if !explicit.insert(s) {
                return Err(SimError::DuplicateSlot { pid, slot: s });
            }
        }
    }
    let mut next_auto = 0u64;
    let mut out = Vec::with_capacity(envelopes.len());
    for env in envelopes {
        match env.slot {
            Some(s) => out.push(s),
            None => {
                while explicit.contains(&next_auto) {
                    next_auto += 1;
                }
                out.push(next_auto);
                next_auto += 1;
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbw_models::{BspG, BspM, PenaltyFn};

    fn params(p: usize) -> MachineParams {
        MachineParams::from_gap(p, 4, 8)
    }

    #[test]
    fn messages_arrive_next_superstep() {
        let mut m: BspMachine<u64, u64> = BspMachine::new(params(4), |_| 0);
        m.superstep(|pid, _s, inbox, out| {
            assert!(inbox.is_empty());
            out.send((pid + 1) % 4, pid as u64 * 10);
        });
        m.superstep(|pid, s, inbox, _out| {
            assert_eq!(inbox.len(), 1);
            *s = inbox[0];
            assert_eq!(inbox[0], (((pid + 3) % 4) as u64) * 10);
        });
        assert_eq!(m.states(), &[30, 0, 10, 20]);
    }

    #[test]
    fn auto_slots_are_pipelined() {
        let mut m: BspMachine<(), u8> = BspMachine::new(params(4), |_| ());
        m.superstep(|pid, _s, _in, out| {
            if pid == 0 {
                for _ in 0..5 {
                    out.send(1, 0);
                }
            }
        });
        // Processor 0 injected 1 message at each of steps 0..5.
        assert_eq!(m.profiles()[0].injections, vec![1, 1, 1, 1, 1]);
        assert_eq!(m.profiles()[0].max_sent, 5);
        assert_eq!(m.profiles()[0].max_received, 5);
    }

    #[test]
    fn explicit_slots_build_histogram() {
        let mut m: BspMachine<(), u8> = BspMachine::new(params(4), |_| ());
        m.superstep(|pid, _s, _in, out| {
            // All four processors inject at slot 7.
            out.send_at((pid + 1) % 4, 1, 7);
        });
        let prof = &m.profiles()[0];
        assert_eq!(prof.injections.len(), 8);
        assert_eq!(prof.injections[7], 4);
        assert_eq!(prof.total_messages, 4);
    }

    #[test]
    fn auto_slots_avoid_explicit_ones() {
        let mut m: BspMachine<(), u8> = BspMachine::new(params(4), |_| ());
        m.superstep(|pid, _s, _in, out| {
            if pid == 0 {
                out.send_at(1, 9, 0); // claims slot 0
                out.send(1, 9); // must land on slot 1
                out.send_at(1, 9, 2); // claims slot 2
                out.send(1, 9); // must land on slot 3
            }
        });
        assert_eq!(m.profiles()[0].injections, vec![1, 1, 1, 1]);
    }

    #[test]
    fn duplicate_slot_rejected() {
        let mut m: BspMachine<(), u8> = BspMachine::new(params(4), |_| ());
        let err = m
            .try_superstep(|pid, _s, _in, out| {
                if pid == 2 {
                    out.send_at(0, 1, 5);
                    out.send_at(1, 1, 5);
                }
            })
            .unwrap_err();
        assert_eq!(err, SimError::DuplicateSlot { pid: 2, slot: 5 });
    }

    #[test]
    fn bad_destination_rejected() {
        let mut m: BspMachine<(), u8> = BspMachine::new(params(4), |_| ());
        let err = m
            .try_superstep(|pid, _s, _in, out| {
                if pid == 0 {
                    out.send(99, 1);
                }
            })
            .unwrap_err();
        assert_eq!(err, SimError::BadDestination { pid: 0, dest: 99 });
    }

    #[test]
    fn delivery_order_is_source_then_send_order() {
        let mut m: BspMachine<Vec<u64>, u64> = BspMachine::new(params(4), |_| Vec::new());
        m.superstep(|pid, _s, _in, out| {
            // Everyone sends two tagged messages to processor 0.
            out.send(0, (pid as u64) * 10);
            out.send(0, (pid as u64) * 10 + 1);
        });
        m.superstep(|pid, s, inbox, _out| {
            if pid == 0 {
                *s = inbox.to_vec();
            }
        });
        assert_eq!(m.state(0), &vec![0, 1, 10, 11, 20, 21, 30, 31]);
    }

    #[test]
    fn work_is_charged() {
        let mut m: BspMachine<(), u8> = BspMachine::new(params(4), |_| ());
        m.superstep(|pid, _s, _in, out| {
            out.charge_work(pid as u64 * 100);
        });
        assert_eq!(m.profiles()[0].max_work, 300);
    }

    #[test]
    fn costs_price_the_same_run_differently() {
        // One hot sender: proc 0 sends 16 messages, spread over 16 slots.
        let mut m: BspMachine<(), u8> = BspMachine::new(params(16), |_| ());
        m.superstep(|pid, _s, _in, out| {
            if pid == 0 {
                for k in 0..16u64 {
                    out.send_at(((k % 15) + 1) as usize, 0, k);
                }
            }
        });
        let bsp_g = BspG { g: 4, l: 8 };
        let bsp_m = BspM { m: 4, l: 8, penalty: PenaltyFn::Exponential };
        // BSP(g): h = 16, cost = 4·16 = 64. BSP(m): c_m = 16 (one msg per
        // slot), h = 16, L = 8 → 16.
        assert_eq!(m.cost(&bsp_g), 64.0);
        assert_eq!(m.cost(&bsp_m), 16.0);
    }

    #[test]
    fn non_receipt_is_observable() {
        // Proc 0 sends to 1 iff its "bit" is set; proc 1 branches on empty
        // inbox — the Section 4.2 primitive.
        for bit in [false, true] {
            let mut m: BspMachine<bool, ()> = BspMachine::new(params(4), |_| false);
            m.superstep(|pid, _s, _in, out| {
                if pid == 0 && bit {
                    out.send(1, ());
                }
            });
            m.superstep(|pid, s, inbox, _out| {
                if pid == 1 {
                    *s = !inbox.is_empty();
                }
            });
            assert_eq!(*m.state(1), bit);
        }
    }

    #[test]
    fn run_to_quiescence_stops() {
        // A token passes 0→1→2→3 then stops.
        let mut m: BspMachine<bool, ()> = BspMachine::new(params(4), |pid| pid == 0);
        let steps = m.run_to_quiescence(
            |pid, has, inbox, out| {
                if !inbox.is_empty() {
                    *has = true;
                }
                if *has && pid < 3 {
                    out.send(pid + 1, ());
                    *has = false;
                }
            },
            100,
        );
        assert!(steps <= 5, "steps={steps}");
        assert!(*m.state(3));
    }

    #[test]
    fn trace_events_mirror_reports() {
        use pbw_trace::RecordingSink;
        let sink = Arc::new(RecordingSink::new());
        let mut m: BspMachine<(), u8> = BspMachine::new(params(4), |_| ());
        m.set_sink(sink.clone()).set_trace_label("ring");
        let report = m.superstep(|pid, _s, _in, out| out.send((pid + 1) % 4, 0));
        let events = sink.take();
        assert_eq!(events.len(), 1);
        let ev = &events[0];
        assert_eq!(ev.source, TraceSource::Bsp);
        assert_eq!(ev.label, "ring");
        assert_eq!(ev.superstep, 0);
        assert_eq!(ev.profile, report.profile);
        assert_eq!(ev.delivered, 4);
        assert_eq!(ev.per_proc_sent, vec![1, 1, 1, 1]);
        assert_eq!(ev.per_proc_recv, vec![1, 1, 1, 1]);
        assert_eq!(ev.max_proc_slot_injections, 1);
    }

    #[test]
    fn profiles_accumulate_per_superstep() {
        let mut m: BspMachine<(), u8> = BspMachine::new(params(4), |_| ());
        for _ in 0..3 {
            m.superstep(|pid, _s, _in, out| {
                out.send((pid + 1) % 4, 0);
            });
        }
        assert_eq!(m.profiles().len(), 3);
        assert_eq!(m.superstep_index(), 3);
        for prof in m.profiles() {
            assert_eq!(prof.total_messages, 4);
        }
    }
}
