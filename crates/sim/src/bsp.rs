//! The message-passing bulk-synchronous machine.
//!
//! A [`BspMachine`] holds `p` processor states. Each call to
//! [`BspMachine::superstep`] runs a closure once per processor (in parallel
//! with rayon), giving it the processor's inbox (messages sent to it in the
//! previous superstep) and an [`Outbox`] for posting new messages.
//!
//! ## Injection slots
//!
//! The BSP(m) cost metric prices each *step* of a superstep by the number of
//! messages injected machine-wide in that step (`m_t`). A processor may
//! initiate at most one send per step. Programs targeting globally-limited
//! models therefore control *when* within the superstep each message is
//! injected, via [`Outbox::send_at`]. Messages posted with plain
//! [`Outbox::send`] are auto-assigned the earliest free slots of their
//! processor (the natural pipelined schedule). The engine validates the
//! one-injection-per-processor-per-step rule and builds the machine-wide
//! `m_t` histogram for the cost models.

use std::collections::VecDeque;
use std::sync::Arc;

use crate::arena::MsgArena;
use crate::hook::{BatchDests, DeliveryHook, Fate, FaultStats};
use crate::{Pid, SimError};
use pbw_models::{EpochCounts, FrontierMask, MachineParams, ProfileBuilder, SuperstepProfile};
use pbw_trace::{FaultCounters, RecoveryMark, TraceEvent, TraceSink, TraceSource};
use rayon::prelude::*;

/// A message posted during a superstep: destination, payload, and the
/// injection slot it occupies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope<M> {
    /// Destination processor.
    pub dest: Pid,
    /// Payload.
    pub payload: M,
    /// Injection step within the superstep (`None` = auto-assign).
    pub slot: Option<u64>,
}

/// Per-processor output buffer for one superstep.
///
/// Destinations are mirrored in a flat structure-of-arrays lane (`dests`)
/// maintained invariantly by the two send methods — the batch kernels (fate
/// computation, arena counting) sweep that lane without touching payloads.
#[derive(Debug)]
pub struct Outbox<M> {
    envelopes: Vec<Envelope<M>>,
    dests: Vec<Pid>,
    work: u64,
    /// Number of `send_at` (explicit-slot) posts since the last reset.
    /// Zero means every slot is implicit — the slot resolution validates
    /// the whole outbox from the `dests` lane without touching envelopes.
    explicit: usize,
}

impl<M> Default for Outbox<M> {
    fn default() -> Self {
        Self {
            envelopes: Vec::new(),
            dests: Vec::new(),
            work: 0,
            explicit: 0,
        }
    }
}

impl<M> Outbox<M> {
    /// Post a message with automatic (pipelined) slot assignment: the k-th
    /// auto message of a processor is injected at the k-th step of the
    /// superstep not claimed by an explicit send.
    pub fn send(&mut self, dest: Pid, payload: M) {
        self.envelopes.push(Envelope {
            dest,
            payload,
            slot: None,
        });
        self.dests.push(dest);
    }

    /// Post a message pinned to injection step `slot` (0-based within the
    /// superstep). Two pinned sends from the same processor must use
    /// distinct slots.
    pub fn send_at(&mut self, dest: Pid, payload: M, slot: u64) {
        self.envelopes.push(Envelope {
            dest,
            payload,
            slot: Some(slot),
        });
        self.dests.push(dest);
        self.explicit += 1;
    }

    /// Charge `w` units of local computation to this processor for this
    /// superstep.
    pub fn charge_work(&mut self, w: u64) {
        self.work += w;
    }

    /// Number of messages posted so far.
    pub fn len(&self) -> usize {
        self.envelopes.len()
    }

    /// The destination lane: `dests()[i]` is the destination of the i-th
    /// posted message, in send order.
    pub fn dests(&self) -> &[Pid] {
        &self.dests
    }

    /// Empty the outbox for the next superstep, keeping its capacity.
    fn reset(&mut self) {
        self.envelopes.clear();
        self.dests.clear();
        self.work = 0;
        self.explicit = 0;
    }

    /// Whether any message has been posted.
    pub fn is_empty(&self) -> bool {
        self.envelopes.is_empty()
    }
}

/// Report for one executed superstep.
#[derive(Debug, Clone)]
pub struct SuperstepReport {
    /// The exact cost profile (price it with any `CostModel`).
    pub profile: SuperstepProfile,
    /// Number of messages delivered.
    pub delivered: u64,
}

/// A simulated `p`-processor message-passing machine.
///
/// Type parameters: `S` is the per-processor local state, `M` the message
/// payload type.
///
/// ```
/// use pbw_models::{MachineParams, BspM, PenaltyFn, CostModel};
/// use pbw_sim::BspMachine;
///
/// // A 4-processor ring rotation: every processor sends its id rightward.
/// let mp = MachineParams::from_gap(4, 2, 2);
/// let mut machine: BspMachine<u64, u64> = BspMachine::new(mp, |_| 0);
/// machine.superstep(|pid, _state, _inbox, out| {
///     out.send((pid + 1) % 4, pid as u64);
/// });
/// machine.superstep(|_pid, state, inbox, _out| {
///     *state = inbox[0];
/// });
/// assert_eq!(machine.states(), &[3, 0, 1, 2]);
///
/// // The same run priced under the globally-limited metric:
/// let model = BspM { m: mp.m, l: mp.l, penalty: PenaltyFn::Exponential };
/// assert!(machine.cost(&model) >= 2.0); // two supersteps, cost ≥ L each
/// ```
pub struct BspMachine<S, M> {
    params: MachineParams,
    states: Vec<S>,
    /// Messages awaiting the next superstep, segmented per destination.
    inboxes: MsgArena<M>,
    /// The previous boundary's arena, recycled: each superstep swaps it with
    /// `inboxes`, reads last boundary's deliveries from it, and refills the
    /// other — so at steady state delivery reuses the same two backing
    /// buffers forever.
    spare: MsgArena<M>,
    /// Per-processor outboxes, reset (capacity kept) every superstep.
    outboxes: Vec<Outbox<M>>,
    /// Whether every outbox is known empty-and-zeroed. True after a
    /// successful unhooked superstep: every outbox it dirtied was either a
    /// sender (drained, cleared, and zeroed by the delivery drain) or a
    /// non-sender frontier member (its closure posted nothing, so the
    /// reset-time state survived). While true, the closure pass skips the
    /// per-pid `Outbox::reset` — on a wide frontier that skip is a
    /// frontier's worth of cache lines never dirtied. Cleared at superstep
    /// entry and re-established only on clean unhooked exit, so errors,
    /// panics, and hooked supersteps all fall back to resetting.
    outboxes_clean: bool,
    /// Per-processor resolved injection slots, refilled every superstep.
    resolved: Vec<Vec<u64>>,
    /// Per-processor precomputed fates (hooked machines only).
    fates: Vec<Vec<Fate>>,
    /// Stalled processors this superstep (read only behind `hooked`).
    /// Cleared by an O(1) epoch bump and filled through
    /// [`DeliveryHook::fill_fault_masks`], so a hook that knows its fault
    /// windows in closed form never pays the per-pid O(p) scan.
    stalled: FrontierMask,
    /// Crash-stopped processors this superstep. A crashed pid is strictly
    /// worse than a stalled one: closure skipped, no stall retention,
    /// incoming custody transfers destroyed.
    crashed: FrontierMask,
    /// Per-processor receive counts (deliveries only; retained inboxes are
    /// not recounted) — dense path.
    recv_counts: Vec<u64>,
    /// Counting-pass scratch: exact per-destination arena segment sizes —
    /// dense path.
    arena_counts: Vec<usize>,
    /// Sparse-path counting scratch: epoch-stamped per-destination segment
    /// sizes, reset in O(1) by an epoch bump instead of an O(p) `fill(0)`.
    sparse_arena_counts: EpochCounts,
    /// Sparse-path receive counts, epoch-stamped like `sparse_arena_counts`.
    sparse_recv_counts: EpochCounts,
    /// Delivery-pass scratch: `seq_lens[k]` counts the senders that posted
    /// exactly `k + 1` all-implicit-slot messages this superstep, feeding
    /// one aggregated histogram update instead of a per-sender scatter.
    /// Zeroed (never shrunk) after each flush, so it allocates only when a
    /// sender exceeds every previous length.
    seq_lens: Vec<u64>,
    /// Sparse-path frontier scratch: the sorted, deduplicated set of pids
    /// whose closures run this superstep, unloaded from `frontier_mask` in
    /// ascending pid order (no sort).
    frontier: Vec<Pid>,
    /// Sparse-path sender scratch: the frontier pids that actually posted
    /// messages this superstep, collected by the fused counting pass so the
    /// delivery drain revisits only them (a wide receive-only frontier
    /// contributes nothing to delivery).
    senders: Vec<Pid>,
    /// Mask twin of `frontier`: the declared active set OR-ed word-at-a-time
    /// with the arena's touched mask — insertion *is* dedup, iteration *is*
    /// the sort.
    frontier_mask: FrontierMask,
    /// Dense-path sender discovery: the parallel closure pass writes one
    /// byte per pid ("posted a message or charged work"), folded into
    /// `sender_mask` by a word-building sweep. The resulting sender count
    /// drives the measured density crossover — a dense superstep whose
    /// senders are sparse takes the epoch-stamped masked branch instead of
    /// the O(p) flat-array branch, byte-identically.
    sender_flags: Vec<u8>,
    sender_mask: FrontierMask,
    /// Tracing scratch for per-processor send counts.
    per_proc_sent: Vec<u64>,
    /// Profile accumulator, snapshot-and-reset every superstep.
    builder: ProfileBuilder,
    profiles: Vec<SuperstepProfile>,
    superstep: usize,
    sink: Arc<dyn TraceSink>,
    trace_label: String,
    hook: Option<Arc<dyn DeliveryHook>>,
    /// `pending[k]` holds payloads the network will deliver at the boundary
    /// `k + 1` supersteps from now: delayed messages and duplicate copies.
    pending: VecDeque<Vec<(Pid, M)>>,
    /// Drained pending-level buffers kept for reuse by `queue_pending`.
    pending_pool: Vec<Vec<(Pid, M)>>,
    fault_stats: FaultStats,
    fault_round: u32,
    /// Checkpoint/rollback annotation stamped on (and cleared by) the next
    /// emitted trace event.
    recovery_mark: Option<RecoveryMark>,
}

impl<S: Send, M: Send> BspMachine<S, M> {
    /// Create a machine with `params.p` processors, initializing processor
    /// `i`'s state to `init(i)`.
    ///
    /// The machine captures the process-wide trace sink
    /// ([`pbw_trace::global_sink`]) at construction; use
    /// [`BspMachine::set_sink`] to attach a specific sink instead.
    pub fn new(params: MachineParams, init: impl FnMut(Pid) -> S) -> Self {
        let p = params.p;
        let states: Vec<S> = (0..p).map(init).collect();
        Self {
            params,
            states,
            inboxes: MsgArena::new(p),
            spare: MsgArena::new(p),
            outboxes: std::iter::repeat_with(Outbox::default).take(p).collect(),
            // Fresh outboxes are empty and zeroed by construction.
            outboxes_clean: true,
            resolved: vec![Vec::new(); p],
            fates: Vec::new(),
            stalled: FrontierMask::new(p),
            crashed: FrontierMask::new(p),
            recv_counts: vec![0; p],
            arena_counts: vec![0; p],
            sparse_arena_counts: EpochCounts::new(p),
            sparse_recv_counts: EpochCounts::new(p),
            seq_lens: Vec::new(),
            frontier: Vec::new(),
            senders: Vec::new(),
            frontier_mask: FrontierMask::new(p),
            sender_flags: vec![0; p],
            sender_mask: FrontierMask::new(p),
            per_proc_sent: Vec::new(),
            builder: ProfileBuilder::new(),
            profiles: Vec::new(),
            superstep: 0,
            sink: pbw_trace::global_sink(),
            trace_label: String::new(),
            hook: None,
            pending: VecDeque::new(),
            pending_pool: Vec::new(),
            fault_stats: FaultStats::default(),
            fault_round: 0,
            recovery_mark: None,
        }
    }

    /// Attach a trace sink, replacing the one captured at construction.
    pub fn set_sink(&mut self, sink: Arc<dyn TraceSink>) -> &mut Self {
        self.sink = sink;
        self
    }

    /// Attach a fault-injection hook consulted at every delivery boundary
    /// (see [`crate::hook`]). Without one the machine is a reliable network.
    pub fn set_delivery_hook(&mut self, hook: Arc<dyn DeliveryHook>) -> &mut Self {
        self.hook = Some(hook);
        self
    }

    /// Remove any fault-injection hook (in-flight delayed payloads still
    /// arrive on schedule).
    pub fn clear_delivery_hook(&mut self) -> &mut Self {
        self.hook = None;
        self
    }

    /// The running fault ledger (all-zero counters besides
    /// `injected`/`delivered` when no hook is attached).
    pub fn fault_stats(&self) -> FaultStats {
        #[cfg(feature = "check-selftest")]
        if self.fault_stats.delivered > 0 && std::env::var_os("PBW_CHECK_SELFTEST").is_some() {
            // Deliberate conservation violation for `pbw-check --self-test`:
            // under-report one delivery so the ledger no longer balances. A
            // checker that does not flag this is itself broken.
            let mut broken = self.fault_stats;
            broken.delivered -= 1;
            return broken;
        }
        self.fault_stats
    }

    /// Payloads currently held inside the network: delayed messages and
    /// duplicate copies that have not yet reached an inbox.
    pub fn faults_in_flight(&self) -> u64 {
        self.fault_stats.in_flight
    }

    /// Retransmission round stamped on subsequent trace events' fault
    /// counters (0 = original transmission; set by recovery protocols).
    pub fn set_fault_round(&mut self, round: u32) -> &mut Self {
        self.fault_round = round;
        self
    }

    /// Stamp a checkpoint/rollback annotation on the *next* emitted trace
    /// event (cleared once consumed, whether or not a sink is enabled).
    /// Set by recovery drivers, never by the engine itself.
    pub fn set_recovery_mark(&mut self, mark: RecoveryMark) -> &mut Self {
        self.recovery_mark = Some(mark);
        self
    }

    /// Label stamped on every trace event this machine emits.
    pub fn set_trace_label(&mut self, label: impl Into<String>) -> &mut Self {
        self.trace_label = label.into();
        self
    }

    /// Machine parameters.
    pub fn params(&self) -> MachineParams {
        self.params
    }

    /// Index of the next superstep to execute (0-based).
    pub fn superstep_index(&self) -> usize {
        self.superstep
    }

    /// Immutable view of a processor's state.
    pub fn state(&self, pid: Pid) -> &S {
        &self.states[pid]
    }

    /// Immutable view of all processor states.
    pub fn states(&self) -> &[S] {
        &self.states
    }

    /// Mutable view of all processor states (for test setup and workload
    /// injection between supersteps).
    pub fn states_mut(&mut self) -> &mut [S] {
        &mut self.states
    }

    /// The inbox a processor would see at the start of the next superstep.
    pub fn pending_inbox(&self, pid: Pid) -> &[M] {
        self.inboxes.inbox(pid)
    }

    /// Profiles of all executed supersteps.
    pub fn profiles(&self) -> &[SuperstepProfile] {
        &self.profiles
    }

    /// A canonical fingerprint of everything that determines the machine's
    /// *future* behavior: the superstep index, all processor states, every
    /// retained inbox, the in-network payload queue (delayed messages and
    /// duplicate copies, level by level in delivery order), and the fault
    /// ledger. Cost history (profiles) is deliberately excluded — it never
    /// feeds back into execution.
    ///
    /// Two machines with equal fingerprints behave identically under equal
    /// program + hook extensions, which is what makes this the sound
    /// duplicate-pruning key of the `pbw-check` bounded explorer. The value
    /// is deterministic within a build (SipHash with fixed keys via
    /// [`DefaultHasher`](std::collections::hash_map::DefaultHasher)) but is
    /// not a stable serialization format across toolchains.
    pub fn canonical_hash(&self) -> u64
    where
        S: std::hash::Hash,
        M: std::hash::Hash,
    {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.superstep.hash(&mut h);
        self.states.hash(&mut h);
        for pid in 0..self.params.p {
            self.inboxes.inbox(pid).hash(&mut h);
        }
        self.pending.len().hash(&mut h);
        for level in &self.pending {
            level.hash(&mut h);
        }
        self.fault_stats.hash(&mut h);
        h.finish()
    }

    /// Total run cost under any cost model: the sum over supersteps.
    pub fn cost(&self, model: &dyn pbw_models::CostModel) -> f64 {
        model.run_cost(&self.profiles)
    }

    /// Execute one superstep, panicking on model-rule violations.
    ///
    /// The closure is called once per processor with
    /// `(pid, &mut state, inbox, &mut outbox)`; the inbox holds the messages
    /// sent to `pid` during the previous superstep, in (source pid, send
    /// order) order.
    pub fn superstep<F>(&mut self, f: F) -> SuperstepReport
    where
        F: Fn(Pid, &mut S, &[M], &mut Outbox<M>) + Sync,
        M: Sync + Clone,
        S: Sync,
    {
        self.try_superstep(f)
            .unwrap_or_else(|e| panic!("superstep failed: {e}"))
    }

    /// Execute one superstep, returning model-rule violations as errors.
    pub fn try_superstep<F>(&mut self, f: F) -> Result<SuperstepReport, SimError>
    where
        F: Fn(Pid, &mut S, &[M], &mut Outbox<M>) + Sync,
        M: Sync + Clone,
        S: Sync,
    {
        self.superstep_core(None, f)
    }

    /// Execute one superstep over a declared active set, panicking on
    /// model-rule violations. See [`BspMachine::try_superstep_active`].
    pub fn superstep_active<F>(&mut self, active: &[Pid], f: F) -> SuperstepReport
    where
        F: Fn(Pid, &mut S, &[M], &mut Outbox<M>) + Sync,
        M: Sync + Clone,
        S: Sync,
    {
        self.try_superstep_active(active, f)
            .unwrap_or_else(|e| panic!("superstep failed: {e}"))
    }

    /// Execute one superstep on the **sparse path**: the closure runs only
    /// for the *frontier* — the union of `active` (the caller's declared
    /// senders) and every processor holding a non-empty inbox from the last
    /// boundary (which covers ordinary deliveries, retained stalled inboxes,
    /// and delayed payloads that have landed). Per-superstep cost is
    /// O(frontier + messages), not O(p): counting and delivery walk only
    /// frontier outboxes, and the per-destination tallies are epoch-stamped
    /// ([`EpochCounts`]) so resetting them is an epoch bump, never an O(p)
    /// `fill(0)`. Exceptions, documented: a machine with a delivery hook
    /// reads the stall/crash masks word-at-a-time (O(fault-words), filled
    /// once per superstep via [`DeliveryHook::fill_fault_masks`]), and a
    /// superstep observed by an enabled trace sink materializes the dense
    /// per-processor traffic vectors its events carry (zeroed rows, filled
    /// O(touched)).
    ///
    /// The result is **byte-identical** to [`BspMachine::try_superstep`] —
    /// same states, profiles, trace events and fault ledger — provided the
    /// closure is a no-op for every skipped processor: for any pid outside
    /// `active` that holds an empty inbox, `f(pid, ..)` must not mutate
    /// state, post messages, or charge work. The frontier is iterated in
    /// sorted pid order, so the canonical sequential delivery order (source
    /// pid ascending, then send order, then due late arrivals) is replayed
    /// exactly; skipped processors only ever contribute
    /// `record_work(0)`/`record_traffic(0, 0)` no-ops to the profile.
    ///
    /// # Panics
    /// Panics if `active` names a pid `>= p`.
    pub fn try_superstep_active<F>(
        &mut self,
        active: &[Pid],
        f: F,
    ) -> Result<SuperstepReport, SimError>
    where
        F: Fn(Pid, &mut S, &[M], &mut Outbox<M>) + Sync,
        M: Sync + Clone,
        S: Sync,
    {
        self.superstep_core(Some(active), f)
    }

    /// The one superstep implementation behind both paths. `active: None`
    /// is the dense path (closure runs for all `p` processors, in
    /// parallel); `active: Some(set)` is the sparse path (closure runs
    /// sequentially over the sorted frontier). Everything downstream of the
    /// closure pass — counting, arena fill, fate application, profile and
    /// trace construction — is shared or shape-identical, which is what
    /// makes the two paths byte-identical by construction.
    fn superstep_core<F>(
        &mut self,
        active: Option<&[Pid]>,
        f: F,
    ) -> Result<SuperstepReport, SimError>
    where
        F: Fn(Pid, &mut S, &[M], &mut Outbox<M>) + Sync,
        M: Sync + Clone,
        S: Sync,
    {
        let p = self.params.p;
        let step = self.superstep as u64;
        // Rotate the arenas: `spare` becomes the read side (last boundary's
        // deliveries), and the arena the previous superstep read from is
        // cleared for refill. If this superstep is rejected below, `inboxes`
        // stays cleared — a failed superstep loses its in-flight messages
        // but nothing else, and the machine stays runnable.
        std::mem::swap(&mut self.inboxes, &mut self.spare);
        self.inboxes.clear();

        // A stalled processor skips its closure this superstep and sees its
        // inbox again next superstep; a crashed processor skips its closure
        // *and* loses every payload whose custody would transfer to it this
        // superstep. The masks are cleared in O(1) (epoch bumps) and filled
        // in one hook call — `fill_fault_masks` lets a hook that knows its
        // fault windows in closed form (FaultPlan with zero rates) insert
        // O(windows) bits instead of answering p per-pid queries. The masks
        // are only ever read behind `hooked`, so the unhooked paths touch
        // nothing p-sized here.
        let hook = self.hook.clone();
        let hooked = hook.is_some();
        let tracing = self.sink.enabled();
        // *Taken*, not read: if this superstep errors or panics the flag
        // stays false and the next superstep resets as usual; only the
        // clean unhooked exit at the bottom re-establishes it.
        let outboxes_were_clean = std::mem::take(&mut self.outboxes_clean);
        if let Some(h) = &hook {
            self.stalled.clear();
            self.crashed.clear();
            h.fill_fault_masks(step, &mut self.stalled, &mut self.crashed);
        }

        // Sparse path: build the frontier — the caller's declared active set
        // plus every processor whose inbox from the last boundary is
        // non-empty (ordinary deliveries, retained stalled inboxes, and
        // landed delayed payloads all live there, so `spare.touched()`
        // covers them without scanning p inboxes). The mask OR is the dedup
        // and its ascending-pid unload is the sort, so the old
        // sort+dedup over the concatenated lists is gone. Sorted pid order
        // is what replays the dense path's canonical delivery order exactly.
        if let Some(declared) = active {
            self.frontier.clear();
            if declared.is_empty() {
                // Nothing declared: the frontier is exactly the touched
                // mask, already deduplicated and ascending — skip the
                // scratch mask entirely. Unhooked, the pid list itself is
                // skipped too: the closure pass iterates the mask directly
                // and every later stage walks the sender list instead.
                if hooked {
                    self.spare.touched().push_to(&mut self.frontier);
                }
            } else {
                self.frontier_mask.clear();
                for &pid in declared {
                    assert!(
                        pid < p,
                        "active set names processor {pid}, but the machine has {p} processors"
                    );
                    self.frontier_mask.insert(pid);
                }
                self.frontier_mask.union_with(self.spare.touched());
                self.frontier_mask.push_to(&mut self.frontier);
            }
        }

        // Individual slot values are only ever read by the hooked fate
        // machinery and the trace multiplicity scan; plain unhooked,
        // untraced supersteps keep the all-implicit marker instead.
        let materialize_slots = hooked || tracing;
        if tracing {
            // Trace events carry dense per-processor traffic vectors; the
            // sparse path materializes them too (O(p), tracing only).
            self.per_proc_sent.clear();
            self.per_proc_sent.resize(p, 0);
        }
        // First resolution error found by the fused sparse closure pass
        // below (reported only after every frontier closure has run, like
        // the unfused paths), and the max messages any one sender posted.
        let mut sparse_err: Option<SimError> = None;
        let mut sparse_max_sent = 0u64;

        // Closure pass. Dense: all p processors in parallel, each filling
        // its recycled outbox and flagging itself as a sender (one byte,
        // written unconditionally — the flag lane is what the density
        // crossover below folds into the sender mask, and writing it here
        // costs nothing next to the outbox reset it shares a cache line
        // with). Sparse: sequentially over the sorted frontier — the
        // frontier is small by contract, and a sequential pass is trivially
        // deterministic at every PBW_THREADS width. Unhooked, each sender's
        // slot resolution, destination counting, and profile facts run
        // right after its closure returns, while the outbox is hot in
        // cache — see `fused_sender_pass`.
        //
        // The macro is the per-sender tail of that fused pass: record the
        // sender, resolve/validate its slots (first error wins, reported
        // only after every closure has run, exactly like the unfused
        // paths), bucket the injection histogram, count destinations
        // straight into the arena's segment table, and track the traffic
        // maximum. A sender whose validation fails contributes nothing
        // further — everything already recorded is discarded wholesale by
        // the error unwind in the delivery arm below.
        macro_rules! fused_sender_pass {
            ($pid:expr) => {{
                let pid = $pid;
                let out = &self.outboxes[pid];
                if !out.envelopes.is_empty() || out.work != 0 {
                    self.senders.push(pid);
                    if out.work != 0 {
                        self.builder.record_work(out.work);
                    }
                    if out.envelopes.is_empty() {
                        // Work-only sender: nothing to resolve or count,
                        // but the trace multiplicity scan walks this pid's
                        // slot buffer — keep it cleared.
                        if materialize_slots {
                            self.resolved[pid].clear();
                        }
                    } else {
                        let n = out.envelopes.len();
                        let mut ok = true;
                        if !materialize_slots && out.explicit == 0 {
                            // Plain `send`s, slots unread anywhere:
                            // validate the dests lane inline and bucket the
                            // all-implicit histogram marker without
                            // touching the slot buffer —
                            // `resolve_slots_into`'s fast path minus the
                            // call and the buffer clear (stale slots are
                            // fine: no consumer reads them when
                            // `materialize` is off).
                            let mut max = 0usize;
                            for &d in &out.dests {
                                max = max.max(d);
                            }
                            if max >= p {
                                if sparse_err.is_none() {
                                    let dest =
                                        out.dests.iter().copied().find(|&d| d >= p).unwrap_or(max);
                                    sparse_err = Some(SimError::BadDestination { pid, dest });
                                }
                                ok = false;
                            } else {
                                if self.seq_lens.len() < n {
                                    self.seq_lens.resize(n, 0);
                                }
                                self.seq_lens[n - 1] += 1;
                            }
                        } else {
                            match resolve_slots_into(
                                pid,
                                p,
                                out,
                                &mut self.resolved[pid],
                                materialize_slots,
                            ) {
                                Err(e) => {
                                    if sparse_err.is_none() {
                                        sparse_err = Some(e);
                                    }
                                    ok = false;
                                }
                                Ok(()) => {
                                    let slots = &self.resolved[pid];
                                    if slots.is_empty() {
                                        if self.seq_lens.len() < n {
                                            self.seq_lens.resize(n, 0);
                                        }
                                        self.seq_lens[n - 1] += 1;
                                    } else {
                                        debug_assert_eq!(slots.len(), n);
                                        self.builder.record_injections_batch(slots);
                                    }
                                }
                            }
                        }
                        if ok {
                            if tracing {
                                self.per_proc_sent[pid] = n as u64;
                            }
                            self.inboxes.count_ones(out.dests());
                            sparse_max_sent = sparse_max_sent.max(n as u64);
                        }
                    }
                }
            }};
        }
        match active {
            None => {
                let f = &f;
                let stalled = &self.stalled;
                let crashed = &self.crashed;
                let spare = &self.spare;
                let _: Vec<()> = self
                    .states
                    .par_iter_mut()
                    .zip(self.outboxes.par_iter_mut())
                    .zip(self.sender_flags.par_iter_mut())
                    .enumerate()
                    .map(|(pid, ((state, out), flag))| {
                        if !outboxes_were_clean {
                            out.reset();
                        }
                        if !(hooked && (stalled.contains(pid) || crashed.contains(pid))) {
                            f(pid, state, spare.inbox(pid), out);
                        }
                        *flag = (!out.envelopes.is_empty() || out.work != 0) as u8;
                    })
                    .collect();
            }
            Some(declared) if !hooked && declared.is_empty() => {
                // Frontier = touched mask verbatim: iterate it in place —
                // same ascending pid order, no materialized pid list. The
                // sender check runs while the outbox is hot in cache; the
                // fused pass below then revisits only senders, never the
                // (typically much wider) receive-only part of the frontier.
                self.senders.clear();
                for (w, word) in self.spare.touched().words() {
                    let base = w * 64;
                    let mut bits = word;
                    while bits != 0 {
                        let pid = base + bits.trailing_zeros() as usize;
                        bits &= bits - 1;
                        if !outboxes_were_clean {
                            self.outboxes[pid].reset();
                        }
                        f(
                            pid,
                            &mut self.states[pid],
                            self.spare.inbox(pid),
                            &mut self.outboxes[pid],
                        );
                        fused_sender_pass!(pid);
                    }
                }
            }
            Some(_) => {
                self.senders.clear();
                for i in 0..self.frontier.len() {
                    let pid = self.frontier[i];
                    if !outboxes_were_clean {
                        self.outboxes[pid].reset();
                    }
                    if !(hooked && (self.stalled.contains(pid) || self.crashed.contains(pid))) {
                        f(
                            pid,
                            &mut self.states[pid],
                            self.spare.inbox(pid),
                            &mut self.outboxes[pid],
                        );
                    }
                    if !hooked {
                        fused_sender_pass!(pid);
                    }
                }
            }
        }

        // Measured density crossover (dense, unhooked): fold the sender
        // flags into a mask, and if the senders are sparse enough — per the
        // once-per-process calibration in `crate::density` — run the rest
        // of the superstep over the sender set with the epoch-stamped
        // tallies, exactly as `superstep_active` would. Byte-identical
        // either way: a flag-less processor has an empty outbox and zero
        // work, so the only facts it would contribute downstream are
        // `record_work(0)`/`record_traffic(0, 0)` no-ops, and the parallel
        // pass above has already reset *all* p outboxes, so no stale buffer
        // can be read. Hooked dense supersteps keep the flat-array branch:
        // stall retention and crash accounting want the full-width scans.
        let mut dense_masked = false;
        if active.is_none() && !hooked {
            self.sender_mask.clear();
            let mut senders = 0usize;
            for (leaf, chunk) in self.sender_flags.chunks(64).enumerate() {
                let mut word = 0u64;
                for (bit, &flag) in chunk.iter().enumerate() {
                    word |= (flag as u64) << bit;
                }
                if word != 0 {
                    self.sender_mask.insert_word(leaf, word);
                    senders += word.count_ones() as usize;
                }
            }
            dense_masked = crate::density::crossover(senders, p);
            if dense_masked {
                self.frontier.clear();
                self.sender_mask.push_to(&mut self.frontier);
            }
        }
        // Everything below branches on the tally representation, not on the
        // caller's path: the masked dense branch *is* the sparse branch run
        // over the sender set.
        let sparse_tallies = active.is_some() || dense_masked;

        // Slot resolution + validation of the one-injection-per-step rule,
        // into the recycled slot buffers. Dense: a parallel fallible collect
        // that surfaces the lowest-pid error. Sparse (and masked dense):
        // sequential over the frontier — non-frontier outboxes are either
        // stale from an earlier superstep (sparse) or freshly reset and
        // empty (masked dense), and are neither resolved nor read anywhere
        // below; ascending frontier order surfaces the same lowest-pid
        // error, since only senders can err.
        match sparse_tallies {
            false => {
                let validated: Result<Vec<()>, SimError> = self
                    .outboxes
                    .par_iter()
                    .zip(self.resolved.par_iter_mut())
                    .enumerate()
                    .map(|(pid, (out, slots))| {
                        resolve_slots_into(pid, p, out, slots, materialize_slots)
                    })
                    .collect();
                validated?;
            }
            true => {
                // Hooked sparse supersteps resolve up front: the fate batch
                // below consumes the slot sequences. Unhooked ones defer
                // resolution into the fused counting pass further down —
                // one streaming pass over the frontier outboxes, not two.
                if hooked {
                    for &pid in &self.frontier {
                        resolve_slots_into(
                            pid,
                            p,
                            &self.outboxes[pid],
                            &mut self.resolved[pid],
                            materialize_slots,
                        )?;
                    }
                }
            }
        }

        // Fates are pure in `(superstep, src, dest, msg_idx, slot)`, so on
        // the dense path they are *computed* in a parallel pass; the
        // sequential loop below only *applies* them, preserving the fixed
        // delivery order the ledger, pending queue, and traces are defined
        // by. The sparse path computes them sequentially over the frontier
        // (purity makes the two orders indistinguishable).
        if let Some(h) = &hook {
            if self.fates.len() != p {
                self.fates.resize_with(p, Vec::new);
            }
            match active {
                None => {
                    let _: Vec<()> = self
                        .outboxes
                        .par_iter()
                        .zip(self.resolved.par_iter())
                        .zip(self.fates.par_iter_mut())
                        .enumerate()
                        .map(|(pid, ((out, slots), fates))| {
                            fates.clear();
                            h.fate_batch(step, pid, BatchDests::Lane(out.dests()), slots, fates);
                        })
                        .collect();
                }
                Some(_) => {
                    for &pid in &self.frontier {
                        let out = &self.outboxes[pid];
                        let slots = &self.resolved[pid];
                        let fates = &mut self.fates[pid];
                        fates.clear();
                        h.fate_batch(step, pid, BatchDests::Lane(out.dests()), slots, fates);
                    }
                }
            }
        }

        // From here on everything is sequential and deterministic. Borrow
        // the machine's parts individually so the delivery loop can fill the
        // arena while queueing pending payloads.
        let Self {
            ref params,
            ref mut inboxes,
            ref spare,
            ref mut outboxes,
            ref mut outboxes_clean,
            ref mut resolved,
            ref fates,
            ref stalled,
            ref crashed,
            ref mut recv_counts,
            ref mut arena_counts,
            ref mut sparse_arena_counts,
            ref mut sparse_recv_counts,
            ref mut seq_lens,
            ref frontier,
            ref mut senders,
            ref mut per_proc_sent,
            ref mut builder,
            ref mut profiles,
            superstep: ref mut superstep_idx,
            ref sink,
            ref trace_label,
            ref mut pending,
            ref mut pending_pool,
            ref mut fault_stats,
            ref fault_round,
            ref mut recovery_mark,
            ..
        } = *self;

        let mut counters = FaultCounters {
            retransmit_round: *fault_round,
            ..Default::default()
        };

        // Payloads the network is due to release at this boundary (queued by
        // earlier Delay/Duplicate fates). Popped before this superstep's
        // sends are queued, so a `Delay(k)` waits exactly `k` extra steps.
        let due: Vec<(Pid, M)> = pending.pop_front().unwrap_or_default();

        // Counting pass + delivery. Both branches run the identical
        // sequence — stall accounting, per-destination counting, arena
        // layout, retained-inbox re-placement, then `delivery_pass` — over
        // the same pids in the same order (every non-frontier pid the dense
        // branch additionally visits holds no messages, by the
        // `try_superstep_active` contract, so it contributes nothing). Only
        // the tally representation differs: dense `fill(0)` vectors vs
        // O(1)-reset epoch-stamped counts.
        // Unhooked with no late arrivals, the per-destination receive
        // tallies are bit-for-bit the arena counts (every counted message
        // is placed, nothing else is); the sparse arm exploits this below
        // and the trace row reads the arena counts in that case.
        let fuse_recv = !hooked && due.is_empty();
        let delivered = match sparse_tallies {
            false => {
                // Stalled processors keep their undrained inbox (already
                // counted as delivered at the previous boundary — not
                // recounted in `recv_counts`); it is retained ahead of this
                // superstep's deliveries, exactly where the per-destination
                // push used to put it. A *crashed* processor gets no
                // retention even if simultaneously stalled: its undrained
                // inbox simply evaporates at the arena swap, exactly as it
                // does for a live processor that ignores its inbox, so the
                // ledger (which counted those payloads delivered at the
                // previous boundary) is untouched. Both scans walk the
                // masks word-at-a-time — O(fault-words), not O(p); the
                // counters are sums and the per-pid updates are disjoint,
                // so the mask order (ascending pid) reproduces the old
                // 0..p scan exactly.
                arena_counts.fill(0);
                if hooked {
                    let down = crashed.count() as u64;
                    fault_stats.crash_steps += down;
                    counters.crashed_procs += down;
                    for (leaf, word) in stalled.words() {
                        let live = word & !crashed.word(leaf);
                        let retained = u64::from(live.count_ones());
                        fault_stats.stalled_steps += retained;
                        counters.stalled_procs += retained;
                        let mut bits = live;
                        while bits != 0 {
                            let pid = leaf * 64 + bits.trailing_zeros() as usize;
                            bits &= bits - 1;
                            arena_counts[pid] += spare.len(pid);
                        }
                    }
                }
                for (pid, out) in outboxes.iter().enumerate() {
                    if hooked {
                        crate::kernels::count_dests_hooked(
                            out.dests(),
                            &fates[pid],
                            crashed,
                            arena_counts,
                        );
                    } else {
                        crate::kernels::count_dests(out.dests(), arena_counts);
                    }
                }
                for &(dest, _) in due.iter() {
                    if !(hooked && crashed.contains(dest)) {
                        arena_counts[dest] += 1;
                    }
                }
                inboxes.begin(arena_counts);
                if hooked {
                    for (leaf, word) in stalled.words() {
                        let mut bits = word & !crashed.word(leaf);
                        while bits != 0 {
                            let pid = leaf * 64 + bits.trailing_zeros() as usize;
                            bits &= bits - 1;
                            for msg in spare.inbox(pid) {
                                inboxes.place(pid, msg.clone());
                            }
                        }
                    }
                }
                recv_counts.fill(0);
                let delivered = delivery_pass(
                    0..p,
                    outboxes,
                    resolved,
                    fates,
                    hooked,
                    crashed,
                    tracing,
                    per_proc_sent,
                    inboxes,
                    builder,
                    pending,
                    pending_pool,
                    fault_stats,
                    &mut counters,
                    due,
                    seq_lens,
                    |dest| recv_counts[dest] += 1,
                );
                inboxes.finish();
                for &r in recv_counts.iter() {
                    builder.record_traffic(0, r);
                }
                delivered
            }
            // Unhooked sparse superstep: one fused streaming pass over the
            // frontier outboxes does slot resolution, destination counting,
            // and the per-sender profile facts together (the unfused path
            // walks the same outboxes three times), and remembers who
            // actually sent so the delivery drain revisits only senders — a
            // wide receive-only frontier contributes nothing to delivery.
            // Every fact lands in the same value the unfused path produces:
            // work/traffic records are max-updates, the injection histogram
            // and the destination counts are sums, and the drain places
            // payloads in the identical ascending (sender pid, send order)
            // sequence, so the arena bytes and the profile are unchanged.
            true if !hooked => {
                // Sparse path: the closure pass recorded the senders *and*
                // already ran the fused per-sender tail (resolution,
                // counting, profile facts) while each outbox was hot.
                // Masked dense: the frontier was *built* from the sender
                // flags, so it already is the sender set — but its closure
                // pass ran in parallel over all p, so the fused tail runs
                // here instead.
                let live: &[Pid] = if active.is_some() {
                    &senders[..]
                } else {
                    &frontier[..]
                };
                let mut err = sparse_err;
                let mut max_sent = sparse_max_sent;
                if active.is_none() {
                    for &pid in live.iter() {
                        let out = &outboxes[pid];
                        if out.work != 0 {
                            builder.record_work(out.work);
                        }
                        if out.envelopes.is_empty() {
                            // Work-only sender: nothing to resolve or
                            // count, but the trace multiplicity scan walks
                            // this pid's slot buffer — keep it cleared.
                            if materialize_slots {
                                resolved[pid].clear();
                            }
                            continue;
                        }
                        let n = out.envelopes.len();
                        if !materialize_slots && out.explicit == 0 {
                            // Plain `send`s, slots unread anywhere: validate
                            // the dests lane inline and bucket the
                            // all-implicit histogram marker without touching
                            // the slot buffer — `resolve_slots_into`'s fast
                            // path minus the call and the buffer clear
                            // (stale slots are fine: no consumer reads them
                            // when `materialize` is off).
                            let mut max = 0usize;
                            for &d in &out.dests {
                                max = max.max(d);
                            }
                            if max >= p {
                                let dest =
                                    out.dests.iter().copied().find(|&d| d >= p).unwrap_or(max);
                                err = Some(SimError::BadDestination { pid, dest });
                                break;
                            }
                            if seq_lens.len() < n {
                                seq_lens.resize(n, 0);
                            }
                            seq_lens[n - 1] += 1;
                        } else {
                            if let Err(e) = resolve_slots_into(
                                pid,
                                p,
                                out,
                                &mut resolved[pid],
                                materialize_slots,
                            ) {
                                err = Some(e);
                                break;
                            }
                            let slots = &resolved[pid];
                            if slots.is_empty() {
                                if seq_lens.len() < n {
                                    seq_lens.resize(n, 0);
                                }
                                seq_lens[n - 1] += 1;
                            } else {
                                debug_assert_eq!(slots.len(), n);
                                builder.record_injections_batch(slots);
                            }
                        }
                        if tracing {
                            per_proc_sent[pid] = n as u64;
                        }
                        // Counts accumulate straight into the arena's
                        // segment table — no second tally structure between
                        // the counting pass and the layout.
                        inboxes.count_ones(out.dests());
                        max_sent = max_sent.max(n as u64);
                    }
                }
                builder.record_traffic(max_sent, 0);
                if let Some(e) = err {
                    // A failed superstep must leave the builder and the
                    // length buckets empty, exactly as the unfused paths do
                    // (they resolve everything before recording anything),
                    // and the arena cleared — one epoch bump discards the
                    // partial counts.
                    let _ = builder.snapshot_reset();
                    for c in seq_lens.iter_mut() {
                        *c = 0;
                    }
                    inboxes.clear();
                    return Err(e);
                }
                for &(dest, _) in due.iter() {
                    inboxes.count(dest, 1);
                }
                let max_recv = inboxes.begin_counted();
                sparse_recv_counts.reset();
                let mut delivered = 0u64;
                for &pid in live.iter() {
                    let out = &mut outboxes[pid];
                    let n = out.envelopes.len() as u64;
                    for env in out.envelopes.drain(..) {
                        if !fuse_recv {
                            sparse_recv_counts.add(env.dest, 1);
                        }
                        inboxes.place(env.dest, env.payload);
                    }
                    // Leave the outbox fully zeroed, not just drained, so
                    // the next superstep's closure pass can skip its reset
                    // (`outboxes_clean`).
                    out.dests.clear();
                    out.work = 0;
                    out.explicit = 0;
                    fault_stats.injected += n;
                    fault_stats.delivered += n;
                    delivered += n;
                }
                builder.record_injections_by_len(seq_lens);
                for c in seq_lens.iter_mut() {
                    *c = 0;
                }
                let mut due = due;
                for (dest, payload) in due.drain(..) {
                    fault_stats.in_flight -= 1;
                    if !fuse_recv {
                        sparse_recv_counts.add(dest, 1);
                    }
                    inboxes.place(dest, payload);
                    delivered += 1;
                    fault_stats.delivered += 1;
                    counters.late_arrivals += 1;
                }
                if due.capacity() > 0 && pending_pool.len() < PENDING_POOL_CAP {
                    pending_pool.push(due);
                }
                inboxes.finish();
                if fuse_recv {
                    builder.record_traffic(0, max_recv);
                } else {
                    builder.record_recv_sparse(sparse_recv_counts);
                }
                delivered
            }
            true => {
                // Same sequence, epoch-stamped tallies, hooked: the stall
                // scans iterate the fault masks word-at-a-time —
                // O(fault-words), never O(p).
                sparse_arena_counts.reset();
                if hooked {
                    let down = crashed.count() as u64;
                    fault_stats.crash_steps += down;
                    counters.crashed_procs += down;
                    for (leaf, word) in stalled.words() {
                        let live = word & !crashed.word(leaf);
                        let retained = u64::from(live.count_ones());
                        fault_stats.stalled_steps += retained;
                        counters.stalled_procs += retained;
                        let mut bits = live;
                        while bits != 0 {
                            let pid = leaf * 64 + bits.trailing_zeros() as usize;
                            bits &= bits - 1;
                            sparse_arena_counts.add(pid, spare.len(pid) as u64);
                        }
                    }
                }
                for &pid in frontier.iter() {
                    let out = &outboxes[pid];
                    if hooked {
                        crate::kernels::count_dests_sparse_hooked(
                            out.dests(),
                            &fates[pid],
                            crashed,
                            sparse_arena_counts,
                        );
                    } else {
                        crate::kernels::count_dests_sparse(out.dests(), sparse_arena_counts);
                    }
                }
                for &(dest, _) in due.iter() {
                    if !(hooked && crashed.contains(dest)) {
                        sparse_arena_counts.add(dest, 1);
                    }
                }
                let max_recv = inboxes.begin_sparse(sparse_arena_counts);
                if hooked {
                    for (leaf, word) in stalled.words() {
                        let mut bits = word & !crashed.word(leaf);
                        while bits != 0 {
                            let pid = leaf * 64 + bits.trailing_zeros() as usize;
                            bits &= bits - 1;
                            for msg in spare.inbox(pid) {
                                inboxes.place(pid, msg.clone());
                            }
                        }
                    }
                }
                // With `fuse_recv`, the only profile fact the receive
                // tallies feed is the receive maximum — which the layout
                // pass above already computed. Skip the per-message recv
                // bump and the second touched sweep entirely.
                sparse_recv_counts.reset();
                let delivered = if fuse_recv {
                    delivery_pass(
                        frontier.iter().copied(),
                        outboxes,
                        resolved,
                        fates,
                        hooked,
                        crashed,
                        tracing,
                        per_proc_sent,
                        inboxes,
                        builder,
                        pending,
                        pending_pool,
                        fault_stats,
                        &mut counters,
                        due,
                        seq_lens,
                        |_| {},
                    )
                } else {
                    delivery_pass(
                        frontier.iter().copied(),
                        outboxes,
                        resolved,
                        fates,
                        hooked,
                        crashed,
                        tracing,
                        per_proc_sent,
                        inboxes,
                        builder,
                        pending,
                        pending_pool,
                        fault_stats,
                        &mut counters,
                        due,
                        seq_lens,
                        |dest| sparse_recv_counts.add(dest, 1),
                    )
                };
                inboxes.finish();
                if fuse_recv {
                    builder.record_traffic(0, max_recv);
                } else {
                    builder.record_recv_sparse(sparse_recv_counts);
                }
                delivered
            }
        };

        let profile = builder.snapshot_reset();
        // Taken unconditionally so mark consumption is sink-independent.
        let mark = recovery_mark.take();
        if tracing {
            // Trace rows are dense by format (length p), but the sparse
            // fill is O(touched): a zeroed row plus one write per receiver
            // named by the dirty mask, instead of p stamp-checked reads.
            let per_proc_recv: Vec<u64> = match sparse_tallies {
                false => recv_counts.clone(),
                true => {
                    let mut row = vec![0u64; p];
                    if fuse_recv {
                        // Unhooked with no late arrivals: the published
                        // arena segments *are* the receive tallies.
                        for d in inboxes.touched().iter() {
                            row[d] = inboxes.len(d) as u64;
                        }
                    } else {
                        for d in sparse_recv_counts.touched().iter() {
                            row[d] = sparse_recv_counts.get(d);
                        }
                    }
                    row
                }
            };
            let max_mult = match sparse_tallies {
                false => crate::max_slot_multiplicity(resolved, 0..p),
                // Unhooked sparse supersteps resolve only the senders (the
                // fused pass skips receive-only frontier pids, whose slot
                // buffers may hold stale earlier-superstep data); scan
                // exactly the resolved set — quiet pids have no envelopes
                // and would contribute nothing anyway.
                true if !hooked && active.is_some() => {
                    crate::max_slot_multiplicity(resolved, senders.iter().copied())
                }
                true => crate::max_slot_multiplicity(resolved, frontier.iter().copied()),
            };
            let mut ev = TraceEvent::for_superstep(
                TraceSource::Bsp,
                trace_label.clone(),
                step,
                *params,
                profile.clone(),
                std::mem::take(per_proc_sent),
                per_proc_recv,
                max_mult,
                delivered,
            );
            if hooked {
                ev = ev.with_faults(counters);
            }
            if let Some(m) = mark {
                ev = ev.with_recovery(m);
            }
            sink.record(ev);
        }
        profiles.push(profile.clone());
        // Unhooked supersteps leave every dirtied outbox drained and zeroed
        // (see the delivery drains above); combined with an all-clean entry
        // — or the dense pass's reset of all p — the whole population is
        // clean again, and the next superstep's closure pass skips its
        // resets. Hooked supersteps make no such claim.
        *outboxes_clean = !hooked && (outboxes_were_clean || active.is_none());
        *superstep_idx += 1;
        Ok(SuperstepReport { profile, delivered })
    }

    /// Run supersteps until `f` posts no messages anywhere (quiescence) or
    /// `max_supersteps` is reached; returns the number of supersteps run.
    pub fn run_to_quiescence<F>(&mut self, f: F, max_supersteps: usize) -> usize
    where
        F: Fn(Pid, &mut S, &[M], &mut Outbox<M>) + Sync,
        M: Sync + Clone,
        S: Sync,
    {
        for i in 0..max_supersteps {
            let report = self.superstep(&f);
            if report.delivered == 0 {
                return i + 1;
            }
        }
        max_supersteps
    }
}

/// A superstep-consistent snapshot of a [`BspMachine`]: exactly the state
/// [`BspMachine::canonical_hash`] covers — superstep index, processor
/// states, every retained inbox, the pending network queue, and the fault
/// ledger. Taken at a barrier (between supersteps) there is nothing else in
/// flight, which is why a barrier-aligned snapshot is globally consistent
/// without any coordination protocol.
#[derive(Debug, Clone)]
pub struct MachineCheckpoint<S, M> {
    superstep: usize,
    states: Vec<S>,
    inboxes: Vec<Vec<M>>,
    pending: Vec<Vec<(Pid, M)>>,
    fault_stats: FaultStats,
}

impl<S, M> MachineCheckpoint<S, M> {
    /// Superstep index the snapshot was taken at (the next one to execute).
    pub fn superstep(&self) -> u64 {
        self.superstep as u64
    }

    /// Number of processors captured.
    pub fn p(&self) -> usize {
        self.states.len()
    }

    /// Payloads captured in `pid`'s inbox.
    pub fn inbox_payloads(&self, pid: Pid) -> u64 {
        self.inboxes[pid].len() as u64
    }

    /// State volume `pid` contributes to a checkpoint write, in payload
    /// units: one word of processor state plus the retained inbox. This is
    /// what the recovery driver schedules as an h-relation.
    pub fn state_words(&self, pid: Pid) -> u64 {
        1 + self.inbox_payloads(pid)
    }

    /// Total payloads captured across inboxes and the pending network.
    pub fn total_payloads(&self) -> u64 {
        let inboxed: u64 = self.inboxes.iter().map(|b| b.len() as u64).sum();
        inboxed + self.pending_payloads()
    }

    /// Payloads captured inside the pending network queue.
    pub fn pending_payloads(&self) -> u64 {
        self.pending.iter().map(|l| l.len() as u64).sum()
    }

    /// The ledger as of the snapshot.
    pub fn fault_stats(&self) -> FaultStats {
        self.fault_stats
    }
}

impl<S: Send + Clone, M: Send + Clone> BspMachine<S, M> {
    /// Snapshot the machine at the current superstep boundary. Call only
    /// between supersteps (any `&self` moment is one); the snapshot holds
    /// exactly the [`BspMachine::canonical_hash`]-covered state, so
    /// [`BspMachine::restore`] round-trips the hash bit-exactly.
    ///
    /// Cost history (profiles) is deliberately excluded, mirroring
    /// `canonical_hash`: rolled-back supersteps really executed and really
    /// cost wall-clock time, so their profiles stay on the books.
    pub fn checkpoint(&self) -> MachineCheckpoint<S, M> {
        MachineCheckpoint {
            superstep: self.superstep,
            states: self.states.clone(),
            inboxes: (0..self.params.p)
                .map(|pid| self.inboxes.inbox(pid).to_vec())
                .collect(),
            pending: self.pending.iter().cloned().collect(),
            fault_stats: self.fault_stats,
        }
    }

    /// Load snapshot state *exactly*, ledger included: afterwards
    /// `canonical_hash()` equals the hash at [`BspMachine::checkpoint`]
    /// time, bit for bit. This is the testing/replay primitive; recovery
    /// protocols use [`BspMachine::rollback`], which keeps the ledger
    /// monotone instead of rewinding it.
    ///
    /// # Panics
    /// Panics if the snapshot was taken on a machine with a different `p`.
    pub fn restore(&mut self, ckpt: &MachineCheckpoint<S, M>) {
        self.load_snapshot(ckpt);
        self.fault_stats = ckpt.fault_stats;
    }

    /// Roll back to `ckpt` the way a recovery protocol does: machine state
    /// (superstep index, processor states, inboxes, pending network)
    /// reverts to the snapshot, but the fault ledger stays monotone — the
    /// aborted timeline's work really happened and stays on the books:
    ///
    /// * every payload currently in flight is written off to `crashed`
    ///   (the rollback abandons it with the timeline);
    /// * the snapshot's inbox and pending payloads are re-materialized and
    ///   credited to `restored` (inbox payloads also re-enter `delivered`,
    ///   since they sit in inboxes again; pending ones re-enter
    ///   `in_flight`).
    ///
    /// The conservation law `injected + duplicated + restored ==
    /// delivered + dropped + crashed + in_flight` holds after rollback
    /// whenever it held before — both sides grow by exactly the snapshot's
    /// payload count.
    ///
    /// # Panics
    /// Panics if the snapshot was taken on a machine with a different `p`.
    pub fn rollback(&mut self, ckpt: &MachineCheckpoint<S, M>) {
        let discarded = self.fault_stats.in_flight;
        let inboxed: u64 = ckpt.inboxes.iter().map(|b| b.len() as u64).sum();
        let pending = ckpt.pending_payloads();
        self.load_snapshot(ckpt);
        self.fault_stats.crashed += discarded;
        self.fault_stats.restored += inboxed + pending;
        self.fault_stats.delivered += inboxed;
        self.fault_stats.in_flight = pending;
    }

    fn load_snapshot(&mut self, ckpt: &MachineCheckpoint<S, M>) {
        let p = self.params.p;
        assert_eq!(
            ckpt.states.len(),
            p,
            "snapshot captured {} processors, machine has {p}",
            ckpt.states.len()
        );
        self.superstep = ckpt.superstep;
        self.states.clone_from(&ckpt.states);
        // Rebuild the inbox arena through its normal begin/place/finish
        // protocol so segment layout and touched-tracking (the sparse
        // frontier source) match a machine that arrived here by executing.
        self.inboxes.clear();
        for (pid, inbox) in ckpt.inboxes.iter().enumerate() {
            self.arena_counts[pid] = inbox.len();
        }
        self.inboxes.begin(&self.arena_counts);
        for (pid, inbox) in ckpt.inboxes.iter().enumerate() {
            for msg in inbox {
                self.inboxes.place(pid, msg.clone());
            }
        }
        self.inboxes.finish();
        // Recycle the abandoned pending levels, then clone the snapshot's.
        while let Some(mut level) = self.pending.pop_front() {
            level.clear();
            if self.pending_pool.len() < PENDING_POOL_CAP {
                self.pending_pool.push(level);
            }
        }
        for level in &ckpt.pending {
            let mut buf = self.pending_pool.pop().unwrap_or_default();
            buf.extend(level.iter().cloned());
            self.pending.push_back(buf);
        }
    }
}

/// How many drained pending-delivery buffers a machine keeps for reuse.
const PENDING_POOL_CAP: usize = 16;

/// Queue `payload` for delivery at the boundary `k ≥ 1` supersteps from now,
/// reusing drained level buffers from `pool`.
fn queue_pending<M>(
    pending: &mut VecDeque<Vec<(Pid, M)>>,
    pool: &mut Vec<Vec<(Pid, M)>>,
    fault_stats: &mut FaultStats,
    k: u32,
    dest: Pid,
    payload: M,
) {
    let idx = (k.max(1) - 1) as usize;
    while pending.len() <= idx {
        pending.push_back(pool.pop().unwrap_or_default());
    }
    pending[idx].push((dest, payload));
    fault_stats.in_flight += 1;
}

/// The sequential, deterministic heart of a superstep: walk `pids`'
/// outboxes in order, record their work/send traffic, apply each envelope's
/// fate in the canonical delivery order (source pid ascending, then send
/// order), place surviving payloads into the arena, then land the due late
/// arrivals after them. Returns the number of payloads delivered.
///
/// Shared verbatim between the dense path (`pids` = `0..p`) and the sparse
/// path (`pids` = the sorted frontier): every pid the dense iteration
/// additionally visits holds an empty outbox, whose only effect is
/// `record_work(0)`/`record_traffic(0, 0)` — no-ops on the profile's maxima
/// — so the two instantiations are byte-identical by construction.
///
/// `bump_recv` abstracts the receive-count tally (dense `Vec` vs
/// epoch-stamped [`EpochCounts`]); it is a generic parameter, not a dyn
/// call, so the dense instantiation compiles to exactly the old inline
/// increment.
#[allow(clippy::too_many_arguments)]
fn delivery_pass<M: Clone>(
    pids: impl Iterator<Item = Pid>,
    outboxes: &mut [Outbox<M>],
    resolved: &[Vec<u64>],
    fates: &[Vec<Fate>],
    hooked: bool,
    crashed: &FrontierMask,
    tracing: bool,
    per_proc_sent: &mut [u64],
    inboxes: &mut MsgArena<M>,
    builder: &mut ProfileBuilder,
    pending: &mut VecDeque<Vec<(Pid, M)>>,
    pending_pool: &mut Vec<Vec<(Pid, M)>>,
    fault_stats: &mut FaultStats,
    counters: &mut FaultCounters,
    mut due: Vec<(Pid, M)>,
    seq_lens: &mut Vec<u64>,
    mut bump_recv: impl FnMut(Pid),
) -> u64 {
    let mut delivered = 0u64;
    for pid in pids {
        let out = &mut outboxes[pid];
        let slots = &resolved[pid];
        // `record_work(0)` and `record_traffic(0, 0)` are max-updates with
        // 0 — semantic no-ops — so quiet processors (the bulk of a wide
        // receive-only frontier) skip the builder calls entirely.
        if out.work != 0 {
            builder.record_work(out.work);
            // Zeroed where recorded (never unconditionally): quiet outboxes
            // stay untouched, and a fully drained-and-zeroed population is
            // what lets the next superstep skip its resets
            // (`outboxes_clean`).
            out.work = 0;
        }
        if tracing {
            per_proc_sent[pid] = out.envelopes.len() as u64;
        }
        if !hooked {
            // Unhooked batch branch: every fate is `Deliver` and no
            // destination can be dead, so the per-message ledger updates
            // collapse to bulk arithmetic and the slot charges to one
            // batched scatter — bit-identical to the loop below with
            // `fate = Deliver` and `dest_dead = false` throughout. Empty
            // outboxes (the common case on a dense near-idle machine) skip
            // even the bulk arithmetic: a p-sized sweep of quiet
            // processors must stay a p-sized sweep of nothing.
            if !out.envelopes.is_empty() {
                let n = out.envelopes.len() as u64;
                builder.record_traffic(n, 0);
                if slots.is_empty() {
                    // All-implicit marker from the slot resolution: this
                    // sender's slots are exactly `0..n`. Bucket it by
                    // length; one `record_injections_by_len` call after the
                    // loop replays the whole population's histogram
                    // contributions in bulk (sums — order unobservable).
                    let k = out.envelopes.len() - 1;
                    if seq_lens.len() <= k {
                        seq_lens.resize(k + 1, 0);
                    }
                    seq_lens[k] += 1;
                } else {
                    debug_assert_eq!(slots.len(), out.envelopes.len());
                    builder.record_injections_batch(slots);
                }
                for env in out.envelopes.drain(..) {
                    bump_recv(env.dest);
                    inboxes.place(env.dest, env.payload);
                }
                out.dests.clear();
                out.explicit = 0;
                fault_stats.injected += n;
                fault_stats.delivered += n;
                delivered += n;
            }
            continue;
        }
        builder.record_traffic(out.envelopes.len() as u64, 0);
        for (msg_idx, (env, &slot)) in out.envelopes.drain(..).zip(slots.iter()).enumerate() {
            let fate = if hooked {
                fates[pid][msg_idx]
            } else {
                Fate::Deliver
            };
            fault_stats.injected += 1;
            // A payload bound for a crash-stopped destination is destroyed
            // at the custody transfer: bandwidth and the injection slot
            // were consumed (the network accepted the send), but nothing
            // lands and the `crashed` ledger column is charged instead of
            // `delivered`.
            let dest_dead = hooked && crashed.contains(env.dest);
            match fate {
                Fate::Deliver => {
                    builder.record_injection(slot);
                    if dest_dead {
                        fault_stats.crashed += 1;
                        counters.crashed += 1;
                    } else {
                        bump_recv(env.dest);
                        inboxes.place(env.dest, env.payload);
                        delivered += 1;
                        fault_stats.delivered += 1;
                    }
                }
                Fate::Drop => {
                    // The send consumed bandwidth and a slot; nothing
                    // arrives.
                    builder.record_injection(slot);
                    fault_stats.dropped += 1;
                    counters.dropped += 1;
                }
                Fate::Duplicate => {
                    builder.record_injection(slot);
                    let copy = env.payload.clone();
                    if dest_dead {
                        fault_stats.crashed += 1;
                        counters.crashed += 1;
                    } else {
                        bump_recv(env.dest);
                        inboxes.place(env.dest, env.payload);
                        delivered += 1;
                        fault_stats.delivered += 1;
                    }
                    // The spurious copy arrives next superstep and meets
                    // *that* superstep's crash set when it lands.
                    queue_pending(pending, pending_pool, fault_stats, 1, env.dest, copy);
                    fault_stats.duplicated += 1;
                    counters.duplicated += 1;
                }
                Fate::Delay(k) => {
                    builder.record_injection(slot);
                    queue_pending(
                        pending,
                        pending_pool,
                        fault_stats,
                        k.max(1),
                        env.dest,
                        env.payload,
                    );
                    fault_stats.delayed += 1;
                    counters.delayed += 1;
                }
                Fate::Displace(d) => {
                    builder.record_injection(slot + d);
                    if dest_dead {
                        fault_stats.crashed += 1;
                        counters.crashed += 1;
                    } else {
                        bump_recv(env.dest);
                        inboxes.place(env.dest, env.payload);
                        delivered += 1;
                        fault_stats.delivered += 1;
                    }
                    fault_stats.displaced += 1;
                    counters.displaced += 1;
                }
            }
        }
        out.dests.clear();
        out.explicit = 0;
    }
    builder.record_injections_by_len(seq_lens);
    for c in seq_lens.iter_mut() {
        *c = 0;
    }
    // Late arrivals land at the same boundary as this superstep's sends,
    // after them, and are charged receive bandwidth here. A late arrival
    // whose destination is dead *now* is destroyed now — its earlier delay
    // only deferred the custody transfer.
    for (dest, payload) in due.drain(..) {
        fault_stats.in_flight -= 1;
        if hooked && crashed.contains(dest) {
            fault_stats.crashed += 1;
            counters.crashed += 1;
            continue;
        }
        bump_recv(dest);
        inboxes.place(dest, payload);
        delivered += 1;
        fault_stats.delivered += 1;
        counters.late_arrivals += 1;
    }
    if due.capacity() > 0 && pending_pool.len() < PENDING_POOL_CAP {
        pending_pool.push(due);
    }
    delivered
}

/// Assign injection slots to a processor's envelopes, refilling the recycled
/// `out` buffer: explicit slots are honoured; auto messages fill the
/// earliest slots not explicitly claimed. Errors if two explicit sends
/// collide or a destination is invalid.
///
/// Allocation-free once `out` has warmed up, explicit slots included: the
/// claim set is a sorted scratch prefix of `out` itself (drained off before
/// returning), so a steady all-to-all of `send_at` calls — the sample-sort
/// exchange — touches the heap zero times per superstep.
fn resolve_slots_into<M>(
    pid: Pid,
    p: usize,
    out: &Outbox<M>,
    slots: &mut Vec<u64>,
    materialize: bool,
) -> Result<(), SimError> {
    slots.clear();
    // Fast path: plain `send` calls only (the outbox counted zero `send_at`
    // posts) — slots are simply `0..n`, and the only remaining check is
    // destination bounds, a vectorizable max over the flat dests lane (no
    // envelope walk). On violation the lane is rescanned for the first
    // offender, the same envelope the general first pass names. When no
    // consumer reads individual slots (`materialize` false: unhooked,
    // untraced), the sequence isn't even written — the empty buffer is the
    // marker the delivery pass aggregates sequentially-slotted senders on.
    let envelopes = &out.envelopes;
    if out.explicit == 0 {
        let mut max = 0usize;
        for &d in &out.dests {
            max = max.max(d);
        }
        if max >= p {
            let dest = out.dests.iter().copied().find(|&d| d >= p).unwrap_or(max);
            return Err(SimError::BadDestination { pid, dest });
        }
        if materialize {
            slots.extend(0..envelopes.len() as u64);
        }
        return Ok(());
    }
    for env in envelopes {
        if env.dest >= p {
            return Err(SimError::BadDestination {
                pid,
                dest: env.dest,
            });
        }
        if let Some(s) = env.slot {
            slots.push(s);
        }
    }
    let claimed = slots.len();
    slots[..claimed].sort_unstable();
    if let Some(w) = slots[..claimed].windows(2).find(|w| w[0] == w[1]) {
        return Err(SimError::DuplicateSlot { pid, slot: w[0] });
    }
    slots.reserve(envelopes.len());
    // Autos merge against the sorted claim prefix: `next_auto` is monotone,
    // so a single cursor visits each claimed slot at most once.
    let mut next_auto = 0u64;
    let mut cursor = 0usize;
    for env in envelopes {
        match env.slot {
            Some(s) => slots.push(s),
            None => {
                while cursor < claimed && slots[cursor] <= next_auto {
                    if slots[cursor] == next_auto {
                        next_auto += 1;
                    }
                    cursor += 1;
                }
                slots.push(next_auto);
                next_auto += 1;
            }
        }
    }
    slots.drain(..claimed);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hook::DeliveryCtx;
    use pbw_models::{BspG, BspM, PenaltyFn};

    fn params(p: usize) -> MachineParams {
        MachineParams::from_gap(p, 4, 8)
    }

    #[test]
    fn messages_arrive_next_superstep() {
        let mut m: BspMachine<u64, u64> = BspMachine::new(params(4), |_| 0);
        m.superstep(|pid, _s, inbox, out| {
            assert!(inbox.is_empty());
            out.send((pid + 1) % 4, pid as u64 * 10);
        });
        m.superstep(|pid, s, inbox, _out| {
            assert_eq!(inbox.len(), 1);
            *s = inbox[0];
            assert_eq!(inbox[0], (((pid + 3) % 4) as u64) * 10);
        });
        assert_eq!(m.states(), &[30, 0, 10, 20]);
    }

    #[test]
    fn auto_slots_are_pipelined() {
        let mut m: BspMachine<(), u8> = BspMachine::new(params(4), |_| ());
        m.superstep(|pid, _s, _in, out| {
            if pid == 0 {
                for _ in 0..5 {
                    out.send(1, 0);
                }
            }
        });
        // Processor 0 injected 1 message at each of steps 0..5.
        assert_eq!(m.profiles()[0].injections, vec![1, 1, 1, 1, 1]);
        assert_eq!(m.profiles()[0].max_sent, 5);
        assert_eq!(m.profiles()[0].max_received, 5);
    }

    #[test]
    fn explicit_slots_build_histogram() {
        let mut m: BspMachine<(), u8> = BspMachine::new(params(4), |_| ());
        m.superstep(|pid, _s, _in, out| {
            // All four processors inject at slot 7.
            out.send_at((pid + 1) % 4, 1, 7);
        });
        let prof = &m.profiles()[0];
        assert_eq!(prof.injections.len(), 8);
        assert_eq!(prof.injections[7], 4);
        assert_eq!(prof.total_messages, 4);
    }

    #[test]
    fn auto_slots_avoid_explicit_ones() {
        let mut m: BspMachine<(), u8> = BspMachine::new(params(4), |_| ());
        m.superstep(|pid, _s, _in, out| {
            if pid == 0 {
                out.send_at(1, 9, 0); // claims slot 0
                out.send(1, 9); // must land on slot 1
                out.send_at(1, 9, 2); // claims slot 2
                out.send(1, 9); // must land on slot 3
            }
        });
        assert_eq!(m.profiles()[0].injections, vec![1, 1, 1, 1]);
    }

    #[test]
    fn duplicate_slot_rejected() {
        let mut m: BspMachine<(), u8> = BspMachine::new(params(4), |_| ());
        let err = m
            .try_superstep(|pid, _s, _in, out| {
                if pid == 2 {
                    out.send_at(0, 1, 5);
                    out.send_at(1, 1, 5);
                }
            })
            .unwrap_err();
        assert_eq!(err, SimError::DuplicateSlot { pid: 2, slot: 5 });
    }

    #[test]
    fn bad_destination_rejected() {
        let mut m: BspMachine<(), u8> = BspMachine::new(params(4), |_| ());
        let err = m
            .try_superstep(|pid, _s, _in, out| {
                if pid == 0 {
                    out.send(99, 1);
                }
            })
            .unwrap_err();
        assert_eq!(err, SimError::BadDestination { pid: 0, dest: 99 });
    }

    #[test]
    fn delivery_order_is_source_then_send_order() {
        let mut m: BspMachine<Vec<u64>, u64> = BspMachine::new(params(4), |_| Vec::new());
        m.superstep(|pid, _s, _in, out| {
            // Everyone sends two tagged messages to processor 0.
            out.send(0, (pid as u64) * 10);
            out.send(0, (pid as u64) * 10 + 1);
        });
        m.superstep(|pid, s, inbox, _out| {
            if pid == 0 {
                *s = inbox.to_vec();
            }
        });
        assert_eq!(m.state(0), &vec![0, 1, 10, 11, 20, 21, 30, 31]);
    }

    #[test]
    fn work_is_charged() {
        let mut m: BspMachine<(), u8> = BspMachine::new(params(4), |_| ());
        m.superstep(|pid, _s, _in, out| {
            out.charge_work(pid as u64 * 100);
        });
        assert_eq!(m.profiles()[0].max_work, 300);
    }

    #[test]
    fn costs_price_the_same_run_differently() {
        // One hot sender: proc 0 sends 16 messages, spread over 16 slots.
        let mut m: BspMachine<(), u8> = BspMachine::new(params(16), |_| ());
        m.superstep(|pid, _s, _in, out| {
            if pid == 0 {
                for k in 0..16u64 {
                    out.send_at(((k % 15) + 1) as usize, 0, k);
                }
            }
        });
        let bsp_g = BspG { g: 4, l: 8 };
        let bsp_m = BspM {
            m: 4,
            l: 8,
            penalty: PenaltyFn::Exponential,
        };
        // BSP(g): h = 16, cost = 4·16 = 64. BSP(m): c_m = 16 (one msg per
        // slot), h = 16, L = 8 → 16.
        assert_eq!(m.cost(&bsp_g), 64.0);
        assert_eq!(m.cost(&bsp_m), 16.0);
    }

    #[test]
    fn non_receipt_is_observable() {
        // Proc 0 sends to 1 iff its "bit" is set; proc 1 branches on empty
        // inbox — the Section 4.2 primitive.
        for bit in [false, true] {
            let mut m: BspMachine<bool, ()> = BspMachine::new(params(4), |_| false);
            m.superstep(|pid, _s, _in, out| {
                if pid == 0 && bit {
                    out.send(1, ());
                }
            });
            m.superstep(|pid, s, inbox, _out| {
                if pid == 1 {
                    *s = !inbox.is_empty();
                }
            });
            assert_eq!(*m.state(1), bit);
        }
    }

    #[test]
    fn run_to_quiescence_stops() {
        // A token passes 0→1→2→3 then stops.
        let mut m: BspMachine<bool, ()> = BspMachine::new(params(4), |pid| pid == 0);
        let steps = m.run_to_quiescence(
            |pid, has, inbox, out| {
                if !inbox.is_empty() {
                    *has = true;
                }
                if *has && pid < 3 {
                    out.send(pid + 1, ());
                    *has = false;
                }
            },
            100,
        );
        assert!(steps <= 5, "steps={steps}");
        assert!(*m.state(3));
    }

    #[test]
    fn trace_events_mirror_reports() {
        use pbw_trace::RecordingSink;
        let sink = Arc::new(RecordingSink::new());
        let mut m: BspMachine<(), u8> = BspMachine::new(params(4), |_| ());
        m.set_sink(sink.clone()).set_trace_label("ring");
        let report = m.superstep(|pid, _s, _in, out| out.send((pid + 1) % 4, 0));
        let events = sink.take();
        assert_eq!(events.len(), 1);
        let ev = &events[0];
        assert_eq!(ev.source, TraceSource::Bsp);
        assert_eq!(ev.label, "ring");
        assert_eq!(ev.superstep, 0);
        assert_eq!(ev.profile, report.profile);
        assert_eq!(ev.delivered, 4);
        assert_eq!(ev.per_proc_sent, vec![1, 1, 1, 1]);
        assert_eq!(ev.per_proc_recv, vec![1, 1, 1, 1]);
        assert_eq!(ev.max_proc_slot_injections, 1);
    }

    struct DropFrom(Pid);
    impl crate::hook::DeliveryHook for DropFrom {
        fn fate(&self, ctx: &DeliveryCtx) -> Fate {
            if ctx.src == self.0 {
                Fate::Drop
            } else {
                Fate::Deliver
            }
        }
    }

    #[test]
    fn dropped_messages_never_arrive_but_are_priced() {
        let mut m: BspMachine<u64, u64> = BspMachine::new(params(4), |_| 0);
        m.set_delivery_hook(Arc::new(DropFrom(0)));
        let report = m.superstep(|pid, _s, _in, out| out.send((pid + 1) % 4, 1));
        // Three of four arrive; all four consumed injection slots.
        assert_eq!(report.delivered, 3);
        assert_eq!(report.profile.total_messages, 4);
        assert_eq!(report.profile.max_sent, 1);
        assert!(m.pending_inbox(1).is_empty()); // 0→1 was the dropped edge
        let stats = m.fault_stats();
        assert_eq!(stats.dropped, 1);
        assert!(stats.conserved());
    }

    struct DelayAll(u32);
    impl crate::hook::DeliveryHook for DelayAll {
        fn fate(&self, _ctx: &DeliveryCtx) -> Fate {
            Fate::Delay(self.0)
        }
    }

    #[test]
    fn delayed_messages_arrive_k_supersteps_late() {
        let mut m: BspMachine<(), u8> = BspMachine::new(params(4), |_| ());
        m.set_delivery_hook(Arc::new(DelayAll(2)));
        let r0 = m.superstep(|pid, _s, _in, out| {
            if pid == 0 {
                out.send(1, 7);
            }
        });
        assert_eq!(r0.delivered, 0);
        assert_eq!(m.faults_in_flight(), 1);
        let idle = |_: Pid, _: &mut (), _: &[u8], _: &mut Outbox<u8>| {};
        let r1 = m.superstep(idle);
        assert_eq!(r1.delivered, 0);
        let r2 = m.superstep(idle);
        // Normal delivery would be visible in superstep 1; Delay(2) means
        // the payload lands at the boundary two supersteps later.
        assert_eq!(r2.delivered, 1);
        assert_eq!(r2.profile.max_received, 1);
        assert_eq!(m.pending_inbox(1), &[7]);
        assert_eq!(m.faults_in_flight(), 0);
        assert!(m.fault_stats().conserved());
    }

    struct DupAll;
    impl crate::hook::DeliveryHook for DupAll {
        fn fate(&self, _ctx: &DeliveryCtx) -> Fate {
            Fate::Duplicate
        }
    }

    #[test]
    fn duplicates_deliver_a_spurious_copy_one_superstep_later() {
        let mut m: BspMachine<(), u8> = BspMachine::new(params(4), |_| ());
        m.set_delivery_hook(Arc::new(DupAll));
        let r0 = m.superstep(|pid, _s, _in, out| {
            if pid == 0 {
                out.send(1, 9);
            }
        });
        assert_eq!(r0.delivered, 1);
        let r1 = m.superstep(|_, _, _, _| {});
        assert_eq!(r1.delivered, 1); // the copy
        assert_eq!(m.pending_inbox(1), &[9]);
        let stats = m.fault_stats();
        assert_eq!(
            (stats.injected, stats.duplicated, stats.delivered),
            (1, 1, 2)
        );
        assert!(stats.conserved());
    }

    struct DisplaceAll(u64);
    impl crate::hook::DeliveryHook for DisplaceAll {
        fn fate(&self, _ctx: &DeliveryCtx) -> Fate {
            Fate::Displace(self.0)
        }
    }

    #[test]
    fn displacement_reshapes_the_injection_histogram() {
        let mut m: BspMachine<(), u8> = BspMachine::new(params(4), |_| ());
        m.set_delivery_hook(Arc::new(DisplaceAll(3)));
        let report = m.superstep(|pid, _s, _in, out| out.send((pid + 1) % 4, 0));
        // Every processor asked for slot 0; the router pushed all four
        // injections to slot 3. Payloads still arrive on time.
        assert_eq!(report.delivered, 4);
        assert_eq!(report.profile.injections, vec![0, 0, 0, 4]);
        assert!(m.fault_stats().conserved());
    }

    struct StallPid(Pid, u64);
    impl crate::hook::DeliveryHook for StallPid {
        fn stalled(&self, superstep: u64, pid: Pid) -> bool {
            pid == self.0 && superstep == self.1
        }
    }

    #[test]
    fn stalled_processor_skips_a_superstep_and_keeps_its_inbox() {
        let mut m: BspMachine<Vec<u8>, u8> = BspMachine::new(params(4), |_| Vec::new());
        m.set_delivery_hook(Arc::new(StallPid(1, 1)));
        m.superstep(|pid, _s, _in, out| {
            if pid == 0 {
                out.send(1, 5);
            }
        });
        // Superstep 1: pid 1 is stalled — it neither drains its inbox nor
        // runs its closure.
        m.superstep(|_pid, s, inbox, _out| s.extend_from_slice(inbox));
        assert!(m.state(1).is_empty());
        // Superstep 2: the retained message is finally observed.
        m.superstep(|_pid, s, inbox, _out| s.extend_from_slice(inbox));
        assert_eq!(m.state(1), &vec![5]);
        assert_eq!(m.fault_stats().stalled_steps, 1);
    }

    #[test]
    fn fault_counters_flow_into_trace_events() {
        use pbw_trace::RecordingSink;
        let sink = Arc::new(RecordingSink::new());
        let mut m: BspMachine<(), u8> = BspMachine::new(params(4), |_| ());
        m.set_sink(sink.clone())
            .set_delivery_hook(Arc::new(DropFrom(0)));
        m.superstep(|pid, _s, _in, out| out.send((pid + 1) % 4, 0));
        let events = sink.take();
        let faults = events[0]
            .faults
            .expect("hooked machine must stamp fault counters");
        assert_eq!(faults.dropped, 1);
        assert_eq!(faults.duplicated, 0);
    }

    #[test]
    fn unhooked_machine_emits_no_fault_counters() {
        use pbw_trace::RecordingSink;
        let sink = Arc::new(RecordingSink::new());
        let mut m: BspMachine<(), u8> = BspMachine::new(params(4), |_| ());
        m.set_sink(sink.clone());
        m.superstep(|pid, _s, _in, out| out.send((pid + 1) % 4, 0));
        assert_eq!(sink.take()[0].faults, None);
    }

    #[test]
    fn profiles_accumulate_per_superstep() {
        let mut m: BspMachine<(), u8> = BspMachine::new(params(4), |_| ());
        for _ in 0..3 {
            m.superstep(|pid, _s, _in, out| {
                out.send((pid + 1) % 4, 0);
            });
        }
        assert_eq!(m.profiles().len(), 3);
        assert_eq!(m.superstep_index(), 3);
        for prof in m.profiles() {
            assert_eq!(prof.total_messages, 4);
        }
    }

    #[test]
    fn active_superstep_matches_dense_superstep() {
        use pbw_trace::RecordingSink;
        // Two senders fan a value out, receivers echo it back, then idle.
        // The sparse run must match the dense run on every observable.
        let senders = [2usize, 6];
        let program = |pid: Pid, s: &mut Vec<u8>, inbox: &[u8], out: &mut Outbox<u8>| {
            if senders.contains(&pid) {
                out.send(pid + 1, pid as u8);
            }
            for &v in inbox {
                s.push(v);
                if !senders.contains(&pid) {
                    out.send(pid - 1, v + 1);
                }
            }
        };
        let dense_sink = Arc::new(RecordingSink::new());
        let mut dense: BspMachine<Vec<u8>, u8> = BspMachine::new(params(8), |_| Vec::new());
        dense.set_sink(dense_sink.clone());
        let sparse_sink = Arc::new(RecordingSink::new());
        let mut sparse: BspMachine<Vec<u8>, u8> = BspMachine::new(params(8), |_| Vec::new());
        sparse.set_sink(sparse_sink.clone());
        for _ in 0..4 {
            dense.superstep(program);
            // After the first superstep all activity is inbox-driven, so
            // declaring only the original senders stays correct.
            sparse.superstep_active(&senders, program);
        }
        assert_eq!(dense.states(), sparse.states());
        assert_eq!(dense.profiles(), sparse.profiles());
        assert_eq!(dense_sink.take(), sparse_sink.take());
    }

    #[test]
    fn active_superstep_keeps_receivers_in_the_frontier() {
        // pid 0 sends to pid 5; the next superstep declares nobody active,
        // yet pid 5 must still run to drain its inbox.
        let mut m: BspMachine<Vec<u8>, u8> = BspMachine::new(params(8), |_| Vec::new());
        m.superstep_active(&[0], |pid, _s, _in, out| {
            if pid == 0 {
                out.send(5, 9);
            }
        });
        m.superstep_active(&[], |_pid, s, inbox, _out| {
            s.extend_from_slice(inbox);
        });
        assert_eq!(m.state(5), &vec![9]);
    }

    #[test]
    #[should_panic(expected = "active set names processor")]
    fn active_superstep_rejects_out_of_range_pid() {
        let mut m: BspMachine<(), u8> = BspMachine::new(params(4), |_| ());
        m.superstep_active(&[4], |_pid, _s, _in, _out| {});
    }

    #[test]
    fn canonical_hash_tracks_behavioral_state() {
        let run = |extra: bool| {
            let mut m: BspMachine<u64, u64> = BspMachine::new(params(4), |_| 0);
            m.superstep(|pid, _s, _in, out| {
                out.send((pid + 1) % 4, pid as u64);
                if extra && pid == 0 {
                    out.send(2, 99);
                }
            });
            m
        };
        // Equal runs fingerprint equally; a diverging send does not.
        assert_eq!(run(false).canonical_hash(), run(false).canonical_hash());
        assert_ne!(run(false).canonical_hash(), run(true).canonical_hash());
        // Advancing the machine changes the fingerprint (superstep index
        // and inbox contents both move).
        let mut m = run(false);
        let before = m.canonical_hash();
        m.superstep(|_pid, s, inbox, _out| *s += inbox.iter().sum::<u64>());
        assert_ne!(before, m.canonical_hash());
    }

    #[test]
    fn canonical_hash_covers_the_pending_network_queue() {
        // Same visible inboxes/states, different in-network payloads: a
        // delayed message must show up in the fingerprint.
        let run = |delay: u32| {
            struct D(u32);
            impl DeliveryHook for D {
                fn fate(&self, ctx: &DeliveryCtx) -> Fate {
                    if ctx.superstep == 0 {
                        Fate::Delay(self.0)
                    } else {
                        Fate::Deliver
                    }
                }
            }
            let mut m: BspMachine<(), u64> = BspMachine::new(params(4), |_| ());
            m.set_delivery_hook(Arc::new(D(delay)));
            m.superstep(|pid, _s, _in, out| out.send((pid + 1) % 4, 7));
            m
        };
        assert_ne!(run(1).canonical_hash(), run(2).canonical_hash());
    }

    /// Crashes one pid over a half-open superstep range.
    struct CrashPid {
        pid: Pid,
        from: u64,
        until: u64,
    }
    impl crate::hook::DeliveryHook for CrashPid {
        fn crashed(&self, superstep: u64, pid: Pid) -> bool {
            pid == self.pid && (self.from..self.until).contains(&superstep)
        }
    }

    #[test]
    fn crashed_processor_is_silent_and_inbound_custody_charges_crashed() {
        let mut m: BspMachine<Vec<u8>, u8> = BspMachine::new(params(4), |_| Vec::new());
        m.set_delivery_hook(Arc::new(CrashPid {
            pid: 1,
            from: 1,
            until: 2,
        }));
        // Superstep 0: pid 1 alive; 0→1 delivers into its inbox.
        m.superstep(|pid, _s, _in, out| {
            if pid == 0 {
                out.send(1, 5);
            }
        });
        assert_eq!(m.pending_inbox(1), &[5]);
        // Superstep 1: pid 1 is down. Its closure is skipped (the retained
        // [5] evaporates, uncharged — it was already counted delivered) and
        // pid 2's message to it is destroyed at the custody-transfer point.
        let r1 = m.superstep(|pid, s, inbox, out| {
            s.extend_from_slice(inbox);
            if pid == 2 {
                out.send(1, 9);
            }
        });
        assert_eq!(r1.delivered, 0);
        assert!(m.state(1).is_empty());
        assert!(m.pending_inbox(1).is_empty());
        // Superstep 2: pid 1 is back, with an empty inbox and no ghosts.
        m.superstep(|_pid, s, inbox, _out| s.extend_from_slice(inbox));
        assert!(m.state(1).is_empty());
        let stats = m.fault_stats();
        assert_eq!(stats.injected, 2);
        assert_eq!(stats.delivered, 1);
        assert_eq!(stats.crashed, 1);
        assert_eq!(stats.crash_steps, 1);
        assert_eq!(stats.stalled_steps, 0);
        assert!(stats.conserved(), "ledger {stats:?}");
    }

    #[test]
    fn delayed_payload_arriving_at_a_crashed_destination_is_destroyed() {
        struct DelayThenCrash;
        impl crate::hook::DeliveryHook for DelayThenCrash {
            fn fate(&self, ctx: &DeliveryCtx) -> Fate {
                if ctx.superstep == 0 {
                    Fate::Delay(2)
                } else {
                    Fate::Deliver
                }
            }
            fn crashed(&self, superstep: u64, pid: Pid) -> bool {
                pid == 1 && superstep == 2
            }
        }
        let mut m: BspMachine<(), u8> = BspMachine::new(params(4), |_| ());
        m.set_delivery_hook(Arc::new(DelayThenCrash));
        m.superstep(|pid, _s, _in, out| {
            if pid == 0 {
                out.send(1, 7);
            }
        });
        assert_eq!(m.faults_in_flight(), 1);
        let idle = |_: Pid, _: &mut (), _: &[u8], _: &mut Outbox<u8>| {};
        m.superstep(idle);
        // The payload falls due at the end of superstep 2 — exactly when
        // its destination is down. It dies in the network, charged crashed.
        let r2 = m.superstep(idle);
        assert_eq!(r2.delivered, 0);
        assert!(m.pending_inbox(1).is_empty());
        let stats = m.fault_stats();
        assert_eq!(stats.crashed, 1);
        assert_eq!(stats.in_flight, 0);
        assert_eq!(stats.delivered, 0);
        assert!(stats.conserved(), "ledger {stats:?}");
    }

    #[test]
    fn crash_overrides_stall_retention() {
        struct StallAndCrash;
        impl crate::hook::DeliveryHook for StallAndCrash {
            fn stalled(&self, superstep: u64, pid: Pid) -> bool {
                pid == 1 && superstep == 1
            }
            fn crashed(&self, superstep: u64, pid: Pid) -> bool {
                pid == 1 && superstep == 1
            }
        }
        let mut m: BspMachine<Vec<u8>, u8> = BspMachine::new(params(4), |_| Vec::new());
        m.set_delivery_hook(Arc::new(StallAndCrash));
        m.superstep(|pid, _s, _in, out| {
            if pid == 0 {
                out.send(1, 5);
            }
        });
        // Both predicates fire at superstep 1: crash wins, so the inbox is
        // *not* retained the way a pure stall would retain it.
        m.superstep(|_pid, s, inbox, _out| s.extend_from_slice(inbox));
        m.superstep(|_pid, s, inbox, _out| s.extend_from_slice(inbox));
        assert!(m.state(1).is_empty());
        let stats = m.fault_stats();
        assert_eq!(stats.crash_steps, 1);
        assert_eq!(stats.stalled_steps, 0);
        assert!(stats.conserved(), "ledger {stats:?}");
    }

    #[test]
    fn sparse_and_dense_agree_under_crashes() {
        let hook = || {
            Arc::new(CrashPid {
                pid: 3,
                from: 1,
                until: 3,
            })
        };
        let program = |pid: Pid, s: &mut Vec<u8>, inbox: &[u8], out: &mut Outbox<u8>| {
            s.extend_from_slice(inbox);
            if pid < 4 {
                out.send(pid + 3, pid as u8);
            }
        };
        let mut dense: BspMachine<Vec<u8>, u8> = BspMachine::new(params(8), |_| Vec::new());
        dense.set_delivery_hook(hook());
        let mut sparse: BspMachine<Vec<u8>, u8> = BspMachine::new(params(8), |_| Vec::new());
        sparse.set_delivery_hook(hook());
        let senders = [0usize, 1, 2, 3];
        for _ in 0..4 {
            dense.superstep(program);
            sparse.superstep_active(&senders, program);
        }
        assert_eq!(dense.states(), sparse.states());
        assert_eq!(dense.fault_stats(), sparse.fault_stats());
        assert_eq!(dense.canonical_hash(), sparse.canonical_hash());
    }

    #[test]
    fn checkpoint_restore_round_trips_the_canonical_hash() {
        // Build a machine with every kind of captured state: retained
        // inboxes (via a stall), a non-empty pending network (via delays),
        // and a dirty ledger.
        struct Mixed;
        impl crate::hook::DeliveryHook for Mixed {
            fn fate(&self, ctx: &DeliveryCtx) -> Fate {
                match (ctx.superstep, ctx.src) {
                    (0, 0) => Fate::Delay(3),
                    (0, 2) => Fate::Drop,
                    _ => Fate::Deliver,
                }
            }
            fn stalled(&self, superstep: u64, pid: Pid) -> bool {
                superstep == 1 && pid == 2
            }
        }
        let mut m: BspMachine<u64, u64> = BspMachine::new(params(4), |_| 0);
        m.set_delivery_hook(Arc::new(Mixed));
        m.superstep(|pid, _s, _in, out| out.send((pid + 1) % 4, pid as u64));
        m.superstep(|_pid, s, inbox, _out| *s += inbox.iter().sum::<u64>());
        assert!(m.faults_in_flight() > 0, "need in-network state");
        assert!(!m.pending_inbox(2).is_empty(), "need retained inbox state");

        let ckpt = m.checkpoint();
        let hash_at_ckpt = m.canonical_hash();
        assert_eq!(ckpt.superstep(), 2);
        assert_eq!(ckpt.pending_payloads(), 1);

        // Diverge: run more supersteps, then restore.
        m.superstep(|pid, s, inbox, out| {
            *s += inbox.iter().sum::<u64>();
            out.send((pid + 2) % 4, 40);
        });
        m.superstep(|_pid, s, inbox, _out| *s += inbox.iter().sum::<u64>());
        assert_ne!(m.canonical_hash(), hash_at_ckpt);

        m.restore(&ckpt);
        assert_eq!(m.canonical_hash(), hash_at_ckpt);
        assert_eq!(m.fault_stats(), ckpt.fault_stats());

        // The restored machine replays the same future: re-running the
        // diverging steps reproduces the post-divergence fingerprint.
        let mut replay_hash = || {
            m.superstep(|pid, s, inbox, out| {
                *s += inbox.iter().sum::<u64>();
                out.send((pid + 2) % 4, 40);
            });
            m.superstep(|_pid, s, inbox, _out| *s += inbox.iter().sum::<u64>());
            let h = m.canonical_hash();
            m.restore(&ckpt);
            h
        };
        assert_eq!(replay_hash(), replay_hash());
    }

    #[test]
    fn rollback_keeps_the_ledger_monotone_and_conserved() {
        struct DelayOdd;
        impl crate::hook::DeliveryHook for DelayOdd {
            fn fate(&self, ctx: &DeliveryCtx) -> Fate {
                if ctx.msg_idx % 2 == 1 {
                    Fate::Delay(3)
                } else {
                    Fate::Deliver
                }
            }
        }
        let mut m: BspMachine<u64, u64> = BspMachine::new(params(4), |_| 0);
        m.set_delivery_hook(Arc::new(DelayOdd));
        let round = |m: &mut BspMachine<u64, u64>| {
            m.superstep(|pid, s, inbox, out| {
                *s += inbox.iter().sum::<u64>();
                out.send((pid + 1) % 4, 1);
                out.send((pid + 2) % 4, 2);
            });
        };
        round(&mut m);
        let ckpt = m.checkpoint();
        let before = m.fault_stats();
        assert!(before.in_flight > 0);
        let b0: u64 = (0..4).map(|pid| ckpt.inbox_payloads(pid)).sum();
        let f0 = ckpt.pending_payloads();
        assert!(b0 > 0 && f0 > 0);

        round(&mut m);
        round(&mut m);
        let at_crash = m.fault_stats();
        let discarded = at_crash.in_flight;

        m.rollback(&ckpt);
        let after = m.fault_stats();
        // Machine state reverts…
        assert_eq!(m.superstep_index(), ckpt.superstep() as usize);
        for pid in 0..4 {
            assert_eq!(m.pending_inbox(pid).len() as u64, ckpt.inbox_payloads(pid));
        }
        // …but the ledger only grows, by exactly the rollback algebra.
        assert_eq!(after.crashed, at_crash.crashed + discarded);
        assert_eq!(after.restored, at_crash.restored + b0 + f0);
        assert_eq!(after.delivered, at_crash.delivered + b0);
        assert_eq!(after.in_flight, f0);
        assert!(after.conserved(), "ledger {after:?}");

        // A rolled-back machine plays the same future as a restored one:
        // only the ledger bookkeeping differs, never the behavior.
        round(&mut m);
        let states_after_rollback = m.states().to_vec();
        m.restore(&ckpt);
        round(&mut m);
        assert_eq!(m.states(), &states_after_rollback[..]);
    }
}
