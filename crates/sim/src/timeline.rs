//! Bandwidth-utilization timelines.
//!
//! The globally-limited models are all about *when* messages enter the
//! network; a profile's injection histogram is therefore the most
//! informative artifact a run produces. This module renders it:
//! per-step load as a braille-free ASCII strip with the `m` threshold
//! marked, plus summary statistics (utilization, overload mass). Used by
//! the examples and handy when debugging a scheduler whose exponential
//! penalty fires unexpectedly.

use pbw_models::SuperstepProfile;

/// Utilization statistics of one superstep's injection schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Utilization {
    /// Number of steps spanned.
    pub steps: usize,
    /// Mean load per step.
    pub mean_load: f64,
    /// Peak load.
    pub peak_load: u64,
    /// Fraction of the aggregate capacity `m·steps` actually used.
    pub utilization: f64,
    /// Fraction of messages injected in steps whose load exceeded `m`.
    pub overload_mass: f64,
}

/// Compute utilization statistics for a profile under bandwidth `m`.
pub fn utilization(profile: &SuperstepProfile, m: usize) -> Utilization {
    let steps = profile.injections.len();
    let total: u64 = profile.injections.iter().sum();
    let peak = profile.injections.iter().copied().max().unwrap_or(0);
    let overloaded: u64 = profile.injections.iter().filter(|&&l| l > m as u64).sum();
    Utilization {
        steps,
        mean_load: if steps == 0 {
            0.0
        } else {
            total as f64 / steps as f64
        },
        peak_load: peak,
        utilization: if steps == 0 {
            0.0
        } else {
            total as f64 / (m as f64 * steps as f64)
        },
        overload_mass: if total == 0 {
            0.0
        } else {
            overloaded as f64 / total as f64
        },
    }
}

/// Render the injection histogram as an ASCII strip of `width` buckets.
/// Each bucket shows the mean load of its step range, scaled so that the
/// `m` threshold sits at the marked level: `.` ≤ ¼m, `-` ≤ ½m, `=` ≤ ¾m,
/// `#` ≤ m, `!` > m (overload).
pub fn render_strip(profile: &SuperstepProfile, m: usize, width: usize) -> String {
    assert!(width > 0);
    let n = profile.injections.len();
    if n == 0 {
        return String::new();
    }
    let bucket = n.div_ceil(width);
    let mut out = String::new();
    for chunk in profile.injections.chunks(bucket) {
        let mean = chunk.iter().sum::<u64>() as f64 / chunk.len() as f64;
        let c = if mean > m as f64 {
            '!'
        } else if mean > 0.75 * m as f64 {
            '#'
        } else if mean > 0.5 * m as f64 {
            '='
        } else if mean > 0.25 * m as f64 {
            '-'
        } else if mean > 0.0 {
            '.'
        } else {
            ' '
        };
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbw_models::ProfileBuilder;

    fn profile(loads: &[u64]) -> SuperstepProfile {
        let mut b = ProfileBuilder::new();
        for (t, &l) in loads.iter().enumerate() {
            if l > 0 {
                b.record_injections(t as u64, l);
            } else {
                b.record_injections(t as u64, 0);
            }
        }
        b.build()
    }

    #[test]
    fn utilization_stats() {
        let p = profile(&[8, 8, 0, 16]);
        let u = utilization(&p, 8);
        assert_eq!(u.steps, 4);
        assert_eq!(u.peak_load, 16);
        assert!((u.mean_load - 8.0).abs() < 1e-12);
        assert!((u.utilization - 1.0).abs() < 1e-12);
        assert!((u.overload_mass - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_profile() {
        let u = utilization(&SuperstepProfile::default(), 8);
        assert_eq!(u.steps, 0);
        assert_eq!(u.utilization, 0.0);
    }

    #[test]
    fn strip_levels() {
        let p = profile(&[0, 1, 3, 5, 7, 12]);
        let s = render_strip(&p, 8, 6);
        assert_eq!(s, " .-=#!");
    }

    #[test]
    fn strip_buckets_average() {
        // 100 steps of load 8 (= m) in 10 buckets: all '#'.
        let loads = vec![8u64; 100];
        let p = profile(&loads);
        let s = render_strip(&p, 8, 10);
        assert_eq!(s, "##########");
    }

    #[test]
    fn strip_marks_overload() {
        let mut loads = vec![4u64; 50];
        loads.extend(vec![40u64; 50]);
        let p = profile(&loads);
        let s = render_strip(&p, 8, 2);
        assert_eq!(s, "-!");
    }
}
