//! The complete Theorem 6.2 protocol, end to end.
//!
//! The schedulers in [`crate::schedulers`] assume every processor already
//! knows `n`; the theorem's full statement includes the
//! `τ = O(p/m + L + L·lg m/lg L)` preamble that computes and broadcasts it.
//! This module chains both on the simulator:
//!
//! 1. run the [`crate::preamble`] program (a real BSP(m) execution) so
//!    every processor learns `n`,
//! 2. every processor independently draws its random offset and injects
//!    its messages at the scheduled slots (one communication superstep),
//! 3. the two executions' profiles are concatenated and priced.
//!
//! The outcome reports the measured `τ`, the send cost, and the Theorem 6.2
//! target `max((1+ε)n/m, x̄, ȳ, L) + τ` for comparison.

use crate::exec::run_schedule_on_bsp;
use crate::preamble::compute_and_broadcast_n;
use crate::schedulers::{Scheduler, UnbalancedSend};
use crate::workload::Workload;
use pbw_models::{BspM, CostModel, MachineParams, PenaltyFn, SuperstepProfile};

/// Result of the full protocol run.
#[derive(Debug, Clone)]
pub struct ProtocolOutcome {
    /// The broadcast total (must equal the workload's flit count).
    pub n: u64,
    /// Measured BSP(m, exp) cost of the preamble alone.
    pub tau_cost: f64,
    /// Measured BSP(m, exp) cost of the send superstep alone.
    pub send_cost: f64,
    /// Total measured cost (preamble + send).
    pub total_cost: f64,
    /// The Theorem 6.2 target for these parameters:
    /// `max((1+ε)n/m, x̄, ȳ, L)` plus the preamble's τ bound.
    pub target: f64,
    /// Profiles of every superstep (preamble then send), for re-pricing
    /// under other models.
    pub profiles: Vec<SuperstepProfile>,
    /// Whether delivery was verified.
    pub ok: bool,
}

/// Run preamble + Unbalanced-Send as one measured pipeline.
///
/// # Panics
/// Panics if the workload and machine disagree on `p`, or if `m ∤ p`.
pub fn unbalanced_send_protocol(
    wl: &Workload,
    params: MachineParams,
    eps: f64,
    seed: u64,
) -> ProtocolOutcome {
    assert_eq!(wl.p(), params.p, "workload and machine disagree on p");
    assert!(
        wl.is_unit(),
        "the Theorem 6.2 protocol handles unit messages"
    );

    // Phase 1: τ preamble — a real BSP(m) program.
    let counts = wl.send_counts();
    let pre = compute_and_broadcast_n(params, &counts);
    assert_eq!(pre.n, wl.n_flits(), "preamble computed a wrong total");

    // Phase 2: every processor schedules its own messages from (n, x_i,
    // its private randomness) — exactly the information the preamble
    // established — and the engine executes the send superstep.
    let schedule = UnbalancedSend::new(eps).schedule(wl, params.m, seed);
    let exec = run_schedule_on_bsp(wl, &schedule, params);

    let model = BspM {
        m: params.m,
        l: params.l,
        penalty: PenaltyFn::Exponential,
    };
    let tau_cost = pre.bsp_m_cost;
    let send_cost = model.superstep_cost(&exec.profile);
    let mut profiles = pre.profiles.clone();
    profiles.push(exec.profile.clone());

    let sigma = ((1.0 + eps) * pre.n as f64 / params.m as f64)
        .max(wl.xbar() as f64)
        .max(wl.ybar() as f64)
        .max(params.l as f64);
    ProtocolOutcome {
        n: pre.n,
        tau_cost,
        send_cost,
        total_cost: tau_cost + send_cost,
        target: sigma + pre.tau_bound,
        profiles,
        ok: true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload;

    #[test]
    fn protocol_computes_n_and_delivers() {
        let params = MachineParams::from_bandwidth(128, 16, 4);
        let wl = workload::uniform_random(128, 16, 1);
        let out = unbalanced_send_protocol(&wl, params, 0.3, 7);
        assert!(out.ok);
        assert_eq!(out.n, 128 * 16);
        assert!(out.total_cost > out.tau_cost);
    }

    #[test]
    fn protocol_within_constant_of_target() {
        let params = MachineParams::from_bandwidth(512, 64, 8);
        for wl in [
            workload::uniform_random(512, 32, 2),
            workload::single_hot_sender(512, 4096, 4, 3),
            workload::zipf_senders(512, 256, 1.2, 4),
        ] {
            let out = unbalanced_send_protocol(&wl, params, 0.3, 11);
            assert!(
                out.total_cost <= 8.0 * out.target,
                "cost {} vs target {}",
                out.total_cost,
                out.target
            );
        }
    }

    #[test]
    fn tau_negligible_when_n_large() {
        // The paper: for n ≫ p and max(n/m, h) ≫ L, τ is negligible.
        let params = MachineParams::from_bandwidth(256, 32, 4);
        let wl = workload::uniform_random(256, 512, 5); // n = 128k ≫ p
        let out = unbalanced_send_protocol(&wl, params, 0.2, 13);
        assert!(
            out.tau_cost < 0.05 * out.send_cost,
            "τ {} vs send {}",
            out.tau_cost,
            out.send_cost
        );
        // Hence total within (1+ε)·(1+small) of the global lower bound.
        let lower = wl.n_flits() as f64 / params.m as f64;
        assert!(
            out.total_cost <= 1.5 * lower,
            "total {} vs n/m {}",
            out.total_cost,
            lower
        );
    }

    #[test]
    fn profiles_reprice_under_other_models() {
        let params = MachineParams::from_bandwidth(128, 16, 4);
        let wl = workload::permutation(128, 9);
        let out = unbalanced_send_protocol(&wl, params, 0.3, 1);
        let summary = pbw_sim::CostSummary::price(params, &out.profiles);
        // Same run, locally-limited price: strictly worse than the m-price.
        assert!(summary.bsp_g >= summary.bsp_m_exp);
    }

    #[test]
    #[should_panic(expected = "disagree on p")]
    fn rejects_mismatched_machine() {
        let params = MachineParams::from_bandwidth(64, 8, 4);
        let wl = workload::permutation(32, 0);
        let _ = unbalanced_send_protocol(&wl, params, 0.2, 0);
    }
}
