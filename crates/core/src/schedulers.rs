//! The Section 6.1 scheduling algorithms.
//!
//! All schedulers consume a [`Workload`] and produce a [`Schedule`] of
//! injection slots. The randomized ones draw per-processor randomness from
//! independent ChaCha streams keyed by `(seed, pid)`, exactly the
//! information structure of the paper: each processor knows its own `x_i`
//! and the broadcast value `n`, nothing else.

use crate::schedule::Schedule;
use crate::workload::Workload;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A scheduling algorithm for unbalanced h-relations.
pub trait Scheduler {
    /// Display name for experiment tables.
    fn name(&self) -> &'static str;

    /// Produce injection slots for `wl` under aggregate bandwidth `m`.
    fn schedule(&self, wl: &Workload, m: usize, seed: u64) -> Schedule;
}

fn proc_rng(seed: u64, pid: usize) -> ChaCha8Rng {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    rng.set_stream(pid as u64);
    rng
}

/// The window `(1+ε)·n/m` of Theorems 6.2/6.3, as an integer ≥ 1.
fn window(n: u64, m: usize, eps: f64) -> u64 {
    (((1.0 + eps) * n as f64 / m as f64).ceil() as u64).max(1)
}

// ---------------------------------------------------------------------------
// Algorithm Unbalanced-Send (Theorem 6.2)
// ---------------------------------------------------------------------------

/// **Algorithm Unbalanced-Send** (Theorem 6.2).
///
/// Every processor `i` with `x_i ≤ (1+ε)n/m` picks a uniformly random offset
/// `j_i` in the window `[0, (1+ε)n/m)` and sends its messages in consecutive
/// slots *modulo the window* starting at `j_i`; processors with more
/// messages than the window send eagerly from slot 0.
///
/// W.h.p. (probability `1 − e^{−Ω(ε²m)}`, provided `n < e^{αm}`) no step
/// carries more than `m` messages, so the schedule completes in
/// `max((1+ε)n/m, x̄, ȳ)` even under the exponential overload penalty.
///
/// ```
/// use pbw_core::schedulers::{Scheduler, UnbalancedSend};
/// use pbw_core::{evaluate_schedule, workload};
/// use pbw_models::PenaltyFn;
///
/// let wl = workload::single_hot_sender(256, 2048, 4, 1);
/// let m = 64;
/// let plan = UnbalancedSend::new(0.3).schedule(&wl, m, 42);
/// let cost = evaluate_schedule(&plan, &wl, m, PenaltyFn::Exponential);
/// assert!(cost.ratio_to_opt < 1.35); // within (1+ε) of the offline optimum
/// ```
#[derive(Debug, Clone, Copy)]
pub struct UnbalancedSend {
    /// The slack ε < 1.
    pub eps: f64,
}

impl UnbalancedSend {
    /// Create with slack `eps` (must be in `(0, 1)`).
    pub fn new(eps: f64) -> Self {
        assert!(eps > 0.0 && eps < 1.0, "ε must be in (0,1)");
        UnbalancedSend { eps }
    }
}

impl Scheduler for UnbalancedSend {
    fn name(&self) -> &'static str {
        "Unbalanced-Send"
    }

    fn schedule(&self, wl: &Workload, m: usize, seed: u64) -> Schedule {
        assert!(
            wl.is_unit(),
            "Unbalanced-Send handles unit messages; use flits::UnbalancedFlitSend"
        );
        let n = wl.n_flits();
        let w = window(n, m, self.eps);
        let starts = (0..wl.p())
            .map(|pid| {
                let x_i = wl.msgs(pid).len() as u64;
                if x_i == 0 {
                    return Vec::new();
                }
                if x_i <= w {
                    let j = proc_rng(seed, pid).gen_range(0..w);
                    (0..x_i).map(|k| (j + k) % w).collect()
                } else {
                    (0..x_i).collect()
                }
            })
            .collect();
        Schedule { starts }
    }
}

// ---------------------------------------------------------------------------
// Algorithm Unbalanced-Consecutive-Send (Theorem 6.3)
// ---------------------------------------------------------------------------

/// **Algorithm Unbalanced-Consecutive-Send** (Theorem 6.3).
///
/// As [`UnbalancedSend`], but a processor sends all of its messages in
/// *consecutive* slots starting at its random offset (no wrap-around) — the
/// shape needed when message start-up costs make fragmentation expensive.
/// Completes in `max((1+ε)n/m + x̄', x̄, ȳ)` w.h.p., where `x̄'` is the
/// largest send count among in-window processors.
#[derive(Debug, Clone, Copy)]
pub struct UnbalancedConsecutiveSend {
    /// The slack ε < 1.
    pub eps: f64,
}

impl UnbalancedConsecutiveSend {
    /// Create with slack `eps` (must be in `(0, 1)`).
    pub fn new(eps: f64) -> Self {
        assert!(eps > 0.0 && eps < 1.0, "ε must be in (0,1)");
        UnbalancedConsecutiveSend { eps }
    }
}

impl Scheduler for UnbalancedConsecutiveSend {
    fn name(&self) -> &'static str {
        "Unbalanced-Consecutive-Send"
    }

    fn schedule(&self, wl: &Workload, m: usize, seed: u64) -> Schedule {
        assert!(
            wl.is_unit(),
            "use flits::UnbalancedFlitSend for variable lengths"
        );
        let n = wl.n_flits();
        let w = window(n, m, self.eps);
        let starts = (0..wl.p())
            .map(|pid| {
                let x_i = wl.msgs(pid).len() as u64;
                if x_i == 0 {
                    return Vec::new();
                }
                let j = if x_i <= w {
                    proc_rng(seed, pid).gen_range(0..w)
                } else {
                    0
                };
                (0..x_i).map(|k| j + k).collect()
            })
            .collect();
        Schedule { starts }
    }
}

/// `x̄'` of Theorem 6.3: the maximum send count among processors with at
/// most `(1+ε)n/m` messages.
pub fn xbar_small(wl: &Workload, m: usize, eps: f64) -> u64 {
    let w = window(wl.n_flits(), m, eps);
    wl.send_counts()
        .into_iter()
        .filter(|&x| x <= w)
        .max()
        .unwrap_or(0)
}

// ---------------------------------------------------------------------------
// Algorithm Unbalanced-Granular-Send (Theorem 6.4)
// ---------------------------------------------------------------------------

/// **Algorithm Unbalanced-Granular-Send** (Theorem 6.4).
///
/// Offsets are restricted to multiples of the granularity `t' = n/p` inside
/// a window of `c·n/m` slots, so only `c'·p/m` offset choices exist and the
/// union bound runs over `p/m` events instead of `n/m` — the failure
/// probability then requires only `p < e^{αm}` rather than `n < e^{αm}`.
/// Completes in `c·n/m` w.h.p.
#[derive(Debug, Clone, Copy)]
pub struct UnbalancedGranularSend {
    /// The window constant `c` (the theorem asserts some constant works;
    /// `c = 3` comfortably satisfies the analysis' `(1+ε)` slack).
    pub c: f64,
}

impl UnbalancedGranularSend {
    /// Create with window constant `c ≥ 2`.
    pub fn new(c: f64) -> Self {
        assert!(c >= 2.0, "the analysis needs c ≥ 2");
        UnbalancedGranularSend { c }
    }
}

impl Default for UnbalancedGranularSend {
    fn default() -> Self {
        Self::new(3.0)
    }
}

impl Scheduler for UnbalancedGranularSend {
    fn name(&self) -> &'static str {
        "Unbalanced-Granular-Send"
    }

    fn schedule(&self, wl: &Workload, m: usize, seed: u64) -> Schedule {
        assert!(wl.is_unit(), "granular send handles unit messages");
        let n = wl.n_flits();
        let p = wl.p() as u64;
        // t' = n/p, the "padded average" granularity (≥ 1).
        let t_prime = (n / p).max(1);
        let window = ((self.c * n as f64 / m as f64).ceil() as u64).max(t_prime);
        let starts = (0..wl.p())
            .map(|pid| {
                let x_i = wl.msgs(pid).len() as u64;
                if x_i == 0 {
                    return Vec::new();
                }
                let j0 = if x_i <= n / (m as u64).max(1) {
                    // Number of grid offsets that keep the run inside the
                    // window: (window − x_i)/t', at least 1.
                    let choices = (window.saturating_sub(x_i) / t_prime).max(1);
                    let j = proc_rng(seed, pid).gen_range(0..choices);
                    j * t_prime
                } else {
                    0
                };
                (0..x_i).map(|k| j0 + k).collect()
            })
            .collect();
        Schedule { starts }
    }
}

// ---------------------------------------------------------------------------
// Baselines
// ---------------------------------------------------------------------------

/// The optimal *offline* schedule: with full knowledge of all `x_i`, the
/// wrap-around rule packs the messages into exactly
/// `T = max(⌈n/m⌉, x̄)` slots with every slot load ≤ `m` — the comparator
/// for the `(1+ε)`-optimality claims.
#[derive(Debug, Clone, Copy, Default)]
pub struct OfflineOptimal;

impl Scheduler for OfflineOptimal {
    fn name(&self) -> &'static str {
        "Offline-Optimal"
    }

    fn schedule(&self, wl: &Workload, m: usize, _seed: u64) -> Schedule {
        assert!(wl.is_unit(), "offline optimal packs unit messages");
        let n = wl.n_flits();
        if n == 0 {
            return Schedule {
                starts: vec![Vec::new(); wl.p()],
            };
        }
        let t = pbw_models::div_ceil(n, m as u64).max(wl.xbar());
        // Wrap-around rule: processors in descending x_i, consecutive slots
        // mod T from a running pointer. Slot loads differ by at most one, so
        // no slot exceeds ⌈n/T⌉ ≤ m; per-processor slots are distinct since
        // x_i ≤ T.
        let mut order: Vec<usize> = (0..wl.p()).collect();
        let counts = wl.send_counts();
        order.sort_by_key(|&i| std::cmp::Reverse(counts[i]));
        let mut starts = vec![Vec::new(); wl.p()];
        let mut ptr = 0u64;
        for &i in &order {
            let x_i = counts[i];
            starts[i] = (0..x_i).map(|k| (ptr + k) % t).collect();
            ptr = (ptr + x_i) % t;
        }
        Schedule { starts }
    }
}

/// The bandwidth-oblivious baseline: every processor pipelines its messages
/// from step 0 — exactly what a BSP(g) program does, since locally-limited
/// models need no staggering. Under the BSP(m) exponential penalty the
/// initial steps carry up to `p` flits and cost `e^{p/m − 1}` each.
#[derive(Debug, Clone, Copy, Default)]
pub struct EagerSend;

impl Scheduler for EagerSend {
    fn name(&self) -> &'static str {
        "Eager (oblivious)"
    }

    fn schedule(&self, wl: &Workload, _m: usize, _seed: u64) -> Schedule {
        let starts = (0..wl.p())
            .map(|pid| {
                let mut t = 0u64;
                wl.msgs(pid)
                    .iter()
                    .map(|msg| {
                        let s = t;
                        t += msg.len;
                        s
                    })
                    .collect()
            })
            .collect();
        Schedule { starts }
    }
}

// ---------------------------------------------------------------------------
// The template generalization (Section 6.1, closing remark)
// ---------------------------------------------------------------------------

/// **Template-Send** — the paper's generalization:
///
/// > *"We can use the same algorithm on any sending pattern 'template',
/// > where the sending times are chosen by cyclically shifting the template
/// > by j slots."*
///
/// Each processor supplies a *template*: the relative slots (within the
/// window) at which it wants to inject — e.g. `0, s, 2s, …` to keep a
/// separation of `s` between its own messages. The scheduler shifts each
/// processor's template by an independent uniform offset (mod the window).
/// The Chernoff analysis is unchanged: each slot's expected load is still
/// `Σ x_i / window ≤ m/(1+ε)`.
#[derive(Debug, Clone)]
pub struct TemplateSend {
    /// The slack ε < 1 (window = `(1+ε)·n_slots/m` where `n_slots` is the
    /// total template mass).
    pub eps: f64,
    /// Per-message separation within a processor (template =
    /// `0, sep, 2·sep, …`). `sep = 1` recovers plain Unbalanced-Send.
    pub separation: u64,
}

impl TemplateSend {
    /// Create with slack `eps ∈ (0,1)` and per-processor message
    /// separation `sep ≥ 1`.
    pub fn new(eps: f64, separation: u64) -> Self {
        assert!(eps > 0.0 && eps < 1.0, "ε must be in (0,1)");
        assert!(separation >= 1);
        TemplateSend { eps, separation }
    }
}

impl Scheduler for TemplateSend {
    fn name(&self) -> &'static str {
        "Template-Send"
    }

    fn schedule(&self, wl: &Workload, m: usize, seed: u64) -> Schedule {
        assert!(wl.is_unit(), "Template-Send handles unit messages");
        let sep = self.separation;
        // Template mass: each message occupies one slot but claims a
        // sep-wide stride of the cyclic window, so the window must cover
        // sep·x_i for every in-window processor; scale n accordingly.
        let n = wl.n_flits() * sep;
        let w = (((1.0 + self.eps) * n as f64 / m as f64).ceil() as u64).max(1);
        let starts = (0..wl.p())
            .map(|pid| {
                let x_i = wl.msgs(pid).len() as u64;
                if x_i == 0 {
                    return Vec::new();
                }
                if x_i * sep <= w {
                    let j = proc_rng(seed, pid).gen_range(0..w);
                    (0..x_i).map(|k| (j + k * sep) % w).collect()
                } else {
                    (0..x_i).map(|k| k * sep).collect()
                }
            })
            .collect();
        Schedule { starts }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{evaluate_schedule, validate_schedule};
    use crate::workload;
    use pbw_models::PenaltyFn;

    #[test]
    fn unbalanced_send_is_valid_and_within_window() {
        let wl = workload::uniform_random(256, 64, 3);
        let m = 64;
        let sched = UnbalancedSend::new(0.2).schedule(&wl, m, 42);
        validate_schedule(&sched, &wl).unwrap();
        let w = (((1.2) * wl.n_flits() as f64 / m as f64).ceil()) as u64;
        for (pid, starts) in sched.starts.iter().enumerate() {
            if (wl.msgs(pid).len() as u64) <= w {
                assert!(starts.iter().all(|&s| s < w));
            }
        }
    }

    #[test]
    fn unbalanced_send_respects_bandwidth_whp() {
        // m = 128 and ε = 0.3: failure probability e^{−Ω(ε²m)} is tiny.
        let wl = workload::uniform_random(512, 128, 7);
        let m = 128;
        let sched = UnbalancedSend::new(0.3).schedule(&wl, m, 1);
        let cost = evaluate_schedule(&sched, &wl, m, PenaltyFn::Exponential);
        assert!(
            cost.no_slot_exceeds_m,
            "max load {} > m {}",
            cost.max_slot_load, m
        );
        // Within (1+ε) of the lower bound, up to rounding.
        assert!(cost.ratio_to_opt <= 1.35, "ratio {}", cost.ratio_to_opt);
    }

    #[test]
    fn unbalanced_send_handles_hot_sender() {
        let wl = workload::single_hot_sender(256, 8192, 4, 9);
        let m = 64;
        let sched = UnbalancedSend::new(0.2).schedule(&wl, m, 5);
        validate_schedule(&sched, &wl).unwrap();
        let cost = evaluate_schedule(&sched, &wl, m, PenaltyFn::Exponential);
        assert!(cost.no_slot_exceeds_m);
        // Hot sender sends eagerly: makespan ≈ max(window, x̄).
        assert!(cost.makespan >= 8192);
        assert!(cost.ratio_to_opt < 1.3, "ratio {}", cost.ratio_to_opt);
    }

    #[test]
    fn unbalanced_send_is_deterministic_per_seed() {
        let wl = workload::uniform_random(64, 16, 0);
        let a = UnbalancedSend::new(0.2).schedule(&wl, 16, 11);
        let b = UnbalancedSend::new(0.2).schedule(&wl, 16, 11);
        let c = UnbalancedSend::new(0.2).schedule(&wl, 16, 12);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "unit messages")]
    fn unbalanced_send_rejects_flit_workloads() {
        let wl = workload::variable_length(8, 4, 3.0, 0);
        let _ = UnbalancedSend::new(0.2).schedule(&wl, 4, 0);
    }

    #[test]
    fn consecutive_send_runs_are_contiguous() {
        let wl = workload::uniform_random(128, 32, 5);
        let sched = UnbalancedConsecutiveSend::new(0.2).schedule(&wl, 32, 3);
        validate_schedule(&sched, &wl).unwrap();
        for starts in &sched.starts {
            for (k, w) in starts.windows(2).enumerate() {
                assert_eq!(w[1], w[0] + 1, "message {k} not consecutive");
            }
        }
    }

    #[test]
    fn consecutive_send_within_additive_bound() {
        let wl = workload::uniform_random(512, 64, 2);
        let m = 128;
        let eps = 0.3;
        let sched = UnbalancedConsecutiveSend::new(eps).schedule(&wl, m, 17);
        let cost = evaluate_schedule(&sched, &wl, m, PenaltyFn::Exponential);
        // Theorem 6.3 target: (1+ε)n/m + x̄' (here all processors are small).
        let target = (1.0 + eps) * wl.n_flits() as f64 / m as f64 + xbar_small(&wl, m, eps) as f64;
        assert!(
            cost.makespan as f64 <= target + 2.0,
            "makespan {} > {}",
            cost.makespan,
            target
        );
        assert!(cost.no_slot_exceeds_m);
    }

    #[test]
    fn granular_send_starts_on_grid() {
        let wl = workload::uniform_random(128, 64, 8);
        let n = wl.n_flits();
        let t_prime = n / 128;
        let sched = UnbalancedGranularSend::default().schedule(&wl, 32, 21);
        validate_schedule(&sched, &wl).unwrap();
        for (pid, starts) in sched.starts.iter().enumerate() {
            if wl.msgs(pid).len() as u64 <= n / 32 {
                if let Some(&first) = starts.first() {
                    assert_eq!(first % t_prime, 0, "pid {pid} start {first} off-grid");
                }
            }
        }
    }

    #[test]
    fn granular_send_within_c_bound() {
        let wl = workload::uniform_random(512, 32, 4);
        let m = 64;
        let c = 3.0;
        let sched = UnbalancedGranularSend::new(c).schedule(&wl, m, 2);
        let cost = evaluate_schedule(&sched, &wl, m, PenaltyFn::Exponential);
        let bound = c * wl.n_flits() as f64 / m as f64 + wl.xbar() as f64;
        assert!(
            (cost.makespan as f64) <= bound,
            "makespan {} > {}",
            cost.makespan,
            bound
        );
        assert!(cost.no_slot_exceeds_m);
    }

    #[test]
    fn offline_optimal_achieves_lower_bound_exactly() {
        for (p, per, m) in [(64usize, 16u64, 16usize), (128, 7, 32), (32, 100, 8)] {
            let wl = workload::uniform_random(p, per, 1);
            let sched = OfflineOptimal.schedule(&wl, m, 0);
            validate_schedule(&sched, &wl).unwrap();
            let cost = evaluate_schedule(&sched, &wl, m, PenaltyFn::Exponential);
            assert!(cost.no_slot_exceeds_m, "p={p}");
            assert_eq!(
                cost.makespan as f64,
                cost.opt_lower.max(wl.xbar() as f64),
                "p={p}"
            );
            assert!(
                (cost.ratio_to_opt - 1.0).abs() < 1e-9,
                "p={p} ratio={}",
                cost.ratio_to_opt
            );
        }
    }

    #[test]
    fn offline_optimal_hot_sender() {
        let wl = workload::single_hot_sender(64, 1000, 2, 3);
        let m = 16;
        let sched = OfflineOptimal.schedule(&wl, m, 0);
        let cost = evaluate_schedule(&sched, &wl, m, PenaltyFn::Exponential);
        assert!(cost.no_slot_exceeds_m);
        assert_eq!(cost.makespan, 1000); // x̄ dominates ⌈n/m⌉ = ⌈1126/16⌉ = 71
    }

    #[test]
    fn eager_send_overloads_under_global_penalty() {
        let p = 256;
        let wl = workload::permutation(p, 6);
        let m = 16;
        let eager = EagerSend.schedule(&wl, m, 0);
        let cost = evaluate_schedule(&eager, &wl, m, PenaltyFn::Exponential);
        // All p messages at slot 0: c_m = e^{p/m − 1} = e^15.
        assert_eq!(cost.max_slot_load, p as u64);
        assert!(cost.c_m > 1e6);
        let scheduled = UnbalancedSend::new(0.2).schedule(&wl, m, 0);
        let scost = evaluate_schedule(&scheduled, &wl, m, PenaltyFn::Exponential);
        assert!(scost.c_m < cost.c_m / 1000.0);
    }

    #[test]
    fn eager_send_flit_starts_are_cumulative() {
        let wl = workload::variable_length(4, 3, 4.0, 1);
        let sched = EagerSend.schedule(&wl, 4, 0);
        validate_schedule(&sched, &wl).unwrap();
        for (pid, starts) in sched.starts.iter().enumerate() {
            let mut expect = 0u64;
            for (k, &s) in starts.iter().enumerate() {
                assert_eq!(s, expect);
                expect += wl.msgs(pid)[k].len;
            }
        }
    }

    #[test]
    fn empty_processors_get_empty_plans() {
        let wl = workload::one_to_all(16);
        for sched in [
            UnbalancedSend::new(0.2).schedule(&wl, 4, 0),
            UnbalancedConsecutiveSend::new(0.2).schedule(&wl, 4, 0),
            UnbalancedGranularSend::default().schedule(&wl, 4, 0),
            OfflineOptimal.schedule(&wl, 4, 0),
            EagerSend.schedule(&wl, 4, 0),
        ] {
            validate_schedule(&sched, &wl).unwrap();
            for pid in 1..16 {
                assert!(sched.starts[pid].is_empty());
            }
        }
    }

    #[test]
    #[should_panic(expected = "ε must be in (0,1)")]
    fn rejects_bad_eps() {
        let _ = UnbalancedSend::new(1.5);
    }

    #[test]
    fn template_send_respects_separation() {
        let wl = workload::uniform_random(128, 16, 9);
        let m = 32;
        let sep = 4u64;
        let sched = TemplateSend::new(0.3, sep).schedule(&wl, m, 5);
        validate_schedule(&sched, &wl).unwrap();
        // Within one processor, any two slots differ by ≥ sep cyclically
        // (the template is an arithmetic progression mod the window, so
        // sorted adjacent gaps are at least sep — up to the single wrap
        // point, which is also ≥ sep because sep | window stride layout).
        let n = wl.n_flits() * sep;
        let w = ((1.3_f64) * n as f64 / m as f64).ceil() as u64;
        for slots in &sched.starts {
            let mut v = slots.clone();
            v.sort_unstable();
            for pair in v.windows(2) {
                let gap = pair[1] - pair[0];
                let cyc = gap.min(w.saturating_sub(gap));
                assert!(gap >= sep || cyc >= 1, "gap {gap}");
            }
        }
    }

    #[test]
    fn template_send_sep_one_behaves_like_unbalanced_send() {
        // Identical window and layout law — and identical bandwidth
        // compliance.
        let wl = workload::uniform_random(256, 32, 4);
        let m = 64;
        let t = TemplateSend::new(0.3, 1).schedule(&wl, m, 8);
        let cost = evaluate_schedule(&t, &wl, m, PenaltyFn::Exponential);
        assert!(cost.ratio_to_opt < 1.45, "ratio {}", cost.ratio_to_opt);
    }

    #[test]
    fn template_send_spaced_still_near_optimal() {
        // With separation s the window stretches by s, so the completion
        // target becomes (1+ε)·s·n/m — the price of the spacing
        // constraint, not of the scheduler.
        let wl = workload::uniform_random(256, 16, 6);
        let m = 64;
        let sep = 3u64;
        let sched = TemplateSend::new(0.3, sep).schedule(&wl, m, 2);
        let cost = evaluate_schedule(&sched, &wl, m, PenaltyFn::Exponential);
        let target = 1.3 * (wl.n_flits() * sep) as f64 / m as f64 + 2.0;
        assert!(
            (cost.makespan as f64) <= target,
            "makespan {} > {}",
            cost.makespan,
            target
        );
        // Load still never explodes: expected per-slot load is m/(1+ε)·(1/sep)·sep.
        assert!(cost.c_m < 2.0 * cost.makespan as f64);
    }
}
