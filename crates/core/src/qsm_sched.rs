//! Unbalanced shared-memory access scheduling on the QSM(m) — the paper's
//! "exercise left to the reader".
//!
//! > *"The results are stated for the BSP(m); the same techniques can be
//! > used to obtain similar results for the QSM(m), an exercise left to
//! > the reader."* (Section 1)
//!
//! The exercise, worked: processor `i` holds `x_i` pending shared-memory
//! requests (reads of known addresses and/or writes). The QSM(m) charges
//! `c_m = Σ_t f_m(m_t)` over the per-step *request* injections, so exactly
//! the Unbalanced-Send window trick applies: each processor with
//! `x_i ≤ (1+ε)n/m` picks a uniformly random offset in a window of
//! `(1+ε)n/m` steps and issues its requests cyclically; oversized
//! processors issue eagerly. Per-step request load stays below `m` w.h.p.
//! (the Chernoff argument is verbatim — the random variables are request
//! indicators instead of message indicators), yielding a phase of cost
//! `max((1+ε)n/m, h, κ)`.
//!
//! Two deliverables:
//!
//! * [`schedule_requests`] — the pure scheduling computation (slots for
//!   each processor's requests), mirroring `schedulers::UnbalancedSend`.
//! * [`run_unbalanced_reads`] — an end-to-end QSM execution: every
//!   processor reads its (arbitrarily unbalanced, possibly contended)
//!   address list at the scheduled slots; the engine meters `c_m`, `h` and
//!   `κ`, and the values are verified.

use crate::schedule::{Schedule, ScheduleError};
use pbw_models::{CostModel, MachineParams, PenaltyFn, QsmM, SuperstepProfile};
use pbw_sim::{QsmMachine, Word};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A per-processor batch of shared-memory requests (addresses to read).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestBatch {
    /// `reqs[i]` = the addresses processor `i` wants to read.
    pub reqs: Vec<Vec<usize>>,
}

impl RequestBatch {
    /// Build, validating addresses against a memory of `msize` cells.
    pub fn new(reqs: Vec<Vec<usize>>, msize: usize) -> Self {
        for list in &reqs {
            for &a in list {
                assert!(a < msize, "address {a} out of range ({msize})");
            }
        }
        RequestBatch { reqs }
    }

    /// Number of processors.
    pub fn p(&self) -> usize {
        self.reqs.len()
    }

    /// Total requests `n`.
    pub fn n(&self) -> u64 {
        self.reqs.iter().map(|l| l.len() as u64).sum()
    }

    /// `x̄`: the maximum per-processor request count.
    pub fn xbar(&self) -> u64 {
        self.reqs.iter().map(|l| l.len() as u64).max().unwrap_or(0)
    }

    /// `κ` of the batch: the maximum number of processors requesting any
    /// one location.
    pub fn contention(&self) -> u64 {
        use std::collections::HashMap;
        let mut by_addr: HashMap<usize, u64> = HashMap::new();
        for list in &self.reqs {
            let mut seen: Vec<usize> = list.clone();
            seen.sort_unstable();
            seen.dedup();
            for a in seen {
                *by_addr.entry(a).or_default() += 1;
            }
        }
        by_addr.values().copied().max().unwrap_or(0)
    }
}

/// The Unbalanced-Send window schedule, applied to memory requests:
/// returns a slot for every request (same shape as `batch.reqs`).
pub fn schedule_requests(batch: &RequestBatch, m: usize, eps: f64, seed: u64) -> Schedule {
    assert!(eps > 0.0 && eps < 1.0);
    let n = batch.n();
    let w = (((1.0 + eps) * n as f64 / m as f64).ceil() as u64).max(1);
    let starts = (0..batch.p())
        .map(|pid| {
            let x_i = batch.reqs[pid].len() as u64;
            if x_i == 0 {
                return Vec::new();
            }
            if x_i <= w {
                let mut rng = ChaCha8Rng::seed_from_u64(seed);
                rng.set_stream(pid as u64);
                let j = rng.gen_range(0..w);
                (0..x_i).map(|k| (j + k) % w).collect()
            } else {
                (0..x_i).collect()
            }
        })
        .collect();
    Schedule { starts }
}

/// The consecutive variant of the request schedule (the QSM(m) mirror of
/// Theorem 6.3): each in-window processor issues its requests in
/// *consecutive* steps from its random offset (no wrap) — the shape needed
/// when request initiation has per-burst setup cost. Completes within
/// `max((1+ε)n/m + x̄', x̄)` steps w.h.p.
pub fn schedule_requests_consecutive(
    batch: &RequestBatch,
    m: usize,
    eps: f64,
    seed: u64,
) -> Schedule {
    assert!(eps > 0.0 && eps < 1.0);
    let n = batch.n();
    let w = (((1.0 + eps) * n as f64 / m as f64).ceil() as u64).max(1);
    let starts = (0..batch.p())
        .map(|pid| {
            let x_i = batch.reqs[pid].len() as u64;
            if x_i == 0 {
                return Vec::new();
            }
            let j = if x_i <= w {
                let mut rng = ChaCha8Rng::seed_from_u64(seed);
                rng.set_stream(pid as u64);
                rng.gen_range(0..w)
            } else {
                0
            };
            (0..x_i).map(|k| j + k).collect()
        })
        .collect();
    Schedule { starts }
}

/// Validate a request schedule (shape + one request per processor per
/// step).
pub fn validate_request_schedule(
    schedule: &Schedule,
    batch: &RequestBatch,
) -> Result<(), ScheduleError> {
    if schedule.starts.len() != batch.p() {
        return Err(ScheduleError::ShapeMismatch {
            src: 0,
            expected: batch.p(),
            got: schedule.starts.len(),
        });
    }
    for (pid, (slots, reqs)) in schedule.starts.iter().zip(&batch.reqs).enumerate() {
        if slots.len() != reqs.len() {
            return Err(ScheduleError::ShapeMismatch {
                src: pid,
                expected: reqs.len(),
                got: slots.len(),
            });
        }
        let mut s = slots.clone();
        s.sort_unstable();
        for w in s.windows(2) {
            if w[0] == w[1] {
                return Err(ScheduleError::Overlap {
                    src: pid,
                    slot: w[0],
                });
            }
        }
    }
    Ok(())
}

/// Outcome of an end-to-end unbalanced-read phase on the QSM engine.
#[derive(Debug, Clone)]
pub struct QsmReadOutcome {
    /// QSM(m, exponential) cost of the read phase.
    pub cost: f64,
    /// The phase's profile (for re-pricing).
    pub profile: SuperstepProfile,
    /// The global lower bound `max(n/m, x̄, κ)`.
    pub lower: f64,
    /// `cost / lower`.
    pub ratio: f64,
    /// Whether every processor read the correct values.
    pub ok: bool,
}

/// Execute an unbalanced read batch on the QSM machine using the window
/// schedule, then verify every returned value.
pub fn run_unbalanced_reads(
    params: MachineParams,
    memory: &[Word],
    batch: &RequestBatch,
    eps: f64,
    seed: u64,
) -> QsmReadOutcome {
    assert_eq!(batch.p(), params.p, "batch and machine disagree on p");
    let schedule = schedule_requests(batch, params.m, eps, seed);
    validate_request_schedule(&schedule, batch)
        .unwrap_or_else(|e| panic!("invalid request schedule: {e}"));

    let mut qsm: QsmMachine<Vec<Word>> = QsmMachine::new(params, memory.len(), |_| Vec::new());
    qsm.shared_mut().copy_from_slice(memory);

    let reqs = &batch.reqs;
    let starts = &schedule.starts;
    qsm.phase(move |pid, _s, _res, ctx| {
        for (&addr, &slot) in reqs[pid].iter().zip(&starts[pid]) {
            ctx.read_at(addr, slot);
        }
    });
    let read_profile = qsm.profiles()[0].clone();
    qsm.phase(move |_pid, s, res, _ctx| {
        *s = res.iter().map(|r| r.value).collect();
    });

    let ok = qsm.states().iter().zip(&batch.reqs).all(|(vals, addrs)| {
        vals.len() == addrs.len() && vals.iter().zip(addrs).all(|(&v, &a)| v == memory[a])
    });

    let model = QsmM {
        m: params.m,
        penalty: PenaltyFn::Exponential,
    };
    let cost = model.superstep_cost(&read_profile);
    let lower = (batch.n() as f64 / params.m as f64)
        .max(batch.xbar() as f64)
        .max(batch.contention() as f64);
    QsmReadOutcome {
        cost,
        profile: read_profile,
        lower,
        ratio: if lower > 0.0 { cost / lower } else { 1.0 },
        ok,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    fn memory(msize: usize) -> Vec<Word> {
        (0..msize).map(|i| 7000 + i as Word).collect()
    }

    fn uniform_batch(p: usize, per: usize, msize: usize, seed: u64) -> RequestBatch {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        RequestBatch::new(
            (0..p)
                .map(|_| (0..per).map(|_| rng.gen_range(0..msize)).collect())
                .collect(),
            msize,
        )
    }

    #[test]
    fn batch_stats() {
        let b = RequestBatch::new(vec![vec![0, 1, 0], vec![1], vec![]], 4);
        assert_eq!(b.n(), 4);
        assert_eq!(b.xbar(), 3);
        assert_eq!(b.contention(), 2); // address 1 wanted by procs 0 and 1
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn batch_rejects_bad_address() {
        let _ = RequestBatch::new(vec![vec![9]], 4);
    }

    #[test]
    fn schedule_is_valid_and_windowed() {
        let b = uniform_batch(128, 16, 64, 1);
        let s = schedule_requests(&b, 32, 0.2, 7);
        validate_request_schedule(&s, &b).unwrap();
        let w = ((1.2 * b.n() as f64 / 32.0).ceil()) as u64;
        for (pid, slots) in s.starts.iter().enumerate() {
            if (b.reqs[pid].len() as u64) <= w {
                assert!(slots.iter().all(|&t| t < w));
            }
        }
    }

    #[test]
    fn reads_verified_and_near_optimal() {
        let params = MachineParams::from_bandwidth(256, 64, 4);
        let mem = memory(128);
        let b = uniform_batch(256, 16, 128, 2);
        let out = run_unbalanced_reads(params, &mem, &b, 0.3, 11);
        assert!(out.ok);
        assert!(out.ratio < 1.5, "ratio {}", out.ratio);
    }

    #[test]
    fn hot_requester_handled() {
        // One processor wants 2048 reads; everyone else 4.
        let params = MachineParams::from_bandwidth(128, 32, 4);
        let mem = memory(64);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut reqs: Vec<Vec<usize>> = (0..128)
            .map(|_| (0..4).map(|_| rng.gen_range(0..64)).collect())
            .collect();
        reqs[0] = (0..2048).map(|_| rng.gen_range(0..64)).collect();
        let b = RequestBatch::new(reqs, 64);
        let out = run_unbalanced_reads(params, &mem, &b, 0.3, 5);
        assert!(out.ok);
        // x̄ dominates; the schedule must not inflate it.
        assert!(out.cost >= 2048.0);
        assert!(out.ratio < 1.4, "ratio {}", out.ratio);
    }

    #[test]
    fn contended_location_priced_by_kappa() {
        // Everyone reads address 0: κ = p dominates — scheduling cannot
        // help contention (QSM charges κ regardless), and the outcome says
        // so honestly.
        let params = MachineParams::from_bandwidth(128, 32, 4);
        let mem = memory(8);
        let b = RequestBatch::new(vec![vec![0]; 128], 8);
        let out = run_unbalanced_reads(params, &mem, &b, 0.3, 9);
        assert!(out.ok);
        assert_eq!(out.profile.max_contention, 128);
        assert!(out.ratio <= 1.05, "κ should dominate, ratio {}", out.ratio);
    }

    #[test]
    fn consecutive_requests_are_contiguous_and_valid() {
        let b = uniform_batch(128, 16, 64, 6);
        let s = schedule_requests_consecutive(&b, 32, 0.25, 9);
        validate_request_schedule(&s, &b).unwrap();
        for slots in &s.starts {
            for w in slots.windows(2) {
                assert_eq!(w[1], w[0] + 1);
            }
        }
    }

    #[test]
    fn consecutive_requests_within_additive_bound() {
        let b = uniform_batch(256, 16, 64, 7);
        let m = 64;
        let eps = 0.3;
        let s = schedule_requests_consecutive(&b, m, eps, 3);
        let makespan = s
            .starts
            .iter()
            .flat_map(|v| v.iter().copied())
            .max()
            .map(|t| t + 1)
            .unwrap_or(0);
        let target = (1.0 + eps) * b.n() as f64 / m as f64 + b.xbar() as f64;
        assert!(
            (makespan as f64) <= target + 2.0,
            "makespan {makespan} > {target}"
        );
    }

    #[test]
    fn empty_batch() {
        let params = MachineParams::from_bandwidth(16, 4, 2);
        let b = RequestBatch::new(vec![Vec::new(); 16], 4);
        let out = run_unbalanced_reads(params, &memory(4), &b, 0.2, 0);
        assert!(out.ok);
    }

    #[test]
    fn deterministic_per_seed() {
        let b = uniform_batch(64, 8, 32, 4);
        let a = schedule_requests(&b, 16, 0.2, 5);
        let c = schedule_requests(&b, 16, 0.2, 5);
        let d = schedule_requests(&b, 16, 0.2, 6);
        assert_eq!(a, c);
        assert_ne!(a, d);
    }
}
