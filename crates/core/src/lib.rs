//! # pbw-core
//!
//! The primary contribution of the SPAA'97 paper *"Modeling Parallel
//! Bandwidth: Local vs. Global Restrictions"*: randomized parallel
//! algorithms that schedule an **unknown, arbitrarily-unbalanced
//! h-relation** through an aggregate bandwidth limit `m`, within a `(1+ε)`
//! factor of the optimal offline schedule w.h.p. — even when the penalty for
//! overloading the network is exponential in the overload.
//!
//! ## The problem (Section 6.1)
//!
//! Processor `i` holds `x_i` messages for other processors; `n = Σ x_i`,
//! `x̄ = max x_i`, `ȳ` = max per-destination load, `h = max(x̄, ȳ)`. Each
//! processor knows only its own `x_i`. On the locally-limited BSP(g) the
//! best possible is `Θ(g(x̄+ȳ) + L)` (Proposition 6.1); the globally-limited
//! lower bound is `max(n/m, h)` — better by a factor of `g` whenever the
//! relation is imbalanced (`h ≥ g·n/p`). To *realize* the global bound the
//! processors must stagger their injections so that no step carries more
//! than `m` messages; this crate implements the paper's schedulers:
//!
//! * [`UnbalancedSend`] (Theorem 6.2) — each small sender picks a random
//!   offset in a window of `(1+ε)n/m` steps and sends cyclically;
//!   completes in `max((1+ε)n/m, x̄, ȳ) + τ` w.h.p.
//! * [`UnbalancedConsecutiveSend`] (Theorem 6.3) — messages of one sender go
//!   in consecutive steps (for large message start-up costs); additive `x̄'`.
//! * [`UnbalancedGranularSend`] (Theorem 6.4) — offsets restricted to a
//!   `t' = n/p` grid: the failure probability depends on `p`, not `n`.
//! * [`flits::UnbalancedFlitSend`] — variable-length messages whose flits
//!   must occupy *consecutive* time steps; additive `ℓ̂` (max length).
//! * [`flits::OverheadSend`] — per-message start-up cost `o` (LogP's
//!   overhead), handled by prepending a dummy `o`-flit preamble.
//! * [`OfflineOptimal`] — the wrap-around-rule offline schedule achieving
//!   exactly `max(⌈n/m⌉, x̄)`: the comparator in every experiment.
//! * [`EagerSend`] — the bandwidth-oblivious baseline (everyone pipelines
//!   from step 0), which the exponential penalty punishes with
//!   `e^{p/m − 1}`-sized charges.
//!
//! [`preamble`] implements the `τ = O(p/m + L + L·lg m / lg L)` prefix-sum +
//! broadcast that informs every processor of `n`, as a real BSP(m) program;
//! [`exec`] replays any schedule end-to-end on the `pbw-sim` engine;
//! [`protocol`] chains preamble + send into the complete measured Theorem
//! 6.2 pipeline; and [`qsm_sched`] works the paper's "exercise left to the
//! reader" — the same scheduling results on the shared-memory QSM(m).

pub mod exec;
pub mod flits;
pub mod preamble;
pub mod protocol;
pub mod qsm_sched;
pub mod recovery;
pub mod schedule;
pub mod schedulers;
pub mod workload;

pub use recovery::checkpoint::{
    run_with_checkpointed_recovery, run_with_checkpointed_recovery_to, CheckpointConfig,
    CheckpointedOutcome, WallClockHook,
};
pub use recovery::{
    run_with_recovery, run_with_recovery_to, RecoveryConfig, RecoveryOutcome, RecoveryPhase,
    RecoverySession, SessionCheckpoint,
};
pub use schedule::{evaluate_schedule, validate_schedule, Schedule, ScheduleCost};
pub use schedulers::{
    EagerSend, OfflineOptimal, Scheduler, UnbalancedConsecutiveSend, UnbalancedGranularSend,
    UnbalancedSend,
};
pub use workload::{Msg, Workload};
