//! Schedule representation, validation and pricing.
//!
//! A [`Schedule`] assigns every message of a [`Workload`] a *start slot*;
//! a message of length `ℓ` occupies slots `[start, start+ℓ)` — consuming one
//! unit of aggregate bandwidth in each (the Bhatt-et-al.-style contiguous
//! stream the paper adopts for long messages; unit messages occupy exactly
//! their start slot).
//!
//! [`validate_schedule`] checks the model rule that a processor injects at
//! most one flit per step; [`evaluate_schedule`] builds the machine-wide
//! per-step load histogram and prices it under a
//! [`PenaltyFn`], yielding the quantities every Section 6
//! experiment reports (makespan, `c_m`, overload counts, distance from the
//! `max(n/m, h)` lower bound).

use crate::workload::Workload;
use pbw_models::{div_ceil, MachineParams, PenaltyFn, ProfileBuilder, SuperstepProfile};
use pbw_trace::{TraceEvent, TraceSink, TraceSource};
use rayon::prelude::*;

/// A start slot for every message of a workload (same shape as
/// `workload.sends()`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    /// `starts[src][k]` = injection slot of the first flit of the k-th
    /// message of processor `src`.
    pub starts: Vec<Vec<u64>>,
}

impl Schedule {
    /// Sources assigned at least one start slot, in ascending pid order.
    /// For a schedule matching its workload's shape this is exactly the
    /// workload's [`Workload::active_senders`] set; executors hand it to
    /// the engines' sparse path so replaying a sparse schedule costs
    /// O(senders + flits) per superstep instead of O(p).
    pub fn active_senders(&self) -> Vec<usize> {
        (0..self.starts.len())
            .filter(|&src| !self.starts[src].is_empty())
            .collect()
    }
}

/// Schedule validity errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleError {
    /// The schedule's shape does not match the workload's.
    ShapeMismatch {
        src: usize,
        expected: usize,
        got: usize,
    },
    /// A processor injects two flits in one step.
    Overlap { src: usize, slot: u64 },
}

impl std::fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScheduleError::ShapeMismatch { src, expected, got } => write!(
                f,
                "processor {src}: schedule has {got} starts for {expected} messages"
            ),
            ScheduleError::Overlap { src, slot } => {
                write!(f, "processor {src} injects two flits at step {slot}")
            }
        }
    }
}

impl std::error::Error for ScheduleError {}

/// Check shape and the one-flit-per-processor-per-step rule.
pub fn validate_schedule(schedule: &Schedule, wl: &Workload) -> Result<(), ScheduleError> {
    if schedule.starts.len() != wl.p() {
        return Err(ScheduleError::ShapeMismatch {
            src: 0,
            expected: wl.p(),
            got: schedule.starts.len(),
        });
    }
    // Per-source checks are independent; the fallible parallel collect
    // surfaces the lowest-`src` error, matching the sequential scan.
    let checks: Result<Vec<()>, ScheduleError> = schedule
        .starts
        .par_iter()
        .enumerate()
        .map(|(src, starts)| {
            let msgs = wl.msgs(src);
            if starts.len() != msgs.len() {
                return Err(ScheduleError::ShapeMismatch {
                    src,
                    expected: msgs.len(),
                    got: starts.len(),
                });
            }
            // Occupied intervals must be pairwise disjoint.
            let mut intervals: Vec<(u64, u64)> = starts
                .iter()
                .zip(msgs.iter())
                .map(|(&s, m)| (s, s + m.len))
                .collect();
            intervals.sort_unstable();
            for w in intervals.windows(2) {
                if w[1].0 < w[0].1 {
                    return Err(ScheduleError::Overlap { src, slot: w[1].0 });
                }
            }
            Ok(())
        })
        .collect();
    checks.map(|_| ())
}

/// The machine-wide per-step flit load of a schedule.
pub fn slot_loads(schedule: &Schedule, wl: &Workload) -> Vec<u64> {
    // Per-source makespan maxima, then per-chunk histograms summed slot-wise
    // — both u64 merges are exact under any chunking, so the result is
    // identical at every thread count.
    let makespan = schedule
        .starts
        .par_iter()
        .enumerate()
        .map(|(src, starts)| {
            starts
                .iter()
                .zip(wl.msgs(src))
                .map(|(&s, m)| s + m.len)
                .max()
                .unwrap_or(0)
        })
        .collect::<Vec<u64>>()
        .into_iter()
        .max()
        .unwrap_or(0);
    schedule.starts.par_iter().enumerate().fold_chunks(
        || vec![0u64; makespan as usize],
        |mut loads, (src, starts)| {
            for (&s, m) in starts.iter().zip(wl.msgs(src)) {
                for t in s..s + m.len {
                    loads[t as usize] += 1;
                }
            }
            loads
        },
        |mut a, b| {
            for (x, y) in a.iter_mut().zip(b) {
                *x += y;
            }
            a
        },
    )
}

/// Convert a schedule into a [`SuperstepProfile`], so it can be priced under
/// any `pbw_models::CostModel` (including the QSM variants and the
/// self-scheduling metric).
pub fn to_profile(schedule: &Schedule, wl: &Workload) -> SuperstepProfile {
    let mut b = ProfileBuilder::new();
    let recv = wl.recv_counts();
    let sent = wl.send_counts();
    for i in 0..wl.p() {
        b.record_traffic(sent[i], recv[i]);
    }
    // The injection histogram is exactly the parallel slot-load pass.
    for (t, &count) in slot_loads(schedule, wl).iter().enumerate() {
        if count > 0 {
            b.record_injections(t as u64, count);
        }
    }
    b.build()
}

/// Audit a schedule slot-by-slot as one [`TraceEvent`], without executing it.
///
/// The schedule is converted into its exact [`SuperstepProfile`] (same path
/// as [`to_profile`]) and packaged with the per-model breakdown, per-slot
/// penalty contributions and per-model costs, exactly as the engines do for
/// executed supersteps — this is how offline experiments (e.g. the
/// Proposition 6.1 routing comparison) expose *which term bound* without a
/// simulator run. `delivered` is the workload's flit total, since a valid
/// schedule delivers every flit.
pub fn audit_schedule(
    schedule: &Schedule,
    wl: &Workload,
    params: MachineParams,
    label: impl Into<String>,
) -> TraceEvent {
    TraceEvent::for_superstep(
        TraceSource::Schedule,
        label,
        0,
        params,
        to_profile(schedule, wl),
        wl.send_counts(),
        wl.recv_counts(),
        max_per_proc_slot_occupancy(schedule, wl),
        wl.n_flits(),
    )
}

/// Emit a schedule audit into `sink`; skipped entirely when the sink is
/// disabled (so auditing can be left in experiment hot paths).
pub fn audit_schedule_to(
    sink: &dyn TraceSink,
    schedule: &Schedule,
    wl: &Workload,
    params: MachineParams,
    label: impl Into<String>,
) {
    if sink.enabled() {
        sink.record(audit_schedule(schedule, wl, params, label));
    }
}

/// Largest number of flits one processor injects in one slot (1 for any
/// schedule accepted by [`validate_schedule`]; recomputed here so audits
/// report what the schedule actually does, not what validation implies).
fn max_per_proc_slot_occupancy(schedule: &Schedule, wl: &Workload) -> u64 {
    // Per-source sweeps are independent; `max` over the per-source results
    // is exact under any chunking.
    schedule
        .starts
        .par_iter()
        .enumerate()
        .map(|(src, starts)| {
            // Interval sweep over [start, start+len): ends sort before
            // starts at equal slots because -1 < +1.
            let mut deltas: Vec<(u64, i64)> = Vec::with_capacity(starts.len() * 2);
            for (&s, m) in starts.iter().zip(wl.msgs(src)) {
                if m.len > 0 {
                    deltas.push((s, 1));
                    deltas.push((s + m.len, -1));
                }
            }
            deltas.sort_unstable();
            let mut cur = 0i64;
            let mut best = 0i64;
            for (_, d) in deltas {
                cur += d;
                best = best.max(cur);
            }
            best
        })
        .collect::<Vec<i64>>()
        .into_iter()
        .max()
        .unwrap_or(0) as u64
}

/// Everything the Section 6 experiments report about one schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleCost {
    /// Last occupied step + 1.
    pub makespan: u64,
    /// Maximum machine-wide flit load of any step.
    pub max_slot_load: u64,
    /// Number of steps whose load exceeds `m`.
    pub overloaded_slots: u64,
    /// Whether every step carried at most `m` flits (the w.h.p. event of
    /// Theorems 6.2–6.4).
    pub no_slot_exceeds_m: bool,
    /// `c_m = Σ_t f_m(m_t)` under the chosen penalty.
    pub c_m: f64,
    /// `h = max(x̄, ȳ)` of the workload.
    pub h: u64,
    /// Total flits `n`.
    pub n: u64,
    /// The global-bandwidth lower bound `max(⌈n/m⌉, h)`.
    pub opt_lower: f64,
    /// The BSP(m) communication time of the superstep: `max(h, c_m)`.
    pub model_time: f64,
    /// `model_time / opt_lower` — the optimality ratio the paper bounds by
    /// `(1+ε)` (plus additive terms, depending on the variant).
    pub ratio_to_opt: f64,
}

/// Price a schedule under aggregate bandwidth `m` and the given overload
/// penalty.
///
/// # Panics
/// Panics if the schedule is invalid (call [`validate_schedule`] first for a
/// `Result`).
pub fn evaluate_schedule(
    schedule: &Schedule,
    wl: &Workload,
    m: usize,
    penalty: PenaltyFn,
) -> ScheduleCost {
    validate_schedule(schedule, wl).unwrap_or_else(|e| panic!("invalid schedule: {e}"));
    let loads = slot_loads(schedule, wl);
    let n = wl.n_flits();
    let h = wl.h();
    let makespan = loads.len() as u64;
    let max_slot_load = loads.iter().copied().max().unwrap_or(0);
    let overloaded_slots = loads.iter().filter(|&&l| l > m as u64).count() as u64;
    let c_m = penalty.total_charge(&loads, m);
    let opt_lower = if n == 0 {
        0.0
    } else {
        (div_ceil(n, m as u64).max(h)) as f64
    };
    let model_time = (h as f64).max(c_m);
    let ratio_to_opt = if opt_lower > 0.0 {
        model_time / opt_lower
    } else {
        1.0
    };
    ScheduleCost {
        makespan,
        max_slot_load,
        overloaded_slots,
        no_slot_exceeds_m: overloaded_slots == 0,
        c_m,
        h,
        n,
        opt_lower,
        model_time,
        ratio_to_opt,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{Msg, Workload};

    fn unit_wl() -> Workload {
        // proc 0 sends 3 to proc 1; proc 1 sends 1 to proc 0.
        Workload::from_dests(vec![vec![1, 1, 1], vec![0]])
    }

    #[test]
    fn validate_accepts_disjoint_slots() {
        let wl = unit_wl();
        let s = Schedule {
            starts: vec![vec![0, 1, 2], vec![0]],
        };
        assert!(validate_schedule(&s, &wl).is_ok());
    }

    #[test]
    fn validate_rejects_overlap() {
        let wl = unit_wl();
        let s = Schedule {
            starts: vec![vec![0, 1, 1], vec![0]],
        };
        assert_eq!(
            validate_schedule(&s, &wl).unwrap_err(),
            ScheduleError::Overlap { src: 0, slot: 1 }
        );
    }

    #[test]
    fn validate_rejects_shape_mismatch() {
        let wl = unit_wl();
        let s = Schedule {
            starts: vec![vec![0, 1], vec![0]],
        };
        assert!(matches!(
            validate_schedule(&s, &wl).unwrap_err(),
            ScheduleError::ShapeMismatch {
                src: 0,
                expected: 3,
                got: 2
            }
        ));
    }

    #[test]
    fn flit_intervals_overlap_detected() {
        // One message of length 3 at slot 0 and one of length 1 at slot 2.
        let wl = Workload::new(vec![
            vec![Msg { dest: 1, len: 3 }, Msg { dest: 1, len: 1 }],
            vec![],
        ]);
        let bad = Schedule {
            starts: vec![vec![0, 2], vec![]],
        };
        assert_eq!(
            validate_schedule(&bad, &wl).unwrap_err(),
            ScheduleError::Overlap { src: 0, slot: 2 }
        );
        let good = Schedule {
            starts: vec![vec![0, 3], vec![]],
        };
        assert!(validate_schedule(&good, &wl).is_ok());
    }

    #[test]
    fn slot_loads_count_flits() {
        let wl = Workload::new(vec![
            vec![Msg { dest: 1, len: 2 }],
            vec![Msg { dest: 0, len: 1 }],
        ]);
        let s = Schedule {
            starts: vec![vec![1], vec![2]],
        };
        assert_eq!(slot_loads(&s, &wl), vec![0, 1, 2]);
    }

    #[test]
    fn evaluate_balanced_schedule() {
        let wl = unit_wl();
        // m = 1: stagger so that each slot carries one flit.
        let s = Schedule {
            starts: vec![vec![0, 1, 2], vec![3]],
        };
        let cost = evaluate_schedule(&s, &wl, 1, PenaltyFn::Exponential);
        assert_eq!(cost.makespan, 4);
        assert_eq!(cost.max_slot_load, 1);
        assert!(cost.no_slot_exceeds_m);
        assert_eq!(cost.c_m, 4.0);
        assert_eq!(cost.h, 3);
        // opt = max(ceil(4/1), 3) = 4; model time = max(3, 4) = 4.
        assert_eq!(cost.opt_lower, 4.0);
        assert!((cost.ratio_to_opt - 1.0).abs() < 1e-12);
    }

    #[test]
    fn evaluate_overloaded_schedule() {
        let wl = unit_wl();
        // Both processors inject at slot 0 (and proc 0 continues): load
        // [2,1,1] with m = 1.
        let s = Schedule {
            starts: vec![vec![0, 1, 2], vec![0]],
        };
        let cost = evaluate_schedule(&s, &wl, 1, PenaltyFn::Exponential);
        assert_eq!(cost.max_slot_load, 2);
        assert_eq!(cost.overloaded_slots, 1);
        assert!(!cost.no_slot_exceeds_m);
        assert!((cost.c_m - (1.0f64.exp() + 2.0)).abs() < 1e-9);
    }

    #[test]
    fn linear_penalty_charges_ratio() {
        let wl = unit_wl();
        let s = Schedule {
            starts: vec![vec![0, 1, 2], vec![0]],
        };
        let cost = evaluate_schedule(&s, &wl, 1, PenaltyFn::Linear);
        assert!((cost.c_m - (2.0 + 1.0 + 1.0)).abs() < 1e-12);
    }

    #[test]
    fn to_profile_matches_slot_loads() {
        let wl = unit_wl();
        let s = Schedule {
            starts: vec![vec![0, 1, 2], vec![0]],
        };
        let prof = to_profile(&s, &wl);
        assert_eq!(prof.injections, slot_loads(&s, &wl));
        assert_eq!(prof.max_sent, 3);
        assert_eq!(prof.max_received, 3);
        assert_eq!(prof.total_messages, 4);
    }

    #[test]
    fn audit_matches_evaluation() {
        let wl = unit_wl();
        let s = Schedule {
            starts: vec![vec![0, 1, 2], vec![0]],
        };
        let params = MachineParams::new_unchecked(2, 4, 1, 1);
        let ev = audit_schedule(&s, &wl, params, "unit");
        assert_eq!(ev.profile, to_profile(&s, &wl));
        assert_eq!(ev.delivered, wl.n_flits());
        assert_eq!(ev.max_proc_slot_injections, 1);
        let cost = evaluate_schedule(&s, &wl, 1, PenaltyFn::Exponential);
        assert!((ev.breakdown.bandwidth - cost.c_m).abs() < 1e-12);
        let slot_sum: f64 = ev.slot_penalties.iter().sum();
        assert!((slot_sum - cost.c_m).abs() < 1e-12);
    }

    #[test]
    fn audit_reports_real_per_proc_overlap() {
        // A deliberately invalid schedule: proc 0 injects two flits at slot 0.
        let wl = unit_wl();
        let s = Schedule {
            starts: vec![vec![0, 0, 1], vec![0]],
        };
        let ev = audit_schedule(&s, &wl, MachineParams::new_unchecked(2, 1, 2, 1), "bad");
        assert_eq!(ev.max_proc_slot_injections, 2);
    }

    #[test]
    fn audit_to_respects_disabled_sink() {
        let wl = unit_wl();
        let s = Schedule {
            starts: vec![vec![0, 1, 2], vec![0]],
        };
        let params = MachineParams::new_unchecked(2, 4, 1, 1);
        let rec = pbw_trace::RecordingSink::new();
        audit_schedule_to(&pbw_trace::NullSink, &s, &wl, params, "off");
        audit_schedule_to(&rec, &s, &wl, params, "on");
        assert_eq!(rec.len(), 1);
        assert_eq!(rec.take()[0].label, "on");
    }

    #[test]
    fn empty_workload_evaluates_cleanly() {
        let wl = Workload::new(vec![vec![], vec![]]);
        let s = Schedule {
            starts: vec![vec![], vec![]],
        };
        let cost = evaluate_schedule(&s, &wl, 4, PenaltyFn::Exponential);
        assert_eq!(cost.makespan, 0);
        assert_eq!(cost.opt_lower, 0.0);
        assert!((cost.ratio_to_opt - 1.0).abs() < 1e-12);
    }
}
