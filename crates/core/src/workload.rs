//! Unbalanced h-relation workloads.
//!
//! Section 6 motivates imbalance from irregular applications: input skew,
//! data already local (nearly-sorted lists), skewed intermediate results
//! (joins), uneven task spawning. The generators here cover those regimes,
//! parameterized by a skew knob, so experiments can sweep from perfectly
//! balanced to single-hot-sender relations.

use rand::distributions::Distribution;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// One message of an h-relation: destination and length in flits
/// (`len = 1` for the fixed-size-message Sections 6.1 algorithms).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Msg {
    /// Destination processor.
    pub dest: usize,
    /// Length in flits (≥ 1).
    pub len: u64,
}

impl Msg {
    /// A unit (single-flit) message.
    pub fn unit(dest: usize) -> Self {
        Msg { dest, len: 1 }
    }
}

/// An h-relation: for each source processor, its list of messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Workload {
    sends: Vec<Vec<Msg>>,
}

impl Workload {
    /// Build from explicit per-source message lists.
    ///
    /// # Panics
    /// Panics on an out-of-range destination or a zero-length message.
    pub fn new(sends: Vec<Vec<Msg>>) -> Self {
        let p = sends.len();
        for list in &sends {
            for m in list {
                assert!(m.dest < p, "destination {} out of range (p={p})", m.dest);
                assert!(m.len >= 1, "zero-length message");
            }
        }
        Workload { sends }
    }

    /// Build a unit-message workload from `(src → [dest...])` lists.
    pub fn from_dests(dests: Vec<Vec<usize>>) -> Self {
        Workload::new(
            dests
                .into_iter()
                .map(|l| l.into_iter().map(Msg::unit).collect())
                .collect(),
        )
    }

    /// Number of processors.
    pub fn p(&self) -> usize {
        self.sends.len()
    }

    /// Messages sent by processor `i`.
    pub fn msgs(&self, i: usize) -> &[Msg] {
        &self.sends[i]
    }

    /// All per-source message lists.
    pub fn sends(&self) -> &[Vec<Msg>] {
        &self.sends
    }

    /// Total number of messages.
    pub fn n_messages(&self) -> u64 {
        self.sends.iter().map(|l| l.len() as u64).sum()
    }

    /// Total number of flits `n` (equals `n_messages` for unit workloads);
    /// this is the `n` of Theorems 6.2–6.4.
    pub fn n_flits(&self) -> u64 {
        self.sends.iter().flatten().map(|m| m.len).sum()
    }

    /// Per-source flit totals `x_i`.
    pub fn send_counts(&self) -> Vec<u64> {
        self.sends
            .iter()
            .map(|l| l.iter().map(|m| m.len).sum())
            .collect()
    }

    /// Per-destination flit totals `y_i`.
    pub fn recv_counts(&self) -> Vec<u64> {
        let mut y = vec![0u64; self.p()];
        for list in &self.sends {
            for m in list {
                y[m.dest] += m.len;
            }
        }
        y
    }

    /// `x̄ = max_i x_i`.
    pub fn xbar(&self) -> u64 {
        self.send_counts().into_iter().max().unwrap_or(0)
    }

    /// `ȳ = max_i y_i`.
    pub fn ybar(&self) -> u64 {
        self.recv_counts().into_iter().max().unwrap_or(0)
    }

    /// `h = max(x̄, ȳ)`.
    pub fn h(&self) -> u64 {
        self.xbar().max(self.ybar())
    }

    /// `ℓ̂`: maximum message length.
    pub fn lhat(&self) -> u64 {
        self.sends
            .iter()
            .flatten()
            .map(|m| m.len)
            .max()
            .unwrap_or(0)
    }

    /// `ℓ̄`: mean message length (0 when empty).
    pub fn lbar(&self) -> f64 {
        let msgs = self.n_messages();
        if msgs == 0 {
            0.0
        } else {
            self.n_flits() as f64 / msgs as f64
        }
    }

    /// Whether every message is a single flit.
    pub fn is_unit(&self) -> bool {
        self.sends.iter().flatten().all(|m| m.len == 1)
    }

    /// Sources with at least one message, in ascending pid order — the
    /// active-sender set callers hand to the engines' sparse execution path
    /// (`BspMachine::superstep_active`) so an unbalanced workload costs
    /// O(senders + messages) per superstep instead of O(p).
    pub fn active_senders(&self) -> Vec<usize> {
        (0..self.p())
            .filter(|&i| !self.sends[i].is_empty())
            .collect()
    }

    /// The imbalance measure the paper's separation hinges on:
    /// `h / (n/p)` — the global bound beats the local one by `Θ(g)` exactly
    /// when this is `≥ g` (Section 1). Returns `0` for empty workloads.
    pub fn imbalance(&self) -> f64 {
        let n = self.n_flits();
        if n == 0 {
            return 0.0;
        }
        self.h() as f64 / (n as f64 / self.p() as f64)
    }
}

// ---------------------------------------------------------------------------
// Generators (all unit-message; flit generators live in `crate::flits`)
// ---------------------------------------------------------------------------

/// Balanced random relation: every processor sends `per_proc` unit messages
/// to uniformly random destinations.
pub fn uniform_random(p: usize, per_proc: u64, seed: u64) -> Workload {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    Workload::new(
        (0..p)
            .map(|_| {
                (0..per_proc)
                    .map(|_| Msg::unit(rng.gen_range(0..p)))
                    .collect()
            })
            .collect(),
    )
}

/// A random permutation relation: each processor sends exactly one message,
/// each processor receives exactly one (`h = 1`, `n = p`).
pub fn permutation(p: usize, seed: u64) -> Workload {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut dests: Vec<usize> = (0..p).collect();
    // Fisher–Yates.
    for i in (1..p).rev() {
        let j = rng.gen_range(0..=i);
        dests.swap(i, j);
    }
    Workload::new(dests.into_iter().map(|d| vec![Msg::unit(d)]).collect())
}

/// Single hot sender: processor 0 sends `hot` messages (random
/// destinations), everyone else sends `cold`. This is the maximal-imbalance
/// regime where the globally-limited models win by `Θ(g)`.
pub fn single_hot_sender(p: usize, hot: u64, cold: u64, seed: u64) -> Workload {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    Workload::new(
        (0..p)
            .map(|src| {
                let count = if src == 0 { hot } else { cold };
                (0..count)
                    .map(|_| {
                        // Avoid self-sends from the hot processor so the
                        // receive side spreads.
                        let mut d = rng.gen_range(0..p);
                        if d == src {
                            d = (d + 1) % p;
                        }
                        Msg::unit(d)
                    })
                    .collect()
            })
            .collect(),
    )
}

/// Single hot receiver: every processor sends `per_proc` messages, all to
/// processor 0 with probability `focus`, else uniform. Exercises the `ȳ`
/// term of the bounds.
pub fn single_hot_receiver(p: usize, per_proc: u64, focus: f64, seed: u64) -> Workload {
    assert!((0.0..=1.0).contains(&focus));
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    Workload::new(
        (0..p)
            .map(|_| {
                (0..per_proc)
                    .map(|_| {
                        if rng.gen_bool(focus) {
                            Msg::unit(0)
                        } else {
                            Msg::unit(rng.gen_range(0..p))
                        }
                    })
                    .collect()
            })
            .collect(),
    )
}

/// Zipf-skewed send counts: processor of rank `r` (random rank assignment)
/// sends `⌈scale / (r+1)^θ⌉` messages to uniform destinations. `θ = 0` is
/// balanced; `θ ≥ 1` concentrates traffic on a few senders — the join-skew
/// regime from the paper's introduction.
pub fn zipf_senders(p: usize, scale: u64, theta: f64, seed: u64) -> Workload {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut ranks: Vec<usize> = (0..p).collect();
    for i in (1..p).rev() {
        let j = rng.gen_range(0..=i);
        ranks.swap(i, j);
    }
    Workload::new(
        (0..p)
            .map(|src| {
                let r = ranks[src] as f64;
                let count = (scale as f64 / (r + 1.0).powf(theta)).ceil() as u64;
                (0..count).map(|_| Msg::unit(rng.gen_range(0..p))).collect()
            })
            .collect(),
    )
}

/// Bimodal relation: a fraction `hot_frac` of processors send `hot`
/// messages, the rest send `cold`.
pub fn bimodal(p: usize, hot_frac: f64, hot: u64, cold: u64, seed: u64) -> Workload {
    assert!((0.0..=1.0).contains(&hot_frac));
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let hot_count = ((p as f64) * hot_frac).round() as usize;
    Workload::new(
        (0..p)
            .map(|src| {
                let count = if src < hot_count { hot } else { cold };
                (0..count).map(|_| Msg::unit(rng.gen_range(0..p))).collect()
            })
            .collect(),
    )
}

/// Total exchange (all-to-all personalized communication): every processor
/// sends one unit message to every other processor.
pub fn total_exchange(p: usize) -> Workload {
    Workload::new(
        (0..p)
            .map(|src| (0..p).filter(|&d| d != src).map(Msg::unit).collect())
            .collect(),
    )
}

/// One-to-all personalized communication: processor 0 sends a distinct
/// message to each other processor (the Section 1 motivating example).
pub fn one_to_all(p: usize) -> Workload {
    let mut sends = vec![Vec::new(); p];
    sends[0] = (1..p).map(Msg::unit).collect();
    Workload::new(sends)
}

/// Geometric message-length sampler used by the flit experiments: lengths
/// `≥ 1` with mean `mean_len`.
pub fn geometric_len<R: Rng>(rng: &mut R, mean_len: f64) -> u64 {
    assert!(mean_len >= 1.0);
    if mean_len == 1.0 {
        return 1;
    }
    let q = 1.0 / mean_len;
    let geo = rand::distributions::Uniform::new(0.0f64, 1.0);
    let u: f64 = geo.sample(rng);
    (1.0 + (u.ln() / (1.0 - q).ln()).floor()).max(1.0) as u64
}

/// Variable-length workload: every processor sends `per_proc` messages with
/// geometric lengths of the given mean.
pub fn variable_length(p: usize, per_proc: u64, mean_len: f64, seed: u64) -> Workload {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    Workload::new(
        (0..p)
            .map(|_| {
                (0..per_proc)
                    .map(|_| Msg {
                        dest: rng.gen_range(0..p),
                        len: geometric_len(&mut rng, mean_len),
                    })
                    .collect()
            })
            .collect(),
    )
}

// ---------------------------------------------------------------------------
// Imbalance statistics
// ---------------------------------------------------------------------------

/// Distribution statistics of a workload's per-processor send load —
/// the quantitative face of "skew in the inputs" (§6).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ImbalanceStats {
    /// Mean flits per processor `n/p`.
    pub mean: f64,
    /// `x̄ / (n/p)` — the ratio the Θ(g) separation condition reads.
    pub peak_ratio: f64,
    /// Gini coefficient of the send loads (0 = perfectly balanced,
    /// → 1 = one sender owns everything).
    pub gini: f64,
    /// Fraction of processors carrying 90% of the flits (read: "the hot
    /// set").
    pub hot_set_fraction: f64,
}

impl Workload {
    /// Compute imbalance statistics of the send side.
    pub fn imbalance_stats(&self) -> ImbalanceStats {
        let mut loads = self.send_counts();
        let p = loads.len().max(1);
        let n: u64 = loads.iter().sum();
        if n == 0 {
            return ImbalanceStats {
                mean: 0.0,
                peak_ratio: 0.0,
                gini: 0.0,
                hot_set_fraction: 0.0,
            };
        }
        let mean = n as f64 / p as f64;
        loads.sort_unstable();
        // Gini via the sorted-rank formula: G = (2·Σ i·x_i)/(p·Σ x_i) − (p+1)/p.
        let weighted: f64 = loads
            .iter()
            .enumerate()
            .map(|(i, &x)| (i as f64 + 1.0) * x as f64)
            .sum();
        let gini = (2.0 * weighted) / (p as f64 * n as f64) - (p as f64 + 1.0) / p as f64;
        // Hot set: smallest suffix of the sorted loads covering 90% of n.
        let mut acc = 0u64;
        let mut hot = 0usize;
        for &x in loads.iter().rev() {
            acc += x;
            hot += 1;
            if acc as f64 >= 0.9 * n as f64 {
                break;
            }
        }
        ImbalanceStats {
            mean,
            peak_ratio: *loads.last().unwrap() as f64 / mean,
            gini: gini.max(0.0),
            hot_set_fraction: hot as f64 / p as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_on_explicit_workload() {
        let wl = Workload::new(vec![
            vec![Msg { dest: 1, len: 2 }, Msg { dest: 2, len: 3 }],
            vec![Msg { dest: 0, len: 1 }],
            vec![],
        ]);
        assert_eq!(wl.p(), 3);
        assert_eq!(wl.n_messages(), 3);
        assert_eq!(wl.n_flits(), 6);
        assert_eq!(wl.send_counts(), vec![5, 1, 0]);
        assert_eq!(wl.recv_counts(), vec![1, 2, 3]);
        assert_eq!(wl.xbar(), 5);
        assert_eq!(wl.ybar(), 3);
        assert_eq!(wl.h(), 5);
        assert_eq!(wl.lhat(), 3);
        assert!((wl.lbar() - 2.0).abs() < 1e-12);
        assert!(!wl.is_unit());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_destination() {
        let _ = Workload::new(vec![vec![Msg::unit(5)]]);
    }

    #[test]
    #[should_panic(expected = "zero-length")]
    fn rejects_zero_length() {
        let _ = Workload::new(vec![vec![Msg { dest: 0, len: 0 }]]);
    }

    #[test]
    fn uniform_random_is_balanced_in_expectation() {
        let wl = uniform_random(64, 32, 1);
        assert_eq!(wl.n_flits(), 64 * 32);
        assert_eq!(wl.xbar(), 32);
        assert!(wl.is_unit());
        // Receive side concentrates mildly; imbalance stays small.
        assert!(wl.imbalance() < 3.0, "imbalance={}", wl.imbalance());
    }

    #[test]
    fn permutation_has_h_one() {
        let wl = permutation(128, 7);
        assert_eq!(wl.n_flits(), 128);
        assert_eq!(wl.xbar(), 1);
        assert_eq!(wl.ybar(), 1);
        // Every destination hit exactly once.
        assert!(wl.recv_counts().iter().all(|&y| y == 1));
    }

    #[test]
    fn permutation_is_deterministic_per_seed() {
        assert_eq!(permutation(64, 3), permutation(64, 3));
        assert_ne!(permutation(64, 3), permutation(64, 4));
    }

    #[test]
    fn single_hot_sender_imbalance() {
        let p = 64;
        let wl = single_hot_sender(p, 1024, 1, 9);
        assert_eq!(wl.xbar(), 1024);
        assert_eq!(wl.n_flits(), 1024 + (p as u64 - 1));
        // h/(n/p) ≈ p·hot/n ≈ 60: the Θ(g) advantage regime for any g ≤ 60.
        assert!(wl.imbalance() > 30.0);
    }

    #[test]
    fn hot_receiver_concentrates_ybar() {
        let wl = single_hot_receiver(32, 16, 1.0, 5);
        assert_eq!(wl.ybar(), 32 * 16);
        assert_eq!(wl.xbar(), 16);
    }

    #[test]
    fn zipf_theta_zero_is_balanced() {
        let wl = zipf_senders(16, 10, 0.0, 2);
        assert!(wl.send_counts().iter().all(|&x| x == 10));
    }

    #[test]
    fn zipf_high_theta_concentrates() {
        let wl = zipf_senders(64, 1000, 1.5, 2);
        let counts = wl.send_counts();
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().min().unwrap();
        assert_eq!(max, 1000); // rank-0 processor
        assert!(min <= 2);
    }

    #[test]
    fn bimodal_split() {
        let wl = bimodal(10, 0.2, 100, 1, 3);
        let counts = wl.send_counts();
        assert_eq!(counts.iter().filter(|&&c| c == 100).count(), 2);
        assert_eq!(counts.iter().filter(|&&c| c == 1).count(), 8);
    }

    #[test]
    fn total_exchange_counts() {
        let wl = total_exchange(8);
        assert_eq!(wl.n_flits(), 8 * 7);
        assert_eq!(wl.xbar(), 7);
        assert_eq!(wl.ybar(), 7);
    }

    #[test]
    fn one_to_all_counts() {
        let wl = one_to_all(16);
        assert_eq!(wl.n_flits(), 15);
        assert_eq!(wl.xbar(), 15);
        assert_eq!(wl.ybar(), 1);
        assert!((wl.imbalance() - 16.0).abs() < 0.01);
    }

    #[test]
    fn variable_length_mean_tracks_target() {
        let wl = variable_length(32, 64, 8.0, 11);
        let mean = wl.lbar();
        assert!(mean > 5.0 && mean < 11.0, "mean={mean}");
        assert!(wl.lhat() >= 8);
    }

    #[test]
    fn geometric_len_is_at_least_one() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        for _ in 0..1000 {
            assert!(geometric_len(&mut rng, 4.0) >= 1);
        }
        for _ in 0..10 {
            assert_eq!(geometric_len(&mut rng, 1.0), 1);
        }
    }

    #[test]
    fn imbalance_stats_balanced() {
        let wl = zipf_senders(64, 10, 0.0, 1); // everyone sends 10
        let st = wl.imbalance_stats();
        assert!((st.mean - 10.0).abs() < 1e-9);
        assert!((st.peak_ratio - 1.0).abs() < 1e-9);
        assert!(st.gini < 0.01, "gini {}", st.gini);
        assert!(st.hot_set_fraction > 0.85);
    }

    #[test]
    fn imbalance_stats_hot_sender() {
        let wl = single_hot_sender(64, 6300, 0, 2);
        let st = wl.imbalance_stats();
        assert!(st.gini > 0.9, "gini {}", st.gini);
        assert!(st.peak_ratio > 50.0);
        assert!(st.hot_set_fraction <= 2.0 / 64.0 + 1e-9);
    }

    #[test]
    fn imbalance_stats_empty() {
        let wl = Workload::new(vec![vec![], vec![]]);
        let st = wl.imbalance_stats();
        assert_eq!(st.gini, 0.0);
        assert_eq!(st.mean, 0.0);
    }

    #[test]
    fn gini_monotone_in_zipf_theta() {
        let g0 = zipf_senders(64, 200, 0.4, 3).imbalance_stats().gini;
        let g1 = zipf_senders(64, 200, 1.0, 3).imbalance_stats().gini;
        let g2 = zipf_senders(64, 200, 1.6, 3).imbalance_stats().gini;
        assert!(g0 < g1 && g1 < g2, "{g0} {g1} {g2}");
    }

    #[test]
    fn empty_workload_stats() {
        let wl = Workload::new(vec![vec![], vec![]]);
        assert_eq!(wl.n_flits(), 0);
        assert_eq!(wl.h(), 0);
        assert_eq!(wl.imbalance(), 0.0);
        assert!((wl.lbar() - 0.0).abs() < 1e-12);
        assert!(wl.is_unit());
    }
}
