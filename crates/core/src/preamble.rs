//! The `τ` preamble: computing and broadcasting `n` on the BSP(m).
//!
//! All three Section 6.1 algorithms need every processor to know the total
//! message count `n = Σ x_i`. The paper charges
//! `τ = O(p/m + L + L·lg m / lg L)` for this; here it is implemented as a
//! real BSP(m) program on the `pbw-sim` engine so experiments measure it
//! rather than assume it:
//!
//! 1. **Funnel** — the `p` processors are split into `m` groups of `p/m`;
//!    group member `r` sends its `x_i` to the group leader at injection slot
//!    `r` (so every slot carries exactly `m` messages machine-wide). One
//!    superstep of cost `max(p/m, L)`.
//! 2. **Tree-reduce** — the `m` leaders sum their partials up a tree of
//!    fan-in `max(2, L)`: `⌈lg m / lg L⌉` supersteps of cost `L` each.
//! 3. **Tree-broadcast** — `n` comes back down the same tree, then leaders
//!    fan it out to their groups (slot-staggered like the funnel).

use pbw_models::{BspM, CostModel, MachineParams, PenaltyFn, SuperstepProfile};
use pbw_sim::BspMachine;

/// Per-processor state of the preamble program.
#[derive(Debug, Clone, Copy)]
struct NState {
    /// This processor's own message count (the input).
    x: u64,
    /// Partial sum accumulated at leaders.
    partial: u64,
    /// The final total, once known.
    n: Option<u64>,
}

/// Outcome of the preamble run.
#[derive(Debug, Clone)]
pub struct PreambleOutcome {
    /// The computed total `n` (every processor ends up knowing it).
    pub n: u64,
    /// Profiles of the executed supersteps.
    pub profiles: Vec<SuperstepProfile>,
    /// Total BSP(m) cost under the exponential penalty.
    pub bsp_m_cost: f64,
    /// The paper's `τ` bound for these parameters.
    pub tau_bound: f64,
}

/// Run the prefix-sum + broadcast preamble for per-processor counts
/// `counts` on a simulated BSP(m) machine.
///
/// # Panics
/// Panics if `counts.len() != params.p` or `m` does not divide `p`.
pub fn compute_and_broadcast_n(params: MachineParams, counts: &[u64]) -> PreambleOutcome {
    let p = params.p;
    let m = params.m;
    assert_eq!(counts.len(), p, "one count per processor");
    assert!(p.is_multiple_of(m), "m must divide p");
    let group = p / m;
    let fan = (params.l as usize).max(2);

    let mut machine: BspMachine<NState, u64> = BspMachine::new(params, |pid| NState {
        x: counts[pid],
        partial: counts[pid],
        n: None,
    });

    let leader_of = |pid: usize| (pid / group) * group;
    let is_leader = |pid: usize| pid.is_multiple_of(group);
    let leader_rank = |pid: usize| pid / group; // 0..m

    // 1. Funnel: members send x_i to their leader at slot = rank-in-group.
    machine.superstep(|pid, _s, _in, out| {
        if !is_leader(pid) {
            // Member with in-group rank r injects at slot r−1: every slot
            // carries exactly m messages machine-wide (one per group).
            let r = (pid % group) as u64;
            out.send_at(leader_of(pid), counts[pid], r - 1);
        }
    });
    // Leaders fold their inbox.
    machine.superstep(|pid, s, inbox, _out| {
        if is_leader(pid) {
            s.partial = s.x + inbox.iter().sum::<u64>();
        }
    });

    // 2. Tree-reduce among the m leaders with fan-in `fan`.
    // In round r, leader ranks that are multiples of fan^(r+1) receive from
    // ranks rank + k·fan^r (k = 1..fan-1, only ranks < m).
    let mut stride = 1usize;
    while stride < m {
        let s_ = stride;
        machine.superstep(move |pid, st, _in, out| {
            if !is_leader(pid) {
                return;
            }
            let rank = leader_rank(pid);
            if rank % (s_ * fan) != 0 && rank % s_ == 0 {
                // This leader sends its partial to the block head.
                let head_rank = (rank / (s_ * fan)) * (s_ * fan);
                let k = (rank - head_rank) / s_; // 1..fan-1
                out.send_at(head_rank * group, st.partial, (k - 1) as u64);
            }
        });
        machine.superstep(move |pid, st, inbox, _out| {
            if is_leader(pid) && leader_rank(pid) % (s_ * fan) == 0 {
                st.partial += inbox.iter().sum::<u64>();
            }
        });
        stride *= fan;
    }

    // Leader 0 now holds n.
    let n = machine.state(0).partial;

    // 3a. Tree-broadcast n down among leaders (reverse of the reduce).
    machine.states_mut()[0].n = Some(n);
    let mut strides = Vec::new();
    let mut st = 1usize;
    while st < m {
        strides.push(st);
        st *= fan;
    }
    for &s_ in strides.iter().rev() {
        machine.superstep(move |pid, state, _in, out| {
            if !is_leader(pid) {
                return;
            }
            let rank = leader_rank(pid);
            if rank % (s_ * fan) == 0 {
                if let Some(nv) = state.n {
                    for k in 1..fan {
                        let target = rank + k * s_;
                        if target < m {
                            out.send_at(target * group, nv, (k - 1) as u64);
                        }
                    }
                }
            }
        });
        machine.superstep(|pid, state, inbox, _out| {
            if is_leader(pid) && state.n.is_none() {
                if let Some(&v) = inbox.first() {
                    state.n = Some(v);
                }
            }
        });
    }

    // 3b. Leaders fan n out to their group members, slot-staggered.
    machine.superstep(move |pid, state, _in, out| {
        if is_leader(pid) {
            if let Some(nv) = state.n {
                for r in 1..group {
                    out.send_at(pid + r, nv, (r - 1) as u64);
                }
            }
        }
    });
    machine.superstep(|_pid, state, inbox, _out| {
        if state.n.is_none() {
            if let Some(&v) = inbox.first() {
                state.n = Some(v);
            }
        }
    });

    // Every processor must now know n.
    for (pid, st) in machine.states().iter().enumerate() {
        assert_eq!(st.n, Some(n), "processor {pid} failed to learn n");
    }

    let model = BspM {
        m,
        l: params.l,
        penalty: PenaltyFn::Exponential,
    };
    let bsp_m_cost = model.run_cost(machine.profiles());
    let tau_bound = pbw_models::bounds::tau_preamble(p, m, params.l);
    PreambleOutcome {
        n,
        profiles: machine.profiles().to_vec(),
        bsp_m_cost,
        tau_bound,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn computes_correct_total() {
        let params = MachineParams::from_bandwidth(64, 8, 4);
        let counts: Vec<u64> = (0..64).map(|i| i as u64).collect();
        let out = compute_and_broadcast_n(params, &counts);
        assert_eq!(out.n, (0..64).sum::<u64>());
    }

    #[test]
    fn all_zero_counts() {
        let params = MachineParams::from_bandwidth(32, 4, 4);
        let out = compute_and_broadcast_n(params, &vec![0; 32]);
        assert_eq!(out.n, 0);
    }

    #[test]
    fn never_exceeds_aggregate_bandwidth() {
        let params = MachineParams::from_bandwidth(128, 16, 8);
        let counts: Vec<u64> = (0..128).map(|i| (i * 7 % 13) as u64).collect();
        let out = compute_and_broadcast_n(params, &counts);
        for prof in &out.profiles {
            for (&load, t) in prof.injections.iter().zip(0u64..) {
                assert!(load <= 16, "slot {t} load {load} > m");
            }
        }
    }

    #[test]
    fn cost_is_within_constant_of_tau() {
        for (p, m, l) in [(256usize, 16usize, 8u64), (512, 64, 4), (1024, 32, 16)] {
            let params = MachineParams::from_bandwidth(p, m, l);
            let counts: Vec<u64> = (0..p).map(|i| i as u64 % 5).collect();
            let out = compute_and_broadcast_n(params, &counts);
            // The constant is modest: each logical phase costs ≤ 2 supersteps.
            assert!(
                out.bsp_m_cost <= 8.0 * out.tau_bound,
                "p={p} m={m} L={l}: cost {} vs τ {}",
                out.bsp_m_cost,
                out.tau_bound
            );
        }
    }

    #[test]
    fn single_group_machine() {
        // m = 1: all processors funnel to processor 0 and there is no tree.
        let params = MachineParams::from_bandwidth(16, 1, 4);
        let counts = vec![2u64; 16];
        let out = compute_and_broadcast_n(params, &counts);
        assert_eq!(out.n, 32);
    }

    #[test]
    fn full_bandwidth_machine() {
        // m = p: every processor is a leader; only the tree phases run.
        let params = MachineParams::from_bandwidth(16, 16, 4);
        let counts: Vec<u64> = (1..=16).collect();
        let out = compute_and_broadcast_n(params, &counts);
        assert_eq!(out.n, 136);
    }
}
