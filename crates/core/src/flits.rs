//! Long messages and start-up overheads (Section 6.1, final paragraphs).
//!
//! When messages have lengths and their flits must occupy **consecutive**
//! time steps (bufferless, wormhole-style streams as in Bhatt et al.), the
//! cyclic layout of Unbalanced-Send would fragment a message that crosses
//! the window boundary. The paper's fix: such a message simply *continues
//! past the window* — at most one message per processor can cross, so the
//! additive cost is at most `ℓ̂`, the maximum message length. This is
//! [`UnbalancedFlitSend`].
//!
//! When initiating a message additionally costs a gap `o` (the LogP
//! overhead), every message is prepended with a dummy preamble of length `o`
//! and scheduled with the flit algorithm on the inflated total
//! `n' = Σ(ℓ+o)`; the resulting bound is
//! `(1+ε)(1+o/ℓ̄)·n/m + ℓ̂ + o`. This is [`OverheadSend`].

use crate::schedule::{Schedule, ScheduleCost, ScheduleError};
use crate::schedulers::Scheduler;
use crate::workload::{Msg, Workload};
use pbw_models::{div_ceil, PenaltyFn};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// The long-message variant of Unbalanced-Send: messages of one processor
/// are laid out consecutively in a cyclic window of `(1+ε)n/m` flit-slots;
/// a message that would wrap instead runs straight past the window
/// (additive `ℓ̂`).
#[derive(Debug, Clone, Copy)]
pub struct UnbalancedFlitSend {
    /// The slack ε < 1.
    pub eps: f64,
}

impl UnbalancedFlitSend {
    /// Create with slack `eps ∈ (0,1)`.
    pub fn new(eps: f64) -> Self {
        assert!(eps > 0.0 && eps < 1.0, "ε must be in (0,1)");
        UnbalancedFlitSend { eps }
    }
}

impl Scheduler for UnbalancedFlitSend {
    fn name(&self) -> &'static str {
        "Unbalanced-Flit-Send"
    }

    fn schedule(&self, wl: &Workload, m: usize, seed: u64) -> Schedule {
        let n = wl.n_flits();
        let w = (((1.0 + self.eps) * n as f64 / m as f64).ceil() as u64).max(1);
        let starts = (0..wl.p())
            .map(|pid| {
                let msgs = wl.msgs(pid);
                let x_i: u64 = msgs.iter().map(|m| m.len).sum();
                if msgs.is_empty() {
                    return Vec::new();
                }
                if x_i > w {
                    // Oversized sender: eager consecutive stream from 0.
                    let mut t = 0u64;
                    return msgs
                        .iter()
                        .map(|msg| {
                            let s = t;
                            t += msg.len;
                            s
                        })
                        .collect();
                }
                let mut rng = ChaCha8Rng::seed_from_u64(seed);
                rng.set_stream(pid as u64);
                let j = rng.gen_range(0..w);
                // Lay the flit stream cyclically from j; the (at most one)
                // message crossing the window boundary extends past it.
                let mut cursor = j;
                msgs.iter()
                    .map(|msg| {
                        let start = cursor;
                        let end = cursor + msg.len;
                        if end < w {
                            cursor = end;
                        } else if end == w {
                            cursor = 0;
                        } else {
                            // Crossing message: keep it contiguous past w;
                            // the rest of the stream resumes at the wrapped
                            // position.
                            cursor = end - w;
                        }
                        start
                    })
                    .collect()
            })
            .collect();
        Schedule { starts }
    }
}

/// A schedule in the presence of a per-message start-up overhead `o`: the
/// processor is busy during `[window_start, window_start + o + ℓ)` but the
/// network carries flits only during the final `ℓ` steps.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OverheadSchedule {
    /// `window_starts[src][k]`: start of the k-th message's (overhead +
    /// flits) window.
    pub window_starts: Vec<Vec<u64>>,
    /// The per-message start-up cost.
    pub o: u64,
}

/// The start-up-overhead variant: schedule the workload with every message
/// inflated by a dummy `o`-flit preamble (Section 6.1's "simple approach").
#[derive(Debug, Clone, Copy)]
pub struct OverheadSend {
    /// The slack ε < 1.
    pub eps: f64,
    /// The per-message start-up cost `o`.
    pub o: u64,
}

impl OverheadSend {
    /// Create with slack `eps ∈ (0,1)` and overhead `o`.
    pub fn new(eps: f64, o: u64) -> Self {
        assert!(eps > 0.0 && eps < 1.0, "ε must be in (0,1)");
        OverheadSend { eps, o }
    }

    /// Produce the overhead-aware schedule.
    pub fn schedule(&self, wl: &Workload, m: usize, seed: u64) -> OverheadSchedule {
        // Inflate: each message of length ℓ becomes ℓ + o.
        let padded = Workload::new(
            wl.sends()
                .iter()
                .map(|list| {
                    list.iter()
                        .map(|msg| Msg {
                            dest: msg.dest,
                            len: msg.len + self.o,
                        })
                        .collect()
                })
                .collect(),
        );
        let inner = UnbalancedFlitSend::new(self.eps).schedule(&padded, m, seed);
        OverheadSchedule {
            window_starts: inner.starts,
            o: self.o,
        }
    }
}

/// Validate an overhead schedule: per-processor `(o + ℓ)`-windows must be
/// disjoint (the processor is busy during the whole window).
pub fn validate_overhead_schedule(
    sched: &OverheadSchedule,
    wl: &Workload,
) -> Result<(), ScheduleError> {
    // Reuse the plain validator on the inflated workload.
    let padded = Workload::new(
        wl.sends()
            .iter()
            .map(|list| {
                list.iter()
                    .map(|msg| Msg {
                        dest: msg.dest,
                        len: msg.len + sched.o,
                    })
                    .collect()
            })
            .collect(),
    );
    crate::schedule::validate_schedule(
        &Schedule {
            starts: sched.window_starts.clone(),
        },
        &padded,
    )
}

/// Price an overhead schedule: network load counts only real flits (the
/// last `ℓ` steps of each window); `h` and `n` are flit quantities of the
/// *original* workload; makespan includes the overhead windows.
pub fn evaluate_overhead_schedule(
    sched: &OverheadSchedule,
    wl: &Workload,
    m: usize,
    penalty: PenaltyFn,
) -> ScheduleCost {
    validate_overhead_schedule(sched, wl)
        .unwrap_or_else(|e| panic!("invalid overhead schedule: {e}"));
    let o = sched.o;
    let mut makespan = 0u64;
    for (src, starts) in sched.window_starts.iter().enumerate() {
        for (&s, msg) in starts.iter().zip(wl.msgs(src)) {
            makespan = makespan.max(s + o + msg.len);
        }
    }
    let mut loads = vec![0u64; makespan as usize];
    for (src, starts) in sched.window_starts.iter().enumerate() {
        for (&s, msg) in starts.iter().zip(wl.msgs(src)) {
            for t in s + o..s + o + msg.len {
                loads[t as usize] += 1;
            }
        }
    }
    let n = wl.n_flits();
    let h = wl.h();
    let max_slot_load = loads.iter().copied().max().unwrap_or(0);
    let overloaded_slots = loads.iter().filter(|&&l| l > m as u64).count() as u64;
    let c_m = penalty.total_charge(&loads, m);
    let opt_lower = if n == 0 {
        0.0
    } else {
        (div_ceil(n, m as u64).max(h)) as f64
    };
    let model_time = (h as f64).max(c_m);
    ScheduleCost {
        makespan,
        max_slot_load,
        overloaded_slots,
        no_slot_exceeds_m: overloaded_slots == 0,
        c_m,
        h,
        n,
        opt_lower,
        model_time,
        ratio_to_opt: if opt_lower > 0.0 {
            model_time / opt_lower
        } else {
            1.0
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{evaluate_schedule, validate_schedule};
    use crate::workload;

    #[test]
    fn flit_schedule_is_contiguous_per_message() {
        // Contiguity is the representation (start + len); validity is the
        // real check: no processor sends two flits at once.
        let wl = workload::variable_length(64, 8, 4.0, 3);
        let sched = UnbalancedFlitSend::new(0.2).schedule(&wl, 32, 1);
        validate_schedule(&sched, &wl).unwrap();
    }

    #[test]
    fn flit_schedule_respects_bandwidth_whp() {
        let wl = workload::variable_length(256, 16, 4.0, 5);
        let m = 128;
        let sched = UnbalancedFlitSend::new(0.3).schedule(&wl, m, 2);
        let cost = evaluate_schedule(&sched, &wl, m, PenaltyFn::Exponential);
        assert!(cost.no_slot_exceeds_m, "max load {}", cost.max_slot_load);
    }

    #[test]
    fn flit_makespan_within_window_plus_lhat() {
        let wl = workload::variable_length(256, 16, 4.0, 8);
        let m = 64;
        let eps = 0.25;
        let sched = UnbalancedFlitSend::new(eps).schedule(&wl, m, 3);
        let cost = evaluate_schedule(&sched, &wl, m, PenaltyFn::Exponential);
        let w = ((1.0 + eps) * wl.n_flits() as f64 / m as f64).ceil();
        let bound = w + wl.lhat() as f64 + wl.xbar() as f64;
        assert!(
            (cost.makespan as f64) <= bound,
            "makespan {} > {}",
            cost.makespan,
            bound
        );
        // Small senders: also check the tight w + ℓ̂ bound directly when no
        // sender exceeds the window.
        if wl.xbar() as f64 <= w {
            assert!((cost.makespan as f64) <= w + wl.lhat() as f64);
        }
    }

    #[test]
    fn flit_unit_workload_matches_unbalanced_send_shape() {
        // On unit messages the flit scheduler degenerates to cyclic
        // unit-slot assignment — same distribution as Unbalanced-Send.
        let wl = workload::uniform_random(64, 8, 4);
        let m = 16;
        let sched = UnbalancedFlitSend::new(0.2).schedule(&wl, m, 7);
        validate_schedule(&sched, &wl).unwrap();
        let w = ((1.2_f64) * wl.n_flits() as f64 / m as f64).ceil() as u64;
        for starts in &sched.starts {
            for &s in starts {
                assert!(s < w, "unit flit start {s} outside window {w}");
            }
        }
    }

    #[test]
    fn oversized_flit_sender_sends_eagerly() {
        let mut sends = vec![Vec::new(); 8];
        sends[0] = vec![Msg { dest: 1, len: 500 }, Msg { dest: 2, len: 500 }];
        let wl = Workload::new(sends);
        let sched = UnbalancedFlitSend::new(0.2).schedule(&wl, 4, 0);
        assert_eq!(sched.starts[0], vec![0, 500]);
    }

    #[test]
    fn at_most_one_crossing_message() {
        // With x_i ≤ w, at most one message extends past the window.
        let wl = workload::variable_length(128, 4, 8.0, 9);
        let m = 64;
        let eps = 0.2;
        let w = ((1.0 + eps) * wl.n_flits() as f64 / m as f64).ceil() as u64;
        let sched = UnbalancedFlitSend::new(eps).schedule(&wl, m, 4);
        for (pid, starts) in sched.starts.iter().enumerate() {
            let x_i: u64 = wl.msgs(pid).iter().map(|m| m.len).sum();
            if x_i > w {
                continue;
            }
            let crossing = starts
                .iter()
                .zip(wl.msgs(pid))
                .filter(|(&s, msg)| s < w && s + msg.len > w)
                .count();
            assert!(crossing <= 1, "pid {pid}: {crossing} crossing messages");
        }
    }

    #[test]
    fn overhead_schedule_valid_and_charges_only_flits() {
        let wl = workload::variable_length(64, 8, 4.0, 6);
        let m = 32;
        let o = 3;
        let sched = OverheadSend::new(0.2, o).schedule(&wl, m, 1);
        validate_overhead_schedule(&sched, &wl).unwrap();
        let cost = evaluate_overhead_schedule(&sched, &wl, m, PenaltyFn::Exponential);
        // Total network flits = n (original), not n + o·msgs.
        let loads_total: u64 = wl.n_flits();
        assert_eq!(cost.n, loads_total);
    }

    #[test]
    fn overhead_makespan_within_target() {
        let wl = workload::variable_length(128, 8, 4.0, 2);
        let m = 32;
        let (eps, o) = (0.25, 4u64);
        let sched = OverheadSend::new(eps, o).schedule(&wl, m, 9);
        let cost = evaluate_overhead_schedule(&sched, &wl, m, PenaltyFn::Exponential);
        let target = pbw_models::bounds::overhead_send_target(
            wl.n_flits(),
            m,
            wl.lbar(),
            wl.lhat(),
            o,
            eps,
            wl.p(),
            1,
        );
        assert!(
            (cost.makespan as f64) <= target + wl.xbar() as f64 + (o as f64),
            "makespan {} > target {}",
            cost.makespan,
            target
        );
    }

    #[test]
    fn overhead_zero_matches_flit_send() {
        let wl = workload::variable_length(32, 4, 3.0, 8);
        let m = 16;
        let a = OverheadSend::new(0.2, 0).schedule(&wl, m, 5);
        let b = UnbalancedFlitSend::new(0.2).schedule(&wl, m, 5);
        assert_eq!(a.window_starts, b.starts);
    }

    #[test]
    fn overhead_windows_do_not_overlap() {
        let wl = workload::variable_length(32, 8, 2.0, 10);
        let sched = OverheadSend::new(0.3, 5).schedule(&wl, 16, 3);
        // Manual overlap check on (o+ℓ)-windows.
        for (src, starts) in sched.window_starts.iter().enumerate() {
            let mut ivals: Vec<(u64, u64)> = starts
                .iter()
                .zip(wl.msgs(src))
                .map(|(&s, m)| (s, s + sched.o + m.len))
                .collect();
            ivals.sort_unstable();
            for w in ivals.windows(2) {
                assert!(w[1].0 >= w[0].1, "src {src} windows overlap");
            }
        }
    }
}
