//! End-to-end replay of a schedule on the `pbw-sim` BSP engine.
//!
//! Pure schedule evaluation (`evaluate_schedule`) prices a plan analytically;
//! this module actually *executes* it — every flit becomes an envelope pinned
//! to its injection slot, the engine validates the
//! one-injection-per-processor-per-step rule independently, delivery is
//! checked against the workload, and the run is priced under every model via
//! [`CostSummary`]. Agreement between the two paths is itself a tested
//! invariant.

use crate::schedule::Schedule;
use crate::workload::Workload;
use pbw_models::{MachineParams, SuperstepProfile};
use pbw_sim::{BspMachine, CostSummary};

/// A delivered flit: (source, message index within source, flit index
/// within message).
pub type FlitTag = (u32, u32, u32);

/// Outcome of executing a schedule on the simulator.
#[derive(Debug, Clone)]
pub struct ExecOutcome {
    /// Cost of the communication superstep under every model.
    pub summary: CostSummary,
    /// The superstep's profile.
    pub profile: SuperstepProfile,
    /// Flits delivered to each processor (source-ordered).
    pub delivered: Vec<Vec<FlitTag>>,
}

/// Execute `schedule` for `wl` on a simulated BSP machine with `params`.
///
/// # Panics
/// Panics if the schedule violates the injection rule (the *engine* raises
/// this, independently of `validate_schedule`) or if delivery does not match
/// the workload.
pub fn run_schedule_on_bsp(
    wl: &Workload,
    schedule: &Schedule,
    params: MachineParams,
) -> ExecOutcome {
    assert_eq!(wl.p(), params.p, "workload and machine disagree on p");
    let mut machine: BspMachine<(), FlitTag> = BspMachine::new(params, |_| ());
    machine.set_trace_label("schedule-exec");
    let body = |pid: usize, _s: &mut (), _in: &[FlitTag], out: &mut pbw_sim::Outbox<FlitTag>| {
        for (k, (msg, &start)) in wl.msgs(pid).iter().zip(&schedule.starts[pid]).enumerate() {
            for f in 0..msg.len {
                out.send_at(msg.dest, (pid as u32, k as u32, f as u32), start + f);
            }
        }
    };
    // Sparse workloads (the unbalanced regimes Section 6 studies) go through
    // the active-set path: identical results, O(senders + flits) engine
    // cost. Dense workloads keep the parallel all-processor pass. The
    // branch point is the measured density crossover, not a hardcoded
    // ratio (see `pbw_sim::density`).
    let active = schedule.active_senders();
    let report = if pbw_sim::density::crossover(active.len(), wl.p()) {
        machine.superstep_active(&active, body)
    } else {
        machine.superstep(body)
    };
    // Collect deliveries in a drain superstep (no sends).
    let mut delivered: Vec<Vec<FlitTag>> = vec![Vec::new(); wl.p()];
    {
        let collected: Vec<Vec<FlitTag>> = (0..wl.p())
            .map(|pid| machine.pending_inbox(pid).to_vec())
            .collect();
        for (pid, msgs) in collected.into_iter().enumerate() {
            delivered[pid] = msgs;
        }
    }

    // Verify delivery: each destination received exactly its flit total.
    let expect = wl.recv_counts();
    for (pid, got) in delivered.iter().enumerate() {
        assert_eq!(
            got.len() as u64,
            expect[pid],
            "processor {pid} received {} flits, expected {}",
            got.len(),
            expect[pid]
        );
    }

    let profile = report.profile;
    let summary = CostSummary::price(params, std::slice::from_ref(&profile));
    ExecOutcome {
        summary,
        profile,
        delivered,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{evaluate_schedule, to_profile};
    use crate::schedulers::{EagerSend, OfflineOptimal, Scheduler, UnbalancedSend};
    use crate::workload;
    use pbw_models::PenaltyFn;

    #[test]
    fn execution_profile_matches_analytic_profile() {
        let wl = workload::uniform_random(64, 8, 1);
        let params = MachineParams::from_bandwidth(64, 8, 4);
        let sched = UnbalancedSend::new(0.2).schedule(&wl, 8, 3);
        let exec = run_schedule_on_bsp(&wl, &sched, params);
        let analytic = to_profile(&sched, &wl);
        assert_eq!(exec.profile.injections, analytic.injections);
        assert_eq!(exec.profile.max_sent, analytic.max_sent);
        assert_eq!(exec.profile.max_received, analytic.max_received);
        assert_eq!(exec.profile.total_messages, analytic.total_messages);
    }

    #[test]
    fn engine_cost_matches_schedule_cost() {
        let wl = workload::single_hot_sender(32, 200, 2, 4);
        let params = MachineParams::from_bandwidth(32, 8, 2);
        let sched = OfflineOptimal.schedule(&wl, 8, 0);
        let exec = run_schedule_on_bsp(&wl, &sched, params);
        let cost = evaluate_schedule(&sched, &wl, 8, PenaltyFn::Exponential);
        // Engine's BSP(m,exp) communication term equals the analytic c_m
        // (work is 0 and L may dominate only if c_m < L, which it isn't
        // here).
        assert!((exec.summary.bsp_m_exp - cost.c_m.max(cost.h as f64)).abs() < 1e-9);
    }

    #[test]
    fn delivery_is_complete_for_flit_workloads() {
        let wl = workload::variable_length(16, 4, 3.0, 2);
        let params = MachineParams::from_bandwidth(16, 4, 2);
        let sched = crate::flits::UnbalancedFlitSend::new(0.2).schedule(&wl, 4, 1);
        let exec = run_schedule_on_bsp(&wl, &sched, params);
        let total: usize = exec.delivered.iter().map(Vec::len).sum();
        assert_eq!(total as u64, wl.n_flits());
    }

    #[test]
    fn eager_vs_scheduled_separation_on_engine() {
        // The whole point: same workload, same machine — the scheduled send
        // is exponentially cheaper under BSP(m,exp).
        let wl = workload::permutation(128, 5);
        let params = MachineParams::from_bandwidth(128, 16, 2);
        let eager = run_schedule_on_bsp(&wl, &EagerSend.schedule(&wl, 16, 0), params);
        let sched =
            run_schedule_on_bsp(&wl, &UnbalancedSend::new(0.2).schedule(&wl, 16, 0), params);
        assert!(eager.summary.bsp_m_exp > 100.0 * sched.summary.bsp_m_exp);
        // But under BSP(g) both cost the same (g·h = g·1... plus receive side).
        assert!((eager.summary.bsp_g - sched.summary.bsp_g).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "disagree on p")]
    fn mismatched_machine_rejected() {
        let wl = workload::permutation(8, 0);
        let params = MachineParams::from_bandwidth(16, 4, 2);
        let sched = EagerSend.schedule(&wl, 4, 0);
        let _ = run_schedule_on_bsp(&wl, &sched, params);
    }
}
