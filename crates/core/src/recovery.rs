//! Ack/retransmit recovery over a faulty network.
//!
//! [`run_schedule_on_bsp`](crate::exec::run_schedule_on_bsp) assumes the
//! network delivers everything; this module executes a workload on a
//! machine with a fault hook attached ([`pbw_sim::DeliveryHook`]) and keeps
//! resending until every flit lands:
//!
//! 1. **Send.** The full workload is scheduled by any [`Scheduler`] and
//!    executed as one communication superstep (flits pinned to their
//!    injection slots, exactly as the fault-free path does).
//! 2. **Ack.** If anything is missing, destinations send one ack per
//!    source they heard from — a real superstep, itself subject to faults,
//!    priced like any other traffic. (Which flits are missing is decided
//!    from harness ground truth, not from the ack payloads: the protocol
//!    *charges* for the control traffic without simulating timeout logic,
//!    so the measured quantity stays "what does recovery cost under each
//!    model", not "how clever is our timeout heuristic".)
//! 3. **Backoff.** Before retransmission round `r` the machine sits idle
//!    for `min(base · 2^{r−1}, cap)` supersteps — bounded exponential
//!    backoff. Each idle superstep costs `L` under the BSP models and
//!    doubles as drain time for delayed payloads still inside the network.
//! 4. **Retransmit.** Undelivered flits fold back into a residual
//!    [`Workload`] (per `(src, dest)` message, one flit per missing flit),
//!    which is rescheduled through the *same* scheduler with a
//!    round-perturbed seed and sent again. Resent flits carry their
//!    original tags, so duplicates from earlier rounds are recognized and
//!    ignored.
//!
//! The point of the construction: recovery is priced **by the cost
//! models**. A drop under BSP(g) costs `g` per resent flit plus `L` per
//! extra superstep; under BSP(m) the retransmission rounds are small
//! residual relations that schedule into cheap, nearly-empty slot
//! histograms — the φ-sweep experiment (`reproduce faults`) measures
//! exactly this gap. With a fault-free network (no hook, or an all-zero
//! plan) the run is a single superstep whose [`CostSummary`] is bit-exact
//! to the fault-free path — the recovery machinery prices to zero when
//! there is nothing to recover.

pub mod checkpoint;

use std::sync::Arc;

use crate::exec::FlitTag;
use crate::schedule::Schedule;
use crate::schedulers::Scheduler;
use crate::workload::{Msg, Workload};
use pbw_models::{MachineParams, SuperstepProfile};
use pbw_sim::{BspMachine, CostSummary, DeliveryHook, FaultStats, MachineCheckpoint, Outbox, Pid};
use pbw_trace::RecoveryMark;

/// Ack payloads share the flit-tag type; this sentinel source id marks them
/// so the delivery scan never mistakes an ack for a data flit.
const ACK_SRC: u32 = u32::MAX;

/// Knobs of the recovery protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryConfig {
    /// Give up after this many retransmission rounds (the outcome then
    /// reports `delivered_all == false` rather than looping forever on a
    /// pathological plan).
    pub max_rounds: u32,
    /// Idle supersteps before retransmission round 1.
    pub backoff_base: u32,
    /// Ceiling on the per-round backoff (bounded exponential backoff).
    pub backoff_cap: u32,
    /// Whether rounds are preceded by an ack superstep (cost realism knob;
    /// switching it off isolates pure retransmission cost).
    pub charge_acks: bool,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        RecoveryConfig {
            max_rounds: 16,
            backoff_base: 1,
            backoff_cap: 8,
            charge_acks: true,
        }
    }
}

impl RecoveryConfig {
    fn backoff(&self, round: u32) -> u32 {
        debug_assert!(round >= 1);
        let shifted = self.backoff_base.saturating_shl(round - 1);
        shifted.min(self.backoff_cap)
    }
}

trait SaturatingShl {
    fn saturating_shl(self, n: u32) -> Self;
}

impl SaturatingShl for u32 {
    fn saturating_shl(self, n: u32) -> u32 {
        if n >= 32 {
            return u32::MAX;
        }
        self.checked_shl(n).unwrap_or(u32::MAX)
    }
}

/// What a recovery run did and what it cost.
#[derive(Debug, Clone)]
pub struct RecoveryOutcome {
    /// The whole run — send, acks, backoff, retransmissions, drain — priced
    /// under every model.
    pub summary: CostSummary,
    /// Per-superstep profiles (sum to `summary` under any model).
    pub profiles: Vec<SuperstepProfile>,
    /// Retransmission rounds used (0 = everything arrived first try).
    pub rounds: u32,
    /// Whether every flit eventually arrived.
    pub delivered_all: bool,
    /// Flits retransmitted, totalled over all rounds.
    pub resent_flits: u64,
    /// Ack supersteps charged.
    pub ack_supersteps: u64,
    /// Idle backoff/drain supersteps charged.
    pub backoff_supersteps: u64,
    /// Arrival superstep of each delivered flit (first copy only), in
    /// arrival order — the delivery-time distribution whose tail the
    /// φ-sweep reports.
    pub arrival_steps: Vec<u64>,
    /// The engine's fault ledger for the run.
    pub fault_stats: FaultStats,
}

impl RecoveryOutcome {
    /// `q`-th percentile of the flit arrival-superstep distribution, or
    /// `None` for an empty run or out-of-range `q`.
    pub fn arrival_percentile(&self, q: f64) -> Option<u64> {
        if self.arrival_steps.is_empty() || !(0.0..=1.0).contains(&q) {
            return None;
        }
        let mut sorted = self.arrival_steps.clone();
        sorted.sort_unstable();
        let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
        Some(sorted[idx])
    }
}

/// Tracks which flits of the original workload are still undelivered.
#[derive(Clone)]
struct DeliveryLedger {
    /// `missing[src][msg_idx][flit]`.
    missing: Vec<Vec<Vec<bool>>>,
    outstanding: u64,
    arrival_steps: Vec<u64>,
}

impl DeliveryLedger {
    fn new(wl: &Workload) -> Self {
        let missing: Vec<Vec<Vec<bool>>> = (0..wl.p())
            .map(|src| {
                wl.msgs(src)
                    .iter()
                    .map(|m| vec![true; m.len as usize])
                    .collect()
            })
            .collect();
        DeliveryLedger {
            missing,
            outstanding: wl.n_flits(),
            arrival_steps: Vec::new(),
        }
    }

    /// Mark everything visible in the machine's inboxes as delivered
    /// (duplicates and acks are ignored). `now` is the number of supersteps
    /// executed so far.
    fn scan(&mut self, machine: &BspMachine<(), FlitTag>, now: u64) {
        for pid in 0..machine.params().p {
            for &(src, msg_idx, flit) in machine.pending_inbox(pid) {
                if src == ACK_SRC {
                    continue;
                }
                let slot = &mut self.missing[src as usize][msg_idx as usize][flit as usize];
                if *slot {
                    *slot = false;
                    self.outstanding -= 1;
                    self.arrival_steps.push(now);
                }
            }
        }
    }

    /// Sources each processor has received at least one data flit from so
    /// far (the ack relation).
    fn ack_targets(&self, wl: &Workload) -> Vec<Vec<Pid>> {
        let p = wl.p();
        let mut heard: Vec<Vec<bool>> = vec![vec![false; p]; p];
        for (src, msgs) in self.missing.iter().enumerate() {
            for (msg_idx, flits) in msgs.iter().enumerate() {
                if flits.iter().any(|&m| !m) {
                    let dest = wl.msgs(src)[msg_idx].dest;
                    heard[dest][src] = true;
                }
            }
        }
        heard
            .into_iter()
            .map(|row| {
                row.iter()
                    .enumerate()
                    .filter(|(_, &h)| h)
                    .map(|(s, _)| s)
                    .collect()
            })
            .collect()
    }

    /// The residual workload (one message per original message with missing
    /// flits) plus, per residual message, the original tags its flits must
    /// carry when resent.
    fn residual(&self, wl: &Workload) -> (Workload, Vec<Vec<Vec<FlitTag>>>) {
        let p = wl.p();
        let mut sends: Vec<Vec<Msg>> = vec![Vec::new(); p];
        let mut tags: Vec<Vec<Vec<FlitTag>>> = vec![Vec::new(); p];
        for (src, msgs) in self.missing.iter().enumerate() {
            for (msg_idx, flits) in msgs.iter().enumerate() {
                let lost: Vec<FlitTag> = flits
                    .iter()
                    .enumerate()
                    .filter(|(_, &m)| m)
                    .map(|(f, _)| (src as u32, msg_idx as u32, f as u32))
                    .collect();
                if !lost.is_empty() {
                    sends[src].push(Msg {
                        dest: wl.msgs(src)[msg_idx].dest,
                        len: lost.len() as u64,
                    });
                    tags[src].push(lost);
                }
            }
        }
        (Workload::new(sends), tags)
    }
}

/// Execute one scheduled send superstep: flit `f` of message `k` of `pid`
/// goes out at `starts[pid][k] + f`, carrying `tags[pid][k][f]`.
fn send_round(
    machine: &mut BspMachine<(), FlitTag>,
    wl: &Workload,
    schedule: &Schedule,
    tags: &[Vec<Vec<FlitTag>>],
) {
    let body = |pid: Pid, _s: &mut (), _in: &[FlitTag], out: &mut Outbox<FlitTag>| {
        for (k, (msg, &start)) in wl.msgs(pid).iter().zip(&schedule.starts[pid]).enumerate() {
            for (f, &tag) in tags[pid][k].iter().enumerate() {
                out.send_at(msg.dest, tag, start + f as u64);
            }
        }
    };
    // Retransmission residuals are sparse by construction (a handful of
    // lossy edges out of p processors); route them through the active-set
    // path so recovery rounds cost O(senders + flits), not O(p). The
    // sparse/dense split is the measured crossover from `pbw_sim::density`.
    let active = wl.active_senders();
    if pbw_sim::density::crossover(active.len(), wl.p()) {
        machine.superstep_active(&active, body);
    } else {
        machine.superstep(body);
    }
}

/// Run `wl` to completion over a (possibly faulty) network, retransmitting
/// lost flits until everything arrives or `cfg.max_rounds` is exhausted.
///
/// `seed` seeds the scheduler; retransmission round `r` reschedules the
/// residual with `seed ^ r·0x9E37` (the workspace's batch-perturbation
/// idiom) so rounds draw fresh offsets. `hook` is the fault model; `None`
/// is a reliable network, for which the result is bit-exact to
/// [`run_schedule_on_bsp`](crate::exec::run_schedule_on_bsp).
pub fn run_with_recovery(
    wl: &Workload,
    scheduler: &dyn Scheduler,
    params: MachineParams,
    seed: u64,
    hook: Option<Arc<dyn DeliveryHook>>,
    cfg: &RecoveryConfig,
) -> RecoveryOutcome {
    run_with_recovery_to(
        pbw_trace::global_sink(),
        wl,
        scheduler,
        params,
        seed,
        hook,
        cfg,
    )
}

/// [`run_with_recovery`] with an explicit trace sink instead of the
/// process-global one. Parallel sweeps (e.g. the φ-sweep in `reproduce
/// faults`) run each recovery against a private recording sink and replay
/// the events into the global sink in sweep order, keeping trace output
/// byte-identical at every thread count.
pub fn run_with_recovery_to(
    sink: Arc<dyn pbw_trace::TraceSink>,
    wl: &Workload,
    scheduler: &dyn Scheduler,
    params: MachineParams,
    seed: u64,
    hook: Option<Arc<dyn DeliveryHook>>,
    cfg: &RecoveryConfig,
) -> RecoveryOutcome {
    let mut session = RecoverySession::new(sink, wl, scheduler, params, seed, hook, cfg);
    while session.step() != RecoveryPhase::Done {}
    session.into_outcome()
}

/// Which protocol action one [`RecoverySession::step`] call performed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryPhase {
    /// The initial full-workload send superstep.
    Send,
    /// The ack superstep preceding retransmission round `r`.
    Ack(u32),
    /// One idle backoff superstep of round `r`.
    Backoff(u32),
    /// The retransmission superstep of round `r`.
    Retransmit(u32),
    /// One idle drain superstep (the network still holds delayed payloads
    /// or duplicate copies).
    Drain,
    /// The protocol has terminated; the session is inert.
    Done,
}

/// Where the protocol resumes on the next [`RecoverySession::step`] call.
/// Variants that execute a superstep alternate with bookkeeping-only
/// variants, which `step` burns through without returning.
#[derive(Clone, Copy)]
enum Resume {
    Send,
    LoopHead,
    Ack,
    BackoffEnter,
    Backoff { left: u32 },
    PostBackoff,
    Retransmit,
    Drain,
    Done,
}

/// The ack/retransmit protocol of [`run_with_recovery`], exposed one
/// superstep at a time.
///
/// Each [`step`](RecoverySession::step) call advances the underlying
/// [`BspMachine`] by exactly one superstep (or reports
/// [`RecoveryPhase::Done`]) and returns which protocol phase that superstep
/// belonged to. Driving a session to completion performs the *identical*
/// machine-operation sequence as [`run_with_recovery_to`] — same labels,
/// same scans, same seeds — so outcomes are bit-exact between the two
/// entry points (the batch functions are implemented on top of this type).
///
/// The per-superstep surface exists for the `pbw-check` bounded model
/// checker, which interleaves its own invariant probes (ledger
/// conservation, canonical state hashes) between protocol supersteps.
pub struct RecoverySession<'a> {
    wl: &'a Workload,
    scheduler: &'a dyn Scheduler,
    cfg: &'a RecoveryConfig,
    params: MachineParams,
    seed: u64,
    machine: BspMachine<(), FlitTag>,
    ledger: DeliveryLedger,
    resume: Resume,
    round: u32,
    resent_flits: u64,
    ack_supersteps: u64,
    backoff_supersteps: u64,
}

impl<'a> RecoverySession<'a> {
    /// Set up a session; no superstep runs until [`step`](Self::step).
    pub fn new(
        sink: Arc<dyn pbw_trace::TraceSink>,
        wl: &'a Workload,
        scheduler: &'a dyn Scheduler,
        params: MachineParams,
        seed: u64,
        hook: Option<Arc<dyn DeliveryHook>>,
        cfg: &'a RecoveryConfig,
    ) -> Self {
        assert_eq!(wl.p(), params.p, "workload and machine disagree on p");
        let mut machine: BspMachine<(), FlitTag> = BspMachine::new(params, |_| ());
        machine.set_sink(sink);
        machine.set_trace_label("recovery/send");
        if let Some(h) = hook {
            machine.set_delivery_hook(h);
        }
        RecoverySession {
            ledger: DeliveryLedger::new(wl),
            wl,
            scheduler,
            cfg,
            params,
            seed,
            machine,
            resume: Resume::Send,
            round: 0,
            resent_flits: 0,
            ack_supersteps: 0,
            backoff_supersteps: 0,
        }
    }

    fn scan(&mut self) {
        self.ledger
            .scan(&self.machine, self.machine.superstep_index() as u64);
    }

    /// Execute the next protocol superstep, or return
    /// [`RecoveryPhase::Done`] (a no-op) once the protocol has terminated.
    pub fn step(&mut self) -> RecoveryPhase {
        let idle = |_: Pid, _: &mut (), _: &[FlitTag], _: &mut Outbox<FlitTag>| {};
        loop {
            match self.resume {
                Resume::Send => {
                    // Round 0: the full workload, original tags.
                    let full_tags: Vec<Vec<Vec<FlitTag>>> = (0..self.wl.p())
                        .map(|src| {
                            self.wl
                                .msgs(src)
                                .iter()
                                .enumerate()
                                .map(|(k, m)| {
                                    (0..m.len as u32)
                                        .map(|f| (src as u32, k as u32, f))
                                        .collect()
                                })
                                .collect()
                        })
                        .collect();
                    let schedule = self.scheduler.schedule(self.wl, self.params.m, self.seed);
                    send_round(&mut self.machine, self.wl, &schedule, &full_tags);
                    self.scan();
                    self.resume = Resume::LoopHead;
                    return RecoveryPhase::Send;
                }
                Resume::LoopHead => {
                    if self.ledger.outstanding > 0 && self.round < self.cfg.max_rounds {
                        self.round += 1;
                        self.resume = if self.cfg.charge_acks {
                            Resume::Ack
                        } else {
                            Resume::BackoffEnter
                        };
                    } else {
                        self.resume = Resume::Drain;
                    }
                }
                Resume::Ack => {
                    // Ack superstep: every destination acks the sources it
                    // heard from.
                    let round = self.round;
                    let acks = self.ledger.ack_targets(self.wl);
                    self.machine.set_trace_label(format!("recovery/ack{round}"));
                    let ack_body =
                        |pid: Pid, _s: &mut (), _in: &[FlitTag], out: &mut Outbox<FlitTag>| {
                            for &src in &acks[pid] {
                                out.send(src, (ACK_SRC, pid as u32, 0));
                            }
                        };
                    let ackers: Vec<Pid> =
                        (0..self.wl.p()).filter(|&d| !acks[d].is_empty()).collect();
                    if pbw_sim::density::crossover(ackers.len(), self.wl.p()) {
                        self.machine.superstep_active(&ackers, ack_body);
                    } else {
                        self.machine.superstep(ack_body);
                    }
                    self.ack_supersteps += 1;
                    self.scan();
                    self.resume = Resume::BackoffEnter;
                    return RecoveryPhase::Ack(round);
                }
                Resume::BackoffEnter => {
                    let left = self.cfg.backoff(self.round);
                    self.resume = if left == 0 {
                        Resume::PostBackoff
                    } else {
                        Resume::Backoff { left }
                    };
                }
                Resume::Backoff { left } => {
                    // Bounded exponential backoff (also drains delayed
                    // payloads). No declared senders: only processors with
                    // due deliveries or a retained inbox wake, so drain
                    // steps cost O(arrivals), not O(p).
                    let round = self.round;
                    self.machine
                        .set_trace_label(format!("recovery/backoff{round}"));
                    self.machine.superstep_active(&[], idle);
                    self.backoff_supersteps += 1;
                    self.scan();
                    self.resume = if left == 1 {
                        Resume::PostBackoff
                    } else {
                        Resume::Backoff { left: left - 1 }
                    };
                    return RecoveryPhase::Backoff(round);
                }
                Resume::PostBackoff => {
                    self.resume = if self.ledger.outstanding == 0 {
                        // Late arrivals cleared the residual during backoff.
                        Resume::Drain
                    } else {
                        Resume::Retransmit
                    };
                }
                Resume::Retransmit => {
                    // Retransmit the residual through the same scheduler,
                    // fresh seed.
                    let round = self.round;
                    let (residual, tags) = self.ledger.residual(self.wl);
                    self.resent_flits += residual.n_flits();
                    let round_seed = self.seed ^ (round as u64).wrapping_mul(0x9E37);
                    let schedule = self
                        .scheduler
                        .schedule(&residual, self.params.m, round_seed);
                    self.machine
                        .set_trace_label(format!("recovery/retransmit{round}"));
                    self.machine.set_fault_round(round);
                    send_round(&mut self.machine, &residual, &schedule, &tags);
                    self.scan();
                    self.resume = Resume::LoopHead;
                    return RecoveryPhase::Retransmit(round);
                }
                Resume::Drain => {
                    // Drain: payloads still inside the network (delays,
                    // duplicate copies) arrive within bounded time; idle
                    // until the network is empty.
                    if self.machine.faults_in_flight() == 0 {
                        self.resume = Resume::Done;
                        continue;
                    }
                    self.machine.set_trace_label("recovery/drain");
                    self.machine.superstep_active(&[], idle);
                    self.backoff_supersteps += 1;
                    self.scan();
                    return RecoveryPhase::Drain;
                }
                Resume::Done => return RecoveryPhase::Done,
            }
        }
    }

    /// Whether the protocol has terminated ([`step`](Self::step) would
    /// return [`RecoveryPhase::Done`]).
    pub fn is_done(&self) -> bool {
        matches!(self.resume, Resume::Done)
            || (matches!(self.resume, Resume::Drain) && self.machine.faults_in_flight() == 0)
    }

    /// Flits of the original workload not yet delivered.
    pub fn outstanding(&self) -> u64 {
        self.ledger.outstanding
    }

    /// Retransmission rounds started so far.
    pub fn rounds(&self) -> u32 {
        self.round
    }

    /// The engine's running fault ledger.
    pub fn fault_stats(&self) -> FaultStats {
        self.machine.fault_stats()
    }

    /// The underlying machine (read-only), e.g. for canonical state hashes
    /// between supersteps.
    pub fn machine(&self) -> &BspMachine<(), FlitTag> {
        &self.machine
    }

    /// Idle backoff/drain supersteps charged so far.
    pub fn backoff_supersteps(&self) -> u64 {
        self.backoff_supersteps
    }

    /// Snapshot the whole session at the current superstep boundary:
    /// machine state (via [`BspMachine::checkpoint`]) plus the protocol's
    /// own state — delivery ledger, resume point, round and superstep
    /// counters. Passive: taking a snapshot perturbs nothing, so a run
    /// that checkpoints and never rolls back is byte-identical to one that
    /// never checkpoints.
    pub fn checkpoint(&self) -> SessionCheckpoint {
        SessionCheckpoint {
            machine: self.machine.checkpoint(),
            ledger: self.ledger.clone(),
            resume: self.resume,
            round: self.round,
            resent_flits: self.resent_flits,
            ack_supersteps: self.ack_supersteps,
            backoff_supersteps: self.backoff_supersteps,
        }
    }

    /// Roll the session back to `ckpt` after a crash: machine state reverts
    /// through the ledger-monotone [`BspMachine::rollback`] (aborted
    /// in-flight payloads are written off to `crashed`, re-materialized
    /// snapshot payloads credited to `restored`), protocol state reverts to
    /// the snapshot, and the next executed superstep's trace event carries
    /// a [`RecoveryMark::Rollback`] record.
    ///
    /// Superstep *profiles* are deliberately not rolled back — the aborted
    /// timeline's supersteps really executed and stay priced, which is
    /// exactly the recovery overhead the cost models are meant to see. The
    /// protocol counters (`rounds`, `resent_flits`, …) do revert, so the
    /// outcome reports the surviving timeline's protocol shape while
    /// `profiles`/`summary` price everything that ran.
    pub fn rollback(&mut self, ckpt: &SessionCheckpoint) {
        let from = self.machine.superstep_index() as u64;
        self.machine.rollback(&ckpt.machine);
        self.machine.set_recovery_mark(RecoveryMark::Rollback {
            from,
            to: ckpt.machine.superstep(),
        });
        self.ledger = ckpt.ledger.clone();
        self.resume = ckpt.resume;
        self.round = ckpt.round;
        self.resent_flits = ckpt.resent_flits;
        self.ack_supersteps = ckpt.ack_supersteps;
        self.backoff_supersteps = ckpt.backoff_supersteps;
    }

    /// Stamp a [`RecoveryMark`] onto the next executed superstep's trace
    /// event (the checkpoint driver marks snapshot writes this way).
    pub fn set_recovery_mark(&mut self, mark: RecoveryMark) {
        self.machine.set_recovery_mark(mark);
    }

    /// Finish the session into an outcome (normally called once
    /// [`step`](Self::step) reports done; calling earlier snapshots a
    /// partial run).
    pub fn into_outcome(self) -> RecoveryOutcome {
        let profiles = self.machine.profiles().to_vec();
        RecoveryOutcome {
            summary: CostSummary::price(self.params, &profiles),
            profiles,
            rounds: self.round,
            delivered_all: self.ledger.outstanding == 0,
            resent_flits: self.resent_flits,
            ack_supersteps: self.ack_supersteps,
            backoff_supersteps: self.backoff_supersteps,
            arrival_steps: self.ledger.arrival_steps,
            fault_stats: self.machine.fault_stats(),
        }
    }
}

/// A superstep-consistent snapshot of a whole [`RecoverySession`]:
/// machine state plus protocol state, everything needed to roll back to
/// the barrier it was taken at. Created by [`RecoverySession::checkpoint`],
/// consumed by [`RecoverySession::rollback`].
pub struct SessionCheckpoint {
    machine: MachineCheckpoint<(), FlitTag>,
    ledger: DeliveryLedger,
    resume: Resume,
    round: u32,
    resent_flits: u64,
    ack_supersteps: u64,
    backoff_supersteps: u64,
}

impl SessionCheckpoint {
    /// Superstep boundary the snapshot was taken at.
    pub fn superstep(&self) -> u64 {
        self.machine.superstep()
    }

    /// Words `pid` contributes to a checkpoint write (one word of processor
    /// state plus its retained inbox payloads) — the per-processor h-relation
    /// load of writing this snapshot to its buddy.
    pub fn state_words(&self, pid: Pid) -> u64 {
        self.machine.state_words(pid)
    }

    /// Total message payloads captured (inboxes + pending network).
    pub fn total_payloads(&self) -> u64 {
        self.machine.total_payloads()
    }

    /// Number of processors captured.
    pub fn p(&self) -> usize {
        self.machine.p()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::run_schedule_on_bsp;
    use crate::schedulers::{OfflineOptimal, UnbalancedSend};
    use crate::workload;
    use pbw_sim::{DeliveryCtx, Fate};

    fn params(p: usize, m: usize) -> MachineParams {
        MachineParams::from_bandwidth(p, m, 4)
    }

    #[test]
    fn reliable_network_is_bit_exact_with_the_fault_free_path() {
        let wl = workload::uniform_random(32, 4, 5);
        let mp = params(32, 8);
        let sched = UnbalancedSend::new(0.2);
        let direct = run_schedule_on_bsp(&wl, &sched.schedule(&wl, mp.m, 9), mp);
        let recovered = run_with_recovery(&wl, &sched, mp, 9, None, &RecoveryConfig::default());
        assert_eq!(recovered.summary, direct.summary);
        assert_eq!(recovered.profiles.len(), 1);
        assert_eq!(recovered.rounds, 0);
        assert!(recovered.delivered_all);
        assert_eq!(recovered.resent_flits, 0);
        assert_eq!(recovered.ack_supersteps + recovered.backoff_supersteps, 0);
    }

    /// Drops every copy of one (src → dest) edge in superstep 0 only.
    struct DropFirstAttempt;
    impl DeliveryHook for DropFirstAttempt {
        fn fate(&self, ctx: &DeliveryCtx) -> Fate {
            if ctx.superstep == 0 && ctx.src == 0 {
                Fate::Drop
            } else {
                Fate::Deliver
            }
        }
    }

    #[test]
    fn dropped_flits_are_retransmitted_and_arrive() {
        let wl = workload::uniform_random(16, 4, 2);
        let mp = params(16, 4);
        let out = run_with_recovery(
            &wl,
            &OfflineOptimal,
            mp,
            1,
            Some(Arc::new(DropFirstAttempt)),
            &RecoveryConfig::default(),
        );
        assert!(out.delivered_all);
        assert_eq!(out.rounds, 1);
        let lost: u64 = wl.msgs(0).iter().map(|m| m.len).sum();
        assert_eq!(out.resent_flits, lost);
        assert_eq!(out.ack_supersteps, 1);
        // Every flit accounted for exactly once.
        assert_eq!(out.arrival_steps.len() as u64, wl.n_flits());
        assert!(out.fault_stats.conserved());
        // Recovery costs strictly more than it would have fault-free.
        let direct = run_schedule_on_bsp(&wl, &OfflineOptimal.schedule(&wl, mp.m, 1), mp);
        assert!(out.summary.bsp_m_exp > direct.summary.bsp_m_exp);
    }

    /// Drops an edge forever — recovery must give up at max_rounds.
    struct BlackHole;
    impl DeliveryHook for BlackHole {
        fn fate(&self, ctx: &DeliveryCtx) -> Fate {
            if ctx.src == 0 {
                Fate::Drop
            } else {
                Fate::Deliver
            }
        }
    }

    #[test]
    fn permanent_loss_gives_up_after_max_rounds() {
        let wl = workload::uniform_random(8, 2, 3);
        let cfg = RecoveryConfig {
            max_rounds: 3,
            ..RecoveryConfig::default()
        };
        let out = run_with_recovery(
            &wl,
            &OfflineOptimal,
            params(8, 2),
            5,
            Some(Arc::new(BlackHole)),
            &cfg,
        );
        assert!(!out.delivered_all);
        assert_eq!(out.rounds, 3);
        assert!(out.fault_stats.dropped > 0);
        assert!(out.fault_stats.conserved());
    }

    /// Delays everything sent in superstep 0 by two supersteps.
    struct SlowStart;
    impl DeliveryHook for SlowStart {
        fn fate(&self, ctx: &DeliveryCtx) -> Fate {
            if ctx.superstep == 0 {
                Fate::Delay(2)
            } else {
                Fate::Deliver
            }
        }
    }

    #[test]
    fn delayed_flits_arrive_during_backoff_without_retransmission() {
        let wl = workload::uniform_random(8, 2, 7);
        let out = run_with_recovery(
            &wl,
            &OfflineOptimal,
            params(8, 2),
            2,
            Some(Arc::new(SlowStart)),
            &RecoveryConfig::default(),
        );
        assert!(out.delivered_all);
        // The backoff window outlasted the delay: nothing was resent.
        assert_eq!(out.resent_flits, 0);
        assert_eq!(out.rounds, 1);
        assert!(out.fault_stats.conserved());
        assert_eq!(out.fault_stats.in_flight, 0);
    }

    #[test]
    fn backoff_is_bounded_exponential() {
        let cfg = RecoveryConfig {
            backoff_base: 2,
            backoff_cap: 12,
            ..Default::default()
        };
        assert_eq!(cfg.backoff(1), 2);
        assert_eq!(cfg.backoff(2), 4);
        assert_eq!(cfg.backoff(3), 8);
        assert_eq!(cfg.backoff(4), 12); // capped
        assert_eq!(cfg.backoff(30), 12);
    }

    /// Drops src 0's first attempt and delays everything sent in the
    /// retransmission superstep — forces a round *and* a drain tail.
    struct DropThenDelay;
    impl DeliveryHook for DropThenDelay {
        fn fate(&self, ctx: &DeliveryCtx) -> Fate {
            if ctx.superstep == 0 && ctx.src == 0 {
                Fate::Drop
            } else if ctx.src == 0 {
                Fate::Delay(2)
            } else {
                Fate::Deliver
            }
        }
    }

    #[test]
    fn stepped_session_is_bit_exact_with_the_batch_entry_point() {
        let wl = workload::uniform_random(16, 2, 4);
        let mp = params(16, 4);
        let cfg = RecoveryConfig::default();
        let batch = run_with_recovery(
            &wl,
            &OfflineOptimal,
            mp,
            3,
            Some(Arc::new(DropThenDelay)),
            &cfg,
        );

        let mut session = RecoverySession::new(
            pbw_trace::global_sink(),
            &wl,
            &OfflineOptimal,
            mp,
            3,
            Some(Arc::new(DropThenDelay)),
            &cfg,
        );
        let mut phases = Vec::new();
        loop {
            let ph = session.step();
            if ph == RecoveryPhase::Done {
                break;
            }
            // The ledger conserves at *every* superstep boundary, not just
            // at quiescence — the probe pbw-check runs between steps.
            assert!(session.fault_stats().conserved(), "after {ph:?}");
            phases.push(ph);
        }
        assert!(session.is_done());
        assert_eq!(phases[0], RecoveryPhase::Send);
        assert!(phases.contains(&RecoveryPhase::Ack(1)));
        assert!(phases.contains(&RecoveryPhase::Retransmit(1)));
        // The delayed retransmissions arrive during round 2's backoff
        // window, so the protocol ends without a dedicated drain superstep.
        assert!(matches!(phases.last(), Some(RecoveryPhase::Backoff(2))));

        let stepped = session.into_outcome();
        assert_eq!(stepped.summary, batch.summary);
        assert_eq!(stepped.profiles, batch.profiles);
        assert_eq!(stepped.rounds, batch.rounds);
        assert_eq!(stepped.delivered_all, batch.delivered_all);
        assert_eq!(stepped.resent_flits, batch.resent_flits);
        assert_eq!(stepped.ack_supersteps, batch.ack_supersteps);
        assert_eq!(stepped.backoff_supersteps, batch.backoff_supersteps);
        assert_eq!(stepped.arrival_steps, batch.arrival_steps);
        assert_eq!(stepped.fault_stats, batch.fault_stats);
    }

    #[test]
    fn arrival_percentile_bounds_checks() {
        let wl = workload::uniform_random(8, 2, 7);
        let out = run_with_recovery(
            &wl,
            &OfflineOptimal,
            params(8, 2),
            2,
            None,
            &Default::default(),
        );
        assert!(out.arrival_percentile(0.5).is_some());
        assert_eq!(out.arrival_percentile(1.5), None);
        assert_eq!(out.arrival_percentile(-0.1), None);
        // Fault-free: everything arrives at the first boundary.
        assert_eq!(out.arrival_percentile(1.0), Some(1));
    }
}
