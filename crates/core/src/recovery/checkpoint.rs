//! Superstep-consistent checkpoint/rollback recovery for crash-stop
//! processor failures.
//!
//! The ack/retransmit protocol in [`super`] survives *message*-level faults
//! (drops, duplicates, delays) but not a processor that dies mid-run: a
//! crash-stop failure silences a pid for a window of supersteps, destroys
//! every payload handed to it while down, and — in a real machine — loses
//! its local state. This module layers the classic BSP answer on top:
//!
//! 1. **Checkpoint.** Every `k` protocol supersteps the driver snapshots the
//!    whole [`RecoverySession`] at the barrier ([`RecoverySession::
//!    checkpoint`]). A barrier-aligned snapshot is globally consistent for
//!    free — between supersteps there are no messages in transit other than
//!    the explicitly-modeled pending queue, which the snapshot captures.
//!    Snapshots are *passive*: a crash-free checkpointed run is
//!    byte-identical to an uncheckpointed one (the proptests pin this).
//! 2. **Detect.** The driver watches the engine's `crash_steps` ledger
//!    column; any superstep during which a processor was down triggers
//!    recovery — crash-stop means that processor's state is gone, so the
//!    run can no longer be trusted past the last snapshot.
//! 3. **Roll back.** [`RecoverySession::rollback`] reverts machine and
//!    protocol state to the snapshot under the *monotone* ledger algebra
//!    (aborted in-flight payloads written off to `crashed`, re-materialized
//!    snapshot payloads credited to `restored` — conservation never
//!    breaks), and stamps a [`RecoveryMark::Rollback`] on the next trace
//!    event.
//! 4. **Replay against a moving wall clock.** Hooks are pure in
//!    `(superstep, pid)`, so naive replay would hit the same crash forever.
//!    The driver wraps the user hook in a [`WallClockHook`]: fault time =
//!    machine superstep + offset, and each rollback advances the offset
//!    past the crashed superstep. Replayed supersteps therefore see *fresh*
//!    fault history, crash windows expire in wall time, and the residual
//!    rescheduling below re-prices honestly.
//!
//! **Cost accounting.** Rolled-back supersteps are never un-priced: their
//! profiles stay in the run (lost work is exactly the overhead rollback
//! recovery pays). Checkpoint writes and post-crash restores are priced as
//! additional superstep profiles — a checkpoint write is an h-relation in
//! which every processor ships its state words to a buddy
//! (`(pid + p/2) % p`), a restore is the fan-in from buddies to just the
//! crashed pids. This is where the local/global split bites: BSP(g)
//! charges every checkpoint write `g·h` *globally*, while BSP(m)'s slot
//! histogram prices the restore fan-in by how much bandwidth it actually
//! uses — a handful of restarted processors cost almost nothing. The
//! `reproduce crashes` sweep tabulates this separation.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use super::{RecoveryConfig, RecoveryOutcome, RecoveryPhase, RecoverySession, SessionCheckpoint};
use crate::schedulers::Scheduler;
use crate::workload::Workload;
use pbw_models::{MachineParams, ProfileBuilder, SuperstepProfile};
use pbw_sim::{CostSummary, DeliveryCtx, DeliveryHook, Fate, Pid};
use pbw_trace::RecoveryMark;

/// Knobs of the checkpoint/rollback driver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointConfig {
    /// Take a snapshot every `interval` protocol supersteps (`k ≥ 1`).
    pub interval: u64,
    /// Price checkpoint writes and restores as superstep profiles in the
    /// outcome's `overhead`. Switching this off makes checkpointing fully
    /// invisible (pure snapshot mode — what the byte-identity proptests
    /// run).
    pub charge_state_io: bool,
    /// Give up after this many rollbacks (the outcome then reports
    /// `gave_up` instead of replaying a pathological crash plan forever).
    pub max_rollbacks: u32,
}

impl Default for CheckpointConfig {
    fn default() -> Self {
        CheckpointConfig {
            interval: 4,
            charge_state_io: true,
            max_rollbacks: 32,
        }
    }
}

impl CheckpointConfig {
    /// Checkpoint every `k` supersteps, defaults elsewhere.
    pub fn every(k: u64) -> Self {
        CheckpointConfig {
            interval: k,
            ..Default::default()
        }
    }
}

/// Translates engine superstep indices into *wall-clock* fault time:
/// `wall = superstep + offset`. The offset starts at 0 (the hook is then a
/// transparent wrapper) and advances at every rollback, so replayed
/// supersteps consult the wrapped hook at fresh wall times instead of
/// re-living the crash that forced the rollback.
///
/// The purity contract holds piecewise: the offset only changes between
/// supersteps (at rollback, driven by the single-threaded driver), so
/// within any superstep the hook is pure in `(superstep, pid)` exactly as
/// the engines require.
pub struct WallClockHook {
    inner: Arc<dyn DeliveryHook>,
    offset: AtomicU64,
}

impl WallClockHook {
    /// Wrap `inner`; wall time starts equal to machine time.
    pub fn new(inner: Arc<dyn DeliveryHook>) -> Self {
        WallClockHook {
            inner,
            offset: AtomicU64::new(0),
        }
    }

    /// Current wall-clock offset.
    pub fn offset(&self) -> u64 {
        self.offset.load(Ordering::Relaxed)
    }

    /// Set the offset. Driver-only: call strictly *between* supersteps
    /// (after a rollback, before resuming), never while a superstep is in
    /// flight — the purity contract above depends on it.
    pub fn set_offset(&self, offset: u64) {
        self.offset.store(offset, Ordering::Relaxed);
    }
}

impl DeliveryHook for WallClockHook {
    fn fate(&self, ctx: &DeliveryCtx) -> Fate {
        self.inner.fate(&DeliveryCtx {
            superstep: ctx.superstep + self.offset(),
            src: ctx.src,
            dest: ctx.dest,
            msg_idx: ctx.msg_idx,
            slot: ctx.slot,
        })
    }

    fn stalled(&self, superstep: u64, pid: Pid) -> bool {
        self.inner.stalled(superstep + self.offset(), pid)
    }

    fn crashed(&self, superstep: u64, pid: Pid) -> bool {
        self.inner.crashed(superstep + self.offset(), pid)
    }
}

/// What a checkpointed recovery run did and what it cost.
#[derive(Debug, Clone)]
pub struct CheckpointedOutcome {
    /// The protocol run itself — including every replayed superstep, which
    /// stays priced (lost work is the cost of rollback recovery).
    pub recovery: RecoveryOutcome,
    /// Snapshots taken (the initial superstep-0 snapshot included).
    pub checkpoints: u64,
    /// Rollbacks performed.
    pub rollbacks: u32,
    /// Supersteps discarded and re-executed due to rollbacks.
    pub replayed_supersteps: u64,
    /// Checkpoint-write and restore h-relations, one profile each, in the
    /// order they happened. Empty when `charge_state_io` is off.
    pub overhead_profiles: Vec<SuperstepProfile>,
    /// The overhead profiles priced under every model.
    pub overhead: CostSummary,
    /// Protocol cost plus state-I/O overhead, per model.
    pub total: CostSummary,
    /// True if `max_rollbacks` was exhausted before the protocol finished.
    pub gave_up: bool,
}

/// `pid`'s checkpoint buddy: the processor half the machine away, so buddy
/// traffic is itself a balanced h-relation rather than a hotspot.
pub fn buddy(pid: Pid, p: usize) -> Pid {
    (pid + p / 2) % p
}

/// Spread `total` injections over the fewest feasible slots: at least
/// `⌈total/m⌉` (the aggregate-bandwidth floor) and at least `per_proc_max`
/// (no processor can inject twice in one slot), filled as evenly as
/// possible so no slot exceeds `m`. This is the *optimally scheduled*
/// slot histogram for the state-I/O h-relation — recovery traffic is
/// planned by the runtime, not adversarial, so it is priced at its
/// schedulable cost.
fn spread_injections(b: &mut ProfileBuilder, total: u64, per_proc_max: u64, m: u64) {
    if total == 0 {
        return;
    }
    let slots = per_proc_max.max(total.div_ceil(m.max(1)));
    let base = total / slots;
    let extra = total % slots;
    for s in 0..slots {
        let put = base + u64::from(s < extra);
        if put > 0 {
            b.record_injections(s, put);
        }
    }
}

/// Price one checkpoint write: every processor ships its state words to
/// its buddy — a (near-)balanced h-relation. BSP(g) charges `g·h` on the
/// largest per-processor state; BSP(m) charges the aggregate word count
/// over `m` slots — for balanced state the two roughly agree, exactly the
/// paper's equivalence on balanced h-relations.
fn checkpoint_write_profile(ckpt: &SessionCheckpoint, m: u64) -> SuperstepProfile {
    let p = ckpt.p();
    let mut b = ProfileBuilder::new();
    let mut total = 0u64;
    let mut widest = 0u64;
    for pid in 0..p {
        let words = ckpt.state_words(pid);
        b.record_traffic(words, ckpt.state_words(buddy(pid, p)));
        total += words;
        widest = widest.max(words);
    }
    spread_injections(&mut b, total, widest, m);
    b.snapshot_reset()
}

/// Price one restore: each crashed pid's buddy fans the snapshot state
/// back in. Only the restarted processors receive — BSP(g) still charges
/// `g·h` on the widest restarted state, while BSP(m)'s aggregate slots
/// absorb the sparse fan-in almost for free. This is where the
/// local/global split shows up in recovery overhead.
fn restore_profile(ckpt: &SessionCheckpoint, dead: &[Pid], m: u64) -> SuperstepProfile {
    let mut b = ProfileBuilder::new();
    let mut total = 0u64;
    let mut widest = 0u64;
    for &pid in dead {
        let words = ckpt.state_words(pid);
        // The buddy sends, the restarted pid receives.
        b.record_traffic(0, words);
        total += words;
        widest = widest.max(words);
    }
    // Buddies' send sides: sent = words of their restarted partner.
    for &pid in dead {
        b.record_traffic(ckpt.state_words(pid), 0);
    }
    spread_injections(&mut b, total, widest, m);
    b.snapshot_reset()
}

fn add_summaries(a: &CostSummary, b: &CostSummary) -> CostSummary {
    CostSummary {
        bsp_g: a.bsp_g + b.bsp_g,
        bsp_m_linear: a.bsp_m_linear + b.bsp_m_linear,
        bsp_m_exp: a.bsp_m_exp + b.bsp_m_exp,
        bsp_m_self: a.bsp_m_self + b.bsp_m_self,
        qsm_g: a.qsm_g + b.qsm_g,
        qsm_m_linear: a.qsm_m_linear + b.qsm_m_linear,
        qsm_m_exp: a.qsm_m_exp + b.qsm_m_exp,
    }
}

/// Run `wl` under a (possibly crashing) fault hook with checkpoint/rollback
/// recovery layered over the ack/retransmit protocol. See the module docs
/// for the protocol; with `hook = None`, or a hook that never crashes, the
/// protocol supersteps are bit-exact to [`super::run_with_recovery`].
pub fn run_with_checkpointed_recovery(
    wl: &Workload,
    scheduler: &dyn Scheduler,
    params: MachineParams,
    seed: u64,
    hook: Option<Arc<dyn DeliveryHook>>,
    cfg: &RecoveryConfig,
    ck: &CheckpointConfig,
) -> CheckpointedOutcome {
    run_with_checkpointed_recovery_to(
        pbw_trace::global_sink(),
        wl,
        scheduler,
        params,
        seed,
        hook,
        cfg,
        ck,
    )
}

/// [`run_with_checkpointed_recovery`] with an explicit trace sink (the
/// sweep-determinism idiom, see [`super::run_with_recovery_to`]).
#[allow(clippy::too_many_arguments)]
pub fn run_with_checkpointed_recovery_to(
    sink: Arc<dyn pbw_trace::TraceSink>,
    wl: &Workload,
    scheduler: &dyn Scheduler,
    params: MachineParams,
    seed: u64,
    hook: Option<Arc<dyn DeliveryHook>>,
    cfg: &RecoveryConfig,
    ck: &CheckpointConfig,
) -> CheckpointedOutcome {
    assert!(ck.interval >= 1, "checkpoint interval must be ≥ 1");
    let p = params.p;
    let wall = hook.map(|h| Arc::new(WallClockHook::new(h)));
    let session_hook: Option<Arc<dyn DeliveryHook>> = wall
        .as_ref()
        .map(|w| Arc::clone(w) as Arc<dyn DeliveryHook>);
    let mut session = RecoverySession::new(sink, wl, scheduler, params, seed, session_hook, cfg);

    let m_slots = params.m as u64;
    let mut last = session.checkpoint();
    let mut overhead_profiles: Vec<SuperstepProfile> = Vec::new();
    if ck.charge_state_io {
        overhead_profiles.push(checkpoint_write_profile(&last, m_slots));
    }
    let mut checkpoints = 1u64;
    let mut rollbacks = 0u32;
    let mut replayed = 0u64;
    let mut since_ckpt = 0u64;
    let mut gave_up = false;

    loop {
        let crash_steps_before = session.fault_stats().crash_steps;
        let phase = session.step();
        if phase == RecoveryPhase::Done {
            break;
        }
        if session.fault_stats().crash_steps > crash_steps_before {
            // A processor was down during that superstep: its state is
            // gone, so the timeline past the last snapshot is void.
            if rollbacks >= ck.max_rollbacks {
                gave_up = true;
                break;
            }
            rollbacks += 1;
            let after_crash = session.machine().superstep_index() as u64;
            let crashed_step = after_crash - 1;
            let wall_ref = wall.as_ref().expect("crash_steps implies a hook");
            // Who was down (queried in current wall time, pre-advance)?
            let dead: Vec<Pid> = (0..p)
                .filter(|&pid| wall_ref.crashed(crashed_step, pid))
                .collect();
            // Advance wall time one past the crashed superstep, so the
            // first replayed superstep sees fresh fault history.
            let wall_of_crash = crashed_step + wall_ref.offset();
            wall_ref.set_offset(wall_of_crash + 1 - last.superstep());
            replayed += after_crash - last.superstep();
            session.rollback(&last);
            if ck.charge_state_io {
                overhead_profiles.push(restore_profile(&last, &dead, m_slots));
            }
            since_ckpt = 0;
            continue;
        }
        since_ckpt += 1;
        if since_ckpt == ck.interval && !session.is_done() {
            last = session.checkpoint();
            checkpoints += 1;
            since_ckpt = 0;
            if ck.charge_state_io {
                overhead_profiles.push(checkpoint_write_profile(&last, m_slots));
                session.set_recovery_mark(RecoveryMark::Checkpoint {
                    payloads: last.total_payloads(),
                });
            }
        }
    }

    let recovery = session.into_outcome();
    let overhead = CostSummary::price(params, &overhead_profiles);
    let total = add_summaries(&recovery.summary, &overhead);
    CheckpointedOutcome {
        recovery,
        checkpoints,
        rollbacks,
        replayed_supersteps: replayed,
        overhead_profiles,
        overhead,
        total,
        gave_up,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedulers::OfflineOptimal;
    use crate::workload;
    use pbw_faults::{CrashWindow, FaultPlan, FaultSpec};

    fn params(p: usize, m: usize) -> MachineParams {
        MachineParams::from_bandwidth(p, m, 4)
    }

    #[test]
    fn crash_free_checkpointed_run_matches_plain_recovery_bit_exactly() {
        let wl = workload::uniform_random(16, 3, 7);
        let mp = params(16, 4);
        let cfg = RecoveryConfig::default();
        let plan: Arc<dyn DeliveryHook> = Arc::new(FaultPlan::new(FaultSpec::drop_only(0.15), 3));
        let plain =
            super::super::run_with_recovery(&wl, &OfflineOptimal, mp, 9, Some(plan.clone()), &cfg);
        // Passive snapshot mode: byte-identical protocol run.
        let ck = CheckpointConfig {
            interval: 2,
            charge_state_io: false,
            max_rollbacks: 8,
        };
        let out = run_with_checkpointed_recovery(
            &wl,
            &OfflineOptimal,
            mp,
            9,
            Some(plan.clone()),
            &cfg,
            &ck,
        );
        assert_eq!(out.rollbacks, 0);
        assert!(out.checkpoints > 1);
        assert!(out.overhead_profiles.is_empty());
        assert_eq!(out.recovery.summary, plain.summary);
        assert_eq!(out.recovery.profiles, plain.profiles);
        assert_eq!(out.recovery.arrival_steps, plain.arrival_steps);
        assert_eq!(out.recovery.fault_stats, plain.fault_stats);
        assert_eq!(out.total, plain.summary);
        // Charged mode: identical protocol run, non-zero overhead on top.
        let out2 = run_with_checkpointed_recovery(
            &wl,
            &OfflineOptimal,
            mp,
            9,
            Some(plan),
            &cfg,
            &CheckpointConfig::every(2),
        );
        assert_eq!(out2.recovery.summary, plain.summary);
        assert!(out2.overhead.bsp_g > 0.0);
        assert!(out2.total.bsp_g > plain.summary.bsp_g);
    }

    #[test]
    fn scripted_crash_rolls_back_and_still_delivers_everything() {
        let wl = workload::uniform_random(8, 2, 11);
        let mp = params(8, 2);
        let cfg = RecoveryConfig::default();
        // Processor 3 is dead for wall supersteps 0–1, covering the initial
        // send; each rollback advances wall time by one, so the third
        // replay finally sees it alive.
        let plan = FaultPlan::new(FaultSpec::none(), 0)
            .with_crash_window(CrashWindow::new(3, 0, 2).expect("window"));
        let out = run_with_checkpointed_recovery(
            &wl,
            &OfflineOptimal,
            mp,
            5,
            Some(Arc::new(plan)),
            &cfg,
            &CheckpointConfig::every(1),
        );
        assert!(!out.gave_up);
        assert!(out.rollbacks >= 1);
        assert!(out.replayed_supersteps >= 1);
        assert!(out.recovery.delivered_all, "crash recovery lost flits");
        assert!(out.recovery.fault_stats.conserved());
        assert!(out.recovery.fault_stats.crash_steps >= 1);
        // Restores were priced (one per rollback) on top of the writes.
        assert!(out.overhead_profiles.len() as u64 > out.checkpoints);
        // Determinism: the whole recovery replays bit-identically.
        let plan2 = FaultPlan::new(FaultSpec::none(), 0)
            .with_crash_window(CrashWindow::new(3, 0, 2).expect("window"));
        let again = run_with_checkpointed_recovery(
            &wl,
            &OfflineOptimal,
            mp,
            5,
            Some(Arc::new(plan2)),
            &cfg,
            &CheckpointConfig::every(1),
        );
        assert_eq!(out.recovery.summary, again.recovery.summary);
        assert_eq!(out.recovery.fault_stats, again.recovery.fault_stats);
        assert_eq!(out.rollbacks, again.rollbacks);
        assert_eq!(out.total, again.total);
    }

    #[test]
    fn seeded_crashes_recover_with_conserved_ledger() {
        let wl = workload::uniform_random(16, 2, 13);
        let mp = params(16, 4);
        let cfg = RecoveryConfig::default();
        let spec = FaultSpec {
            crash_rate: 0.05,
            max_crash_len: 2,
            ..FaultSpec::none()
        };
        let out = run_with_checkpointed_recovery(
            &wl,
            &OfflineOptimal,
            mp,
            7,
            Some(Arc::new(FaultPlan::new(spec, 21))),
            &cfg,
            &CheckpointConfig::every(2),
        );
        assert!(!out.gave_up, "seeded crashes should be survivable");
        assert!(out.recovery.delivered_all);
        assert!(out.recovery.fault_stats.conserved());
    }

    #[test]
    fn permanent_crash_gives_up_at_max_rollbacks() {
        struct AlwaysDead;
        impl DeliveryHook for AlwaysDead {
            fn crashed(&self, _superstep: u64, pid: Pid) -> bool {
                pid == 0
            }
        }
        let wl = workload::uniform_random(8, 2, 3);
        let out = run_with_checkpointed_recovery(
            &wl,
            &OfflineOptimal,
            params(8, 2),
            1,
            Some(Arc::new(AlwaysDead)),
            &RecoveryConfig::default(),
            &CheckpointConfig {
                interval: 1,
                charge_state_io: true,
                max_rollbacks: 3,
            },
        );
        assert!(out.gave_up);
        assert_eq!(out.rollbacks, 3);
        assert!(out.recovery.fault_stats.conserved());
    }

    #[test]
    fn buddy_is_half_the_machine_away() {
        assert_eq!(buddy(0, 8), 4);
        assert_eq!(buddy(5, 8), 1);
        assert_eq!(buddy(2, 3), 0);
    }
}
