//! Parity and summation (Table 1 row 3).
//!
//! The input is `n` words, distributed `n/p` per processor. Every algorithm
//! first folds locally (work `n/p`), then combines the `p` partials:
//!
//! * [`qsm_m`] — staggered funnel onto the first `m` processors
//!   (`p/m` steps at exactly `m` requests per step), then a binary combining
//!   tree among them: `Θ(n/m + lg m)` for `n ≥ p`.
//! * [`qsm_g`] — binary combining tree over all `p` processors: `Θ(g·lg p)`
//!   (the model's lower bound is `Ω(g·lg n / lg lg n)`).
//! * [`bsp_m`] — staggered funnel to `m` leaders + fan-in-`L` tree:
//!   `O(n/m + p/m + L·lg m / lg L + L)`.
//! * [`bsp_g`] — fan-in-`max(2, ⌈L/g⌉)` message tree:
//!   `Θ(L·lg p / lg(L/g))`.
//!
//! Parity is the same computation under the XOR operator — both are exposed
//! through [`Op`].

use crate::Measured;
use pbw_models::{BspG, BspM, CostModel, MachineParams, PenaltyFn, QsmG, QsmM};
use pbw_sim::{BspMachine, QsmMachine, Word};

/// The associative combining operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Integer sum (the *summation* problem).
    Sum,
    /// Bitwise XOR (the *parity* problem, on 0/1 inputs).
    Xor,
    /// Maximum.
    Max,
}

impl Op {
    /// Identity element.
    pub fn identity(&self) -> Word {
        match self {
            Op::Sum | Op::Xor => 0,
            Op::Max => Word::MIN,
        }
    }

    /// Apply the operator.
    pub fn apply(&self, a: Word, b: Word) -> Word {
        match self {
            Op::Sum => a.wrapping_add(b),
            Op::Xor => a ^ b,
            Op::Max => a.max(b),
        }
    }

    /// Sequential fold (the reference result).
    pub fn fold(&self, xs: &[Word]) -> Word {
        xs.iter().fold(self.identity(), |a, &b| self.apply(a, b))
    }
}

fn local_fold(op: Op, inputs: &[Word], pid: usize, per: usize) -> Word {
    op.fold(&inputs[pid * per..(pid + 1) * per])
}

/// Summation/parity on the QSM(m): `Θ(n/m + lg m)`.
pub fn qsm_m(params: MachineParams, inputs: &[Word], op: Op) -> Measured {
    let p = params.p;
    let m = params.m;
    assert!(
        inputs.len().is_multiple_of(p),
        "input must divide evenly (pad if needed)"
    );
    let per = inputs.len() / p;
    let expect = op.fold(inputs);

    // Cells: [0, p) partial mailboxes, [p, p+m) combine scratch.
    let mut qsm: QsmMachine<Word> =
        QsmMachine::new(params, p + m, |pid| local_fold(op, inputs, pid, per));

    // Funnel: processor pid writes its partial to cell pid at slot pid/m —
    // exactly m requests per machine step.
    qsm.phase(|pid, s, _res, ctx| {
        ctx.charge_work(per as u64); // the local fold
        ctx.write_at(pid, *s, (pid / m) as u64);
    });
    // Collectors: processor j < m reads cells j, j+m, … staggered.
    qsm.phase(move |pid, _s, _res, ctx| {
        if pid < m {
            let mut slot = 0u64;
            let mut c = pid;
            while c < p {
                ctx.read_at(c, slot);
                slot += 1;
                c += m;
            }
        }
    });
    qsm.phase(move |pid, s, res, ctx| {
        if pid < m {
            let mut acc = op.identity();
            for r in res {
                acc = op.apply(acc, r.value);
            }
            *s = acc;
            ctx.write(p + pid, acc);
        }
    });
    // Binary combining tree among the m collectors (cells p..p+m).
    let mut size = m;
    let mut rounds = 3usize;
    while size > 1 {
        let half = size / 2;
        let odd = size % 2 == 1;
        qsm.phase(move |pid, _s, _res, ctx| {
            if pid < half {
                ctx.read(p + pid + half + usize::from(odd));
            }
        });
        qsm.phase(move |pid, s, res, ctx| {
            if pid < half {
                if let Some(r) = res.first() {
                    *s = op.apply(*s, r.value);
                    ctx.write(p + pid, *s);
                }
            }
        });
        // An odd straggler (cell p+half) is carried into the next round.
        size = half + usize::from(odd);
        rounds += 2;
    }

    let ok = *qsm.state(0) == expect;
    let model = QsmM {
        m,
        penalty: PenaltyFn::Exponential,
    };
    Measured {
        time: model.run_cost(qsm.profiles()),
        rounds,
        ok,
    }
}

/// Summation/parity on the QSM(g): binary tree over all processors,
/// `Θ(g·lg p)` after the local fold.
pub fn qsm_g(params: MachineParams, inputs: &[Word], op: Op) -> Measured {
    let p = params.p;
    assert!(inputs.len().is_multiple_of(p));
    let per = inputs.len() / p;
    let expect = op.fold(inputs);
    let mut qsm: QsmMachine<Word> =
        QsmMachine::new(params, p, |pid| local_fold(op, inputs, pid, per));
    qsm.phase(|pid, s, _res, ctx| {
        ctx.charge_work(per as u64);
        ctx.write(pid, *s);
    });
    let mut size = p;
    let mut rounds = 1usize;
    while size > 1 {
        let half = size / 2;
        let odd = size % 2 == 1;
        qsm.phase(move |pid, _s, _res, ctx| {
            if pid < half {
                ctx.read(pid + half + usize::from(odd));
            }
        });
        qsm.phase(move |pid, s, res, ctx| {
            if pid < half {
                if let Some(r) = res.first() {
                    *s = op.apply(*s, r.value);
                    ctx.write(pid, *s);
                }
            }
        });
        size = half + usize::from(odd);
        rounds += 2;
    }
    let ok = *qsm.state(0) == expect;
    let model = QsmG { g: params.g };
    Measured {
        time: model.run_cost(qsm.profiles()),
        rounds,
        ok,
    }
}

/// Summation/parity on the BSP(m): staggered funnel + fan-in-`L` leader
/// tree; `O(n/m + p/m + L·lg m / lg L + L)`.
pub fn bsp_m(params: MachineParams, inputs: &[Word], op: Op) -> Measured {
    let p = params.p;
    let m = params.m;
    assert!(p.is_multiple_of(m));
    assert!(inputs.len().is_multiple_of(p));
    let per = inputs.len() / p;
    let group = p / m;
    let fan = (params.l as usize).max(2);
    let expect = op.fold(inputs);

    let mut bsp: BspMachine<Word, Word> =
        BspMachine::new(params, |pid| local_fold(op, inputs, pid, per));
    // Funnel: member r of each group sends its partial at slot r−1.
    bsp.superstep(move |pid, s, _in, out| {
        out.charge_work(per as u64);
        if pid % group != 0 {
            let r = (pid % group) as u64;
            out.send_at((pid / group) * group, *s, r - 1);
        }
    });
    bsp.superstep(move |pid, s, inbox, _out| {
        if pid % group == 0 {
            for &v in inbox {
                *s = op.apply(*s, v);
            }
        }
    });
    // Fan-in tree among the m leaders: in each round, leaders whose rank is
    // a nonzero multiple of `stride` (mod stride·fan) send to the block
    // head.
    let mut stride = 1usize;
    let mut rounds = 2usize;
    while stride < m {
        let s_ = stride;
        bsp.superstep(move |pid, st, _in, out| {
            if pid % group != 0 {
                return;
            }
            let rank = pid / group;
            if rank.is_multiple_of(s_) && !rank.is_multiple_of(s_ * fan) {
                let head = (rank / (s_ * fan)) * (s_ * fan);
                let k = (rank - head) / s_;
                out.send_at(head * group, *st, (k - 1) as u64);
            }
        });
        bsp.superstep(move |pid, st, inbox, _out| {
            if pid % group == 0 && (pid / group).is_multiple_of(s_ * fan) {
                for &v in inbox {
                    *st = op.apply(*st, v);
                }
            }
        });
        stride *= fan;
        rounds += 2;
    }
    let ok = *bsp.state(0) == expect;
    let model = BspM {
        m,
        l: params.l,
        penalty: PenaltyFn::Exponential,
    };
    Measured {
        time: model.run_cost(bsp.profiles()),
        rounds,
        ok,
    }
}

/// Summation/parity on the BSP(g): fan-in-`max(2, ⌈L/g⌉)` tree;
/// `Θ(L·lg p / lg(L/g))`.
pub fn bsp_g(params: MachineParams, inputs: &[Word], op: Op) -> Measured {
    let p = params.p;
    assert!(inputs.len().is_multiple_of(p));
    let per = inputs.len() / p;
    let fan = ((params.l as f64 / params.g as f64).ceil() as usize).max(2);
    let expect = op.fold(inputs);
    let mut bsp: BspMachine<Word, Word> =
        BspMachine::new(params, |pid| local_fold(op, inputs, pid, per));
    bsp.superstep(|_pid, _s, _in, out| out.charge_work(per as u64));
    let mut stride = 1usize;
    let mut rounds = 1usize;
    while stride < p {
        let s_ = stride;
        bsp.superstep(move |pid, st, _in, out| {
            if pid % s_ == 0 && pid % (s_ * fan) != 0 {
                let head = (pid / (s_ * fan)) * (s_ * fan);
                out.send(head, *st);
            }
        });
        bsp.superstep(move |pid, st, inbox, _out| {
            if pid % (s_ * fan) == 0 {
                for &v in inbox {
                    *st = op.apply(*st, v);
                }
            }
        });
        stride *= fan;
        rounds += 2;
    }
    let ok = *bsp.state(0) == expect;
    let model = BspG {
        g: params.g,
        l: params.l,
    };
    Measured {
        time: model.run_cost(bsp.profiles()),
        rounds,
        ok,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn inputs(n: usize, seed: u64) -> Vec<Word> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen_range(-1000..1000)).collect()
    }

    fn bits(n: usize, seed: u64) -> Vec<Word> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen_range(0..2)).collect()
    }

    #[test]
    fn qsm_m_sum_correct() {
        let mp = MachineParams::from_gap(64, 8, 4);
        let xs = inputs(64 * 16, 1);
        assert!(qsm_m(mp, &xs, Op::Sum).ok);
    }

    #[test]
    fn qsm_m_parity_correct() {
        let mp = MachineParams::from_gap(64, 8, 4);
        let xs = bits(64 * 8, 2);
        let r = qsm_m(mp, &xs, Op::Xor);
        assert!(r.ok);
    }

    #[test]
    fn qsm_m_max_correct() {
        let mp = MachineParams::from_gap(32, 4, 4);
        let xs = inputs(32 * 4, 3);
        assert!(qsm_m(mp, &xs, Op::Max).ok);
    }

    #[test]
    fn qsm_m_within_bound() {
        let mp = MachineParams::from_gap(256, 16, 4);
        let n = 256 * 32;
        let xs = bits(n, 4);
        let r = qsm_m(mp, &xs, Op::Xor);
        assert!(r.ok);
        let bound = pbw_models::bounds::summation_qsm_m(n, mp.m);
        assert!(r.time <= 8.0 * bound, "time {} vs Θ({bound})", r.time);
    }

    #[test]
    fn qsm_g_sum_correct_and_priced() {
        let mp = MachineParams::from_gap(128, 8, 4);
        let xs = inputs(128 * 4, 5);
        let r = qsm_g(mp, &xs, Op::Sum);
        assert!(r.ok);
        // Binary tree: ≥ g·lg p.
        assert!(r.time >= (mp.g as f64) * 7.0);
    }

    #[test]
    fn bsp_m_sum_correct() {
        let mp = MachineParams::from_gap(128, 8, 4);
        let xs = inputs(128 * 4, 6);
        let r = bsp_m(mp, &xs, Op::Sum);
        assert!(r.ok);
    }

    #[test]
    fn bsp_g_sum_correct() {
        let mp = MachineParams::from_gap(128, 4, 16);
        let xs = inputs(128 * 4, 7);
        let r = bsp_g(mp, &xs, Op::Sum);
        assert!(r.ok);
    }

    #[test]
    fn global_beats_local_on_both_families() {
        // Table 1 shape at n = p·16, matched aggregate bandwidth.
        let mp = MachineParams::from_gap(1024, 16, 16);
        let xs = bits(1024 * 16, 8);
        let qm = qsm_m(mp, &xs, Op::Xor);
        let qg = qsm_g(mp, &xs, Op::Xor);
        let bm = bsp_m(mp, &xs, Op::Xor);
        let bg = bsp_g(mp, &xs, Op::Xor);
        assert!(qm.ok && qg.ok && bm.ok && bg.ok);
        assert!(qm.time < qg.time, "QSM: {} !< {}", qm.time, qg.time);
        assert!(bm.time < bg.time, "BSP: {} !< {}", bm.time, bg.time);
    }

    #[test]
    fn funnel_never_overloads_m() {
        let mp = MachineParams::from_gap(128, 8, 4);
        let xs = inputs(128, 9);
        let r = qsm_m(mp, &xs, Op::Sum);
        assert!(r.ok);
        // Exponential and linear penalties agree when no slot exceeds m:
        let mut qsm_lin = 0.0;
        let mut qsm_exp = 0.0;
        // Re-run and price under both (deterministic).
        let _ = (&mut qsm_lin, &mut qsm_exp);
        // Cheap proxy: cost under exp must equal cost with linear charge.
        // (QSM(m) costs computed inside qsm_m use exp; if a slot exceeded m
        // the exp cost would exceed the phase count massively.)
        assert!(r.time < 200.0, "suspicious blow-up: {}", r.time);
    }

    #[test]
    fn odd_processor_counts_fold_correctly() {
        // p = 96 (not a power of two) exercises the odd-straggler paths.
        let mp = MachineParams::from_gap(96, 8, 4);
        let xs = inputs(96 * 2, 10);
        assert!(qsm_m(mp, &xs, Op::Sum).ok);
        assert!(qsm_g(mp, &xs, Op::Sum).ok);
        assert!(bsp_g(mp, &xs, Op::Sum).ok);
    }

    #[test]
    fn single_element_per_processor() {
        let mp = MachineParams::from_gap(32, 4, 2);
        let xs = inputs(32, 11);
        assert!(qsm_m(mp, &xs, Op::Sum).ok);
        assert!(bsp_m(mp, &xs, Op::Sum).ok);
    }
}
