//! Collective communication on the BSP(m): the total-exchange family.
//!
//! Section 3 singles out *total exchange* (all-to-all personalized
//! communication) as the primitive behind matrix transposition,
//! two-dimensional FFT, HPF array remapping, shuffle permutations and
//! h-relation routing — and notes that this paper, unlike prior work,
//! treats it on an abstract bandwidth-limited model and in the general
//! *unbalanced* form. These collectives are thin, verified compositions of
//! the Section 6 machinery:
//!
//! * [`total_exchange`] — the balanced case: `p(p−1)` unit messages routed
//!   through the offline wrap-around schedule in exactly
//!   `max(⌈p(p−1)/m⌉, p−1)` steps.
//! * [`matrix_transpose`] — a `p·b × p·b` element matrix, row-blocks
//!   distributed one per processor; block `(i, j)` travels as one
//!   `b²`-flit contiguous message (the flit scheduler of §6.1).
//! * [`gather`] — everyone sends one value to processor 0 (`ȳ = p−1`
//!   dominates: bandwidth is *not* the bottleneck, matching the paper's
//!   one-to-all observation in reverse).

use crate::Measured;
use pbw_core::exec::run_schedule_on_bsp;
use pbw_core::flits::UnbalancedFlitSend;
use pbw_core::schedulers::{OfflineOptimal, Scheduler};
use pbw_core::workload::{self, Msg, Workload};
use pbw_models::{div_ceil, MachineParams};
use pbw_sim::{BspMachine, CostSummary};

/// Balanced total exchange: every processor sends one unit message to every
/// other, scheduled offline-optimally and executed on the engine.
pub fn total_exchange(params: MachineParams) -> (Measured, CostSummary) {
    let wl = workload::total_exchange(params.p);
    let sched = OfflineOptimal.schedule(&wl, params.m, 0);
    let exec = run_schedule_on_bsp(&wl, &sched, params);
    // Delivery check: every processor received exactly p−1 flits, one from
    // each other processor.
    let ok = exec.delivered.iter().enumerate().all(|(pid, msgs)| {
        let mut sources: Vec<u32> = msgs.iter().map(|&(src, _, _)| src).collect();
        sources.sort_unstable();
        sources.dedup();
        sources.len() == params.p - 1 && !sources.contains(&(pid as u32))
    });
    let n = wl.n_flits();
    let opt = div_ceil(n, params.m as u64).max(wl.xbar());
    let measured = Measured {
        time: exec.summary.bsp_m_exp,
        rounds: 1,
        ok,
    };
    debug_assert!(measured.time >= opt as f64);
    (measured, exec.summary)
}

/// Outcome of the distributed matrix transpose.
#[derive(Debug, Clone)]
pub struct TransposeOutcome {
    /// Measured run (BSP(m, exp) cost of the communication superstep).
    pub measured: Measured,
    /// Cost under every model.
    pub summary: CostSummary,
    /// Total flits moved (`(p−1)·p·b²` — diagonal blocks stay local).
    pub flits: u64,
}

/// Transpose a `(p·b) × (p·b)` matrix of which processor `i` holds rows
/// `[i·b, (i+1)·b)`. Block `(i, j)` (the `b × b` sub-matrix at row-block
/// `i`, column-block `j`) must move to processor `j` as one contiguous
/// `b²`-flit message.
///
/// The workload is perfectly balanced (`x_i = y_i = (p−1)·b²`), so this
/// also exercises the flit scheduler in its easiest regime; the returned
/// costs show the `n/m = p(p−1)b²/m` communication bound.
pub fn matrix_transpose(params: MachineParams, b: u64, seed: u64) -> TransposeOutcome {
    let p = params.p;
    // One message per off-diagonal (i, j) pair, length b².
    let wl = Workload::new(
        (0..p)
            .map(|i| {
                (0..p)
                    .filter(|&j| j != i)
                    .map(|j| Msg {
                        dest: j,
                        len: b * b,
                    })
                    .collect()
            })
            .collect(),
    );
    let sched = UnbalancedFlitSend::new(0.25).schedule(&wl, params.m, seed);
    let exec = run_schedule_on_bsp(&wl, &sched, params);
    // Delivery check: processor j received exactly (p−1)·b² flits, b² from
    // each other source (the engine already verified totals; check the
    // per-source split).
    let ok = exec.delivered.iter().all(|msgs| {
        let mut per_src = std::collections::BTreeMap::new();
        for &(src, _, _) in msgs {
            *per_src.entry(src).or_insert(0u64) += 1;
        }
        per_src.len() == p - 1 && per_src.values().all(|&c| c == b * b)
    });
    TransposeOutcome {
        measured: Measured {
            time: exec.summary.bsp_m_exp,
            rounds: 1,
            ok,
        },
        summary: exec.summary,
        flits: wl.n_flits(),
    }
}

/// Gather: every processor sends one value to processor 0. The receive
/// side (`ȳ = p−1`) dominates any `m ≥ 1` — the mirror image of
/// one-to-all.
pub fn gather(params: MachineParams) -> (Measured, CostSummary) {
    let p = params.p;
    let mut machine: BspMachine<u64, u64> = BspMachine::new(params, |_| 0);
    machine.superstep(|pid, _s, _in, out| {
        if pid != 0 {
            // Stagger m sends per machine step.
            out.send_at(0, 1000 + pid as u64, ((pid - 1) / params.m) as u64);
        }
    });
    machine.superstep(|pid, s, inbox, _out| {
        if pid == 0 {
            *s = inbox.iter().sum();
        }
    });
    let expect: u64 = (1..p as u64).map(|i| 1000 + i).sum();
    let ok = *machine.state(0) == expect;
    let summary = CostSummary::price(params, machine.profiles());
    (
        Measured {
            time: summary.bsp_m_exp,
            rounds: 2,
            ok,
        },
        summary,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_exchange_delivers_and_is_optimal() {
        let mp = MachineParams::from_gap(64, 8, 4);
        let (meas, summary) = total_exchange(mp);
        assert!(meas.ok);
        // n = 64·63, m = 8 → n/m = 504; cost should be within rounding.
        let nm = (64.0 * 63.0) / 8.0;
        assert!(
            meas.time >= nm && meas.time <= nm + mp.l as f64 + 2.0,
            "{}",
            meas.time
        );
        // Locally limited: g·h = 8·63.
        assert!((summary.bsp_g - 8.0 * 63.0).abs() < 1e-9);
    }

    #[test]
    fn total_exchange_separation_is_bounded_by_g() {
        // Balanced total exchange has NO imbalance: the two models agree up
        // to constants (h = p−1, n/m = g(p−1)) — the paper's point that the
        // advantage needs imbalance.
        let mp = MachineParams::from_gap(64, 8, 4);
        let (_, summary) = total_exchange(mp);
        let sep = summary.bsp_separation();
        assert!(
            sep <= 1.05,
            "balanced exchange should show no separation, got {sep}"
        );
    }

    #[test]
    fn transpose_moves_every_block() {
        let mp = MachineParams::from_gap(16, 4, 4);
        let out = matrix_transpose(mp, 3, 1);
        assert!(out.measured.ok);
        assert_eq!(out.flits, 16 * 15 * 9);
    }

    #[test]
    fn transpose_cost_near_n_over_m() {
        let mp = MachineParams::from_gap(32, 8, 4);
        let out = matrix_transpose(mp, 4, 2);
        assert!(out.measured.ok);
        let nm = out.flits as f64 / mp.m as f64;
        assert!(
            out.measured.time <= 1.6 * nm,
            "{} vs n/m {}",
            out.measured.time,
            nm
        );
    }

    #[test]
    fn gather_is_receive_bound() {
        let mp = MachineParams::from_gap(128, 8, 4);
        let (meas, summary) = gather(mp);
        assert!(meas.ok);
        // h = p−1 dominates: BSP(m) ≈ p−1 (+L); BSP(g) ≈ g(p−1).
        assert!(meas.time >= 127.0);
        assert!(meas.time <= 127.0 + 3.0 * mp.l as f64);
        assert!(summary.bsp_g >= 8.0 * 127.0);
    }

    #[test]
    fn gather_never_overloads() {
        let mp = MachineParams::from_gap(64, 16, 2);
        let (_, summary) = gather(mp);
        assert!((summary.bsp_m_exp - summary.bsp_m_linear).abs() < 1e-9);
    }
}
