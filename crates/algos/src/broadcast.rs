//! Broadcasting one value to all `p` processors (Table 1 row 2, Theorem 4.1
//! and the Section 4.2 non-receipt algorithm).
//!
//! Four executable algorithms, each shaped for its model's cost metric:
//!
//! * [`qsm_m`] — processor-doubling fills `m` cells in `Θ(lg m)` phases,
//!   then the remaining processors read cells `pid mod m` with staggered
//!   injections: `Θ(lg m + p/m)`.
//! * [`qsm_g`] — read-side fan-out-`g` tree (`κ = g` per phase, `g·h = g`):
//!   `Θ(g·lg p / lg g)`.
//! * [`bsp_m`] — fan-out-`L` tree among `m` group leaders, then a staggered
//!   group fan-out: `O(L·lg m / lg L + p/m + L)`.
//! * [`bsp_g`] — fan-out-`⌈L/g⌉` message tree: `Θ(L·lg p / lg(L/g))`
//!   (matching the Theorem 4.1 lower bound up to constants).
//! * [`ternary_nonreceipt`] — the Section 4.2 single-bit broadcast that
//!   extracts information from *non-receipt*: when `L ≤ g` it finishes in
//!   exactly `⌈lg₃ p⌉` supersteps of `h = 1`, i.e. time `g·⌈lg₃ p⌉`,
//!   beating any receive-only algorithm.

use crate::Measured;
use pbw_models::{BspG, BspM, CostModel, MachineParams, PenaltyFn, QsmG, QsmM};
use pbw_sim::{BspMachine, Outbox, QsmMachine, Word};

const MAGIC: Word = 4242;

/// Broadcast on the QSM(m): `Θ(lg m + p/m)`.
pub fn qsm_m(params: MachineParams) -> Measured {
    let m = params.m;
    // State: the value, once known.
    let mut qsm: QsmMachine<Option<Word>> =
        QsmMachine::new(params, m, |pid| if pid == 0 { Some(MAGIC) } else { None });

    // Seed: processor 0 publishes into cell 0 (cells double as the
    // per-processor mailboxes the final fan-out reads).
    qsm.phase(|pid, s, _res, ctx| {
        if pid == 0 {
            if let Some(v) = *s {
                ctx.write(0, v);
            }
        }
    });

    // Doubling among the first m processors: round r: knowers [0, 2^r)
    // write cells [2^r, 2^{r+1}); owners read their own cell next phase.
    let mut known = 1usize;
    let mut rounds = 1usize;
    while known < m {
        let k = known;
        qsm.phase(move |pid, s, _res, ctx| {
            if pid < k {
                if let Some(v) = *s {
                    let target = pid + k;
                    if target < m {
                        ctx.write(target, v);
                    }
                }
            }
        });
        qsm.phase(move |pid, s, _res, ctx| {
            if pid >= k && pid < (2 * k).min(m) && s.is_none() {
                ctx.read(pid);
            }
        });
        qsm.phase(move |pid, s, res, _ctx| {
            if pid >= k && pid < (2 * k).min(m) {
                if let Some(r) = res.first() {
                    *s = Some(r.value);
                }
            }
        });
        known *= 2;
        rounds += 1;
    }

    // Distribution: processors m..p read cell (pid mod m), staggered so each
    // machine step carries exactly m requests and each cell queues p/m
    // readers over p/m distinct steps.
    qsm.phase(move |pid, _s, _res, ctx| {
        if pid >= m {
            ctx.read_at(pid % m, (pid / m) as u64);
        }
    });
    qsm.phase(move |pid, s, res, _ctx| {
        if pid >= m {
            if let Some(r) = res.first() {
                *s = Some(r.value);
            }
        }
    });

    let ok = qsm.states().iter().all(|s| *s == Some(MAGIC));
    let model = QsmM {
        m,
        penalty: PenaltyFn::Exponential,
    };
    Measured {
        time: model.run_cost(qsm.profiles()),
        rounds: rounds + 2,
        ok,
    }
}

/// Broadcast on the QSM(g): read-side fan-out-`g` tree,
/// `Θ(g·lg p / lg g)`.
pub fn qsm_g(params: MachineParams) -> Measured {
    let p = params.p;
    let f = (params.g as usize).max(2);
    let mut qsm: QsmMachine<Option<Word>> =
        QsmMachine::new(params, p, |pid| if pid == 0 { Some(MAGIC) } else { None });
    // Cell i is processor i's mailbox; proc 0 seeds its own.
    qsm.phase(|pid, s, _res, ctx| {
        if pid == 0 {
            if let Some(v) = *s {
                ctx.write(0, v);
            }
        }
    });
    let mut known = 1usize;
    let mut rounds = 1usize;
    while known < p {
        let k = known;
        let upper = (k * (f + 1)).min(p); // this round informs [k, k(f+1))
                                          // Newcomers read a parent's cell: κ ≤ f readers per parent cell.
        qsm.phase(move |pid, _s, _res, ctx| {
            if pid >= k && pid < upper {
                ctx.read((pid - k) % k);
            }
        });
        // Newcomers learn the value and publish to their own cell.
        qsm.phase(move |pid, s, res, ctx| {
            if pid >= k && pid < upper {
                if let Some(r) = res.first() {
                    *s = Some(r.value);
                    ctx.write(pid, r.value);
                }
            }
        });
        known = upper;
        rounds += 1;
    }
    let ok = qsm.states().iter().all(|s| *s == Some(MAGIC));
    let model = QsmG { g: params.g };
    Measured {
        time: model.run_cost(qsm.profiles()),
        rounds,
        ok,
    }
}

/// Broadcast on the BSP(m): leader tree (fan-out `L`) + staggered group
/// fan-out; `O(L·lg m / lg L + p/m + L)`.
pub fn bsp_m(params: MachineParams) -> Measured {
    let p = params.p;
    let m = params.m;
    assert!(p.is_multiple_of(m), "m must divide p");
    let group = p / m;
    let f = (params.l as usize).max(2);
    let mut bsp: BspMachine<Option<Word>, Word> =
        BspMachine::new(params, |pid| if pid == 0 { Some(MAGIC) } else { None });

    // Tree among leaders (processors g·group): known leader ranks double by
    // factor f each round.
    let mut known = 1usize; // leader ranks [0, known) hold the value
    let mut rounds = 0usize;
    while known < m {
        let k = known;
        let upper = (k * f).min(m);
        bsp.superstep(move |pid, s, _in, out| {
            if pid % group == 0 {
                let rank = pid / group;
                if rank < k {
                    if let Some(v) = *s {
                        // Send to ranks rank + k, rank + 2k, … < upper,
                        // staggered one injection slot apart.
                        let mut slot = 0u64;
                        let mut child = rank + k;
                        while child < upper {
                            out.send_at(child * group, v, slot);
                            slot += 1;
                            child += k;
                        }
                    }
                }
            }
        });
        bsp.superstep(move |pid, s, inbox, _out| {
            if pid % group == 0 && s.is_none() {
                if let Some(&v) = inbox.first() {
                    *s = Some(v);
                }
            }
        });
        known = upper;
        rounds += 1;
    }

    // Leaders fan out to their group, one member per slot (machine-wide m
    // messages per slot).
    bsp.superstep(move |pid, s, _in, out| {
        if pid % group == 0 {
            if let Some(v) = *s {
                for r in 1..group {
                    out.send_at(pid + r, v, (r - 1) as u64);
                }
            }
        }
    });
    bsp.superstep(|_pid, s, inbox, _out| {
        if s.is_none() {
            if let Some(&v) = inbox.first() {
                *s = Some(v);
            }
        }
    });

    let ok = bsp.states().iter().all(|s| *s == Some(MAGIC));
    let model = BspM {
        m,
        l: params.l,
        penalty: PenaltyFn::Exponential,
    };
    Measured {
        time: model.run_cost(bsp.profiles()),
        rounds: rounds + 1,
        ok,
    }
}

/// Broadcast on the BSP(g): fan-out-`max(2, ⌈L/g⌉)` message tree,
/// `Θ(L·lg p / lg(L/g))`.
pub fn bsp_g(params: MachineParams) -> Measured {
    let p = params.p;
    let f = ((params.l as f64 / params.g as f64).ceil() as usize).max(2);
    let mut bsp: BspMachine<Option<Word>, Word> =
        BspMachine::new(params, |pid| if pid == 0 { Some(MAGIC) } else { None });
    let mut known = 1usize;
    let mut rounds = 0usize;
    while known < p {
        let k = known;
        let upper = (k * (f + 1)).min(p);
        let send = move |pid: usize, s: &mut Option<Word>, _in: &[Word], out: &mut Outbox<Word>| {
            if pid < k {
                if let Some(v) = *s {
                    let mut child = pid + k;
                    while child < upper {
                        out.send(child, v);
                        child += k;
                    }
                }
            }
        };
        let absorb =
            move |pid: usize, s: &mut Option<Word>, inbox: &[Word], _out: &mut Outbox<Word>| {
                if pid >= k && s.is_none() {
                    if let Some(&v) = inbox.first() {
                        *s = Some(v);
                    }
                }
            };
        // Early rounds are the sparse regime the active-set path exists
        // for: only `k` senders out of `p`, and the absorb superstep's
        // frontier is discovered from the retained inboxes alone. Both
        // splits use the measured crossover (`pbw_sim::density`), not a
        // hardcoded ratio.
        if pbw_sim::density::crossover(k, p) {
            let active: Vec<usize> = (0..k).collect();
            bsp.superstep_active(&active, send);
        } else {
            bsp.superstep(send);
        }
        if pbw_sim::density::crossover(upper - k, p) {
            bsp.superstep_active(&[], absorb);
        } else {
            bsp.superstep(absorb);
        }
        known = upper;
        rounds += 1;
    }
    let ok = bsp.states().iter().all(|s| *s == Some(MAGIC));
    let model = BspG {
        g: params.g,
        l: params.l,
    };
    Measured {
        time: model.run_cost(bsp.profiles()),
        rounds,
        ok,
    }
}

/// The Section 4.2 single-bit broadcast on the BSP(g), exploiting
/// non-receipt: after round `i`, processors `0..3^i` know the bit; total
/// `⌈lg₃ p⌉` supersteps of `h = 1`.
///
/// Returns `(Measured, recovered_bits_ok)` — the run is repeated for both
/// bit values to demonstrate that the *same* protocol transfers either.
pub fn ternary_nonreceipt(params: MachineParams, bit: bool) -> Measured {
    let p = params.p;
    #[derive(Clone, Copy)]
    struct St {
        knows: bool,
        bit: bool,
    }
    let mut bsp: BspMachine<St, ()> = BspMachine::new(params, |pid| St {
        knows: pid == 0,
        bit: pid == 0 && bit,
    });

    // One superstep per round: processors first decode the previous
    // round's (non-)receipt, then the knowers send this round's signal —
    // so each superstep has h = 1 and costs max(g, L), and the whole
    // protocol takes ⌈lg₃ p⌉ supersteps plus one final decode.
    let decode = move |k_prev: usize, pid: usize, s: &mut St, inbox_len: usize| {
        if k_prev > 0 && pid >= k_prev && pid < 3 * k_prev && !s.knows {
            let got = inbox_len > 0;
            if pid < 2 * k_prev {
                // bit 0 ⇒ sender pid−k would have sent here; silence ⇒ 1.
                s.bit = !got;
            } else {
                // bit 1 ⇒ sender pid−2k would have sent here.
                s.bit = got;
            }
            s.knows = true;
        }
    };
    let mut frontier = 1usize; // 3^{i-1}
    let mut prev = 0usize;
    let mut rounds = 0usize;
    while frontier < p {
        let k = frontier;
        let pk = prev;
        bsp.superstep(move |pid, s, inbox, out| {
            decode(pk, pid, s, inbox.len());
            // Knowing processors j < k send one (empty) message: to j+k if
            // the bit is 0, to j+2k if the bit is 1.
            if pid < k && s.knows {
                let target = if s.bit { pid + 2 * k } else { pid + k };
                if target < p {
                    out.send(target, ());
                }
            }
        });
        prev = k;
        frontier *= 3;
        rounds += 1;
    }
    // Final decode for the last round's frontier.
    let pk = prev;
    if pk > 0 && pk < p {
        bsp.superstep(move |pid, s, inbox, _out| decode(pk, pid, s, inbox.len()));
    }
    let ok = bsp.states().iter().all(|s| s.knows && s.bit == bit);
    let model = BspG {
        g: params.g,
        l: params.l,
    };
    Measured {
        time: model.run_cost(bsp.profiles()),
        rounds,
        ok,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbw_models::bounds;

    fn params(p: usize, g: u64, l: u64) -> MachineParams {
        MachineParams::from_gap(p, g, l)
    }

    #[test]
    fn qsm_m_broadcast_correct_and_cheap() {
        let mp = params(256, 16, 4);
        let r = qsm_m(mp);
        assert!(r.ok);
        let bound = bounds::broadcast_qsm_m(mp.p, mp.m);
        assert!(r.time <= 6.0 * bound, "time {} vs Θ({bound})", r.time);
        assert!(r.time >= bound * 0.5);
    }

    #[test]
    fn qsm_g_broadcast_correct_and_matches_bound() {
        let mp = params(256, 4, 4);
        let r = qsm_g(mp);
        assert!(r.ok);
        let bound = bounds::broadcast_qsm_g(mp.p, mp.g);
        assert!(r.time <= 4.0 * bound, "time {} vs Θ({bound})", r.time);
    }

    #[test]
    fn bsp_m_broadcast_correct() {
        let mp = params(256, 16, 8);
        let r = bsp_m(mp);
        assert!(r.ok);
        let bound = bounds::broadcast_bsp_m(mp.p, mp.m, mp.l);
        assert!(r.time <= 6.0 * bound, "time {} vs {bound}", r.time);
    }

    #[test]
    fn bsp_g_broadcast_correct_and_above_lower_bound() {
        let mp = params(1024, 2, 32);
        let r = bsp_g(mp);
        assert!(r.ok);
        // Theorem 4.1: no deterministic algorithm beats
        // L·lg p / (2·lg(2L/g+1)).
        let lower = bounds::broadcast_bsp_g_lower(mp.p, mp.g, mp.l);
        assert!(
            r.time >= lower * 0.99,
            "measured {} below the Thm 4.1 bound {lower}",
            r.time
        );
        let upper = bounds::broadcast_bsp_g(mp.p, mp.g, mp.l);
        assert!(r.time <= 6.0 * upper);
    }

    #[test]
    fn ternary_broadcast_both_bits() {
        let mp = params(243, 27, 8); // L ≤ g: the non-receipt regime
        for bit in [false, true] {
            let r = ternary_nonreceipt(mp, bit);
            assert!(r.ok, "bit={bit}");
            // Exactly ⌈lg₃ 243⌉ = 5 rounds of cost max(g, L) = g, plus one
            // message-free final decode superstep of cost L.
            assert_eq!(r.rounds, 5);
            assert_eq!(r.time, (mp.g * 5 + mp.l) as f64);
        }
    }

    #[test]
    fn ternary_broadcast_non_power_of_three() {
        let mp = params(100, 10, 5);
        for bit in [false, true] {
            let r = ternary_nonreceipt(mp, bit);
            assert!(r.ok);
            assert_eq!(r.rounds as u64, pbw_models::ceil_log3(100));
        }
    }

    #[test]
    fn ternary_beats_receive_only_tree_when_l_le_g() {
        let mp = params(729, 27, 27);
        let ternary = ternary_nonreceipt(mp, true);
        let tree = bsp_g(mp);
        assert!(ternary.ok && tree.ok);
        assert!(
            ternary.time < tree.time,
            "ternary {} !< tree {}",
            ternary.time,
            tree.time
        );
    }

    #[test]
    fn global_beats_local_broadcast_shape() {
        // Table 1: QSM separation Θ(lg p / lg g) at m = p/g.
        let mp = params(4096, 8, 8);
        let gm = qsm_m(mp);
        let gg = qsm_g(mp);
        assert!(gm.ok && gg.ok);
        assert!(
            gg.time > gm.time,
            "QSM(g) {} !> QSM(m) {}",
            gg.time,
            gm.time
        );
    }

    #[test]
    fn broadcast_works_on_small_machines() {
        let mp = params(4, 2, 2);
        assert!(qsm_m(mp).ok);
        assert!(qsm_g(mp).ok);
        assert!(bsp_m(mp).ok);
        assert!(bsp_g(mp).ok);
        assert!(ternary_nonreceipt(mp, true).ok);
    }

    #[test]
    fn broadcast_single_processor() {
        let mp = params(1, 1, 1);
        assert!(qsm_m(mp).ok);
        assert!(bsp_g(mp).ok);
        assert!(ternary_nonreceipt(mp, false).ok);
    }
}
