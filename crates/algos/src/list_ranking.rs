//! List ranking (Table 1 row 4) via the paper's PRAM → QSM(m)/BSP(m)
//! conversion.
//!
//! Table 1's `O(lg m + n/m)` QSM(m) bound comes from the Section 4 "general
//! strategy": take a *work-optimal* EREW PRAM list-ranking algorithm with
//! `t(n) = O(lg n)` and `w(n) = O(n)` and convert it
//! (`O(n/m + t + w/m)`). We implement the classic randomized *random-mate
//! contraction*: in each round every live node flips a coin; a Heads node
//! whose successor is a live Tails node splices that successor out
//! (accumulating its weight), shrinking the list by a constant factor in
//! expectation. Spliced nodes are reinserted in reverse round order to
//! recover exact ranks.
//!
//! The whole algorithm runs on the `pbw-pram` engine in **EREW** mode — the
//! engine itself proves no concurrent access happens (each cell is touched
//! only by a node's unique predecessor) — and the engine's measured
//! `(t, w)` feed the conversion formulas. Per-round compaction of the live
//! set (a prefix-sum in a real machine) is charged explicitly at
//! `O(lg live)` time / `O(live)` work.

use crate::convert;
use crate::Measured;
use pbw_models::MachineParams;
use pbw_pram::{AccessMode, Pram};
use pbw_sim::Word;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A linked list as a successor array: `next[i]` is the successor of node
/// `i`, or `usize::MAX` for the tail.
#[derive(Debug, Clone)]
pub struct LinkedList {
    /// Successor of each node (`usize::MAX` = tail).
    pub next: Vec<usize>,
    /// The head node.
    pub head: usize,
}

/// A random list over `n` nodes (a uniformly random node order).
pub fn random_list(n: usize, seed: u64) -> LinkedList {
    let mut order: Vec<usize> = (0..n).collect();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        order.swap(i, j);
    }
    let mut next = vec![usize::MAX; n];
    for w in order.windows(2) {
        next[w[0]] = w[1];
    }
    LinkedList {
        next,
        head: order[0],
    }
}

/// Sequential reference: rank = distance to the tail (tail has rank 0).
pub fn sequential_ranks(list: &LinkedList) -> Vec<u64> {
    let n = list.next.len();
    // Walk once to find the order.
    let mut order = Vec::with_capacity(n);
    let mut cur = list.head;
    while cur != usize::MAX {
        order.push(cur);
        cur = list.next[cur];
    }
    assert_eq!(order.len(), n, "input is not a single list");
    let mut ranks = vec![0u64; n];
    for (i, &node) in order.iter().enumerate() {
        ranks[node] = (n - 1 - i) as u64;
    }
    ranks
}

/// Outcome of the PRAM-level contraction.
#[derive(Debug, Clone)]
pub struct PramRanking {
    /// Computed ranks.
    pub ranks: Vec<u64>,
    /// PRAM time (engine-measured + charged compaction scans).
    pub t: u64,
    /// PRAM work.
    pub w: u64,
    /// Contraction rounds used.
    pub rounds: usize,
    /// Whether the ranks match the sequential reference.
    pub ok: bool,
}

const NIL: Word = -1;

/// Run random-mate list ranking on the EREW PRAM engine.
pub fn pram_list_ranking(list: &LinkedList, seed: u64) -> PramRanking {
    let n = list.next.len();
    assert!(n >= 1);
    // Memory layout: next[n], w[n], coin[n], spliced_round[n] (−1 = never),
    // splice_succ[n], splice_w[n], rank[n].
    let (c_next, c_w, c_coin, c_round, c_succ, c_sw, c_rank) =
        (0, n, 2 * n, 3 * n, 4 * n, 5 * n, 6 * n);
    let mut pram = Pram::new(AccessMode::Erew, 7 * n);
    for i in 0..n {
        pram.mem_mut()[c_next + i] = if list.next[i] == usize::MAX {
            NIL
        } else {
            list.next[i] as Word
        };
        pram.mem_mut()[c_w + i] = 1; // distance to successor
        pram.mem_mut()[c_round + i] = NIL;
    }

    let tail = (0..n).find(|&i| list.next[i] == usize::MAX).unwrap();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    // Live = non-tail nodes not yet spliced out.
    let mut live: Vec<usize> = (0..n).filter(|&i| i != tail).collect();
    let mut round: Word = 0;
    let max_rounds = 12 * (64 - (n as u64).leading_zeros()) as usize + 16;

    // Contract until every live node points directly at the tail.
    while live.iter().any(|&i| pram.mem()[c_next + i] != tail as Word) {
        assert!(
            (round as usize) < max_rounds,
            "contraction failed to converge"
        );
        // Coins for this round (local randomness; written to memory so a
        // node's unique predecessor can read them — the only cross-node
        // access, which is why the EREW audit passes).
        let coins: Vec<Word> = (0..n).map(|_| rng.gen_range(0..2)).collect();
        {
            let live_now = live.clone();
            let coins = &coins;
            pram.step(live_now.len(), move |idx, ctx| {
                let i = live_now[idx];
                ctx.write(c_coin + i, coins[i]);
            });
        }
        // A Heads node whose successor j (≠ tail) is Tails splices j out.
        {
            let live_now = live.clone();
            let coins = &coins;
            let r = round;
            pram.step(live_now.len(), move |idx, ctx| {
                let i = live_now[idx];
                if coins[i] != 1 {
                    return; // Tails nodes read nothing this round
                }
                let j = ctx.read(c_next + i) as usize;
                if j == tail {
                    return;
                }
                let cj = ctx.read(c_coin + j);
                if cj != 0 {
                    return; // successor is Heads: it survives
                }
                let jn = ctx.read(c_next + j);
                let wi = ctx.read(c_w + i);
                let wj = ctx.read(c_w + j);
                ctx.write(c_round + j, r);
                ctx.write(c_succ + j, jn);
                ctx.write(c_sw + j, wj);
                ctx.write(c_w + i, wi + wj);
                ctx.write(c_next + i, jn);
            });
        }
        // Compact the live set (host-side; charged as a prefix-sum scan).
        let lg = (64 - (live.len().max(2) as u64).leading_zeros()) as u64;
        pram.charge_time(lg);
        pram.charge_work(live.len() as u64);
        live.retain(|&i| pram.mem()[c_round + i] == NIL);
        round += 1;
    }

    // Base ranks: survivors point directly at the tail, so rank = w; the
    // tail itself gets 0.
    let survivors: Vec<usize> = (0..n)
        .filter(|&i| i != tail && pram.mem()[c_round + i] == NIL)
        .collect();
    {
        let sv = survivors.clone();
        pram.step(sv.len(), move |idx, ctx| {
            let i = sv[idx];
            let w = ctx.read(c_w + i);
            ctx.write(c_rank + i, w);
        });
    }
    pram.step(1, move |_idx, ctx| ctx.write(c_rank + tail, 0));

    // Reinsert in reverse round order: rank[j] = splice_w[j] + rank[succ].
    for r in (0..round).rev() {
        let batch: Vec<usize> = (0..n).filter(|&j| pram.mem()[c_round + j] == r).collect();
        let lg = (64 - (batch.len().max(2) as u64).leading_zeros()) as u64;
        pram.charge_time(lg);
        pram.charge_work(batch.len() as u64);
        pram.step(batch.len(), move |idx, ctx| {
            let j = batch[idx];
            let succ = ctx.read(c_succ + j);
            let base = if succ == NIL {
                0
            } else {
                ctx.read(c_rank + succ as usize)
            };
            let wj = ctx.read(c_sw + j);
            ctx.write(c_rank + j, base + wj);
        });
    }

    let ranks: Vec<u64> = (0..n).map(|i| pram.mem()[c_rank + i] as u64).collect();
    let ok = ranks == sequential_ranks(list);
    PramRanking {
        ranks,
        t: pram.time(),
        w: pram.work(),
        rounds: round as usize,
        ok,
    }
}

/// List ranking converted to the globally-limited models (Table 1 row 4):
/// returns `(qsm_m, bsp_m)` measured times from the engine-metered PRAM run.
pub fn converted(params: MachineParams, n: usize, seed: u64) -> (Measured, Measured) {
    let list = random_list(n, seed);
    let run = pram_list_ranking(&list, seed ^ 0xABCD);
    let qsm = Measured {
        time: convert::qsm_m_time(n as u64, params.m, run.t, run.w),
        rounds: run.rounds,
        ok: run.ok,
    };
    let bsp = Measured {
        time: convert::bsp_m_time(n as u64, params.m, run.t, run.w, params.l),
        rounds: run.rounds,
        ok: run.ok,
    };
    (qsm, bsp)
}

// ---------------------------------------------------------------------------
// Ablation: direct pointer jumping on the BSP(m)
// ---------------------------------------------------------------------------

/// Messages of the pointer-jumping protocol.
#[derive(Debug, Clone, Copy)]
enum PjMsg {
    /// `(node, requester_node)` — asks the owner of `node` for its current
    /// (next, w).
    Ask { node: usize, requester: usize },
    /// `(requester_node, next_of_node, w_of_node)`.
    Reply {
        requester: usize,
        next: Word,
        w: Word,
    },
}

/// Per-processor state: the nodes it owns.
#[derive(Debug, Clone, Default)]
struct PjState {
    next: Vec<Word>, // NIL = done
    w: Vec<Word>,
}

/// **Ablation baseline**: direct pointer jumping on the BSP(m).
///
/// Table 1's `O(L·lg m + n/m)` bound comes from converting a
/// *work-optimal* PRAM algorithm; the naive alternative — each node halves
/// its distance every round by jumping over its successor — is simpler but
/// does `Θ(n lg n)` work, pricing at `Θ((n/m + L)·lg n)` on the BSP(m).
/// Implemented here as a real message protocol (requests staggered
/// wrap-around, replies staggered per responder). The measured ablation
/// finding (see tests and EXPERIMENTS.md): the conversion scales linearly
/// in `n` while pointer jumping carries the extra `lg n`, but the
/// conversion's engine-work constant means jumping still wins at small
/// `n` — a classic asymptotics-vs-constants tradeoff the harness reports
/// honestly.
pub fn bsp_m_pointer_jumping(params: MachineParams, list: &LinkedList) -> Measured {
    use pbw_models::{BspM, CostModel, PenaltyFn};
    use pbw_sim::BspMachine;

    let p = params.p;
    let m = params.m;
    let n = list.next.len();
    assert!(
        n.is_multiple_of(p),
        "nodes must divide evenly over processors"
    );
    let per = n / p;
    let owner = |node: usize| node / per;
    let t_wrap = pbw_models::div_ceil(n as u64, m as u64).max(per as u64);

    let mut bsp: BspMachine<PjState, PjMsg> = BspMachine::new(params, |pid| PjState {
        next: (0..per)
            .map(|k| {
                let nx = list.next[pid * per + k];
                if nx == usize::MAX {
                    NIL
                } else {
                    nx as Word
                }
            })
            .collect(),
        w: vec![1; per],
    });
    // The tail's weight is 0 (it is its own rank).
    let tail = (0..n).find(|&i| list.next[i] == usize::MAX).unwrap();
    bsp.states_mut()[owner(tail)].w[tail % per] = 0;

    let max_rounds = 2 * (64 - (n.max(2) as u64).leading_zeros()) as usize + 4;
    let mut rounds = 0usize;
    loop {
        // S1: every unfinished node asks the owner of its successor.
        bsp.superstep(move |pid, s, _in, out| {
            for k in 0..per {
                let nx = s.next[k];
                if nx != NIL {
                    let node = pid * per + k;
                    out.send_at(
                        owner(nx as usize),
                        PjMsg::Ask {
                            node: nx as usize,
                            requester: node,
                        },
                        (node as u64) % t_wrap,
                    );
                }
            }
        });
        // S2: owners reply with the successor's (next, w).
        bsp.superstep(move |pid, s, inbox, out| {
            for (i, msg) in inbox.iter().enumerate() {
                if let PjMsg::Ask { node, requester } = msg {
                    let k = node % per;
                    out.send_at(
                        owner(*requester),
                        PjMsg::Reply {
                            requester: *requester,
                            next: s.next[k],
                            w: s.w[k],
                        },
                        (i as u64) * ((p as u64).div_ceil(m as u64))
                            + (pid as u64 % (p as u64).div_ceil(m as u64).max(1)),
                    );
                }
            }
        });
        // S3: requesters splice: w += w_succ, next = next_succ.
        bsp.superstep(move |pid, s, inbox, _out| {
            for msg in inbox {
                if let PjMsg::Reply { requester, next, w } = msg {
                    let k = requester % per;
                    debug_assert_eq!(owner(*requester), pid);
                    s.w[k] += w;
                    s.next[k] = *next;
                }
            }
        });
        rounds += 1;
        // Done when every node has reached the tail (next = NIL).
        let all_done = bsp
            .states()
            .iter()
            .all(|st| st.next.iter().all(|&nx| nx == NIL));
        if all_done {
            break;
        }
        assert!(rounds < max_rounds, "pointer jumping failed to converge");
    }

    // Verify: w[i] is now the rank (distance to tail).
    let expect = sequential_ranks(list);
    let ok = (0..n).all(|i| {
        let st = &bsp.states()[owner(i)];
        st.next[i % per] == NIL && st.w[i % per] as u64 == expect[i]
    });
    let model = BspM {
        m,
        l: params.l,
        penalty: PenaltyFn::Exponential,
    };
    Measured {
        time: model.run_cost(bsp.profiles()),
        rounds,
        ok,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_ranks_simple_chain() {
        // 0 → 1 → 2 → 3.
        let list = LinkedList {
            next: vec![1, 2, 3, usize::MAX],
            head: 0,
        };
        assert_eq!(sequential_ranks(&list), vec![3, 2, 1, 0]);
    }

    #[test]
    fn pram_ranking_matches_sequential_small() {
        for n in [1usize, 2, 3, 5, 8, 17] {
            let list = random_list(n, n as u64);
            let run = pram_list_ranking(&list, 99);
            assert!(run.ok, "n={n}: got {:?}", run.ranks);
        }
    }

    #[test]
    fn pram_ranking_matches_sequential_larger() {
        for seed in 0..5 {
            let list = random_list(512, seed);
            let run = pram_list_ranking(&list, seed * 7 + 1);
            assert!(run.ok, "seed={seed}");
        }
    }

    #[test]
    fn rounds_are_logarithmic() {
        let list = random_list(4096, 3);
        let run = pram_list_ranking(&list, 4);
        assert!(run.ok);
        // whp O(lg n): 12·lg(4096) = 144 would be extreme; expect ≲ 40.
        assert!(run.rounds <= 60, "rounds={}", run.rounds);
    }

    #[test]
    fn work_is_near_linear() {
        // Work-optimality: w(2n)/w(n) ≈ 2, not 4.
        let w1 = pram_list_ranking(&random_list(2048, 1), 2).w;
        let w2 = pram_list_ranking(&random_list(4096, 1), 2).w;
        let ratio = w2 as f64 / w1 as f64;
        assert!(ratio < 2.8, "work ratio {ratio} suggests super-linear work");
    }

    #[test]
    fn time_is_polylog() {
        let run = pram_list_ranking(&random_list(4096, 5), 6);
        assert!(run.ok);
        // t = O(lg² n) with the charged compaction scans; lg² 4096 = 144.
        assert!(run.t < 1500, "t={}", run.t);
    }

    #[test]
    fn converted_times_match_table_shape() {
        // QSM(m) time should be O(n/m + polylog): within a constant of n/m
        // for m ≪ n/lg n.
        let params = MachineParams::from_bandwidth(1024, 64, 8);
        let n = 8192;
        let (qsm, bsp) = converted(params, n, 1);
        assert!(qsm.ok && bsp.ok);
        let n_over_m = n as f64 / 64.0;
        // Work is O(n) with a constant around 25–30 engine-ops per node
        // (coins + splice reads/writes summed over contraction rounds).
        assert!(
            qsm.time < 60.0 * n_over_m,
            "qsm {} vs n/m {}",
            qsm.time,
            n_over_m
        );
        assert!(bsp.time >= qsm.time, "BSP(m) pays L per PRAM step");
        // And the shape is linear in n: doubling n roughly doubles time.
        let (qsm2, _) = converted(params, 2 * n, 1);
        let ratio = qsm2.time / qsm.time;
        assert!(ratio > 1.5 && ratio < 3.0, "ratio {ratio} not ~2");
    }

    #[test]
    fn pointer_jumping_matches_sequential() {
        let params = MachineParams::from_bandwidth(64, 16, 4);
        for seed in 0..3 {
            let list = random_list(256, seed);
            let r = bsp_m_pointer_jumping(params, &list);
            assert!(r.ok, "seed={seed}");
            // lg-round convergence.
            assert!(r.rounds <= 12, "rounds={}", r.rounds);
        }
    }

    #[test]
    fn pointer_jumping_never_overloads_catastrophically() {
        let params = MachineParams::from_bandwidth(64, 16, 4);
        let list = random_list(512, 7);
        let r = bsp_m_pointer_jumping(params, &list);
        assert!(r.ok);
        // Θ((n/m + L)·lg n): well under a work-quadratic blow-up.
        let bound = (512.0 / 16.0 + 4.0) * 2.0 * 10.0;
        assert!(r.time <= 3.0 * bound, "time {} vs {bound}", r.time);
    }

    #[test]
    fn ablation_shapes_linear_vs_superlinear() {
        // The ablation's honest finding: the work-optimal conversion is
        // Θ(n/m) — linear in n — while pointer jumping is Θ((n/m)·lg n).
        // At simulable sizes the conversion's engine-work constant (~28
        // ops/node) still outweighs the lg n factor, so we check the
        // *growth shapes*, which is what distinguishes the algorithms.
        let params = MachineParams::from_bandwidth(64, 16, 4);
        let (q1, _) = converted(params, 2048, 3);
        let (q2, _) = converted(params, 4096, 3);
        assert!(q1.ok && q2.ok);
        let conv_ratio = q2.time / q1.time;
        assert!(
            conv_ratio < 2.4,
            "conversion ratio {conv_ratio} not ~2 (linear)"
        );

        let pj1 = bsp_m_pointer_jumping(params, &random_list(2048, 3));
        let pj2 = bsp_m_pointer_jumping(params, &random_list(4096, 3));
        assert!(pj1.ok && pj2.ok);
        let pj_ratio = pj2.time / pj1.time;
        assert!(
            pj_ratio > 2.05,
            "pointer jumping ratio {pj_ratio} should exceed 2 (extra lg-round)"
        );
    }

    #[test]
    fn single_node_list() {
        let list = LinkedList {
            next: vec![usize::MAX],
            head: 0,
        };
        let run = pram_list_ranking(&list, 0);
        assert!(run.ok);
        assert_eq!(run.ranks, vec![0]);
    }

    #[test]
    fn two_node_list() {
        let list = LinkedList {
            next: vec![usize::MAX, 0],
            head: 1,
        };
        let run = pram_list_ranking(&list, 0);
        assert!(run.ok);
        assert_eq!(run.ranks, vec![0, 1]);
    }
}
