//! The Theorem 4.1 sensitivity argument, mechanized.
//!
//! The proof of the broadcast lower bound tracks, for a deterministic
//! single-bit broadcast algorithm, the set `S(t)` of processors that are
//! *sensitive* at superstep `t` — those whose state differs between the
//! two possible executions (input bit 0 vs. bit 1). Claim 4.2 bounds its
//! growth:
//!
//! ```text
//! |S(t+1)| ≤ (x_t + x̄_t + 1)·|S(t)|
//! ```
//!
//! where `x_t` (`x̄_t`) is the maximum number of messages any processor
//! sends in superstep `t` on input 1 (input 0); termination therefore
//! requires `Π_t (x_t + x̄_t + 1) ≥ p`, which optimizing against the BSP(g)
//! cost gives the `L·lg p / (2·lg(2L/g+1))` bound.
//!
//! [`audit_broadcast`] runs any profiled broadcast pair (the bit-0 run and
//! the bit-1 run) through this argument: it extracts the per-superstep send
//! maxima from the recorded profiles, verifies the growth condition and
//! computes the *instance-specific* lower bound
//! `max over both runs of Σ_t max(L, g·y_t)` subject to the product
//! constraint — then checks it against the measured time. Our tree and
//! ternary broadcasts are audited in the tests; both satisfy the
//! constraint with near-tight products, which is exactly why they track
//! the Theorem 4.1 bound.

use pbw_models::{bounds, MachineParams, SuperstepProfile};

/// The sensitivity audit of a pair of (bit-0, bit-1) broadcast runs.
#[derive(Debug, Clone)]
pub struct SensitivityAudit {
    /// Per-superstep send maxima on input 1 (`x_t`).
    pub x: Vec<u64>,
    /// Per-superstep send maxima on input 0 (`x̄_t`).
    pub xbar: Vec<u64>,
    /// `Π_t (x_t + x̄_t + 1)` (saturating).
    pub product: u64,
    /// Whether the product reaches `p` — the necessary condition of
    /// Claim 4.2 for every processor to have learned the bit.
    pub reaches_p: bool,
    /// The instance lower bound implied by these send maxima:
    /// `Σ_t max(L, g·max(x_t, x̄_t))` — no schedule with these fan-outs
    /// can be cheaper.
    pub instance_lower: f64,
    /// The closed-form Theorem 4.1 bound for comparison.
    pub theorem_lower: f64,
}

/// Extract `max_sent` per superstep from a profiled run.
fn send_maxima(profiles: &[SuperstepProfile]) -> Vec<u64> {
    profiles.iter().map(|p| p.max_sent).collect()
}

/// Audit a (bit-0, bit-1) pair of broadcast executions against Claim 4.2.
pub fn audit_broadcast(
    params: MachineParams,
    profiles_bit0: &[SuperstepProfile],
    profiles_bit1: &[SuperstepProfile],
) -> SensitivityAudit {
    let mut x = send_maxima(profiles_bit1);
    let mut xbar = send_maxima(profiles_bit0);
    let rounds = x.len().max(xbar.len());
    x.resize(rounds, 0);
    xbar.resize(rounds, 0);

    let mut product: u64 = 1;
    let mut instance_lower = 0.0;
    for t in 0..rounds {
        product = product.saturating_mul(x[t] + xbar[t] + 1);
        let y_t = x[t].max(xbar[t]);
        instance_lower += (params.l as f64).max(params.g as f64 * y_t as f64);
    }
    // The final superstep may be a pure decode round (no sends, cost L);
    // the sensitivity argument does not count it, so the instance bound is
    // conservative.
    SensitivityAudit {
        x,
        xbar,
        product,
        reaches_p: product >= params.p as u64,
        instance_lower: instance_lower / 2.0, // the Claim's factor-2 slack (2T ≥ Y)
        theorem_lower: bounds::broadcast_bsp_g_lower(params.p, params.g, params.l),
    }
}

use pbw_sim::{BspMachine, Word};

/// Run the §4.2 ternary non-receipt broadcast and return its per-superstep
/// profiles (the audit's input). Panics if any processor fails to decode.
pub fn profiled_ternary(params: MachineParams, bit: bool) -> Vec<SuperstepProfile> {
    // Mirror broadcast::ternary_nonreceipt but keep the machine.
    #[derive(Clone, Copy)]
    struct St {
        knows: bool,
        bit: bool,
    }
    let p = params.p;
    let mut bsp: BspMachine<St, ()> = BspMachine::new(params, |pid| St {
        knows: pid == 0,
        bit: pid == 0 && bit,
    });
    let decode = move |k_prev: usize, pid: usize, s: &mut St, got: bool| {
        if k_prev > 0 && pid >= k_prev && pid < 3 * k_prev && !s.knows {
            s.bit = if pid < 2 * k_prev { !got } else { got };
            s.knows = true;
        }
    };
    let mut frontier = 1usize;
    let mut prev = 0usize;
    while frontier < p {
        let (k, pk) = (frontier, prev);
        bsp.superstep(move |pid, s, inbox, out| {
            decode(pk, pid, s, !inbox.is_empty());
            if pid < k && s.knows {
                let target = if s.bit { pid + 2 * k } else { pid + k };
                if target < p {
                    out.send(target, ());
                }
            }
        });
        prev = k;
        frontier *= 3;
    }
    if prev > 0 && prev < p {
        let pk = prev;
        bsp.superstep(move |pid, s, inbox, _out| decode(pk, pid, s, !inbox.is_empty()));
    }
    assert!(bsp.states().iter().all(|s| s.knows && s.bit == bit));
    bsp.profiles().to_vec()
}

/// Run the fan-out-⌈L/g⌉ tree broadcast of a payload carrying the bit and
/// return its per-superstep profiles (communication pattern is
/// input-independent, as the audit will show: `x_t = x̄_t`).
pub fn profiled_tree(params: MachineParams, bit: bool) -> Vec<SuperstepProfile> {
    let p = params.p;
    let f = ((params.l as f64 / params.g as f64).ceil() as usize).max(2);
    let payload: Word = bit as Word;
    let mut bsp: BspMachine<Option<Word>, Word> =
        BspMachine::new(params, |pid| if pid == 0 { Some(payload) } else { None });
    let mut known = 1usize;
    while known < p {
        let k = known;
        let upper = (k * (f + 1)).min(p);
        bsp.superstep(move |pid, s, inbox, out| {
            if s.is_none() {
                if let Some(&v) = inbox.first() {
                    *s = Some(v);
                }
            }
            if pid < k {
                if let Some(v) = *s {
                    let mut child = pid + k;
                    while child < upper {
                        out.send(child, v);
                        child += k;
                    }
                }
            }
        });
        known = upper;
    }
    bsp.superstep(|_pid, s, inbox, _out| {
        if s.is_none() {
            if let Some(&v) = inbox.first() {
                *s = Some(v);
            }
        }
    });
    assert!(bsp.states().iter().all(|s| *s == Some(payload)));
    bsp.profiles().to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::broadcast;
    use pbw_models::{BspG, CostModel};

    #[test]
    fn ternary_satisfies_claim_4_2() {
        let mp = MachineParams::from_gap(243, 27, 8);
        let p0 = profiled_ternary(mp, false);
        let p1 = profiled_ternary(mp, true);
        let audit = audit_broadcast(mp, &p0, &p1);
        // Ternary: x_t = x̄_t = 1 each round → factor 3 per round; product
        // = 3^rounds ≥ p. This is exactly why lg₃ is optimal per message.
        assert!(audit.reaches_p, "product {} < p", audit.product);
        assert!(audit.x.iter().take(audit.x.len() - 1).all(|&v| v == 1));
        assert_eq!(audit.product, 3u64.pow(5)); // 5 send rounds + decode
    }

    #[test]
    fn tree_satisfies_claim_4_2() {
        let mp = MachineParams::from_gap(512, 4, 16);
        let p0 = profiled_tree(mp, false);
        let p1 = profiled_tree(mp, true);
        let audit = audit_broadcast(mp, &p0, &p1);
        assert!(audit.reaches_p);
    }

    #[test]
    fn instance_lower_bound_respects_measured_time() {
        // The audit's instance bound never exceeds the measured BSP(g)
        // cost of the run (it is a lower bound on that very execution).
        for (p, g, l) in [(243usize, 27u64, 8u64), (512, 4, 16), (729, 27, 27)] {
            let mp = MachineParams::from_gap(p, g, l);
            let p0 = profiled_ternary(mp, false);
            let p1 = profiled_ternary(mp, true);
            let audit = audit_broadcast(mp, &p0, &p1);
            let measured = BspG { g, l }.run_cost(&p1).max(BspG { g, l }.run_cost(&p0));
            assert!(
                audit.instance_lower <= measured + 1e-9,
                "p={p}: instance bound {} > measured {measured}",
                audit.instance_lower
            );
        }
    }

    #[test]
    fn theorem_bound_below_instance_bound_for_real_algorithms() {
        // Theorem 4.1 optimizes over ALL fan-out choices, so for any
        // concrete algorithm the closed form is ≤ its instance bound (up
        // to the claim's constant slack).
        let mp = MachineParams::from_gap(729, 27, 27);
        let a0 = profiled_tree(mp, false);
        let a1 = profiled_tree(mp, true);
        let audit = audit_broadcast(mp, &a0, &a1);
        assert!(audit.theorem_lower <= 2.0 * audit.instance_lower + mp.l as f64);
    }

    #[test]
    fn truncated_run_fails_the_product_condition() {
        // Failure injection: drop the last send round — the product no
        // longer covers p, exactly what Claim 4.2 detects.
        let mp = MachineParams::from_gap(243, 27, 8);
        let p0 = profiled_ternary(mp, false);
        let p1 = profiled_ternary(mp, true);
        let audit = audit_broadcast(mp, &p0[..p0.len() - 2], &p1[..p1.len() - 2]);
        assert!(!audit.reaches_p);
    }

    #[test]
    fn public_algorithms_agree_with_profiled_replicas() {
        // The audit replicas must cost exactly what the public functions
        // report (guards against divergence).
        let mp = MachineParams::from_gap(243, 27, 8);
        let pub_cost = broadcast::ternary_nonreceipt(mp, true).time;
        let model = BspG { g: mp.g, l: mp.l };
        let rep_cost = model.run_cost(&profiled_ternary(mp, true));
        assert_eq!(pub_cost, rep_cost);
    }
}
