//! Simulating one CRCW PRAM(m) step on the QSM(m) in `O(p/m)`
//! (Theorem 5.1).
//!
//! The hard direction is concurrent *reads*: `p` processors may all want
//! the same location, but the QSM charges contention `κ`. The paper's
//! construction (implemented here phase by phase):
//!
//! 1. every processor publishes the pair `(addr_i, i)` into an array `A`;
//! 2. `A` is sorted by address (the Section 4 sorting algorithm — here the
//!    sort's output permutation is routed for real, `p` staggered writes,
//!    and its `O(p/m)` cost shape is measured separately in
//!    `crate::sort`);
//! 3. the `m` processors at stride `p/m` act as *block representatives*:
//!    each run-leader among them reads its block's representative address
//!    from memory exclusively and publishes `(addr, value)` in `C`; blocks
//!    whose representative address equals an earlier block's are filled by
//!    a doubling chain (`lg m` exclusive phases) — this is the "standard
//!    EREW PRAM simulation" step;
//! 4. `p/m` *central read steps*: in step `j`, processors `i ≡ j (mod
//!    p/m)` read `C[⌊mi/p⌋]`; a processor whose address differs from its
//!    block representative reads memory directly — the sorted order
//!    guarantees at most one processor touches any memory cell per step;
//! 5. values are routed back to the original requesters (`2p/m` staggered
//!    steps).
//!
//! Every phase is exclusive-or-staggered, so the measured QSM(m) cost is
//! `O(p/m)` — against the trivial concurrent-read cost of `1` step on the
//! CRCW PRAM(m), the `Θ(p/m)` separation of Section 5.

use crate::Measured;
use pbw_models::{CostModel, MachineParams, PenaltyFn, QsmM};
use pbw_sim::{QsmMachine, Word};

/// Per-processor state during the simulation.
#[derive(Debug, Clone, Default)]
struct St {
    /// The address this processor wants (as the original requester).
    want: usize,
    /// The pair this processor holds after the sort: (addr, requester).
    pair: Option<(usize, usize)>,
    /// The value resolved for `pair`.
    resolved: Option<Word>,
    /// The final answer delivered back to this requester.
    answer: Option<Word>,
}

/// Simulate one concurrent-read step: processor `i` wants
/// `memory[addrs[i]]`. `memory` is the PRAM(m)'s addressable state (any
/// size). Returns the measured QSM(m) run; `ok` verifies every processor
/// obtained the correct value.
pub fn simulate_read_step(params: MachineParams, memory: &[Word], addrs: &[usize]) -> Measured {
    let p = params.p;
    let m = params.m;
    assert_eq!(addrs.len(), p);
    assert!(p.is_multiple_of(m), "m must divide p");
    let block = p / m;
    let msize = memory.len();
    for &a in addrs {
        assert!(a < msize, "address out of range");
    }

    // Cell layout: [0, msize) memory image; A = msize..msize+2p (pairs);
    // B = +2p (sorted pairs); C = +2m (block results: addr, value);
    // Cf = +m (fill flags); D = +p (answers).
    let a0 = msize;
    let b0 = a0 + 2 * p;
    let c0 = b0 + 2 * p;
    let cf0 = c0 + 2 * m;
    let d0 = cf0 + m;
    let total = d0 + p;

    let mut qsm: QsmMachine<St> = QsmMachine::new(params, total, |pid| St {
        want: addrs[pid],
        ..St::default()
    });
    qsm.shared_mut()[..msize].copy_from_slice(memory);

    // 1. Publish pairs (addr, requester) into A, staggered m per step.
    qsm.phase(move |pid, s, _res, ctx| {
        let slot = (pid / m) as u64;
        ctx.write_at(a0 + 2 * pid, s.want as Word, 2 * slot);
        ctx.write_at(a0 + 2 * pid + 1, pid as Word, 2 * slot + 1);
    });

    // 2. Sort by address. The comparison sort itself is the Section 4
    // algorithm (measured in crate::sort at O(p/m)); its output permutation
    // is routed here for real: processor pid moves its pair to B[rank].
    let mut order: Vec<usize> = (0..p).collect();
    order.sort_by_key(|&i| (addrs[i], i));
    let mut rank_of = vec![0usize; p];
    for (rank, &i) in order.iter().enumerate() {
        rank_of[i] = rank;
    }
    {
        let rank_of = rank_of.clone();
        qsm.phase(move |pid, s, _res, ctx| {
            let r = rank_of[pid];
            let slot = (pid / m) as u64;
            ctx.write_at(b0 + 2 * r, s.want as Word, 2 * slot);
            ctx.write_at(b0 + 2 * r + 1, pid as Word, 2 * slot + 1);
        });
    }
    // Every processor i reads B[i] (its post-sort pair), staggered.
    qsm.phase(move |pid, _s, _res, ctx| {
        let slot = (pid / m) as u64;
        ctx.read_at(b0 + 2 * pid, 2 * slot);
        ctx.read_at(b0 + 2 * pid + 1, 2 * slot + 1);
    });
    qsm.phase(move |_pid, s, res, _ctx| {
        s.pair = Some((res[0].value as usize, res[1].value as usize));
    });

    // Representative addresses per block (host view of the sorted array —
    // used only to decide run leadership, which in the paper the EREW
    // simulation derives from the sorted array itself).
    let rep_addr: Vec<usize> = (0..m).map(|b| addrs[order[b * block]]).collect();
    let run_leader: Vec<bool> = (0..m)
        .map(|b| b == 0 || rep_addr[b] != rep_addr[b - 1])
        .collect();

    // 3b. Run-leader representatives read memory (exclusive: distinct
    // addresses by construction) and publish (addr, value) into C.
    {
        let rl = run_leader.clone();
        qsm.phase(move |pid, s, _res, ctx| {
            if pid % block == 0 && rl[pid / block] {
                let (addr, _) = s.pair.unwrap();
                ctx.read(addr);
            }
        });
        let rl = run_leader.clone();
        qsm.phase(move |pid, s, res, ctx| {
            if pid % block == 0 && rl[pid / block] {
                let b = pid / block;
                let (addr, _) = s.pair.unwrap();
                ctx.write(c0 + 2 * b, addr as Word);
                ctx.write(c0 + 2 * b + 1, res[0].value);
                ctx.write(cf0 + b, 1);
            }
        });
    }
    // 3c. Doubling fill: an unfilled block copies C from the block 2^j to
    // its left when that one is filled (runs are contiguous, so the nearest
    // filled block to the left has the right value).
    let mut jump = 1usize;
    while jump < m {
        let j = jump;
        qsm.phase(move |pid, _s, _res, ctx| {
            if pid % block == 0 {
                let b = pid / block;
                if b >= j {
                    ctx.read(cf0 + b); // own fill flag
                }
            }
        });
        qsm.phase(move |pid, _s, res, ctx| {
            if pid % block == 0 {
                let b = pid / block;
                if b >= j && res[0].value == 0 {
                    ctx.read(cf0 + (b - j));
                    ctx.read(c0 + 2 * (b - j));
                    ctx.read(c0 + 2 * (b - j) + 1);
                }
            }
        });
        qsm.phase(move |pid, s, res, ctx| {
            if pid % block == 0 {
                let b = pid / block;
                // Copy only when the source is filled AND belongs to the
                // same address run (otherwise this block's own run leader
                // is nearer and a later, shorter-range fill serves it).
                if b >= j && res.len() == 3 && res[0].value == 1 {
                    let (own_addr, _) = s.pair.unwrap();
                    if res[1].value as usize == own_addr {
                        ctx.write(c0 + 2 * b, res[1].value);
                        ctx.write(c0 + 2 * b + 1, res[2].value);
                        ctx.write(cf0 + b, 1);
                    }
                }
            }
        });
        jump *= 2;
    }

    // 4. Central read steps: step j serves processors i ≡ j (mod block).
    // Each reads its block's C entry; on address mismatch it reads memory
    // directly (sortedness ⇒ exclusive).
    qsm.phase(move |pid, _s, _res, ctx| {
        let j = (pid % block) as u64;
        ctx.read_at(c0 + 2 * (pid / block), 2 * j);
        ctx.read_at(c0 + 2 * (pid / block) + 1, 2 * j + 1);
    });
    qsm.phase(move |pid, s, res, ctx| {
        let (addr, _) = s.pair.unwrap();
        if res[0].value as usize == addr {
            s.resolved = Some(res[1].value);
        } else {
            let j = (pid % block) as u64;
            ctx.read_at(addr, j);
        }
    });
    qsm.phase(move |_pid, s, res, _ctx| {
        if s.resolved.is_none() {
            s.resolved = Some(res[0].value);
        }
    });

    // 5. Route values back to the requesters named in the pairs.
    qsm.phase(move |pid, s, _res, ctx| {
        let (_, requester) = s.pair.unwrap();
        ctx.write_at(d0 + requester, s.resolved.unwrap(), (pid / m) as u64);
    });
    qsm.phase(move |pid, _s, _res, ctx| {
        ctx.read_at(d0 + pid, (pid / m) as u64);
    });
    qsm.phase(move |_pid, s, res, _ctx| {
        s.answer = Some(res[0].value);
    });

    let ok = qsm
        .states()
        .iter()
        .all(|s| s.answer == Some(memory[s.want]));
    let model = QsmM {
        m,
        penalty: PenaltyFn::Exponential,
    };
    Measured {
        time: model.run_cost(qsm.profiles()),
        rounds: qsm.phase_index(),
        ok,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn memory(msize: usize) -> Vec<Word> {
        (0..msize).map(|i| 1000 + i as Word).collect()
    }

    #[test]
    fn all_distinct_addresses() {
        let params = MachineParams::from_gap(64, 8, 4);
        let mem = memory(64);
        let addrs: Vec<usize> = (0..64).collect();
        let r = simulate_read_step(params, &mem, &addrs);
        assert!(r.ok);
    }

    #[test]
    fn all_same_address() {
        // The pure concurrent-read case: everyone wants location 7.
        let params = MachineParams::from_gap(64, 8, 4);
        let mem = memory(16);
        let addrs = vec![7usize; 64];
        let r = simulate_read_step(params, &mem, &addrs);
        assert!(r.ok);
    }

    #[test]
    fn random_addresses() {
        let params = MachineParams::from_gap(128, 8, 4);
        let mem = memory(32);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let addrs: Vec<usize> = (0..128).map(|_| rng.gen_range(0..32)).collect();
        let r = simulate_read_step(params, &mem, &addrs);
        assert!(r.ok);
    }

    #[test]
    fn power_law_addresses() {
        // Heavy skew: most processors want a few hot locations.
        let params = MachineParams::from_gap(256, 16, 4);
        let mem = memory(64);
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let addrs: Vec<usize> = (0..256)
            .map(|_| {
                if rng.gen_bool(0.7) {
                    rng.gen_range(0..3)
                } else {
                    rng.gen_range(0..64)
                }
            })
            .collect();
        let r = simulate_read_step(params, &mem, &addrs);
        assert!(r.ok);
    }

    #[test]
    fn cost_is_o_p_over_m() {
        let params = MachineParams::from_gap(512, 16, 4);
        let mem = memory(128);
        let addrs = vec![3usize; 512];
        let r = simulate_read_step(params, &mem, &addrs);
        assert!(r.ok);
        let bound = pbw_models::bounds::cr_sim_slowdown(params.p, params.m);
        let lgm = pbw_models::lg(params.m as f64);
        assert!(
            r.time <= 10.0 * (bound + lgm),
            "time {} vs O({bound} + lg m)",
            r.time
        );
        // And ≥ the trivial p/m lower bound for routing back p answers.
        assert!(r.time >= bound);
    }

    #[test]
    fn contention_never_charged_above_block() {
        // The run must stay near linear-penalty pricing: if any slot had
        // exceeded m, the exponential charge would blow past 50·p/m.
        let params = MachineParams::from_gap(256, 8, 4);
        let mem = memory(8);
        let addrs = vec![0usize; 256];
        let r = simulate_read_step(params, &mem, &addrs);
        assert!(r.ok);
        assert!(r.time < 50.0 * (params.p as f64 / params.m as f64));
    }
}
