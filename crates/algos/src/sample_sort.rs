//! BSP sample sort as a *real-algorithm* workload: one key per input slot,
//! `p` processors, `⌈lg p⌉ + 3` genuine supersteps on [`BspMachine`].
//!
//! Unlike [`crate::sort`] (which picks its own processor count to hit the
//! paper's `O(n/m)` bound), this module keeps the machine the caller gave
//! it and lets the *data* decide the communication pattern: the all-to-all
//! bucket exchange sends each key to the bucket its splitter interval
//! names, so skewed inputs produce skewed h-relations that no one
//! hand-picked. That makes it the first workload here whose BSP(g) vs
//! BSP(m) gap is an emergent property — bucket imbalance λ =
//! `max_bucket / (n/p)` is *exactly* the factor by which the local model's
//! `g·h` price exceeds the global model's aggregate-slot price on the
//! exchange superstep (the sends are staggered below `m` per slot, so
//! BSP(m) charges `n/m` while BSP(g) charges `g·λ·n/p = λ·n/m` under
//! `from_gap` parameters).
//!
//! Superstep layout (`r = ⌈lg p⌉`):
//!
//! | step | who | what |
//! |---|---|---|
//! | 0 | all | local sort of `n/p` keys; send `ratio` samples to pid 0 |
//! | 1 | pid 0 | sort samples, select `p−1` splitters, start broadcast |
//! | 2..=r | pids < 2^(s−1) | store-then-forward splitter doubling tree |
//! | r+1 | all | partition by splitters; staggered all-to-all exchange |
//! | r+2 | all | merge the `p` received sorted runs |
//!
//! Oversampling is either [`Sampling::Seeded`] (per-pid ChaCha8 draws,
//! ratio knob) or [`Sampling::Regular`] (evenly spaced local quantiles —
//! deterministic regular sampling à la Shi–Schaeffer). Everything flows
//! through the unmodified engine: `ProfileBuilder` sees the real
//! h-relations, trace sinks see the real envelopes, and both cost models
//! price the same run.
//!
//! [`run_with_checkpointed_recovery`] composes the sort with the fault
//! zoo: sample sort is lockstep (a single lost or duplicated key corrupts
//! the output), so recovery is *taint-based* — any superstep whose fault
//! ledger moved (or that left messages in flight) is voided and replayed
//! from the last clean checkpoint under a fresh [`WallClockHook`] wall
//! time, exactly the scheduler driver's discipline in
//! `pbw_core::recovery::checkpoint`.

use crate::sort::stagger;
use crate::Measured;
use pbw_core::{CheckpointConfig, WallClockHook};
use pbw_models::MachineParams;
use pbw_sim::bsp::SuperstepReport;
use pbw_sim::{BspMachine, CostSummary, DeliveryHook, FaultStats, Outbox, Pid, Word};
use pbw_trace::TraceSink;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

/// `len · ⌈lg len⌉`-ish work charge for a comparison sort/merge of `len`
/// keys (same convention as [`crate::sort`]).
fn lgwork(len: usize) -> u64 {
    let len = len.max(1) as u64;
    len * (64 - len.leading_zeros()) as u64
}

/// Input skew families for the sweep. The partition rule routes *equal*
/// keys to one bucket, so duplicate mass is the knob that separates the
/// models: no oversampling ratio can split a value's copies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KeyDist {
    /// I.i.d. uniform over a wide range — near-distinct keys; high ratios
    /// drive the bucket imbalance λ toward 1.
    Uniform,
    /// Zipf-like head: half the mass lands on the hottest head value,
    /// spread over 16 tie-break values (≈ one full block of copies each),
    /// so low ratios lump the head into one bucket (λ ≫ 1) and even exact
    /// splitters keep λ ≈ 2 — ties are unsplittable.
    Zipf,
    /// Already sorted, all distinct: regular sampling recovers the block
    /// boundaries almost exactly.
    PreSorted,
    /// Only 8 distinct values: λ ≈ p/8 at *every* ratio — the workload
    /// that never crosses over.
    DupHeavy,
}

impl KeyDist {
    /// Stable lowercase name for tables and trace labels.
    pub fn name(self) -> &'static str {
        match self {
            KeyDist::Uniform => "uniform",
            KeyDist::Zipf => "zipf",
            KeyDist::PreSorted => "presorted",
            KeyDist::DupHeavy => "dupheavy",
        }
    }

    /// All four skews, sweep order.
    pub const ALL: [KeyDist; 4] = [
        KeyDist::Uniform,
        KeyDist::Zipf,
        KeyDist::PreSorted,
        KeyDist::DupHeavy,
    ];
}

/// Deterministic keyset of `n` words under `dist`, seeded.
pub fn keyset(dist: KeyDist, n: usize, seed: u64) -> Vec<Word> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x5A4D_504C_4553_5254);
    match dist {
        KeyDist::Uniform => (0..n)
            .map(|_| rng.gen_range(-1_000_000..1_000_000))
            .collect(),
        KeyDist::Zipf => (0..n)
            .map(|_| {
                // head ∝ 1/u over u ∈ 1..=1024: P[head = 1] ≈ 1/2.
                let u: i64 = rng.gen_range(0i64..1024) + 1;
                let head = 1024 / u;
                head * 16 + rng.gen_range(0i64..16)
            })
            .collect(),
        KeyDist::PreSorted => (0..n as i64).collect(),
        KeyDist::DupHeavy => (0..n).map(|_| rng.gen_range(0..8)).collect(),
    }
}

/// How superstep 0 picks the `ratio` samples each processor contributes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sampling {
    /// Uniform random positions from the local sorted block, per-pid
    /// ChaCha8 stream on [`SampleSortConfig::seed`].
    Seeded,
    /// Evenly spaced local quantiles (deterministic regular sampling).
    Regular,
}

/// Sample-sort knobs: the oversampling ratio and how samples are drawn.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SampleSortConfig {
    /// Samples per processor (≥ 1). `p·ratio` samples reach pid 0.
    pub ratio: usize,
    /// Seeded oversampling or regular sampling.
    pub sampling: Sampling,
    /// Seed for [`Sampling::Seeded`] draws (ignored by `Regular`).
    pub seed: u64,
}

impl Default for SampleSortConfig {
    fn default() -> Self {
        SampleSortConfig {
            ratio: 8,
            sampling: Sampling::Seeded,
            seed: 1,
        }
    }
}

/// Per-processor state: the local sorted block, the splitters once the
/// broadcast reaches this pid, and the merged output bucket.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct SsState {
    /// Locally sorted `n/p` input keys (set in superstep 0).
    pub keys: Vec<Word>,
    /// The `p−1` splitters (empty until the broadcast arrives).
    pub splitters: Vec<Word>,
    /// This pid's merged bucket (set in the final superstep).
    pub result: Vec<Word>,
}

/// Sample-sort message alphabet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SsMsg {
    /// An oversample headed for pid 0.
    Sample(Word),
    /// Splitter `i` of the broadcast tree.
    Splitter(u32, Word),
    /// A key headed for its bucket in the all-to-all exchange.
    Key(Word),
}

/// The sample-sort program: a pure superstep dispatcher over
/// [`BspMachine::superstep_index`], so dense and sparse drivers — and the
/// rollback-replay driver — all execute byte-identical closures.
#[derive(Debug, Clone)]
pub struct SampleSortProgram {
    p: usize,
    per: usize,
    rounds: usize,
    inputs: Vec<Word>,
    cfg: SampleSortConfig,
}

impl SampleSortProgram {
    /// Build a program for `p` processors over `inputs` (length divisible
    /// by `p`). Panics on `p < 2`, empty blocks, or `ratio == 0`.
    pub fn new(p: usize, inputs: Vec<Word>, cfg: SampleSortConfig) -> Self {
        assert!(p >= 2, "sample sort needs p >= 2");
        assert!(
            !inputs.is_empty() && inputs.len().is_multiple_of(p),
            "input length must be a positive multiple of p"
        );
        assert!(cfg.ratio >= 1, "oversampling ratio must be >= 1");
        let rounds = (usize::BITS - (p - 1).leading_zeros()) as usize;
        SampleSortProgram {
            p,
            per: inputs.len() / p,
            rounds,
            inputs,
            cfg,
        }
    }

    /// Processor count.
    pub fn p(&self) -> usize {
        self.p
    }

    /// Keys per processor (`n/p`).
    pub fn per(&self) -> usize {
        self.per
    }

    /// Splitter-broadcast rounds `⌈lg p⌉`.
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// Total supersteps: sort+sample, select, `rounds−1` forwards,
    /// exchange, merge.
    pub fn supersteps(&self) -> usize {
        self.rounds + 3
    }

    /// Index of the all-to-all exchange superstep.
    pub fn exchange_step(&self) -> usize {
        self.rounds + 1
    }

    /// A fresh machine for this program (`params.p` must match).
    pub fn machine(&self, params: MachineParams) -> BspMachine<SsState, SsMsg> {
        assert_eq!(params.p, self.p, "machine p must match program p");
        BspMachine::new(params, |_| SsState::default())
    }

    /// The declared active set for superstep `step` (the sparse driver
    /// adds last boundary's receivers on top).
    pub fn active_set(&self, step: usize) -> Vec<Pid> {
        if step == 0 || step == self.exchange_step() {
            (0..self.p).collect()
        } else if step <= self.rounds {
            // Broadcast holders; receivers join via the frontier.
            (0..(1usize << (step - 1)).min(self.p)).collect()
        } else {
            // Merge: every pid with a non-empty bucket received keys at
            // the exchange boundary and is woken by the frontier.
            Vec::new()
        }
    }

    /// Run the machine's next superstep of this program, dense
    /// (`sparse == false`) or via the active-set engine path.
    pub fn apply_next(
        &self,
        machine: &mut BspMachine<SsState, SsMsg>,
        sparse: bool,
    ) -> SuperstepReport {
        let step = machine.superstep_index();
        assert!(
            step < self.supersteps(),
            "sample sort complete after {} supersteps",
            self.supersteps()
        );
        let m = machine.params().m;
        let body = move |pid: Pid, s: &mut SsState, inbox: &[SsMsg], out: &mut Outbox<SsMsg>| {
            self.step_body(step, m, pid, s, inbox, out)
        };
        if sparse {
            machine.superstep_active(&self.active_set(step), body)
        } else {
            machine.superstep(body)
        }
    }

    /// Re-run the exchange superstep body regardless of the machine's
    /// superstep index — the steady-state probe for allocation and
    /// throughput benchmarks. After one full warm-up pass the body is
    /// allocation-free: splitters are already stored (the guard returns
    /// before any `Vec` is built) and the engine recycles its arenas.
    pub fn step_exchange(&self, machine: &mut BspMachine<SsState, SsMsg>) -> SuperstepReport {
        let step = self.exchange_step();
        let m = machine.params().m;
        machine.superstep(move |pid, s, inbox, out| self.step_body(step, m, pid, s, inbox, out))
    }

    /// The single superstep body, dispatched on `step`. Total no-op
    /// (no state writes, sends, or charges) for any pid outside the
    /// sparse frontier — the dense/sparse byte-identity contract.
    fn step_body(
        &self,
        step: usize,
        m: usize,
        pid: Pid,
        s: &mut SsState,
        inbox: &[SsMsg],
        out: &mut Outbox<SsMsg>,
    ) {
        let p = self.p;
        let per = self.per;
        if step == 0 {
            // Local sort + oversample toward pid 0.
            s.keys.clear();
            s.keys
                .extend_from_slice(&self.inputs[pid * per..(pid + 1) * per]);
            s.keys.sort_unstable();
            out.charge_work(lgwork(per));
            let ratio = self.cfg.ratio;
            match self.cfg.sampling {
                Sampling::Regular => {
                    for t in 0..ratio {
                        let idx = ((t + 1) * per) / (ratio + 1);
                        let v = s.keys[idx.min(per - 1)];
                        out.send_at(0, SsMsg::Sample(v), stagger(t as u64, pid, p, m));
                    }
                }
                Sampling::Seeded => {
                    let mut rng = ChaCha8Rng::seed_from_u64(self.cfg.seed);
                    rng.set_stream(pid as u64);
                    for t in 0..ratio {
                        let v = s.keys[rng.gen_range(0..per)];
                        out.send_at(0, SsMsg::Sample(v), stagger(t as u64, pid, p, m));
                    }
                }
            }
        } else if step <= self.rounds {
            // Splitter selection (step 1, pid 0) then the store-then-
            // forward doubling tree.
            if step == 1 {
                if pid == 0 && !inbox.is_empty() {
                    let mut samples: Vec<Word> = inbox
                        .iter()
                        .filter_map(|msg| match msg {
                            SsMsg::Sample(v) => Some(*v),
                            _ => None,
                        })
                        .collect();
                    if samples.is_empty() {
                        return;
                    }
                    out.charge_work(lgwork(samples.len()));
                    samples.sort_unstable();
                    s.splitters = pick_splitters(&samples, p);
                }
            } else {
                store_splitters(p, s, inbox);
            }
            let half = 1usize << (step - 1);
            if pid < half && pid + half < p && !s.splitters.is_empty() {
                for (i, &v) in s.splitters.iter().enumerate() {
                    out.send_at(
                        pid + half,
                        SsMsg::Splitter(i as u32, v),
                        stagger(i as u64, pid, half.min(p), m),
                    );
                }
            }
        } else if step == self.exchange_step() {
            // All-to-all bucket exchange, sends staggered below m/slot.
            store_splitters(p, s, inbox);
            if s.keys.is_empty() {
                return;
            }
            out.charge_work(per as u64);
            let mut t = 0usize;
            for (k, &key) in s.keys.iter().enumerate() {
                while t < s.splitters.len() && key > s.splitters[t] {
                    t += 1;
                }
                out.send_at(t, SsMsg::Key(key), stagger(k as u64, pid, p, m));
            }
        } else {
            // Merge the p concatenated sorted runs in this pid's bucket.
            if inbox.is_empty() {
                return;
            }
            let bucket: Vec<Word> = inbox
                .iter()
                .filter_map(|msg| match msg {
                    SsMsg::Key(v) => Some(*v),
                    _ => None,
                })
                .collect();
            if bucket.is_empty() {
                return;
            }
            out.charge_work(lgwork(bucket.len()));
            s.result = merge_runs(bucket);
        }
    }
}

/// `p−1` splitters from the sorted sample vector (same quantile rule as
/// [`crate::sort`]).
fn pick_splitters(samples: &[Word], p: usize) -> Vec<Word> {
    let ov = samples.len() / p.max(1);
    (1..p)
        .map(|i| samples[(i * ov).min(samples.len().saturating_sub(1))])
        .collect()
}

/// Store broadcast splitters from `inbox` into `s`, once. Ignores
/// non-splitter strays (late/displaced messages under faults) and is a
/// guaranteed no-op — no allocation — when splitters are already held.
fn store_splitters(p: usize, s: &mut SsState, inbox: &[SsMsg]) {
    if !s.splitters.is_empty() || inbox.is_empty() {
        return;
    }
    let mut spl = vec![Word::MIN; p - 1];
    let mut seen = false;
    for msg in inbox {
        if let SsMsg::Splitter(i, v) = msg {
            spl[*i as usize] = *v;
            seen = true;
        }
    }
    if seen {
        s.splitters = spl;
    }
}

/// Merge a concatenation of sorted runs by splitting at descents and
/// pairwise-merging — `O(len·lg(runs))`, matching the charged work.
fn merge_runs(values: Vec<Word>) -> Vec<Word> {
    let mut runs: Vec<Vec<Word>> = Vec::new();
    let mut cur: Vec<Word> = Vec::new();
    for v in values {
        if let Some(&last) = cur.last() {
            if v < last {
                runs.push(std::mem::take(&mut cur));
            }
        }
        cur.push(v);
    }
    if !cur.is_empty() {
        runs.push(cur);
    }
    while runs.len() > 1 {
        let mut next = Vec::with_capacity(runs.len().div_ceil(2));
        let mut it = runs.into_iter();
        while let Some(a) = it.next() {
            match it.next() {
                Some(b) => next.push(merge2(&a, &b)),
                None => next.push(a),
            }
        }
        runs = next;
    }
    runs.pop().unwrap_or_default()
}

fn merge2(a: &[Word], b: &[Word]) -> Vec<Word> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        if a[i] <= b[j] {
            out.push(a[i]);
            i += 1;
        } else {
            out.push(b[j]);
            j += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// One fault-free (or raw-hooked) sample-sort execution, fully priced.
#[derive(Debug, Clone)]
pub struct SampleSortRun {
    /// Concatenated buckets in pid order.
    pub output: Vec<Word>,
    /// `output` is bit-equal to `sort_unstable` of the inputs.
    pub ok: bool,
    /// The run priced under every model.
    pub summary: CostSummary,
    /// Per-superstep reports, in execution order.
    pub reports: Vec<SuperstepReport>,
    /// Largest bucket delivered by the exchange superstep.
    pub max_bucket: u64,
    /// Index of the exchange superstep within `reports`.
    pub exchange_step: usize,
    /// The machine's fault ledger after the run.
    pub fault_stats: FaultStats,
}

impl SampleSortRun {
    /// Bucket imbalance `λ = max_bucket / (n/p)` — the exchange-superstep
    /// BSP(g)/BSP(m) divergence factor.
    pub fn imbalance(&self, per: usize) -> f64 {
        self.max_bucket as f64 / per.max(1) as f64
    }

    /// [`Measured`] view under the exponential-penalty BSP(m) price.
    pub fn measured(&self) -> Measured {
        Measured {
            time: self.summary.bsp_m_exp,
            rounds: self.reports.len(),
            ok: self.ok,
        }
    }
}

/// Dense fault-free run with default trace sink.
pub fn run(params: MachineParams, inputs: &[Word], cfg: SampleSortConfig) -> SampleSortRun {
    run_opts(params, inputs, cfg, false, None, None)
}

/// Full-control run: sparse/dense engine path, optional delivery hook,
/// optional explicit trace sink (defaults to the global sink captured at
/// machine construction).
pub fn run_opts(
    params: MachineParams,
    inputs: &[Word],
    cfg: SampleSortConfig,
    sparse: bool,
    hook: Option<Arc<dyn DeliveryHook>>,
    sink: Option<Arc<dyn TraceSink>>,
) -> SampleSortRun {
    let prog = SampleSortProgram::new(params.p, inputs.to_vec(), cfg);
    let mut machine = prog.machine(params);
    if let Some(sink) = sink {
        machine.set_sink(sink);
    }
    if let Some(hook) = hook {
        machine.set_delivery_hook(hook);
    }
    machine.set_trace_label("sample_sort");
    let reports: Vec<SuperstepReport> = (0..prog.supersteps())
        .map(|_| prog.apply_next(&mut machine, sparse))
        .collect();
    finish(&prog, params, inputs, &machine, reports)
}

fn finish(
    prog: &SampleSortProgram,
    params: MachineParams,
    inputs: &[Word],
    machine: &BspMachine<SsState, SsMsg>,
    reports: Vec<SuperstepReport>,
) -> SampleSortRun {
    let output: Vec<Word> = machine
        .states()
        .iter()
        .flat_map(|s| s.result.iter().copied())
        .collect();
    let mut oracle = inputs.to_vec();
    oracle.sort_unstable();
    let exchange_step = prog.exchange_step();
    let max_bucket = reports
        .get(exchange_step)
        .map(|r| r.profile.max_received)
        .unwrap_or(0);
    SampleSortRun {
        ok: output == oracle,
        output,
        summary: CostSummary::price(params, machine.profiles()),
        reports,
        max_bucket,
        exchange_step,
        fault_stats: machine.fault_stats(),
    }
}

/// What checkpointed sample-sort recovery did and what it cost.
#[derive(Debug, Clone)]
pub struct SortRecoveryOutcome {
    /// Concatenated buckets in pid order (sorted input iff `ok`).
    pub output: Vec<Word>,
    /// Output is bit-equal to the sequential oracle.
    pub ok: bool,
    /// Every *executed* superstep priced — replays included (lost work is
    /// the cost of rollback recovery).
    pub summary: CostSummary,
    /// Final fault ledger (monotone across rollbacks; must conserve).
    pub fault_stats: FaultStats,
    /// Snapshots taken (the initial superstep-0 snapshot included).
    pub checkpoints: u64,
    /// Rollbacks performed.
    pub rollbacks: u32,
    /// Supersteps voided and re-executed.
    pub replayed_supersteps: u64,
    /// Rollback budget exhausted before a clean run.
    pub gave_up: bool,
}

/// Run sample sort to completion under a fault hook with taint-based
/// checkpoint/rollback recovery.
///
/// Sample sort is lockstep: *every* message matters, so unlike the
/// scheduler driver (which only rolls back on crashes) any superstep
/// whose ledger moved — drops, duplicates, delays, displacements, stalls,
/// crashes — or that left messages in flight is voided and replayed from
/// the last checkpoint. The hook is wrapped in a [`WallClockHook`] so
/// replays see fresh fault history instead of re-living the taint.
pub fn run_with_checkpointed_recovery(
    params: MachineParams,
    inputs: &[Word],
    cfg: SampleSortConfig,
    hook: Arc<dyn DeliveryHook>,
    ck: &CheckpointConfig,
) -> SortRecoveryOutcome {
    run_with_checkpointed_recovery_opts(params, inputs, cfg, hook, ck, false, None)
}

/// As [`run_with_checkpointed_recovery`], choosing the engine path and an
/// explicit trace sink.
pub fn run_with_checkpointed_recovery_opts(
    params: MachineParams,
    inputs: &[Word],
    cfg: SampleSortConfig,
    hook: Arc<dyn DeliveryHook>,
    ck: &CheckpointConfig,
    sparse: bool,
    sink: Option<Arc<dyn TraceSink>>,
) -> SortRecoveryOutcome {
    let prog = SampleSortProgram::new(params.p, inputs.to_vec(), cfg);
    let mut machine = prog.machine(params);
    if let Some(sink) = sink {
        machine.set_sink(sink);
    }
    let wall = Arc::new(WallClockHook::new(hook));
    machine.set_delivery_hook(wall.clone() as Arc<dyn DeliveryHook>);
    machine.set_trace_label("sample_sort_recovery");

    let total = prog.supersteps();
    let mut last = machine.checkpoint();
    let mut checkpoints = 1u64;
    let mut rollbacks = 0u32;
    let mut replayed = 0u64;
    let mut since_ckpt = 0u64;
    let mut gave_up = false;

    while machine.superstep_index() < total {
        let before = machine.fault_stats();
        prog.apply_next(&mut machine, sparse);
        let after = machine.fault_stats();
        let tainted = after.dropped != before.dropped
            || after.duplicated != before.duplicated
            || after.delayed != before.delayed
            || after.displaced != before.displaced
            || after.stalled_steps != before.stalled_steps
            || after.crashed != before.crashed
            || after.crash_steps != before.crash_steps
            || after.in_flight > 0;
        if tainted {
            if rollbacks >= ck.max_rollbacks {
                gave_up = true;
                break;
            }
            rollbacks += 1;
            let after_idx = machine.superstep_index() as u64;
            // Advance wall time one past the tainted superstep so the
            // first replayed superstep sees fresh fault history.
            let wall_of_taint = (after_idx - 1) + wall.offset();
            wall.set_offset(wall_of_taint + 1 - last.superstep());
            replayed += after_idx - last.superstep();
            machine.rollback(&last);
            since_ckpt = 0;
            continue;
        }
        since_ckpt += 1;
        if since_ckpt == ck.interval && machine.superstep_index() < total {
            last = machine.checkpoint();
            checkpoints += 1;
            since_ckpt = 0;
        }
    }

    let output: Vec<Word> = machine
        .states()
        .iter()
        .flat_map(|s| s.result.iter().copied())
        .collect();
    let mut oracle = inputs.to_vec();
    oracle.sort_unstable();
    SortRecoveryOutcome {
        ok: !gave_up && output == oracle,
        output,
        summary: CostSummary::price(params, machine.profiles()),
        fault_stats: machine.fault_stats(),
        checkpoints,
        rollbacks,
        replayed_supersteps: replayed,
        gave_up,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbw_models::PenaltyFn;

    fn params(p: usize) -> MachineParams {
        MachineParams::from_gap(p, 4, 8)
    }

    fn check_sorts(p: usize, per: usize, dist: KeyDist, cfg: SampleSortConfig) {
        // from_gap needs g | p; awkward p gets hand-built params instead.
        let mp = if p.is_multiple_of(4) {
            params(p)
        } else {
            MachineParams {
                p,
                g: 2,
                m: p.div_ceil(2),
                l: 8,
            }
        };
        let inputs = keyset(dist, p * per, 11);
        let run = run(mp, &inputs, cfg);
        assert!(
            run.ok,
            "p={p} per={per} dist={} cfg={cfg:?}: output not sorted input",
            dist.name()
        );
        assert_eq!(run.reports.len(), run.exchange_step + 2);
    }

    #[test]
    fn sorts_every_dist_seeded_and_regular() {
        for dist in KeyDist::ALL {
            for sampling in [Sampling::Seeded, Sampling::Regular] {
                check_sorts(
                    8,
                    16,
                    dist,
                    SampleSortConfig {
                        ratio: 4,
                        sampling,
                        seed: 3,
                    },
                );
            }
        }
    }

    #[test]
    fn sorts_awkward_processor_counts() {
        // Non-powers of two exercise the truncated doubling tree.
        for p in [2, 3, 5, 7, 12] {
            check_sorts(p, 9, KeyDist::Uniform, SampleSortConfig::default());
        }
    }

    #[test]
    fn ratio_one_and_ratio_above_block_both_sort() {
        check_sorts(
            4,
            4,
            KeyDist::Zipf,
            SampleSortConfig {
                ratio: 1,
                ..Default::default()
            },
        );
        check_sorts(
            4,
            4,
            KeyDist::Uniform,
            SampleSortConfig {
                ratio: 9, // more samples than local keys
                ..Default::default()
            },
        );
    }

    #[test]
    fn sparse_path_matches_dense_output() {
        let inputs = keyset(KeyDist::Zipf, 8 * 16, 5);
        let dense = run_opts(
            params(8),
            &inputs,
            SampleSortConfig::default(),
            false,
            None,
            None,
        );
        let sparse = run_opts(
            params(8),
            &inputs,
            SampleSortConfig::default(),
            true,
            None,
            None,
        );
        assert!(dense.ok && sparse.ok);
        assert_eq!(dense.output, sparse.output);
        assert_eq!(dense.summary, sparse.summary);
        assert_eq!(dense.max_bucket, sparse.max_bucket);
    }

    #[test]
    fn exchange_conserves_and_stays_under_m_per_slot() {
        let p = 16;
        let per = 32;
        let inputs = keyset(KeyDist::Uniform, p * per, 7);
        let run = run(params(p), &inputs, SampleSortConfig::default());
        let ex = &run.reports[run.exchange_step];
        let n: u64 = ex.profile.injections.iter().sum();
        assert_eq!(n, (p * per) as u64, "every key is injected exactly once");
        assert_eq!(ex.delivered, (p * per) as u64, "every key is delivered");
        let m = params(p).m as u64;
        for (slot, &count) in ex.profile.injections.iter().enumerate() {
            assert!(count <= m, "slot {slot} carries {count} > m={m}");
        }
    }

    #[test]
    fn exchange_divergence_is_exactly_the_imbalance() {
        // On the exchange superstep with from_gap params, BSP(g)/BSP(m)
        // == λ whenever c_m = n/m dominates h and the latency floor.
        let p = 32;
        let per = 64;
        let mp = params(p);
        let inputs = keyset(KeyDist::DupHeavy, p * per, 13);
        let run = run(mp, &inputs, SampleSortConfig::default());
        let ex = &run.reports[run.exchange_step].profile;
        let g = pbw_models::BspG { g: mp.g, l: mp.l };
        let m = pbw_models::BspM {
            m: mp.m,
            l: mp.l,
            penalty: PenaltyFn::Exponential,
        };
        use pbw_models::CostModel;
        let ratio = g.superstep_cost(ex) / m.superstep_cost(ex);
        let lambda = run.imbalance(per);
        assert!(lambda > 2.0, "dup-heavy input must skew buckets: {lambda}");
        assert!(
            (ratio - lambda).abs() / lambda < 0.35,
            "exchange divergence {ratio} should track imbalance {lambda}"
        );
    }

    #[test]
    fn recovery_clean_hook_is_a_plain_run() {
        struct Clean;
        impl DeliveryHook for Clean {}
        let inputs = keyset(KeyDist::Uniform, 8 * 8, 3);
        let hook = Arc::new(Clean) as Arc<dyn DeliveryHook>;
        let out = run_with_checkpointed_recovery(
            params(8),
            &inputs,
            SampleSortConfig::default(),
            hook,
            &CheckpointConfig::every(2),
        );
        assert!(out.ok && !out.gave_up);
        assert_eq!(out.rollbacks, 0);
        assert_eq!(out.replayed_supersteps, 0);
        assert!(out.fault_stats.conserved());
    }

    #[test]
    fn keyset_is_deterministic_and_dist_shaped() {
        for dist in KeyDist::ALL {
            assert_eq!(keyset(dist, 256, 9), keyset(dist, 256, 9));
            assert_ne!(
                keyset(KeyDist::Uniform, 256, 9),
                keyset(KeyDist::Uniform, 256, 10)
            );
        }
        let dup = keyset(KeyDist::DupHeavy, 512, 1);
        let distinct: std::collections::HashSet<_> = dup.iter().collect();
        assert!(distinct.len() <= 8);
        let pre = keyset(KeyDist::PreSorted, 512, 1);
        assert!(pre.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn merge_runs_equals_sort() {
        let mut v = keyset(KeyDist::Zipf, 300, 2);
        // Shape into concatenated sorted runs like a real inbox.
        for chunk in v.chunks_mut(37) {
            chunk.sort_unstable();
        }
        let merged = merge_runs(v.clone());
        v.sort_unstable();
        assert_eq!(merged, v);
    }
}
