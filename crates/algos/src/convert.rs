//! The Section 4 "general strategy": converting PRAM algorithms to the
//! globally-limited models.
//!
//! > *Given an EREW PRAM or QRQW PRAM algorithm that runs in time `t(n)` and
//! > work `w(n)`, it can be converted into a QSM(m) algorithm that runs in
//! > time `O(n/m + t(n) + w(n)/m)` [...] We can map this onto the BSP(m) to
//! > run in time `O(L·t(n) + w(n)/m)` by pipelining the computations in each
//! > of the `t(n)` steps.*
//!
//! The distribution step routes the `n` inputs onto the first `m` processors
//! (`n/m` time); the simulation then executes each PRAM step with at most
//! `m` memory accesses per machine step.

/// QSM(m) time of the converted algorithm: `n/m + t + w/m`.
pub fn qsm_m_time(n: u64, m: usize, t: u64, w: u64) -> f64 {
    n as f64 / m as f64 + t as f64 + w as f64 / m as f64
}

/// BSP(m) time of the converted algorithm: `L·t + w/m` (+ input
/// distribution `n/m + L`).
pub fn bsp_m_time(n: u64, m: usize, t: u64, w: u64, l: u64) -> f64 {
    n as f64 / m as f64 + (l as f64) * t as f64 + w as f64 / m as f64 + l as f64
}

/// The naive g-model emulation of Section 4 (first paragraph): a QSM(g) /
/// BSP(g) algorithm of communication time `T` runs on the corresponding
/// m-model in the same time `T`, by splitting each communication step into
/// `g` substeps of `p/g = m` messages.
pub fn g_emulation_time(t_g: f64) -> f64 {
    t_g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qsm_conversion_formula() {
        // n = 1024, m = 64, EREW t = 10, w = 2048: 16 + 10 + 32 = 58.
        assert!((qsm_m_time(1024, 64, 10, 2048) - 58.0).abs() < 1e-12);
    }

    #[test]
    fn bsp_conversion_adds_latency_per_step() {
        let q = qsm_m_time(1024, 64, 10, 2048);
        let b = bsp_m_time(1024, 64, 10, 2048, 8);
        assert!(b > q);
        assert!((b - (16.0 + 80.0 + 32.0 + 8.0)).abs() < 1e-12);
    }

    #[test]
    fn work_optimal_algorithms_convert_to_n_over_m() {
        // For w(n) = O(n) and t(n) = O(lg n), QSM(m) time is O(n/m + lg n):
        // dominated by n/m when m ≤ n / lg n.
        let (n, m) = (1u64 << 20, 256usize);
        let t = 20u64;
        let w = 2 * n;
        let time = qsm_m_time(n, m, t, w);
        assert!(time < 4.0 * (n as f64 / m as f64));
    }

    #[test]
    fn g_emulation_preserves_time() {
        assert_eq!(g_emulation_time(123.0), 123.0);
    }
}
