//! One-to-all personalized communication (the Section 1 motivating example
//! and Table 1 row 1).
//!
//! Processor 0 sends a *distinct* message to each of the other `p−1`
//! processors. Since a processor can inject only one message per step, the
//! sends pipeline over `p−1` steps; at most one message is in flight per
//! step, so any aggregate bandwidth `m ≥ 1` suffices: BSP(m) cost `Θ(p+L)`.
//! Under a per-processor gap `g`, the same program costs `g·(p−1)`: the
//! locally-limited model is slower by exactly `Θ(g)`.
//!
//! The same single execution is priced under all four models — the
//! separation is a property of the metric, not of different programs.

use crate::Measured;
use pbw_models::MachineParams;
use pbw_sim::{BspMachine, CostSummary, QsmMachine, Word};

/// Outcome for both model families.
#[derive(Debug, Clone, Copy)]
pub struct OneToAllOutcome {
    /// The full pricing of the message-passing run.
    pub bsp: CostSummary,
    /// The full pricing of the shared-memory run.
    pub qsm: CostSummary,
    /// Whether every processor received its personalized value.
    pub ok: bool,
}

/// Run one-to-all personalized communication on both engines.
pub fn run(params: MachineParams) -> OneToAllOutcome {
    let p = params.p;

    // --- Message passing: processor 0 pipelines p−1 personalized sends.
    let mut bsp: BspMachine<Word, Word> = BspMachine::new(params, |_| -1);
    bsp.superstep(|pid, _s, _in, out| {
        if pid == 0 {
            for d in 1..p {
                out.send(d, 100 + d as Word); // auto slots pipeline 0,1,2,…
            }
        }
    });
    bsp.superstep(|pid, s, inbox, _out| {
        if pid == 0 {
            *s = 100;
        } else {
            *s = inbox.first().copied().unwrap_or(-1);
        }
    });
    let bsp_ok = bsp
        .states()
        .iter()
        .enumerate()
        .all(|(pid, &s)| s == 100 + if pid == 0 { 0 } else { pid as Word });
    let bsp_summary = CostSummary::price(params, bsp.profiles());

    // --- Shared memory: processor 0 writes p−1 personalized cells
    // (pipelined one request per step); everyone reads its own cell
    // (exclusive: κ = 1, one step each since requests stagger naturally).
    let mut qsm: QsmMachine<Word> = QsmMachine::new(params, p, |_| -1);
    qsm.phase(|pid, _s, _res, ctx| {
        if pid == 0 {
            for d in 1..p {
                ctx.write(d, 100 + d as Word);
            }
        }
    });
    qsm.phase(|pid, _s, _res, ctx| {
        if pid != 0 {
            // Stagger reads so no machine step carries more than one
            // request per processor — pid-th slot keeps the profile honest
            // without exceeding m either (p reads over p slots).
            ctx.read_at(pid, pid as u64);
        }
    });
    qsm.phase(|pid, s, res, _ctx| {
        if pid == 0 {
            *s = 100;
        } else {
            *s = res.first().map(|r| r.value).unwrap_or(-1);
        }
    });
    let qsm_ok = qsm
        .states()
        .iter()
        .enumerate()
        .all(|(pid, &s)| s == 100 + if pid == 0 { 0 } else { pid as Word });
    let qsm_summary = CostSummary::price(params, qsm.profiles());

    OneToAllOutcome {
        bsp: bsp_summary,
        qsm: qsm_summary,
        ok: bsp_ok && qsm_ok,
    }
}

/// Convenience: the measured BSP(m)-vs-BSP(g) pair as `Measured` records.
pub fn measured_pair(params: MachineParams) -> (Measured, Measured) {
    let out = run(params);
    (
        Measured {
            time: out.bsp.bsp_m_exp,
            rounds: 2,
            ok: out.ok,
        },
        Measured {
            time: out.bsp.bsp_g,
            rounds: 2,
            ok: out.ok,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn everyone_gets_their_value() {
        let params = MachineParams::from_gap(64, 8, 8);
        assert!(run(params).ok);
    }

    #[test]
    fn bsp_separation_is_theta_g() {
        let params = MachineParams::from_gap(256, 16, 16);
        let out = run(params);
        // BSP(g) = g·(p−1) (+recv h=1 → g·h dominated by sender) vs
        // BSP(m) = p−1 (+L).
        let sep = out.bsp.bsp_g / out.bsp.bsp_m_exp;
        assert!(sep > 8.0 && sep <= 16.5, "sep={sep}");
    }

    #[test]
    fn qsm_separation_is_theta_g() {
        let params = MachineParams::from_gap(256, 16, 16);
        let out = run(params);
        let sep = out.qsm.qsm_g / out.qsm.qsm_m_exp;
        assert!(sep > 8.0 && sep <= 16.5, "sep={sep}");
    }

    #[test]
    fn bsp_m_cost_close_to_p() {
        let params = MachineParams::from_gap(128, 8, 4);
        let out = run(params);
        let p = 128.0;
        assert!(out.bsp.bsp_m_exp >= p - 1.0);
        assert!(out.bsp.bsp_m_exp <= p + 3.0 * params.l as f64 + 2.0);
    }

    #[test]
    fn no_bandwidth_overload_ever() {
        // One message per slot: BSP(m) exp and linear agree.
        let params = MachineParams::from_gap(64, 8, 2);
        let out = run(params);
        assert!((out.bsp.bsp_m_exp - out.bsp.bsp_m_linear).abs() < 1e-9);
    }

    #[test]
    fn tiny_machine() {
        let params = MachineParams::from_gap(2, 1, 1);
        assert!(run(params).ok);
    }
}
