//! # pbw-algos
//!
//! The problem algorithms of Sections 4 and 5 of the SPAA'97 paper, each
//! executed on the `pbw-sim` / `pbw-pram` engines with exact cost metering,
//! so the experiment harness can regenerate Table 1 and the Section 5
//! separations by *measurement* rather than by quoting formulas.
//!
//! | module | paper artifact |
//! |---|---|
//! | [`one_to_all`] | the Section 1 motivating example (Θ(g) separation) |
//! | [`broadcast`] | Table 1 row 2, Theorem 4.1, and the §4.2 ternary non-receipt broadcast |
//! | [`reduce`] | parity / summation (Table 1 row 3) |
//! | [`prefix`] | parallel prefix sums (the scan behind τ and the sorting offsets) |
//! | [`collectives`] | total exchange / transpose / gather (the §3 applications) |
//! | [`list_ranking`] | list ranking (Table 1 row 4) via the paper's PRAM→QSM(m) conversion |
//! | [`columnsort`] | Leighton's columnsort — the deterministic sorting substrate of [2] |
//! | [`sort`] | sorting on QSM(m)/BSP(m) in O(n/m) (Table 1 row 5) |
//! | [`sample_sort`] | BSP sample sort as a real-algorithm workload: data-driven bucket skew as the emergent BSP(g)/BSP(m) gap |
//! | [`bitonic`] | the balanced, locally-limited-friendly block bitonic sorter (the g-model's native algorithm) |
//! | [`convert`] | the "general strategy" of Section 4: EREW/QRQW PRAM → QSM(m)/BSP(m) |
//! | [`leader`] | Leader Recognition (Theorem 5.2 / Lemma 5.3) |
//! | [`cr_sim`] | simulating a CRCW PRAM(m) step on the QSM(m) (Theorem 5.1) |
//! | [`sensitivity`] | the Theorem 4.1 sensitivity argument as an executable audit |

pub mod bitonic;
pub mod broadcast;
pub mod collectives;
pub mod columnsort;
pub mod convert;
pub mod cr_sim;
pub mod leader;
pub mod list_ranking;
pub mod one_to_all;
pub mod prefix;
pub mod reduce;
pub mod sample_sort;
pub mod sensitivity;
pub mod sort;

/// A measured algorithm execution: its model cost, superstep/phase count and
/// a correctness flag (every algorithm verifies its own output).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Measured {
    /// Cost under the model the algorithm targets.
    pub time: f64,
    /// Number of supersteps / phases / PRAM steps executed.
    pub rounds: usize,
    /// Whether the output was verified correct.
    pub ok: bool,
}

impl Measured {
    /// Assert correctness and return the time.
    pub fn time_checked(&self) -> f64 {
        assert!(self.ok, "algorithm produced an incorrect result");
        self.time
    }
}
