//! Leader Recognition (Definition 5.1, Theorem 5.2, Lemma 5.3).
//!
//! Input: `p` cells, exactly one holding `1`. Output: every processor must
//! learn the index of that cell.
//!
//! * On the **CRCW PRAM(m)** the input lives in the concurrently-readable
//!   ROM: every processor reads its own cell, the finder publishes its
//!   index through one shared cell, everyone reads it concurrently —
//!   `O(max(lg p / w, 1))` steps (here: 3 machine steps).
//! * On the **QSM(m)**, Lemma 5.3 shows `Ω(p·lg m / (m·w))` is required
//!   *even when every processor knows the whole input*; the natural
//!   matching upper bound is a QSM(m) broadcast of the leader's index:
//!   `Θ(lg m + p/m)`. The measured separation is `Θ(p/m)` — exactly the
//!   `Ω(p·lg m/(m·lg p))` ER-vs-CR gap of the abstract (up to the `lg`
//!   factors the lower bound tracks).

use crate::Measured;
use pbw_models::{CostModel, MachineParams, PenaltyFn, QsmM};
use pbw_pram::{AccessMode, Pram};
use pbw_sim::{QsmMachine, Word};
use std::sync::atomic::{AtomicBool, Ordering};

/// Leader Recognition on the CRCW PRAM(m): 3 steps, any `m ≥ 1`.
pub fn crcw_pram_m(p: usize, m: usize, leader: usize) -> Measured {
    assert!(leader < p);
    let mut rom = vec![0 as Word; p];
    rom[leader] = 1;
    let mut pram = Pram::with_rom(AccessMode::CrcwArbitrary, m.max(1), rom);

    // Step 1: everyone probes its own ROM cell; the finder publishes.
    pram.step(p, |pid, ctx| {
        if ctx.read_rom(pid) == 1 {
            ctx.write(0, pid as Word + 1);
        }
    });
    // Step 2: everyone reads the shared cell concurrently and checks.
    let all_correct = AtomicBool::new(true);
    pram.step(p, |_pid, ctx| {
        let v = ctx.read(0);
        if v != leader as Word + 1 {
            all_correct.store(false, Ordering::Relaxed);
        }
    });
    Measured {
        time: pram.time() as f64,
        rounds: pram.steps() as usize,
        ok: all_correct.load(Ordering::Relaxed),
    }
}

/// Leader Recognition on the CRCW PRAM(m) with `word_bits`-bit cells:
/// publishing the winner's index takes `⌈lg p / w⌉` chunked writes, giving
/// the theorem's full `O(max(lg p / w, 1))` shape.
pub fn crcw_pram_m_wordsize(p: usize, m: usize, leader: usize, word_bits: u32) -> Measured {
    assert!(leader < p);
    assert!(word_bits >= 1);
    let mut rom = vec![0 as Word; p];
    rom[leader] = 1;
    // Cells hold word_bits-bit chunks of the index; we need
    // ⌈lg p / w⌉ of them.
    let id_bits = (usize::BITS - p.leading_zeros()).max(1);
    let chunks = id_bits.div_ceil(word_bits).max(1) as usize;
    let mut pram = Pram::with_rom(AccessMode::CrcwArbitrary, m.max(chunks), rom);

    // The finder publishes its index chunk by chunk (+1 marker on the
    // value so a zero chunk is distinguishable from an unwritten cell).
    for c in 0..chunks {
        let mask = (1u64 << word_bits.min(63)) - 1;
        pram.step(p, move |pid, ctx| {
            if ctx.read_rom(pid) == 1 {
                let chunk = ((pid as u64) >> (c as u32 * word_bits)) & mask;
                ctx.write(c, chunk as Word + 1);
            }
        });
    }
    // Everyone reassembles the index from the chunks.
    let all_correct = AtomicBool::new(true);
    for c in 0..chunks {
        let shift = c as u32 * word_bits;
        let leader_u = leader as u64;
        let mask = (1u64 << word_bits.min(63)) - 1;
        pram.step(p, |_pid, ctx| {
            let v = ctx.read(c) - 1;
            if v as u64 != (leader_u >> shift) & mask {
                all_correct.store(false, Ordering::Relaxed);
            }
        });
    }
    Measured {
        time: pram.time() as f64,
        rounds: pram.steps() as usize,
        ok: all_correct.load(Ordering::Relaxed),
    }
}

/// Leader Recognition on the QSM(m): the leader publishes its index, which
/// is then broadcast (doubling over `m` cells + a strided fan-out);
/// `Θ(lg m + p/m)`.
pub fn qsm_m(params: MachineParams, leader: usize) -> Measured {
    let p = params.p;
    let m = params.m;
    assert!(leader < p);
    let tag = leader as Word + 1;

    let mut qsm: QsmMachine<Option<Word>> = QsmMachine::new(params, m, |_| None);
    // The leader knows it is the leader (its input cell holds the 1) and
    // publishes its index.
    qsm.phase(move |pid, s, _res, ctx| {
        if pid == leader {
            ctx.write(0, tag);
            *s = Some(tag);
        }
    });
    // Doubling over the m cells.
    let mut known = 1usize;
    let mut rounds = 1usize;
    while known < m {
        let k = known;
        qsm.phase(move |pid, _s, _res, ctx| {
            if pid >= k && pid < (2 * k).min(m) {
                ctx.read(pid - k);
            }
        });
        qsm.phase(move |pid, s, res, ctx| {
            if pid >= k && pid < (2 * k).min(m) {
                if let Some(r) = res.first() {
                    *s = Some(r.value);
                    ctx.write(pid, r.value);
                }
            }
        });
        known *= 2;
        rounds += 2;
    }
    // Strided fan-out: processor i reads cell i mod m at injection slot
    // i div m (m requests per machine step, κ = p/m spread over p/m steps).
    qsm.phase(move |pid, s, _res, ctx| {
        if s.is_none() {
            ctx.read_at(pid % m, (pid / m) as u64);
        }
    });
    qsm.phase(move |_pid, s, res, _ctx| {
        if let Some(r) = res.first() {
            *s = Some(r.value);
        }
    });
    let ok = qsm.states().iter().all(|s| *s == Some(tag));
    let model = QsmM {
        m,
        penalty: PenaltyFn::Exponential,
    };
    Measured {
        time: model.run_cost(qsm.profiles()),
        rounds: rounds + 2,
        ok,
    }
}

/// The measured CR-vs-ER separation for one parameter point: QSM(m) time
/// over CRCW PRAM(m) time.
pub fn measured_separation(params: MachineParams, leader: usize) -> f64 {
    let cr = crcw_pram_m(params.p, params.m, leader);
    let er = qsm_m(params, leader);
    assert!(cr.ok && er.ok);
    er.time / cr.time
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crcw_finds_any_leader() {
        for leader in [0usize, 1, 17, 63] {
            let r = crcw_pram_m(64, 4, leader);
            assert!(r.ok, "leader={leader}");
            assert!(r.time <= 6.0, "CRCW PRAM(m) must be O(1), got {}", r.time);
        }
    }

    #[test]
    fn qsm_m_finds_any_leader() {
        let params = MachineParams::from_gap(128, 8, 4);
        for leader in [0usize, 5, 127] {
            let r = qsm_m(params, leader);
            assert!(r.ok, "leader={leader}");
        }
    }

    #[test]
    fn qsm_m_time_matches_bound() {
        let params = MachineParams::from_gap(1024, 16, 4);
        let r = qsm_m(params, 100);
        assert!(r.ok);
        let bound = pbw_models::lg(params.m as f64) + params.p as f64 / params.m as f64;
        assert!(r.time <= 6.0 * bound, "time {} vs Θ({bound})", r.time);
        assert!(r.time >= params.p as f64 / params.m as f64 * 0.5);
    }

    #[test]
    fn separation_grows_like_p_over_m() {
        let s1 = measured_separation(MachineParams::from_gap(256, 16, 4), 3);
        let s2 = measured_separation(MachineParams::from_gap(1024, 64, 4), 3);
        // Same m/p ratio → similar separation; now grow p at fixed m:
        let s3 = measured_separation(MachineParams::new_unchecked(1024, 64, 16, 4), 3);
        assert!(
            s3 > s1,
            "separation must grow as p/m grows (s1={s1}, s3={s3})"
        );
        assert!((s1 / s2 - 1.0).abs() < 0.8, "s1={s1} s2={s2}");
    }

    #[test]
    fn wordsize_variant_correct_across_widths() {
        for w in [1u32, 2, 4, 8, 16, 64] {
            let r = crcw_pram_m_wordsize(256, 4, 137, w);
            assert!(r.ok, "w={w}");
        }
    }

    #[test]
    fn wordsize_time_scales_as_lg_p_over_w() {
        // Thm 5.2's O(max(lg p / w, 1)): halving w doubles the chunk count.
        let t8 = crcw_pram_m_wordsize(1 << 12, 4, 99, 8).time;
        let t2 = crcw_pram_m_wordsize(1 << 12, 4, 99, 2).time;
        let t1 = crcw_pram_m_wordsize(1 << 12, 4, 99, 1).time;
        assert!(t2 > 2.0 * t8 * 0.7, "t8={t8} t2={t2}");
        assert!(t1 > 1.5 * t2 * 0.8, "t2={t2} t1={t1}");
    }

    #[test]
    fn crcw_uses_concurrent_read_essentially() {
        // With m = 1 shared cell the CRCW PRAM(m) still finishes in O(1):
        // bandwidth does not limit concurrent reading — the point of §5.
        let r = crcw_pram_m(4096, 1, 1234);
        assert!(r.ok);
        assert!(r.time <= 6.0);
    }
}
