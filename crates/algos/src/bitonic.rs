//! Bitonic sorting — the classic *locally-limited-friendly* sorter.
//!
//! Table 1's sorting row contrasts the globally-limited `O(n/m)` bound with
//! a `Ω(g·lg n/lg lg n)` g-model lower bound. To make the g-model column
//! concrete we also implement the textbook algorithm a BSP(g) programmer
//! would actually write: **block bitonic sort** over the hypercube — every
//! processor holds a sorted block of `n/p` keys; `lg p·(lg p+1)/2`
//! compare-split rounds exchange whole blocks between partners. Its
//! communication is *perfectly balanced* (`x_i = y_i = n/p` every round),
//! which is exactly why it is a natural fit for per-processor charging —
//! and why it cannot exploit a global budget: the measured BSP(g) and
//! BSP(m) costs of the same run are within `2g·(rounds)/…` of each other
//! only through the `L` terms.
//!
//! Two layers:
//!
//! * [`bitonic_network`] — the pure `O(n lg² n)` bitonic network on a
//!   power-of-two slice (the substrate, exhaustively testable via the 0-1
//!   principle).
//! * [`bsp_block_sort`] — the distributed block version on the `pbw-sim`
//!   engine, verified and priced under every model.

use crate::Measured;
use pbw_models::{BspG, CostModel, MachineParams};
use pbw_sim::{BspMachine, CostSummary, Word};

/// Sort `xs` in place with the bitonic network. Length must be a power of
/// two.
pub fn bitonic_network(xs: &mut [Word]) {
    let n = xs.len();
    assert!(
        n.is_power_of_two() || n <= 1,
        "bitonic network needs a power-of-two length"
    );
    let mut k = 2;
    while k <= n {
        let mut j = k / 2;
        while j >= 1 {
            for i in 0..n {
                let partner = i ^ j;
                if partner > i {
                    let ascending = (i & k) == 0;
                    if (xs[i] > xs[partner]) == ascending {
                        xs.swap(i, partner);
                    }
                }
            }
            j /= 2;
        }
        k *= 2;
    }
}

/// Merge two sorted blocks and keep the lower (or upper) half — the block
/// compare-split primitive.
fn compare_split(mine: &[Word], theirs: &[Word], keep_low: bool) -> Vec<Word> {
    debug_assert!(mine.windows(2).all(|w| w[0] <= w[1]));
    let len = mine.len();
    let mut merged = Vec::with_capacity(len * 2);
    let (mut a, mut b) = (0usize, 0usize);
    while merged.len() < 2 * len {
        if a < mine.len() && (b >= theirs.len() || mine[a] <= theirs[b]) {
            merged.push(mine[a]);
            a += 1;
        } else {
            merged.push(theirs[b]);
            b += 1;
        }
    }
    if keep_low {
        merged.truncate(len);
        merged
    } else {
        merged.split_off(len)
    }
}

/// Block bitonic sort on the BSP engine: `p` must be a power of two and
/// divide `n`. Returns the measured BSP(g) run plus the full pricing.
pub fn bsp_block_sort(params: MachineParams, inputs: &[Word]) -> (Measured, CostSummary) {
    let p = params.p;
    let m = params.m;
    assert!(p.is_power_of_two(), "block bitonic needs a power-of-two p");
    let n = inputs.len();
    assert!(n.is_multiple_of(p));
    let per = n / p;

    #[derive(Clone, Default)]
    struct St {
        keys: Vec<Word>,
    }

    let mut bsp: BspMachine<St, Word> = BspMachine::new(params, |pid| {
        let mut keys = inputs[pid * per..(pid + 1) * per].to_vec();
        keys.sort_unstable();
        St { keys }
    });
    // Charge the local sorts once.
    bsp.superstep(|_pid, _s, _in, out| {
        let lg = (usize::BITS - per.max(2).leading_zeros()) as u64;
        out.charge_work(per as u64 * lg);
    });

    let lg_p = (usize::BITS - 1 - p.leading_zeros()) as usize;
    let mut rounds = 0usize;
    // Stage k (block analog of the network's outer loop), distance j.
    for stage in 1..=lg_p {
        for dist in (0..stage).rev() {
            let j = 1usize << dist;
            let k = 1usize << stage;
            // Superstep A: everyone ships its block to its partner,
            // staggered so machine-wide load stays ≤ m per step.
            bsp.superstep(move |pid, s, _in, out| {
                let partner = pid ^ j;
                for (idx, &key) in s.keys.iter().enumerate() {
                    let c = p.div_ceil(m).max(1) as u64;
                    let slot = (idx as u64) * c + (pid as u64 % c);
                    out.send_at(partner, key, slot);
                }
            });
            // Superstep B: merge and keep the proper half.
            bsp.superstep(move |pid, s, inbox, out| {
                let keep_low = ((pid & k) == 0) == ((pid & j) == 0);
                let mut theirs = inbox.to_vec();
                theirs.sort_unstable(); // arrival order is source-send order (already sorted), but be safe
                s.keys = compare_split(&s.keys, &theirs, keep_low);
                out.charge_work(2 * per as u64);
            });
            rounds += 1;
        }
    }

    // Verify: concatenated blocks are globally sorted and a permutation of
    // the input.
    let mut got: Vec<Word> = Vec::with_capacity(n);
    for st in bsp.states() {
        got.extend_from_slice(&st.keys);
    }
    let mut expect = inputs.to_vec();
    expect.sort_unstable();
    let ok = got == expect;

    let summary = CostSummary::price(params, bsp.profiles());
    let model = BspG {
        g: params.g,
        l: params.l,
    };
    (
        Measured {
            time: model.run_cost(bsp.profiles()),
            rounds,
            ok,
        },
        summary,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn keys(n: usize, seed: u64) -> Vec<Word> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen_range(-10_000..10_000)).collect()
    }

    #[test]
    fn network_sorts_random_inputs() {
        for n in [1usize, 2, 4, 16, 128, 1024] {
            let mut xs = keys(n, n as u64);
            let mut expect = xs.clone();
            expect.sort_unstable();
            bitonic_network(&mut xs);
            assert_eq!(xs, expect, "n={n}");
        }
    }

    #[test]
    fn network_zero_one_principle() {
        // Exhaustive 0-1 check at n = 8: a comparison network sorts all
        // inputs iff it sorts all 0-1 inputs.
        for bits in 0u32..256 {
            let mut xs: Vec<Word> = (0..8).map(|i| ((bits >> i) & 1) as Word).collect();
            let ones: Word = xs.iter().sum();
            bitonic_network(&mut xs);
            let expect: Vec<Word> = (0..8)
                .map(|i| if (i as Word) < 8 - ones { 0 } else { 1 })
                .collect();
            assert_eq!(xs, expect, "bits={bits:#b}");
        }
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn network_rejects_odd_lengths() {
        let mut xs = vec![3, 1, 2];
        bitonic_network(&mut xs);
    }

    #[test]
    fn compare_split_halves() {
        let low = compare_split(&[1, 4, 9], &[2, 3, 10], true);
        assert_eq!(low, vec![1, 2, 3]);
        let high = compare_split(&[1, 4, 9], &[2, 3, 10], false);
        assert_eq!(high, vec![4, 9, 10]);
    }

    #[test]
    fn bsp_block_sort_correct() {
        let mp = MachineParams::from_gap(32, 4, 4);
        let (r, _) = bsp_block_sort(mp, &keys(32 * 8, 1));
        assert!(r.ok);
        // lg p (lg p + 1)/2 = 5·6/2 = 15 compare-split rounds.
        assert_eq!(r.rounds, 15);
    }

    #[test]
    fn bsp_block_sort_correct_bigger() {
        let mp = MachineParams::from_gap(128, 8, 8);
        let (r, _) = bsp_block_sort(mp, &keys(128 * 16, 2));
        assert!(r.ok);
    }

    #[test]
    fn bitonic_shows_no_global_advantage() {
        // Balanced communication: the same run priced globally is NOT much
        // cheaper (only the L/h bookkeeping differs) — the converse of the
        // sample sort's imbalance-driven gap.
        let mp = MachineParams::from_gap(64, 8, 4);
        let (r, summary) = bsp_block_sort(mp, &keys(64 * 16, 3));
        assert!(r.ok);
        let sep = summary.bsp_separation();
        assert!(
            sep < 2.5,
            "balanced bitonic separation {sep} should be small"
        );
    }

    #[test]
    fn bitonic_vs_sample_sort_on_g_model() {
        // On the g-model the native bitonic and the repriced sample sort
        // are both legitimate; sample sort moves each key O(1) times vs
        // bitonic's lg² p block rounds, so sample sort should win under
        // BSP(g) too at these sizes — the comparison the harness reports.
        let mp = MachineParams::from_gap(64, 8, 4);
        let data = keys(64 * 16, 4);
        let (bit, bsum) = bsp_block_sort(mp, &data);
        let (smp, ssum) = crate::sort::bsp_m_detailed(mp, &data);
        assert!(bit.ok && smp.ok);
        // And under BSP(m), sample sort is far cheaper (it was designed
        // for the global budget).
        assert!(
            ssum.bsp_m_exp < bsum.bsp_m_exp,
            "{} vs {}",
            ssum.bsp_m_exp,
            bsum.bsp_m_exp
        );
    }
}
