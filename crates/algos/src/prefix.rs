//! Parallel prefix sums on the QSM(m): `Θ(n/m + lg m)`.
//!
//! Prefix sums underpin most of the paper's algorithmic toolkit (the τ
//! preamble opens with one, the sorting algorithm's offsets are one, the
//! PRAM conversions lean on work-optimal scans). The QSM(m) shape mirrors
//! summation — local fold, collector scan, local fixup:
//!
//! 1. each processor folds its `n/p` block and publishes the partial
//!    (staggered funnel: `m` requests per machine step);
//! 2. collector `j < m` gathers the partials of group `j` (processors
//!    `[j·p/m, (j+1)·p/m)`), scans them locally, and publishes the group
//!    total;
//! 3. the `m` group totals are scanned in `lg m` Hillis–Steele rounds over
//!    two ping-pong cell buffers (each cell is read by at most two
//!    collectors per round: `κ ≤ 2`);
//! 4. collectors write every block's exclusive offset; every processor
//!    reads its offset back (staggered) and fixes up its block locally.

use crate::Measured;
use pbw_models::{CostModel, MachineParams, PenaltyFn, QsmM};
use pbw_sim::{QsmMachine, Word};

/// Sequential reference.
pub fn sequential_exclusive_prefix(xs: &[Word]) -> Vec<Word> {
    let mut out = Vec::with_capacity(xs.len());
    let mut acc = 0 as Word;
    for &x in xs {
        out.push(acc);
        acc = acc.wrapping_add(x);
    }
    out
}

#[derive(Debug, Clone, Default)]
struct St {
    partial: Word,
    group_scan: Vec<Word>, // exclusive scan of this collector's group partials
    group_offset: Word,    // exclusive offset of this collector's group
    result: Vec<Word>,     // final exclusive prefixes of this block
}

/// Exclusive prefix sums of `inputs` on the QSM(m), block-distributed
/// (`n/p` per processor). `ok` verifies against the sequential reference.
pub fn qsm_m(params: MachineParams, inputs: &[Word]) -> Measured {
    let p = params.p;
    let m = params.m;
    assert!(inputs.len().is_multiple_of(p), "input must divide evenly");
    assert!(p.is_multiple_of(m), "m must divide p");
    let per = inputs.len() / p;
    let group = p / m;

    // Cells: [0, p) block partials; two m-cell scan buffers; [.., +p)
    // per-block exclusive offsets.
    let part0 = 0;
    let buf_a = p;
    let buf_b = p + m;
    let off0 = p + 2 * m;
    let mut qsm: QsmMachine<St> = QsmMachine::new(params, off0 + p, |pid| St {
        partial: inputs[pid * per..(pid + 1) * per].iter().sum(),
        ..St::default()
    });

    // 1. Publish block partials (staggered funnel).
    qsm.phase(move |pid, s, _res, ctx| {
        ctx.charge_work(per as u64);
        ctx.write_at(part0 + pid, s.partial, (pid / m) as u64);
    });
    // 2a. Collectors gather their group's partials.
    qsm.phase(move |pid, _s, _res, ctx| {
        if pid < m {
            for k in 0..group {
                ctx.read_at(part0 + pid * group + k, k as u64);
            }
        }
    });
    // 2b. Collectors scan locally and seed buffer A with group totals.
    qsm.phase(move |pid, s, res, ctx| {
        if pid < m {
            let mut acc = 0 as Word;
            s.group_scan = res
                .iter()
                .map(|r| {
                    let v = acc;
                    acc = acc.wrapping_add(r.value);
                    v
                })
                .collect();
            ctx.charge_work(group as u64);
            ctx.write(buf_a + pid, acc);
        }
    });
    // 3. Hillis–Steele inclusive scan of the m totals, ping-pong A ↔ B.
    let mut dist = 1usize;
    let mut rounds = 3usize;
    let mut src = buf_a;
    let mut dst = buf_b;
    while dist < m {
        let (d, s_, t_) = (dist, src, dst);
        qsm.phase(move |pid, _s, _res, ctx| {
            if pid < m {
                ctx.read(s_ + pid);
                if pid >= d {
                    ctx.read(s_ + pid - d);
                }
            }
        });
        qsm.phase(move |pid, _s, res, ctx| {
            if pid < m {
                let mut v = res[0].value;
                if res.len() > 1 {
                    v = v.wrapping_add(res[1].value);
                }
                ctx.write(t_ + pid, v);
            }
        });
        std::mem::swap(&mut src, &mut dst);
        dist *= 2;
        rounds += 2;
    }
    // 3b. Collector j's exclusive group offset = inclusive[j−1] (0 for 0).
    let fin = src; // buffer holding the final inclusive scan
    qsm.phase(move |pid, _s, _res, ctx| {
        if pid < m && pid > 0 {
            ctx.read(fin + pid - 1);
        }
    });
    qsm.phase(move |pid, s, res, _ctx| {
        if pid < m {
            s.group_offset = res.first().map(|r| r.value).unwrap_or(0);
        }
    });
    // 4a. Collectors write every block's exclusive offset, staggered.
    qsm.phase(move |pid, s, _res, ctx| {
        if pid < m {
            for k in 0..group {
                let off = s.group_offset.wrapping_add(s.group_scan[k]);
                ctx.write_at(off0 + pid * group + k, off, k as u64);
            }
        }
    });
    // 4b. Everyone reads its block offset back (staggered) …
    qsm.phase(move |pid, _s, _res, ctx| {
        ctx.read_at(off0 + pid, (pid / m) as u64);
    });
    // … and fixes up locally.
    qsm.phase(move |pid, s, res, ctx| {
        let base = res[0].value;
        let mut acc = base;
        s.result = inputs[pid * per..(pid + 1) * per]
            .iter()
            .map(|&x| {
                let v = acc;
                acc = acc.wrapping_add(x);
                v
            })
            .collect();
        ctx.charge_work(per as u64);
    });
    rounds += 5;

    // Verify.
    let expect = sequential_exclusive_prefix(inputs);
    let mut got = Vec::with_capacity(inputs.len());
    for st in qsm.states() {
        got.extend_from_slice(&st.result);
    }
    let ok = got == expect;
    let model = QsmM {
        m,
        penalty: PenaltyFn::Exponential,
    };
    Measured {
        time: model.run_cost(qsm.profiles()),
        rounds,
        ok,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn inputs(n: usize, seed: u64) -> Vec<Word> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen_range(-100..100)).collect()
    }

    #[test]
    fn sequential_reference() {
        assert_eq!(sequential_exclusive_prefix(&[3, 1, 4]), vec![0, 3, 4]);
        assert!(sequential_exclusive_prefix(&[]).is_empty());
    }

    #[test]
    fn prefix_correct_small() {
        let mp = MachineParams::from_gap(16, 4, 2);
        assert!(qsm_m(mp, &inputs(16 * 4, 1)).ok);
    }

    #[test]
    fn prefix_correct_larger() {
        let mp = MachineParams::from_gap(256, 16, 4);
        assert!(qsm_m(mp, &inputs(256 * 16, 2)).ok);
    }

    #[test]
    fn prefix_correct_one_element_per_proc() {
        let mp = MachineParams::from_gap(64, 8, 2);
        assert!(qsm_m(mp, &inputs(64, 3)).ok);
    }

    #[test]
    fn prefix_handles_negative_values() {
        let mp = MachineParams::from_gap(32, 4, 2);
        let xs: Vec<Word> = (0..64).map(|i| if i % 2 == 0 { -5 } else { 7 }).collect();
        assert!(qsm_m(mp, &xs).ok);
    }

    #[test]
    fn prefix_within_bound() {
        let mp = MachineParams::from_gap(512, 16, 4);
        let n = 512 * 16;
        let r = qsm_m(mp, &inputs(n, 4));
        assert!(r.ok);
        let bound = n as f64 / mp.m as f64 + pbw_models::lg(mp.m as f64);
        assert!(r.time <= 8.0 * bound, "time {} vs Θ({bound})", r.time);
    }

    #[test]
    fn prefix_m_equals_one() {
        // Degenerate machine: single collector does everything.
        let mp = MachineParams::from_bandwidth(16, 1, 2);
        assert!(qsm_m(mp, &inputs(32, 5)).ok);
    }

    #[test]
    fn prefix_m_equals_p() {
        let mp = MachineParams::from_bandwidth(16, 16, 2);
        assert!(qsm_m(mp, &inputs(32, 6)).ok);
    }
}
